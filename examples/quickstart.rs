//! Quickstart: build the Optical Flow Demonstrator, run one frame under
//! ReSim-based simulation, and check the displayed output against the
//! golden pipeline model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autovision::{AvSystem, SimMethod, SystemConfig};

fn main() {
    // A small configuration: 32x24 frames, one frame, short SimB.
    let cfg = SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(1)
        .payload_words(128)
        .build()
        .expect("quickstart config is valid");
    println!(
        "building the Optical Flow Demonstrator ({:?})...",
        cfg.method
    );
    let mut sys = AvSystem::build(cfg);

    println!("running until the frame is displayed...");
    let outcome = sys.run(2_000_000);
    println!(
        "done: {} frame(s) in {} cycles ({} us simulated), halted={}",
        outcome.frames_captured,
        outcome.cycles,
        sys.sim.now() / 1_000_000,
        outcome.halted
    );

    // The frame went: camera VIP -> memory -> CIE (census transform) ->
    // reconfiguration (CIE swapped out, ME swapped in by a SimB through
    // the real IcapCTRL) -> ME (motion vectors) -> software overlay ->
    // display VIP.
    let icap = sys.backend_stats().icap.expect("ReSim build");
    println!(
        "reconfigurations: {} module swaps, {} complete bitstreams, {} SimB words transferred",
        icap.swaps, icap.desyncs, icap.words_accepted
    );

    let golden = sys.golden_output();
    let got = &sys.captured.borrow()[0];
    assert_eq!(
        got.differing_pixels(&golden[0]),
        0,
        "output must match the golden model bit-exactly"
    );
    println!("displayed frame matches the golden pipeline model bit-exactly");
    assert!(!sys.sim.has_errors(), "{:?}", sys.sim.messages());
    println!("no checker errors — the design is clean");
}
