//! Edge-case probe of the public API: degenerate configurations must
//! fail loudly (clear panics) or work, never corrupt silently.
//!
//! ```sh
//! cargo run --release --example edge_probe
//! ```

use autovision::{AvSystem, SimMethod, SystemConfig};

fn main() {
    // Probe 1: a frame width that cannot pack into bus words must be
    // rejected by the builder with a typed error, not mis-simulated.
    let err = SystemConfig::builder()
        .width(30)
        .height(24)
        .build()
        .expect_err("width=30 must be rejected — packing would corrupt");
    println!("probe 1: width=30 rejected by the builder: {err}");

    // Probe 2: the minimum SimB payload (1 word) still reconfigures.
    let mut sys = AvSystem::build(
        SystemConfig::builder()
            .method(SimMethod::Resim)
            .width(16)
            .height(8)
            .n_frames(1)
            .payload_words(1)
            .build()
            .expect("1-word payload is valid"),
    );
    let out = sys.run(1_000_000);
    assert!(!out.hung && out.frames_captured == 1, "{out:?}");
    assert_eq!(sys.backend_stats().icap.unwrap().swaps, 2);
    assert_eq!(&sys.captured.borrow()[0], &sys.golden_output()[0]);
    println!("probe 2: 1-word SimB payload still swaps correctly");

    // Probe 3: a huge SimB (the real bitstream's 129K words) at small
    // geometry — slow but correct.
    let mut sys = AvSystem::build(
        SystemConfig::builder()
            .method(SimMethod::Resim)
            .width(16)
            .height(8)
            .n_frames(1)
            .payload_words(131_072)
            .cfg_divider(1)
            .build()
            .expect("full-length bitstream config is valid"),
    );
    let out = sys.run(3_000_000);
    assert!(!out.hung && out.frames_captured == 1, "{out:?}");
    assert_eq!(&sys.captured.borrow()[0], &sys.golden_output()[0]);
    println!(
        "probe 3: full-length 129K-word bitstream transfers and swaps ({} cycles)",
        out.cycles
    );

    println!("\nall edge probes passed");
}
