//! Edge-case probe of the public API: degenerate configurations must
//! fail loudly (clear panics) or work, never corrupt silently.
//!
//! ```sh
//! cargo run --release --example edge_probe
//! ```

use autovision::{AvSystem, SimMethod, SystemConfig};

fn main() {
    // Probe 1: a frame width that cannot pack into bus words must be
    // rejected with a clear message, not mis-simulated. (The default
    // panic printer is silenced around the expected rejection.)
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = std::panic::catch_unwind(|| {
        AvSystem::build(SystemConfig {
            width: 30,
            height: 24,
            ..Default::default()
        })
    });
    std::panic::set_hook(default_hook);
    match r {
        Err(_) => println!("probe 1: width=30 rejected with a panic (expected)"),
        Ok(_) => panic!("probe 1: width=30 was accepted — packing would corrupt"),
    }

    // Probe 2: the minimum SimB payload (1 word) still reconfigures.
    let mut sys = AvSystem::build(SystemConfig {
        method: SimMethod::Resim,
        width: 16,
        height: 8,
        n_frames: 1,
        payload_words: 1,
        ..Default::default()
    });
    let out = sys.run(1_000_000);
    assert!(!out.hung && out.frames_captured == 1, "{out:?}");
    assert_eq!(sys.icap.as_ref().unwrap().borrow().swaps, 2);
    assert_eq!(&sys.captured.borrow()[0], &sys.golden_output()[0]);
    println!("probe 2: 1-word SimB payload still swaps correctly");

    // Probe 3: a huge SimB (the real bitstream's 129K words) at small
    // geometry — slow but correct.
    let mut sys = AvSystem::build(SystemConfig {
        method: SimMethod::Resim,
        width: 16,
        height: 8,
        n_frames: 1,
        payload_words: 131_072,
        cfg_divider: 1,
        ..Default::default()
    });
    let out = sys.run(3_000_000);
    assert!(!out.hung && out.frames_captured == 1, "{out:?}");
    assert_eq!(&sys.captured.borrow()[0], &sys.golden_output()[0]);
    println!(
        "probe 3: full-length 129K-word bitstream transfers and swaps ({} cycles)",
        out.cycles
    );

    println!("\nall edge probes passed");
}
