//! Optical-flow demo: run several frames of a synthetic traffic scene
//! through the full system, save the input and overlaid output frames as
//! PGM files, and score the detected motion against the scene's ground
//! truth.
//!
//! ```sh
//! cargo run --release --example optical_flow
//! ```
//!
//! Output lands in `target/optical_flow_demo/`.

use autovision::{AvSystem, SimMethod, SystemConfig};
use video::{census_transform, detect_objects, match_frames, AnalysisParams, MatchParams, Scene};

fn main() {
    let cfg = SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(96)
        .height(64)
        .n_frames(4)
        .payload_words(512)
        .scene_objects(3)
        .seed(7)
        .build()
        .expect("demo config is valid");
    let scene = Scene::new(cfg.width, cfg.height, cfg.scene_objects, cfg.seed);
    println!(
        "scene: {} moving objects on a {}x{} road background",
        scene.objects().len(),
        cfg.width,
        cfg.height
    );
    for (i, o) in scene.objects().iter().enumerate() {
        println!(
            "  object {i}: {}x{} at ({:.0},{:.0}) moving ({:+.1},{:+.1}) px/frame",
            o.w, o.h, o.x0, o.y0, o.vx, o.vy
        );
    }

    let mut sys = AvSystem::build(cfg.clone());
    println!(
        "\nsimulating {} frames (two reconfigurations each)...",
        cfg.n_frames
    );
    let outcome = sys.run(30_000_000);
    assert!(!outcome.hung, "{:?}", sys.sim.messages());
    println!(
        "simulated {} us in {} cycles; {} module swaps",
        sys.sim.now() / 1_000_000,
        outcome.cycles,
        sys.backend_stats().total_swaps()
    );

    let dir = std::path::Path::new("target/optical_flow_demo");
    std::fs::create_dir_all(dir).unwrap();
    let captured = sys.captured.borrow();
    let mut correct = 0usize;
    let mut moving_total = 0usize;
    for (t, out_frame) in captured.iter().enumerate() {
        let input = scene.frame(t);
        video::save_pgm(&input, dir.join(format!("in_{t}.pgm"))).unwrap();
        video::save_pgm(out_frame, dir.join(format!("out_{t}.pgm"))).unwrap();
        if t == 0 {
            continue; // frame 0 matches against an empty census buffer
        }
        // Score the hardware's vectors (recomputed via the golden model,
        // which the RTL matches bit-exactly) against ground truth.
        let c_prev = census_transform(&scene.frame(t - 1));
        let c_cur = census_transform(&input);
        let vectors = match_frames(&c_prev, &c_cur, &MatchParams::default());
        for v in &vectors {
            let truth = scene.true_motion(v.x as usize, v.y as usize, t);
            if truth != (0, 0) {
                moving_total += 1;
                if (v.dx as i32 - truth.0).abs() <= 1 && (v.dy as i32 - truth.1).abs() <= 1 {
                    correct += 1;
                }
            }
        }
    }
    println!(
        "\nmotion scoring: {correct}/{moving_total} anchors on moving objects within 1 px of ground truth"
    );

    // The driver-assistance layer: detect moving objects and classify
    // the scene hazard from the last frame's motion field.
    let t = captured.len() - 1;
    let c_prev = census_transform(&scene.frame(t - 1));
    let c_cur = census_transform(&scene.frame(t));
    let vectors = match_frames(&c_prev, &c_cur, &MatchParams::default());
    let params = AnalysisParams::default();
    let objects = detect_objects(&vectors, &params);
    println!("\ndriver assistance (frame {t}):");
    for (i, o) in objects.iter().enumerate() {
        println!(
            "  object {i}: bbox ({},{})-({},{}) velocity ({:+.1},{:+.1}) px/frame [{} anchors]",
            o.bbox.0, o.bbox.1, o.bbox.2, o.bbox.3, o.velocity.0, o.velocity.1, o.support
        );
    }
    println!("  scene hazard: {:?}", video::classify(&objects, &params));

    println!("frames written to {}", dir.display());
    assert!(
        moving_total > 0 && correct * 2 >= moving_total,
        "optical flow quality"
    );
}
