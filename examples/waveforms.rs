//! Waveform capture: run a reconfiguration with VCD tracing enabled and
//! point a waveform viewer (GTKWave etc.) at the output — the workflow a
//! verification engineer uses to root-cause the bugs this repository
//! reproduces.
//!
//! ```sh
//! cargo run --release --example waveforms
//! ```

use autovision::{AvSystem, SimMethod, SystemConfig};

fn main() {
    let cfg = SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(16)
        .height(8)
        .n_frames(1)
        .payload_words(64)
        .build()
        .expect("waveform config is valid");
    let dir = std::path::Path::new("target/waves");
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("reconfiguration.vcd");

    let mut sys = AvSystem::build(cfg);
    sys.sim.trace_vcd(&path).unwrap();
    let outcome = sys.run(1_000_000);
    sys.sim.flush_vcd().unwrap();
    assert!(!outcome.hung);

    let meta = std::fs::metadata(&path).unwrap();
    println!(
        "simulated {} cycles, {} frame(s) displayed",
        outcome.cycles, outcome.frames_captured
    );
    println!("VCD trace: {} ({} KiB)", path.display(), meta.len() / 1024);
    println!();
    println!("signals worth inspecting around the two reconfigurations:");
    for s in [
        "icap_artifact.reconfiguring  (the DURING-reconfiguration window)",
        "icap_artifact.inject         (error-injection window)",
        "rr0.active                   (which module the portal has configured)",
        "isolate                      (the isolation control the software drives)",
        "rr.plb.req / rr_iso.plb.req  (region outputs before/after isolation)",
        "cie.busy / me.busy           (engine activity)",
        "dcr.abus / dcr.rd / dcr.wr   (software register traffic)",
    ] {
        println!("  {s}");
    }
    let head: String = std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .take(5)
        .collect::<Vec<_>>()
        .join("\n");
    println!("\nfile head:\n{head}");
}
