//! Bug hunt: inject the paper's headline bug (bug.dpr.6b — software
//! resets the engines before the bitstream transfer completes) and show
//! how the two simulation methods treat it: Virtual Multiplexing passes
//! the broken design, ReSim catches it.
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use autovision::{Bug, FaultSet, SimMethod, SystemConfig};
use verif::run_experiment;

fn run(method: SimMethod, bug: Option<Bug>) -> verif::Verdict {
    let cfg = SystemConfig::builder()
        .method(method)
        .faults(bug.map(FaultSet::one).unwrap_or_default())
        .width(32)
        .height(24)
        .n_frames(2)
        .payload_words(1024)
        .build()
        .expect("bug-hunt config is valid");
    run_experiment(cfg, 1_500_000)
}

fn main() {
    let bug = Bug::Dpr6bNoWaitTransfer;
    println!("injected bug: {} — {}\n", bug.id(), bug.describe());

    println!("=== Virtual Multiplexing (the traditional approach) ===");
    let v = run(SimMethod::Vmux, Some(bug));
    println!(
        "frames displayed: {} / detected: {}",
        v.frames,
        if v.detected {
            "YES"
        } else {
            "no — the bug sails through"
        }
    );
    println!("(module swaps are instantaneous and software is hacked, so the");
    println!(" transfer-completion race cannot occur in this testbench)\n");

    println!("=== ReSim-based simulation ===");
    let r = run(SimMethod::Resim, Some(bug));
    println!(
        "frames displayed: {} / detected: {}",
        r.frames,
        if r.detected { "YES" } else { "no" }
    );
    for e in r.evidence.iter().take(5) {
        println!("  evidence: {e:?}");
    }
    println!();
    println!("the SimB transfer takes real simulated time, so the premature");
    println!("engine reset lands while the region is still being reconfigured —");
    println!("the reset is lost, the matching engine never starts, and the");
    println!("checkers flag the X-ridden region outputs.\n");

    println!("=== the fix (wait for the IcapCTRL completion interrupt) ===");
    let fixed = run(SimMethod::Resim, None);
    println!(
        "frames displayed: {} / detected: {}",
        fixed.frames,
        if fixed.detected {
            "regression!"
        } else {
            "clean"
        }
    );
    assert!(!v.detected && r.detected && !fixed.detected);
    println!("\npaper Table III: this bug 'can ONLY be detected by ReSim-based simulation'.");
}
