//! Shared, thread-safe cache of the pure setup artifacts a system build
//! derives from its configuration.
//!
//! A verification campaign builds hundreds of [`AvSystem`](crate::AvSystem)s whose
//! configurations differ only in the injected fault or the simulation
//! method. Most of the expensive setup work is a pure function of a
//! small key — the SimB word streams of `(module, region, payload,
//! seed, integrity)`, the assembled software image of its source text,
//! the synthetic scene and its golden prediction of `(dims, objects,
//! seed, frames)` — so N scenarios keep re-deriving byte-identical
//! data. The [`ArtifactCache`] computes each distinct artifact once and
//! hands out `Arc`s; [`AvSystem::build_with`](crate::AvSystem::build_with) consumes it, and
//! [`AvSystem::build`](crate::AvSystem::build) remains the uncached single-run path.
//!
//! Cached and uncached builds are bit-identical by construction: every
//! producer is deterministic, and the cache key covers every input the
//! producer reads. The cache is `Sync` (mutex-guarded maps around
//! immutable `Arc` values), so one instance can serve a whole worker
//! pool; hit/miss counters expose how much rework it absorbed.

use crate::system::{EngineKind, MemLayout, SystemConfig};
use ppc::Program;
use resim::{build_simb, build_simb_integrity, SimbKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use video::{Frame, Scene};

/// Key of one SimB image: everything [`build_simb`] /
/// [`build_simb_integrity`] read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SimbKey {
    module: u8,
    rr_id: u8,
    payload_words: usize,
    seed: u64,
    integrity: bool,
}

/// Key of one synthetic scene and its golden prediction: everything
/// [`Scene`] and [`crate::system::golden_output`] read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SceneKey {
    width: usize,
    height: usize,
    objects: usize,
    seed: u64,
    n_frames: usize,
}

/// One configuration's video-side artifacts: the camera VIP's input
/// frames and the pipeline-exact golden prediction of the display
/// output.
#[derive(Debug)]
pub struct SceneArtifacts {
    /// Synthetic input frames, in capture order.
    pub inputs: Vec<Frame>,
    /// Golden prediction of the displayed frames.
    pub golden: Vec<Frame>,
}

/// Thread-safe cache of pure build artifacts; see the module docs.
#[derive(Debug, Default)]
pub struct ArtifactCache {
    simbs: Mutex<HashMap<SimbKey, Arc<Vec<u32>>>>,
    programs: Mutex<HashMap<String, Arc<Program>>>,
    scenes: Mutex<HashMap<SceneKey, Arc<SceneArtifacts>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// `(hits, misses)` across all artifact kinds so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn get_or_insert<K, V>(
        &self,
        map: &Mutex<HashMap<K, Arc<V>>>,
        key: K,
        compute: impl FnOnce() -> V,
    ) -> Arc<V>
    where
        K: std::hash::Hash + Eq,
    {
        // The compute runs inside the lock: recomputing the same
        // artifact on two workers would waste exactly the work the
        // cache exists to absorb, and producers have no side effects.
        let mut map = map.lock().expect("artifact cache poisoned");
        if let Some(v) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = Arc::new(compute());
        map.insert(key, Arc::clone(&v));
        v
    }

    /// The SimB image for one region module (framing per the recovery
    /// policy's integrity setting).
    pub fn simb(
        &self,
        module: u8,
        kind: EngineKind,
        rr_id: u8,
        payload_words: usize,
        config_seed: u64,
        integrity: bool,
    ) -> Arc<Vec<u32>> {
        let seed = config_seed
            ^ match kind {
                EngineKind::Matching => 0x4D45,
                EngineKind::Census => 0x0C1E,
            };
        let key = SimbKey {
            module,
            rr_id,
            payload_words,
            seed,
            integrity,
        };
        self.get_or_insert(&self.simbs, key, || {
            let simb_kind = SimbKind::Config { module };
            if integrity {
                build_simb_integrity(simb_kind, rr_id, payload_words, seed)
            } else {
                build_simb(simb_kind, rr_id, payload_words, seed)
            }
        })
    }

    /// The assembled software image of `source` (load base `0x1000`,
    /// matching [`crate::fabric::cpu_subsystem`]).
    pub fn program(&self, source: &str) -> Arc<Program> {
        if let Some(p) = self
            .programs
            .lock()
            .expect("artifact cache poisoned")
            .get(source)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(p);
        }
        // Assemble outside the borrow so the double-checked insert below
        // needs no owned key until a miss is certain.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let p = Arc::new(ppc::assemble(source, 0x1000).expect("system software must assemble"));
        self.programs
            .lock()
            .expect("artifact cache poisoned")
            .entry(source.to_string())
            .or_insert(p)
            .clone()
    }

    /// The input frames and golden prediction for a configuration's
    /// scene parameters.
    pub fn scene(&self, cfg: &SystemConfig) -> Arc<SceneArtifacts> {
        let key = SceneKey {
            width: cfg.width,
            height: cfg.height,
            objects: cfg.scene_objects,
            seed: cfg.seed,
            n_frames: cfg.n_frames,
        };
        self.get_or_insert(&self.scenes, key, || {
            let scene = Scene::new(cfg.width, cfg.height, cfg.scene_objects, cfg.seed);
            let inputs: Vec<Frame> = (0..cfg.n_frames).map(|t| scene.frame(t)).collect();
            let golden = crate::system::golden_output(&inputs, cfg.width, cfg.height);
            SceneArtifacts { inputs, golden }
        })
    }

    /// Precompute everything a build of `cfg` will ask for, so worker
    /// threads that share the cache mostly hit. Safe to skip — lookups
    /// compute on miss — and safe to call concurrently.
    pub fn warm(&self, cfg: &SystemConfig) {
        self.scene(cfg);
        let layout = MemLayout::for_config(cfg);
        for slot in &layout.simbs {
            self.simb(
                slot.module,
                slot.kind,
                slot.rr_id,
                cfg.payload_words,
                cfg.seed,
                cfg.recovery.enabled,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{AvSystem, SystemConfig};

    fn small() -> SystemConfig {
        SystemConfig {
            width: 32,
            height: 24,
            n_frames: 1,
            payload_words: 64,
            ..Default::default()
        }
    }

    #[test]
    fn repeated_lookups_hit() {
        let cache = ArtifactCache::new();
        let cfg = small();
        cache.warm(&cfg);
        let (_, misses_after_warm) = cache.stats();
        cache.warm(&cfg);
        let (hits, misses) = cache.stats();
        assert_eq!(misses, misses_after_warm, "second warm recomputed");
        assert!(hits > 0);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let cache = ArtifactCache::new();
        let a = cache.simb(1, EngineKind::Census, 1, 64, 7, false);
        let b = cache.simb(1, EngineKind::Census, 1, 64, 7, true);
        let c = cache.simb(1, EngineKind::Census, 2, 64, 7, false);
        assert_ne!(a, b, "integrity framing must change the stream");
        assert_ne!(a, c, "region ID must change the stream");
        assert_eq!(a, cache.simb(1, EngineKind::Census, 1, 64, 7, false));
    }

    #[test]
    fn cached_build_matches_uncached_build() {
        let cache = ArtifactCache::new();
        let mut plain = AvSystem::build(small());
        let mut cached = AvSystem::build_with(small(), &cache);
        let a = plain.run(200_000);
        let b = cached.run(200_000);
        assert_eq!(a, b);
        assert_eq!(
            *plain.captured.borrow(),
            *cached.captured.borrow(),
            "cached artifacts changed the simulation"
        );
        assert_eq!(plain.golden_output(), cached.golden_output());

        // A second cached build re-uses every artifact.
        let (_, misses_before) = cache.stats();
        let _again = AvSystem::build_with(small(), &cache);
        let (_, misses_after) = cache.stats();
        assert_eq!(misses_before, misses_after);
    }
}
