//! The embedded system software (PowerPC assembly).
//!
//! This module generates the AutoVision control program exactly as
//! Figure 2 of the paper describes: the processing flow is pipelined —
//! the CPU draws motion vectors for the *previous* frame while the
//! engines process the current one — and the start, end and
//! reconfiguration of the video engines are controlled by an interrupt
//! service routine independent of the main loop.
//!
//! Per frame:
//!
//! 1. video-in interrupt: start the CIE on the captured buffer;
//! 2. engine interrupt (CIE done): isolate the region and start the
//!    IcapCTRL transferring the ME bitstream;
//! 3. IcapCTRL interrupt: drop isolation, program/reset/start the ME;
//! 4. engine interrupt (ME done): flag vectors ready (main loop draws
//!    and displays them), isolate, transfer the CIE bitstream back;
//! 5. IcapCTRL interrupt: drop isolation and request the next frame.
//!
//! That is *two partial reconfigurations per frame*, as the real system
//! requires to sustain throughput.
//!
//! Under Virtual Multiplexing the DPR steps are replaced by the "hack":
//! writing the simulation-only `engine_signature` register and starting
//! the other engine immediately — the ~100 modified software lines the
//! paper tallies. Under ReSim the program is the production program,
//! unchanged.
//!
//! The software bugs of the catalog are generated as source-level
//! variants of this program, exactly where a real driver would get them
//! wrong.

use crate::faults::{Bug, FaultSet};

/// Which DPR simulation method the program must target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMethod {
    /// Virtual Multiplexing: hacked software, signature-register swap.
    Vmux,
    /// ReSim: production software, bitstream-triggered swap.
    Resim,
}

impl SimMethod {
    /// Whether the backend this method selects models the configuration
    /// bitstream itself (DMA traffic, error injection, transfer-timed
    /// swaps). Mirrors `ReconfigBackend::models_bitstream` for callers
    /// that reason about capabilities before a system is built —
    /// expectation tables, coverage analyses — so they need not match on
    /// the method enum.
    pub fn models_bitstream(self) -> bool {
        match self {
            SimMethod::Resim => true,
            SimMethod::Vmux => false,
        }
    }
}

/// Everything the program needs to know about the platform.
#[derive(Debug, Clone)]
pub struct SwConfig {
    /// Simulation method (selects the swap mechanism).
    pub method: SimMethod,
    /// Injected software bugs.
    pub faults: FaultSet,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames to process before halting.
    pub n_frames: u32,
    /// First input frame buffer (double-buffered, stride = frame bytes).
    pub in0: u32,
    /// First census buffer (double-buffered).
    pub cen0: u32,
    /// Motion-vector buffer.
    pub vecs: u32,
    /// ME SimB location and length in words.
    pub simb_me: (u32, u32),
    /// CIE SimB location and length in words.
    pub simb_cie: (u32, u32),
    /// Calibrated ISR housekeeping loop count (models the real ISRs'
    /// bookkeeping; the Table II bench tunes it to the paper's 0.5 ms).
    pub isr_pad_loops: u32,
    /// Dummy-loop count for the bug.dpr.6a fixed wait.
    pub fixed_wait_loops: u32,
    /// Generate the resilient driver: the ICAP-done handler checks the
    /// controller's permanent-failure status bit and, once the hardware
    /// retry budget is exhausted, keeps isolation asserted, enters
    /// degraded mode and keeps the frame pipeline moving by republishing
    /// the previous frame's motion vectors. `false` generates the
    /// original program byte-for-byte.
    pub recovery: bool,
}

/// DCR address map (shared with `system.rs`).
pub mod dcr_map {
    /// Engine control block base.
    pub const ENG: u16 = 0x100;
    /// IcapCTRL base.
    pub const ICAPC: u16 = 0x110;
    /// Interrupt controller base.
    pub const INTC: u16 = 0x120;
    /// System control base (reg0 = isolate, reg2 = heartbeat).
    pub const SYS: u16 = 0x130;
    /// Video-in VIP base.
    pub const VIN: u16 = 0x140;
    /// Video-out VIP base.
    pub const VOUT: u16 = 0x148;
    /// Engine control block of the second region (split-pipeline
    /// scenario; further regions follow at 8-register strides).
    pub const ENG_B: u16 = 0x150;
    /// VMUX `engine_signature` register (simulation-only; one register
    /// per region, consecutive addresses).
    pub const SIG: u16 = 0x1F0;

    /// Engine control block base of region `idx`.
    pub fn eng_base(idx: usize) -> u16 {
        if idx == 0 {
            ENG
        } else {
            ENG_B + 8 * (idx as u16 - 1)
        }
    }

    /// Signature register address of region `idx`.
    pub fn sig_base(idx: usize) -> u16 {
        SIG + idx as u16
    }
}

/// Software data addresses (below the program, above the vectors).
pub mod data_map {
    /// Vectors-ready flag.
    pub const FLAG: u32 = 0x8000;
    /// Pipeline phase.
    pub const PHASE: u32 = 0x8004;
    /// Frames fully captured/processed.
    pub const FRAME: u32 = 0x8008;
    /// Buffer the main loop should draw onto / display.
    pub const DRAWBUF: u32 = 0x800C;
    /// Frames drawn+displayed by the main loop.
    pub const DRAWN: u32 = 0x8010;
    /// Degraded-mode latch: set when reconfiguration failed permanently
    /// and the driver falls back to stale vectors (recovery builds
    /// only).
    pub const DEGRADED: u32 = 0x8014;
    /// Half-frame rendezvous bitmask (split-pipeline scenario): bit 0 =
    /// the computing engine finished, bit 1 = the idle region's reload
    /// finished. The pipeline advances only when both are set.
    pub const PEND: u32 = 0x8018;
}

/// VMUX signature values.
pub const SIG_CIE: u32 = 1;
/// VMUX signature value for the matching engine.
pub const SIG_ME: u32 = 2;

/// Generate the program source. Assemble at `0x1000`.
pub fn generate(cfg: &SwConfig) -> String {
    let f = &cfg.faults;
    let frame_bytes = cfg.width * cfg.height;
    let me_words = if f.has(Bug::Dpr5StaleSizeCalc) {
        // BUG: the driver still divides the byte count by the original
        // controller's 64-bit word size.
        cfg.simb_me.1 / 2
    } else {
        cfg.simb_me.1
    };
    let cie_words = if f.has(Bug::Dpr5StaleSizeCalc) {
        cfg.simb_cie.1 / 2
    } else {
        cfg.simb_cie.1
    };
    // Interrupt enable mask: videoin | engine (| icap when the software
    // actually waits for transfer completion).
    let waits_for_icap = cfg.method == SimMethod::Resim
        && !f.has(Bug::Dpr6aShortFixedWait)
        && !f.has(Bug::Dpr6bNoWaitTransfer);
    let int_mask = if waits_for_icap { 0b0111 } else { 0b0011 };

    let mut s = String::with_capacity(16 * 1024);
    let mut p = |line: &str| {
        s.push_str(line);
        s.push('\n');
    };

    p("# AutoVision Optical Flow Demonstrator — system software");
    p(&format!("# method={:?} faults={:?}", cfg.method, f.bugs()));
    for (name, val) in [
        ("ENG_CTRL", dcr_map::ENG as u32),
        ("ENG_STATUS", dcr_map::ENG as u32 + 1),
        ("ENG_SRC", dcr_map::ENG as u32 + 2),
        ("ENG_DST", dcr_map::ENG as u32 + 3),
        ("ENG_AUX", dcr_map::ENG as u32 + 4),
        ("ENG_VEC", dcr_map::ENG as u32 + 5),
        ("ENG_W", dcr_map::ENG as u32 + 6),
        ("ENG_H", dcr_map::ENG as u32 + 7),
        ("ICAP_CTRL", dcr_map::ICAPC as u32),
        ("ICAP_ADDR", dcr_map::ICAPC as u32 + 2),
        ("ICAP_SIZE", dcr_map::ICAPC as u32 + 3),
        ("INTC_STATUS", dcr_map::INTC as u32),
        ("INTC_ENABLE", dcr_map::INTC as u32 + 1),
        ("INTC_ACK", dcr_map::INTC as u32 + 2),
        ("SYS_ISOLATE", dcr_map::SYS as u32),
        ("SYS_HEARTBEAT", dcr_map::SYS as u32 + 2),
        ("VIN_ADDR", dcr_map::VIN as u32),
        ("VIN_CTRL", dcr_map::VIN as u32 + 1),
        ("VOUT_ADDR", dcr_map::VOUT as u32),
        ("VOUT_CTRL", dcr_map::VOUT as u32 + 1),
        ("VOUT_STATUS", dcr_map::VOUT as u32 + 2),
        ("SIG_REG", dcr_map::SIG as u32),
        ("FLAG", data_map::FLAG),
        ("PHASE", data_map::PHASE),
        ("FRAME", data_map::FRAME),
        ("DRAWBUF", data_map::DRAWBUF),
        ("DRAWN", data_map::DRAWN),
        ("IN0", cfg.in0),
        ("CEN0", cfg.cen0),
        ("VECS", cfg.vecs),
        ("STRIDE", frame_bytes),
        ("WIDTH", cfg.width),
        ("HEIGHT", cfg.height),
        ("NFRAMES", cfg.n_frames),
        ("SIMB_ME", cfg.simb_me.0),
        ("SIMB_ME_W", me_words),
        ("SIMB_CIE", cfg.simb_cie.0),
        ("SIMB_CIE_W", cie_words),
        ("INTMASK", int_mask),
        ("ISRPAD", cfg.isr_pad_loops.max(1)),
        ("FIXWAIT", cfg.fixed_wait_loops.max(1)),
    ] {
        p(&format!(".equ {name}, {val:#x}"));
    }
    if cfg.recovery {
        p(&format!(
            ".equ ICAP_STATUS, {:#x}",
            dcr_map::ICAPC as u32 + 1
        ));
        p(&format!(".equ DEGRADED, {:#x}", data_map::DEGRADED));
    }

    // ----- initialisation -----
    p("init:");
    p("  li r3, 0");
    p("  liw r10, FLAG");
    p("  stw r3, 0(r10)          # FLAG = 0");
    p("  liw r10, PHASE");
    p("  stw r3, 0(r10)");
    p("  liw r10, FRAME");
    p("  stw r3, 0(r10)");
    p("  liw r10, DRAWN");
    p("  stw r3, 0(r10)");
    if cfg.recovery {
        p("  liw r10, DEGRADED");
        p("  stw r3, 0(r10)");
    }
    p("  mtdcr SYS_ISOLATE, r3   # region not isolated");
    p("  li r3, INTMASK");
    p("  mtdcr INTC_ENABLE, r3");
    // Engine geometry never changes: program it once.
    p("  liw r3, WIDTH");
    p("  mtdcr ENG_W, r3");
    p("  liw r3, HEIGHT");
    p("  mtdcr ENG_H, r3");
    if cfg.method == SimMethod::Vmux {
        if f.has(Bug::Hw2SignatureUninit) {
            p("  # BUG hw.2: forgot to initialise engine_signature —");
            p("  # the register powers up to garbage, no engine selected");
        } else {
            p("  # VMUX hack: select the CIE in the wrapper");
            p(&format!("  li r3, {SIG_CIE}"));
            p("  mtdcr SIG_REG, r3");
        }
    }
    p("  # request the first frame into IN0");
    p("  liw r3, IN0");
    p("  mtdcr VIN_ADDR, r3");
    p("  li r3, 1");
    p("  mtdcr VIN_CTRL, r3");
    p("  # enable external interrupts");
    p("  liw r3, 0x8000");
    p("  mtmsr r3");

    // ----- main loop (draw + display, pipelined with the engines) -----
    p("main:");
    p("  li r6, 0                # heartbeat counter");
    if f.has(Bug::Sw2FlagCached) {
        p("  # BUG sw.2: flag loaded once, outside the loop");
        p("  liw r10, FLAG");
        p("  lwz r5, 0(r10)");
    }
    p("mloop:");
    p("  addi r6, r6, 1");
    p("  mtdcr SYS_HEARTBEAT, r6 # liveness telemetry every iteration");
    if f.has(Bug::Sw2FlagCached) {
        p("  # (stale r5 from before the loop)");
    } else {
        p("  liw r10, FLAG");
        p("  lwz r5, 0(r10)");
    }
    p("  cmpwi r5, 0");
    p("  beq mloop");
    p("  # vectors ready: clear the flag and draw them");
    p("  li r5, 0");
    p("  liw r10, FLAG");
    p("  stw r5, 0(r10)");
    p("  bl draw");
    p("  # display the drawn buffer");
    p("  liw r10, DRAWBUF");
    p("  lwz r3, 0(r10)");
    p("  mtdcr VOUT_ADDR, r3");
    p("  li r3, 1");
    p("  mtdcr VOUT_CTRL, r3");
    p("  # count it; halt after the last frame drains");
    p("  liw r10, DRAWN");
    p("  lwz r3, 0(r10)");
    p("  addi r3, r3, 1");
    p("  stw r3, 0(r10)");
    p("  cmplwi r3, NFRAMES");
    p("  blt mloop");
    p("wait_vout:");
    p("  mfdcr r3, VOUT_STATUS");
    p("  cmpwi r3, 0");
    p("  bne wait_vout");
    p("  halt");

    // ----- draw: anchor + endpoint markers for each motion vector -----
    p("draw:");
    p("  liw r8, VECS");
    p("  lwz r7, 0(r8)           # vector count");
    p("  cmpwi r7, 0");
    p("  beq drawret");
    p("  mtctr r7");
    p("  addi r8, r8, 4");
    p("  liw r10, DRAWBUF");
    p("  lwz r9, 0(r10)          # target buffer");
    p("  liw r4, WIDTH");
    p("dloop:");
    p("  lwz r11, 0(r8)");
    p("  addi r8, r8, 4");
    p("  srwi r12, r11, 20       # x");
    p("  andi. r12, r12, 0xFFF");
    p("  srwi r13, r11, 8        # y");
    p("  andi. r13, r13, 0xFFF");
    p("  srwi r14, r11, 4        # dx+8");
    p("  andi. r14, r14, 0xF");
    p("  addi r14, r14, -8");
    p("  andi. r15, r11, 0xF     # dy+8");
    p("  addi r15, r15, -8");
    p("  or r16, r14, r15");
    p("  cmpwi r16, 0");
    p("  beq dskip               # zero vector: nothing to draw");
    p("  mullw r16, r13, r4      # anchor marker");
    p("  add r16, r16, r12");
    p("  add r16, r16, r9");
    p("  li r17, 255");
    p("  stb r17, 0(r16)");
    p("  add r18, r12, r14       # endpoint marker at (x+dx, y+dy)");
    p("  add r19, r13, r15");
    p("  mullw r16, r19, r4");
    p("  add r16, r16, r18");
    p("  add r16, r16, r9");
    p("  li r17, 254");
    p("  stb r17, 0(r16)");
    p("dskip:");
    p("  bdnz dloop");
    p("drawret:");
    p("  blr");

    // ----- interrupt service routine -----
    // Register discipline: the ISR owns r20-r31 exclusively; it saves
    // CR and LR because the main loop uses both.
    p("isr:");
    p("  mfcr r29");
    p("  mflr r28");
    p("  mfspr r31, ctr          # the main loop's draw uses CTR too");
    p("  mfdcr r20, INTC_STATUS");
    p("  mtdcr INTC_ACK, r20");
    p("  # NOTE: handlers below assume at most one pipeline-step bit per");
    p("  # invocation; the sequential frame pipeline guarantees it (each");
    p("  # step's interrupt is acked before the next step is even started)");
    p("  # calibrated housekeeping (frame statistics, watchdog petting)");
    p("  liw r21, ISRPAD");
    p("  mtctr r21");
    p("ipad:");
    p("  bdnz ipad");

    // --- video-in done: start the CIE ---
    p("  andi. r21, r20, 1");
    p("  beq n_vin");
    if cfg.recovery {
        p("  liw r22, DEGRADED");
        p("  lwz r21, 0(r22)");
        p("  cmpwi r21, 0");
        p("  beq vin_ok");
        p("  # degraded mode: the region is dead behind isolation — skip");
        p("  # the engines and republish the previous frame's vectors");
        p("  bl cur_in");
        p("  liw r22, DRAWBUF");
        p("  stw r24, 0(r22)");
        p("  li r21, 1");
        p("  liw r22, FLAG");
        p("  stw r21, 0(r22)");
        p("  bl advance_frame");
        p("  b n_vin");
        p("vin_ok:");
    }
    p("  bl cur_in               # r24 = IN[FRAME&1], r25 = CEN[FRAME&1]");
    p("  mtdcr ENG_SRC, r24");
    p("  mtdcr ENG_DST, r25");
    p("  li r21, 2               # engine reset (latches parameters)");
    p("  mtdcr ENG_CTRL, r21");
    p("  li r21, 1               # engine start");
    p("  mtdcr ENG_CTRL, r21");
    p("  li r21, 1");
    p("  liw r22, PHASE");
    p("  stw r21, 0(r22)         # phase 1: CIE running");
    p("n_vin:");

    // --- engine done: phase decides CIE->DPR or ME->flag+DPR ---
    p("  andi. r21, r20, 2");
    p("  beq n_eng");
    p("  liw r22, PHASE");
    p("  lwz r23, 0(r22)");
    p("  cmpwi r23, 1");
    p("  bne eng_me");
    // CIE finished: reconfigure region to the ME.
    match cfg.method {
        SimMethod::Vmux => {
            p("  # VMUX hack: instant swap via the signature register");
            p(&format!("  li r21, {SIG_ME}"));
            p("  mtdcr SIG_REG, r21");
            p("  bl start_me");
            p("  li r21, 3");
            p("  liw r22, PHASE");
            p("  stw r21, 0(r22)");
        }
        SimMethod::Resim => {
            emit_isolate_on(&mut p, f);
            p("  liw r21, SIMB_ME");
            p("  mtdcr ICAP_ADDR, r21");
            p("  liw r21, SIMB_ME_W");
            p("  mtdcr ICAP_SIZE, r21");
            p("  li r21, 1");
            p("  mtdcr ICAP_CTRL, r21    # begin bitstream transfer");
            if f.has(Bug::Dpr6bNoWaitTransfer) {
                p("  # BUG dpr.6b: no wait for transfer completion");
                emit_isolate_off(&mut p);
                p("  bl start_me");
                p("  li r21, 3");
                p("  liw r22, PHASE");
                p("  stw r21, 0(r22)");
            } else if f.has(Bug::Dpr6aShortFixedWait) {
                p("  # BUG dpr.6a: fixed wait tuned for the old config clock");
                p("  liw r21, FIXWAIT");
                p("  mtctr r21");
                p("fw1:");
                p("  bdnz fw1");
                emit_isolate_off(&mut p);
                p("  bl start_me");
                p("  li r21, 3");
                p("  liw r22, PHASE");
                p("  stw r21, 0(r22)");
            } else {
                p("  li r21, 2");
                p("  liw r22, PHASE");
                p("  stw r21, 0(r22)         # phase 2: transferring ME");
            }
        }
    }
    p("  b n_eng");
    p("eng_me:");
    p("  cmpwi r23, 3");
    p("  bne n_eng");
    // ME finished: publish vectors, reconfigure back to CIE.
    p("  li r21, 1");
    p("  liw r22, FLAG");
    p("  stw r21, 0(r22)         # vectors ready for the main loop");
    if f.has(Bug::Sw1DrawWrongBuffer) {
        p("  # BUG sw.1: publishes the buffer the camera will overwrite");
        p("  bl next_in");
    } else {
        p("  bl cur_in");
    }
    p("  liw r22, DRAWBUF");
    p("  stw r24, 0(r22)");
    match cfg.method {
        SimMethod::Vmux => {
            p(&format!("  li r21, {SIG_CIE}"));
            p("  mtdcr SIG_REG, r21");
            p("  bl advance_frame");
        }
        SimMethod::Resim => {
            emit_isolate_on(&mut p, f);
            p("  liw r21, SIMB_CIE");
            p("  mtdcr ICAP_ADDR, r21");
            p("  liw r21, SIMB_CIE_W");
            p("  mtdcr ICAP_SIZE, r21");
            p("  li r21, 1");
            p("  mtdcr ICAP_CTRL, r21");
            if f.has(Bug::Dpr6bNoWaitTransfer) {
                emit_isolate_off(&mut p);
                p("  bl advance_frame");
            } else if f.has(Bug::Dpr6aShortFixedWait) {
                p("  liw r21, FIXWAIT");
                p("  mtctr r21");
                p("fw2:");
                p("  bdnz fw2");
                emit_isolate_off(&mut p);
                p("  bl advance_frame");
            } else {
                p("  li r21, 4");
                p("  liw r22, PHASE");
                p("  stw r21, 0(r22)         # phase 4: transferring CIE");
            }
        }
    }
    p("n_eng:");

    // --- IcapCTRL done (only when the software waits for it) ---
    if waits_for_icap {
        p("  andi. r21, r20, 4");
        p("  beq n_icap");
        if cfg.recovery {
            p("  mfdcr r21, ICAP_STATUS");
            p("  andi. r21, r21, 4       # bit2: permanent failure");
            p("  beq icap_ok");
            p("  # retries exhausted: keep isolation asserted so the dead");
            p("  # region cannot corrupt the bus, latch degraded mode and");
            p("  # keep the pipeline moving on the last good vectors");
            p("  li r21, 1");
            p("  liw r22, DEGRADED");
            p("  stw r21, 0(r22)");
            p("  liw r22, PHASE");
            p("  lwz r23, 0(r22)");
            p("  cmpwi r23, 2");
            p("  bne icap_dead");
            p("  # the ME never arrived: this frame reuses the previous");
            p("  # frame's vectors (skip the matching pass entirely)");
            p("  bl cur_in");
            p("  liw r22, DRAWBUF");
            p("  stw r24, 0(r22)");
            p("  li r21, 1");
            p("  liw r22, FLAG");
            p("  stw r21, 0(r22)");
            p("icap_dead:");
            p("  bl advance_frame");
            p("  b n_icap");
            p("icap_ok:");
        }
        p("  liw r22, PHASE");
        p("  lwz r23, 0(r22)");
        p("  cmpwi r23, 2");
        p("  bne icap_cie");
        emit_isolate_off(&mut p);
        p("  bl start_me");
        p("  li r21, 3");
        p("  liw r22, PHASE");
        p("  stw r21, 0(r22)");
        p("  b n_icap");
        p("icap_cie:");
        p("  cmpwi r23, 4");
        p("  bne n_icap");
        emit_isolate_off(&mut p);
        p("  bl advance_frame");
        p("n_icap:");
    }
    p("  mtspr ctr, r31");
    p("  mtlr r28");
    p("  mtcrf r29");
    p("  rfi");

    // ----- ISR helpers (use r24-r27 and the link register) -----
    p("# r24 = IN[FRAME&1], r25 = CEN[FRAME&1], r26 = CEN[(FRAME+1)&1]");
    p("cur_in:");
    p("  liw r24, FRAME");
    p("  lwz r24, 0(r24)");
    p("  andi. r27, r24, 1");
    p("  liw r25, STRIDE");
    p("  mullw r27, r27, r25");
    p("  liw r24, IN0");
    p("  add r24, r24, r27");
    p("  liw r25, CEN0");
    p("  add r25, r25, r27");
    p("  liw r26, FRAME");
    p("  lwz r26, 0(r26)");
    p("  addi r26, r26, 1");
    p("  andi. r26, r26, 1");
    p("  liw r27, STRIDE");
    p("  mullw r26, r26, r27");
    p("  liw r27, CEN0");
    p("  add r26, r26, r27");
    p("  blr");
    p("next_in:");
    p("  liw r24, FRAME");
    p("  lwz r24, 0(r24)");
    p("  addi r24, r24, 1");
    p("  andi. r27, r24, 1");
    p("  liw r25, STRIDE");
    p("  mullw r27, r27, r25");
    p("  liw r24, IN0");
    p("  add r24, r24, r27");
    p("  blr");

    p("start_me:");
    p("  mflr r30                # nested call: save return");
    p("  bl cur_in");
    p("  mtdcr ENG_SRC, r25      # current census image");
    p("  mtdcr ENG_AUX, r26      # previous census image");
    p("  liw r27, VECS");
    p("  mtdcr ENG_VEC, r27");
    p("  li r27, 2");
    p("  mtdcr ENG_CTRL, r27     # reset: latch ME parameters");
    p("  li r27, 1");
    p("  mtdcr ENG_CTRL, r27     # start the ME");
    p("  mtlr r30");
    p("  blr");

    p("advance_frame:");
    p("  mflr r30");
    p("  liw r27, FRAME");
    p("  lwz r24, 0(r27)");
    p("  addi r24, r24, 1");
    p("  stw r24, 0(r27)");
    p("  li r25, 0");
    p("  liw r27, PHASE");
    p("  stw r25, 0(r27)         # phase 0: waiting for the camera");
    p("  cmplwi r24, NFRAMES");
    p("  bge adv_done            # no more frames to request");
    p("  bl next_in2");
    p("  mtdcr VIN_ADDR, r24");
    p("  li r25, 1");
    p("  mtdcr VIN_CTRL, r25");
    p("adv_done:");
    p("  mtlr r30");
    p("  blr");
    p("next_in2:");
    p("  liw r24, FRAME");
    p("  lwz r24, 0(r24)");
    p("  andi. r27, r24, 1");
    p("  liw r25, STRIDE");
    p("  mullw r27, r27, r25");
    p("  liw r24, IN0");
    p("  add r24, r24, r27");
    p("  blr");

    s
}

/// Everything the split-pipeline (two-region) program needs to know
/// about the platform. Region A (`RR_ID`) hosts the CIE behind the
/// legacy `ENG_*` control block; region B ([`crate::system::RR_ID_B`])
/// hosts the ME behind `ENG_B`. Bug variants are not generated for this
/// scenario (the builder rejects them).
#[derive(Debug, Clone)]
pub struct SplitSwConfig {
    /// Simulation method (selects the swap mechanism).
    pub method: SimMethod,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames to process before halting.
    pub n_frames: u32,
    /// First input frame buffer (double-buffered).
    pub in0: u32,
    /// First census buffer (double-buffered).
    pub cen0: u32,
    /// Motion-vector buffer.
    pub vecs: u32,
    /// ME SimB location and length in words (targets region B).
    pub simb_me: (u32, u32),
    /// CIE SimB location and length in words (targets region A).
    pub simb_cie: (u32, u32),
    /// Calibrated ISR housekeeping loop count.
    pub isr_pad_loops: u32,
}

/// Generate the split-pipeline program source. Assemble at `0x1000`.
///
/// Per frame (ReSim):
///
/// 1. video-in interrupt: start the CIE in region A *and* isolate
///    region B while IcapCTRL reloads its ME image — reconfiguration
///    overlaps computation instead of serialising with it;
/// 2. when *both* the CIE and the reload finish (`PEND` rendezvous,
///    either order): start the ME in region B and reload region A's
///    CIE image behind isolation;
/// 3. when both the ME and that reload finish: publish the vectors and
///    request the next frame.
///
/// Still two partial reconfigurations per frame, but each hides behind
/// the other region's compute half. Under VMUX both engines are
/// permanently resident (their signature registers are programmed once
/// at init) and the ISR simply chains CIE → ME → publish.
pub fn generate_split(cfg: &SplitSwConfig) -> String {
    let frame_bytes = cfg.width * cfg.height;
    // videoin | engine A | icap | engine B (engine B is INTC line 4;
    // line 3 is videoout, left unmasked like the classic program).
    let int_mask: u32 = match cfg.method {
        SimMethod::Resim => 0b1_0111,
        SimMethod::Vmux => 0b1_0011,
    };
    let resim = cfg.method == SimMethod::Resim;

    let mut s = String::with_capacity(16 * 1024);
    let mut p = |line: &str| {
        s.push_str(line);
        s.push('\n');
    };

    p("# AutoVision Optical Flow Demonstrator — split-pipeline software");
    p(&format!("# method={:?} regions=A:CIE B:ME", cfg.method));
    for (name, val) in [
        ("ENG_CTRL", dcr_map::ENG as u32),
        ("ENG_SRC", dcr_map::ENG as u32 + 2),
        ("ENG_DST", dcr_map::ENG as u32 + 3),
        ("ENG_W", dcr_map::ENG as u32 + 6),
        ("ENG_H", dcr_map::ENG as u32 + 7),
        ("ENGB_CTRL", dcr_map::ENG_B as u32),
        ("ENGB_SRC", dcr_map::ENG_B as u32 + 2),
        ("ENGB_AUX", dcr_map::ENG_B as u32 + 4),
        ("ENGB_VEC", dcr_map::ENG_B as u32 + 5),
        ("ENGB_W", dcr_map::ENG_B as u32 + 6),
        ("ENGB_H", dcr_map::ENG_B as u32 + 7),
        ("ICAP_CTRL", dcr_map::ICAPC as u32),
        ("ICAP_ADDR", dcr_map::ICAPC as u32 + 2),
        ("ICAP_SIZE", dcr_map::ICAPC as u32 + 3),
        ("INTC_STATUS", dcr_map::INTC as u32),
        ("INTC_ENABLE", dcr_map::INTC as u32 + 1),
        ("INTC_ACK", dcr_map::INTC as u32 + 2),
        ("SYS_ISOLATE", dcr_map::SYS as u32),
        ("SYS_HEARTBEAT", dcr_map::SYS as u32 + 2),
        ("VIN_ADDR", dcr_map::VIN as u32),
        ("VIN_CTRL", dcr_map::VIN as u32 + 1),
        ("VOUT_ADDR", dcr_map::VOUT as u32),
        ("VOUT_CTRL", dcr_map::VOUT as u32 + 1),
        ("VOUT_STATUS", dcr_map::VOUT as u32 + 2),
        ("SIG_A_REG", dcr_map::sig_base(0) as u32),
        ("SIG_B_REG", dcr_map::sig_base(1) as u32),
        ("FLAG", data_map::FLAG),
        ("PHASE", data_map::PHASE),
        ("FRAME", data_map::FRAME),
        ("DRAWBUF", data_map::DRAWBUF),
        ("DRAWN", data_map::DRAWN),
        ("PEND", data_map::PEND),
        ("IN0", cfg.in0),
        ("CEN0", cfg.cen0),
        ("VECS", cfg.vecs),
        ("STRIDE", frame_bytes),
        ("WIDTH", cfg.width),
        ("HEIGHT", cfg.height),
        ("NFRAMES", cfg.n_frames),
        ("SIMB_ME", cfg.simb_me.0),
        ("SIMB_ME_W", cfg.simb_me.1),
        ("SIMB_CIE", cfg.simb_cie.0),
        ("SIMB_CIE_W", cfg.simb_cie.1),
        ("INTMASK", int_mask),
        ("ISRPAD", cfg.isr_pad_loops.max(1)),
    ] {
        p(&format!(".equ {name}, {val:#x}"));
    }

    // ----- initialisation -----
    p("init:");
    p("  li r3, 0");
    for var in ["FLAG", "PHASE", "FRAME", "DRAWN", "PEND"] {
        p(&format!("  liw r10, {var}"));
        p("  stw r3, 0(r10)");
    }
    p("  mtdcr SYS_ISOLATE, r3   # no region isolated");
    p("  li r3, INTMASK");
    p("  mtdcr INTC_ENABLE, r3");
    p("  # engine geometry never changes: program both regions once");
    p("  liw r3, WIDTH");
    p("  mtdcr ENG_W, r3");
    p("  mtdcr ENGB_W, r3");
    p("  liw r3, HEIGHT");
    p("  mtdcr ENG_H, r3");
    p("  mtdcr ENGB_H, r3");
    if !resim {
        p("  # VMUX hack: both engines permanently resident");
        p(&format!("  li r3, {SIG_CIE}"));
        p("  mtdcr SIG_A_REG, r3");
        p(&format!("  li r3, {SIG_ME}"));
        p("  mtdcr SIG_B_REG, r3");
    }
    p("  # request the first frame into IN0");
    p("  liw r3, IN0");
    p("  mtdcr VIN_ADDR, r3");
    p("  li r3, 1");
    p("  mtdcr VIN_CTRL, r3");
    p("  # enable external interrupts");
    p("  liw r3, 0x8000");
    p("  mtmsr r3");

    // ----- main loop (identical contract to the classic program) -----
    p("main:");
    p("  li r6, 0                # heartbeat counter");
    p("mloop:");
    p("  addi r6, r6, 1");
    p("  mtdcr SYS_HEARTBEAT, r6 # liveness telemetry every iteration");
    p("  liw r10, FLAG");
    p("  lwz r5, 0(r10)");
    p("  cmpwi r5, 0");
    p("  beq mloop");
    p("  # vectors ready: clear the flag and draw them");
    p("  li r5, 0");
    p("  liw r10, FLAG");
    p("  stw r5, 0(r10)");
    p("  bl draw");
    p("  # display the drawn buffer");
    p("  liw r10, DRAWBUF");
    p("  lwz r3, 0(r10)");
    p("  mtdcr VOUT_ADDR, r3");
    p("  li r3, 1");
    p("  mtdcr VOUT_CTRL, r3");
    p("  # count it; halt after the last frame drains");
    p("  liw r10, DRAWN");
    p("  lwz r3, 0(r10)");
    p("  addi r3, r3, 1");
    p("  stw r3, 0(r10)");
    p("  cmplwi r3, NFRAMES");
    p("  blt mloop");
    p("wait_vout:");
    p("  mfdcr r3, VOUT_STATUS");
    p("  cmpwi r3, 0");
    p("  bne wait_vout");
    p("  halt");

    // ----- draw: anchor + endpoint markers for each motion vector -----
    p("draw:");
    p("  liw r8, VECS");
    p("  lwz r7, 0(r8)           # vector count");
    p("  cmpwi r7, 0");
    p("  beq drawret");
    p("  mtctr r7");
    p("  addi r8, r8, 4");
    p("  liw r10, DRAWBUF");
    p("  lwz r9, 0(r10)          # target buffer");
    p("  liw r4, WIDTH");
    p("dloop:");
    p("  lwz r11, 0(r8)");
    p("  addi r8, r8, 4");
    p("  srwi r12, r11, 20       # x");
    p("  andi. r12, r12, 0xFFF");
    p("  srwi r13, r11, 8        # y");
    p("  andi. r13, r13, 0xFFF");
    p("  srwi r14, r11, 4        # dx+8");
    p("  andi. r14, r14, 0xF");
    p("  addi r14, r14, -8");
    p("  andi. r15, r11, 0xF     # dy+8");
    p("  addi r15, r15, -8");
    p("  or r16, r14, r15");
    p("  cmpwi r16, 0");
    p("  beq dskip               # zero vector: nothing to draw");
    p("  mullw r16, r13, r4      # anchor marker");
    p("  add r16, r16, r12");
    p("  add r16, r16, r9");
    p("  li r17, 255");
    p("  stb r17, 0(r16)");
    p("  add r18, r12, r14       # endpoint marker at (x+dx, y+dy)");
    p("  add r19, r13, r15");
    p("  mullw r16, r19, r4");
    p("  add r16, r16, r18");
    p("  add r16, r16, r9");
    p("  li r17, 254");
    p("  stb r17, 0(r16)");
    p("dskip:");
    p("  bdnz dloop");
    p("drawret:");
    p("  blr");

    // ----- interrupt service routine -----
    p("isr:");
    p("  mfcr r29");
    p("  mflr r28");
    p("  mfspr r31, ctr          # the main loop's draw uses CTR too");
    p("  mfdcr r20, INTC_STATUS");
    p("  mtdcr INTC_ACK, r20");
    p("  # calibrated housekeeping (frame statistics, watchdog petting)");
    p("  liw r21, ISRPAD");
    p("  mtctr r21");
    p("ipad:");
    p("  bdnz ipad");

    // --- video-in done: first half-frame begins ---
    p("  andi. r21, r20, 1");
    p("  beq n_vin");
    p("  bl cur_in               # r24 = IN[FRAME&1], r25 = CEN[FRAME&1]");
    p("  mtdcr ENG_SRC, r24");
    p("  mtdcr ENG_DST, r25");
    p("  li r21, 2               # region A: reset (latch parameters)");
    p("  mtdcr ENG_CTRL, r21");
    p("  li r21, 1               # region A: start the CIE");
    p("  mtdcr ENG_CTRL, r21");
    p("  li r21, 0");
    p("  liw r22, PEND");
    p("  stw r21, 0(r22)");
    p("  li r21, 1");
    p("  liw r22, PHASE");
    p("  stw r21, 0(r22)         # phase 1: CIE computing, B reloading");
    if resim {
        p("  li r21, 2               # isolate region B (bit 1)");
        p("  mtdcr SYS_ISOLATE, r21");
        p("  liw r21, SIMB_ME        # reload B's ME image while A works");
        p("  mtdcr ICAP_ADDR, r21");
        p("  liw r21, SIMB_ME_W");
        p("  mtdcr ICAP_SIZE, r21");
        p("  li r21, 1");
        p("  mtdcr ICAP_CTRL, r21");
    }
    p("n_vin:");

    // --- region A engine (CIE) done ---
    p("  andi. r21, r20, 2");
    p("  beq n_enga");
    p("  liw r22, PHASE");
    p("  lwz r23, 0(r22)");
    p("  cmpwi r23, 1");
    p("  bne n_enga");
    if resim {
        p("  liw r22, PEND");
        p("  lwz r23, 0(r22)");
        p("  ori r23, r23, 1         # CIE half done");
        p("  stw r23, 0(r22)");
        p("  cmpwi r23, 3");
        p("  beq half2               # reload also done: switch halves");
    } else {
        p("  b half2                 # nothing to wait for under VMUX");
    }
    p("n_enga:");

    // --- region B engine (ME) done ---
    p("  andi. r21, r20, 16");
    p("  beq n_engb");
    p("  liw r22, PHASE");
    p("  lwz r23, 0(r22)");
    p("  cmpwi r23, 2");
    p("  bne n_engb");
    p("  li r21, 1");
    p("  liw r22, FLAG");
    p("  stw r21, 0(r22)         # vectors ready for the main loop");
    p("  bl cur_in");
    p("  liw r22, DRAWBUF");
    p("  stw r24, 0(r22)");
    if resim {
        p("  liw r22, PEND");
        p("  lwz r23, 0(r22)");
        p("  ori r23, r23, 1         # ME half done");
        p("  stw r23, 0(r22)");
        p("  cmpwi r23, 3");
        p("  beq frame_done          # reload also done: next frame");
    } else {
        p("  bl advance_frame");
    }
    p("n_engb:");

    // --- IcapCTRL done: the idle region's reload finished ---
    if resim {
        p("  andi. r21, r20, 4");
        p("  beq n_icap");
        p("  # NOTE: isolation is NOT dropped here. The done interrupt");
        p("  # fires when the last word enters the ICAP FIFO; the error-");
        p("  # injection window only closes once the FIFO tail drains.");
        p("  # The half2/frame_done phase switches rewrite the mask later,");
        p("  # safely past the drain.");
        p("  liw r22, PHASE");
        p("  lwz r23, 0(r22)");
        p("  cmpwi r23, 1");
        p("  bne icap_p2");
        p("  liw r22, PEND");
        p("  lwz r23, 0(r22)");
        p("  ori r23, r23, 2         # B reload done");
        p("  stw r23, 0(r22)");
        p("  cmpwi r23, 3");
        p("  beq half2               # CIE also done: switch halves");
        p("  b n_icap");
        p("icap_p2:");
        p("  cmpwi r23, 2");
        p("  bne n_icap");
        p("  liw r22, PEND");
        p("  lwz r23, 0(r22)");
        p("  ori r23, r23, 2         # A reload done");
        p("  stw r23, 0(r22)");
        p("  cmpwi r23, 3");
        p("  beq frame_done          # ME also done: next frame");
        p("n_icap:");
    }
    p("isr_exit:");
    p("  mtspr ctr, r31");
    p("  mtlr r28");
    p("  mtcrf r29");
    p("  rfi");

    // --- second half-frame: ME computes on B, A reloads its CIE ---
    p("half2:");
    p("  li r21, 0");
    p("  liw r22, PEND");
    p("  stw r21, 0(r22)");
    p("  li r21, 2");
    p("  liw r22, PHASE");
    p("  stw r21, 0(r22)         # phase 2: ME computing, A reloading");
    if resim {
        p("  li r21, 1               # isolate A, release B (mask bit 0)");
        p("  mtdcr SYS_ISOLATE, r21");
    }
    p("  bl start_me_b");
    if resim {
        p("  liw r21, SIMB_CIE       # reload A's CIE image while B works");
        p("  mtdcr ICAP_ADDR, r21");
        p("  liw r21, SIMB_CIE_W");
        p("  mtdcr ICAP_SIZE, r21");
        p("  li r21, 1");
        p("  mtdcr ICAP_CTRL, r21");
    }
    p("  b isr_exit");

    // --- both halves complete: request the next frame ---
    p("frame_done:");
    if resim {
        p("  li r21, 0               # release region A");
        p("  mtdcr SYS_ISOLATE, r21");
    }
    p("  bl advance_frame");
    p("  b isr_exit");

    // ----- ISR helpers (use r24-r27 and the link register) -----
    p("# r24 = IN[FRAME&1], r25 = CEN[FRAME&1], r26 = CEN[(FRAME+1)&1]");
    p("cur_in:");
    p("  liw r24, FRAME");
    p("  lwz r24, 0(r24)");
    p("  andi. r27, r24, 1");
    p("  liw r25, STRIDE");
    p("  mullw r27, r27, r25");
    p("  liw r24, IN0");
    p("  add r24, r24, r27");
    p("  liw r25, CEN0");
    p("  add r25, r25, r27");
    p("  liw r26, FRAME");
    p("  lwz r26, 0(r26)");
    p("  addi r26, r26, 1");
    p("  andi. r26, r26, 1");
    p("  liw r27, STRIDE");
    p("  mullw r26, r26, r27");
    p("  liw r27, CEN0");
    p("  add r26, r26, r27");
    p("  blr");

    p("start_me_b:");
    p("  mflr r30                # nested call: save return");
    p("  bl cur_in");
    p("  mtdcr ENGB_SRC, r25     # current census image");
    p("  mtdcr ENGB_AUX, r26     # previous census image");
    p("  liw r27, VECS");
    p("  mtdcr ENGB_VEC, r27");
    p("  li r27, 2");
    p("  mtdcr ENGB_CTRL, r27    # region B: reset (latch ME parameters)");
    p("  li r27, 1");
    p("  mtdcr ENGB_CTRL, r27    # region B: start the ME");
    p("  mtlr r30");
    p("  blr");

    p("advance_frame:");
    p("  mflr r30");
    p("  liw r27, FRAME");
    p("  lwz r24, 0(r27)");
    p("  addi r24, r24, 1");
    p("  stw r24, 0(r27)");
    p("  li r25, 0");
    p("  liw r27, PHASE");
    p("  stw r25, 0(r27)         # phase 0: waiting for the camera");
    p("  cmplwi r24, NFRAMES");
    p("  bge adv_done            # no more frames to request");
    p("  bl next_in2");
    p("  mtdcr VIN_ADDR, r24");
    p("  li r25, 1");
    p("  mtdcr VIN_CTRL, r25");
    p("adv_done:");
    p("  mtlr r30");
    p("  blr");
    p("next_in2:");
    p("  liw r24, FRAME");
    p("  lwz r24, 0(r24)");
    p("  andi. r27, r24, 1");
    p("  liw r25, STRIDE");
    p("  mullw r27, r27, r25");
    p("  liw r24, IN0");
    p("  add r24, r24, r27");
    p("  blr");

    s
}

/// The sanity applications the paper's designer brought up in week 3
/// before any DPR work: a "hello world" and a "camera to VGA display"
/// passthrough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanityApp {
    /// Write a greeting into memory and halt — proves fetch, execute,
    /// store and halt paths.
    HelloWorld {
        /// Where the greeting bytes land.
        at: u32,
    },
    /// Capture `frames` camera frames and display each unmodified —
    /// proves the VIP DMA paths, the DCR chain and the interrupt plumbing
    /// with no engines involved.
    CameraToDisplay {
        /// Frame buffer address.
        buffer: u32,
        /// Frames to pass through.
        frames: u32,
    },
}

/// Generate a sanity program (assemble at `0x1000`).
pub fn generate_sanity(app: SanityApp) -> String {
    let mut s = String::new();
    let mut p = |line: &str| {
        s.push_str(line);
        s.push('\n');
    };
    match app {
        SanityApp::HelloWorld { at } => {
            p("# hello world: store a greeting, then halt");
            p(&format!(".equ DEST, {at:#x}"));
            p("  liw r4, DEST");
            // "HELO" / "DPR!" as little-endian words.
            p("  liw r3, 0x4F4C4548   # 'HELO'");
            p("  stw r3, 0(r4)");
            p("  liw r3, 0x21525044   # 'DPR!'");
            p("  stw r3, 4(r4)");
            p("  halt");
        }
        SanityApp::CameraToDisplay { buffer, frames } => {
            p("# camera to display passthrough (no engines, no DPR)");
            for (name, val) in [
                ("VIN_ADDR", dcr_map::VIN as u32),
                ("VIN_CTRL", dcr_map::VIN as u32 + 1),
                ("VIN_STATUS", dcr_map::VIN as u32 + 2),
                ("VOUT_ADDR", dcr_map::VOUT as u32),
                ("VOUT_CTRL", dcr_map::VOUT as u32 + 1),
                ("VOUT_STATUS", dcr_map::VOUT as u32 + 2),
                ("BUF", buffer),
                ("NFRAMES", frames),
            ] {
                p(&format!(".equ {name}, {val:#x}"));
            }
            p("  li r7, 0              # frames done");
            p("floop:");
            p("  liw r3, BUF");
            p("  mtdcr VIN_ADDR, r3");
            p("  li r3, 1");
            p("  mtdcr VIN_CTRL, r3    # capture one frame");
            p("vin_wait:");
            p("  mfdcr r3, VIN_STATUS");
            p("  cmpwi r3, 0");
            p("  bne vin_wait");
            p("  liw r3, BUF");
            p("  mtdcr VOUT_ADDR, r3");
            p("  li r3, 1");
            p("  mtdcr VOUT_CTRL, r3   # display it");
            p("vout_wait:");
            p("  mfdcr r3, VOUT_STATUS");
            p("  cmpwi r3, 0");
            p("  bne vout_wait");
            p("  addi r7, r7, 1");
            p("  cmplwi r7, NFRAMES");
            p("  blt floop");
            p("  halt");
        }
    }
    s
}

fn emit_isolate_on(p: &mut impl FnMut(&str), f: &FaultSet) {
    if f.has(Bug::Dpr1NoIsolation) {
        p("  # BUG dpr.1: isolation not asserted");
    } else {
        p("  li r21, 1");
        p("  mtdcr SYS_ISOLATE, r21");
    }
}

fn emit_isolate_off(p: &mut impl FnMut(&str)) {
    p("  li r21, 0");
    p("  mtdcr SYS_ISOLATE, r21");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(method: SimMethod, faults: FaultSet) -> SwConfig {
        SwConfig {
            method,
            faults,
            width: 64,
            height: 48,
            n_frames: 3,
            in0: 0x40000,
            cen0: 0x50000,
            vecs: 0x60000,
            simb_me: (0x62000, 100),
            simb_cie: (0x64000, 100),
            isr_pad_loops: 10,
            fixed_wait_loops: 100,
            recovery: false,
        }
    }

    #[test]
    fn all_variants_assemble() {
        for method in [SimMethod::Resim, SimMethod::Vmux] {
            for bug in Bug::ALL {
                let src = generate(&cfg(method, FaultSet::one(bug)));
                let prog = ppc::assemble(&src, 0x1000)
                    .unwrap_or_else(|e| panic!("{method:?}/{}: {e}", bug.id()));
                assert!(prog.words.len() > 100, "{method:?}/{} too small", bug.id());
                assert!(prog.symbols.contains_key("isr"));
            }
            let src = generate(&cfg(method, FaultSet::none()));
            ppc::assemble(&src, 0x1000).unwrap();
        }
    }

    #[test]
    fn vmux_program_is_the_hacked_one() {
        let resim = generate(&cfg(SimMethod::Resim, FaultSet::none()));
        let vmux = generate(&cfg(SimMethod::Vmux, FaultSet::none()));
        assert!(
            vmux.contains("SIG_REG"),
            "vmux writes the signature register"
        );
        assert!(
            !resim.contains("mtdcr SIG_REG"),
            "production software never does"
        );
        assert!(
            resim.contains("ICAP_CTRL, r21"),
            "production software drives IcapCTRL"
        );
        assert!(
            !vmux.contains("mtdcr ICAP_CTRL"),
            "hacked software does not"
        );
    }

    #[test]
    fn stale_size_halves_the_words() {
        let good = generate(&cfg(SimMethod::Resim, FaultSet::none()));
        let bad = generate(&cfg(
            SimMethod::Resim,
            FaultSet::one(Bug::Dpr5StaleSizeCalc),
        ));
        assert!(good.contains(".equ SIMB_ME_W, 0x64"));
        assert!(bad.contains(".equ SIMB_ME_W, 0x32"));
    }

    #[test]
    fn buggy_waiters_do_not_enable_the_icap_interrupt() {
        for bug in [Bug::Dpr6aShortFixedWait, Bug::Dpr6bNoWaitTransfer] {
            let src = generate(&cfg(SimMethod::Resim, FaultSet::one(bug)));
            assert!(src.contains(".equ INTMASK, 0x3"), "{}", bug.id());
        }
        let good = generate(&cfg(SimMethod::Resim, FaultSet::none()));
        assert!(good.contains(".equ INTMASK, 0x7"));
    }
}
