//! IcapCTRL — the reconfiguration controller (user design, *not* a
//! simulation artifact).
//!
//! The controller DMAs a bitstream (in simulation: a SimB) from main
//! memory over the PLB and feeds it to the ICAP configuration port one
//! word at a time. The modified Optical Flow Demonstrator attaches it to
//! the shared PLB — in the original design it had a dedicated
//! point-to-point link, and the leftover fixed-latency timing assumption
//! is exactly bug.dpr.4. Software programs it over DCR:
//!
//! | offset | name   | behaviour                                  |
//! |--------|--------|--------------------------------------------|
//! | 0      | CTRL   | write bit0 = start transfer                |
//! | 1      | STATUS | bit0 busy, bit1 done (latched), bit2 error,|
//! |        |        | bit3 recovered (done after ≥1 retry)       |
//! | 2      | ADDR   | bitstream byte address in memory           |
//! | 3      | SIZE   | bitstream length in 32-bit words           |
//! | 4      | RETRY  | retries used by the current/last transfer  |
//! | 5      | ERRCODE| last fault code (see [`errcode`])          |
//!
//! `done` pulses the `irq_out` line for the interrupt controller; with
//! recovery enabled a *permanent* failure (retry budget exhausted) also
//! pulses it, with STATUS.error set, so software never hangs waiting.
//!
//! ## Resilient reconfiguration
//!
//! With a [`RecoveryPolicy`] enabled the controller detects three fault
//! classes — PLB bus-error responses on the bitstream DMA, a
//! DMA-progress watchdog timeout (stalled transfer, dropped ICAP ready,
//! or a stream whose framing was corrupted so badly it never DESYNCs),
//! and the ICAP artifact's `crc_error` integrity latch — and runs a
//! bounded retry-with-backoff sequence: drain/abort the in-flight DMA
//! protocol-cleanly, pulse the ICAP `abort` input to re-arm the SimB
//! parser, wait an exponentially growing backoff, then re-DMA the whole
//! bitstream from `ADDR`. Isolation stays asserted throughout — software
//! holds it until the done interrupt — so a retried swap is invisible to
//! the static region apart from the added latency. Everything is off by
//! default; the default-policy controller is cycle-identical to the
//! seed.

use crate::faults::{Bug, FaultSet};
use dcr::RegFile;
use plb::dma::Handshake;
use plb::{DmaDriver, DmaEvent, MasterPort};
use resim::IcapPort;
use rtlsim::{CompKind, Component, Ctx, DoorbellId, SignalId, Simulator, TraceCat};
use std::cell::RefCell;
use std::rc::Rc;

/// DCR register offsets.
pub mod reg {
    /// Start control (write-1 bit0).
    pub const CTRL: u16 = 0;
    /// Status: busy/done/error/recovered.
    pub const STATUS: u16 = 1;
    /// Bitstream byte address.
    pub const ADDR: u16 = 2;
    /// Bitstream length in words.
    pub const SIZE: u16 = 3;
    /// Retries used by the current/last transfer.
    pub const RETRY: u16 = 4;
    /// Last fault code (see [`super::errcode`]).
    pub const ERRCODE: u16 = 5;
}

/// Fault codes reported in the ERRCODE register.
pub mod errcode {
    /// No fault.
    pub const NONE: u32 = 0;
    /// The bus answered a bitstream DMA with an error response.
    pub const BUS: u32 = 1;
    /// The DMA-progress watchdog expired (stalled transfer, dropped
    /// ICAP ready, or a corrupted stream that never completed).
    pub const WATCHDOG: u32 = 2;
    /// The ICAP reported a bitstream integrity failure (CRC mismatch or
    /// missing integrity word).
    pub const INTEGRITY: u32 = 3;
}

/// Retry-with-backoff policy for the controller. Disabled by default:
/// the controller then behaves exactly like the original seed design
/// (first fault latches the error bit and gives up).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Master enable for detection, watchdog and retry.
    pub enabled: bool,
    /// How many times a failed transfer is retried before the error is
    /// latched permanently.
    pub max_retries: u32,
    /// Backoff before retry `i` (1-based) is `backoff_base << (i-1)`
    /// cycles.
    pub backoff_base: u32,
    /// Cycles without transfer progress (no DMA burst completion and no
    /// word accepted by the ICAP) before the watchdog declares the
    /// transfer stuck.
    pub watchdog_cycles: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: false,
            max_retries: 3,
            backoff_base: 16,
            watchdog_cycles: 2048,
        }
    }
}

/// Counters the recovery campaign reads out after a run.
#[derive(Debug, Default, Clone)]
pub struct RecoveryStats {
    /// Retry attempts started.
    pub retries: u64,
    /// Bus-error faults detected.
    pub bus_errors: u64,
    /// Watchdog expiries.
    pub watchdog_fires: u64,
    /// Integrity (CRC) faults detected.
    pub integrity_errors: u64,
    /// Transfers that completed successfully after at least one retry.
    pub recovered: u64,
    /// Transfers that failed permanently (budget exhausted).
    pub exhausted: u64,
    /// Sum over recovered transfers of cycles from first fault
    /// detection to completion.
    pub recovery_cycles_total: u64,
    /// Worst-case recovery latency in cycles.
    pub recovery_cycles_max: u64,
}

/// Words fetched from memory per burst (large bursts keep the feed
/// queue ahead of the ICAP's one-word-per-cycle drain).
const BURST: u32 = 128;
/// Feed-queue level below which the next burst is prefetched.
const PREFETCH_LEVEL: usize = 192;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Idle,
    /// Transfer in progress: the DMA prefetches bursts into the feed
    /// queue while the ICAP side drains it, one word per cycle.
    Active,
    /// All words written (recovery mode only): wait for the ICAP to
    /// drain through DESYNC, then check the integrity latch.
    WaitDrain,
    /// A fault was detected: drain the in-flight DMA protocol-cleanly
    /// before re-arming (a granted PLB burst cannot simply be dropped).
    AbortFlush,
    /// Exponential backoff before the retry; the ICAP `abort` input is
    /// held high so the artifact starts the retry from a clean parser.
    Backoff {
        left: u32,
    },
    DonePulse,
}

/// The reconfiguration controller component.
pub struct IcapCtrl {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    icap: IcapPort,
    dma: DmaDriver,
    st: St,
    /// Double-buffered feed queue between the DMA and the ICAP port.
    feed: std::collections::VecDeque<u32>,
    fetching: bool,
    addr: u32,
    /// Words still to fetch from memory.
    fetch_left: u32,
    /// Words still to write into the ICAP.
    write_left: u32,
    done_latch: bool,
    error_latch: bool,
    /// bug.dpr.3: do not check ICAP `ready` before writing.
    ignore_ready: bool,
    irq_out: SignalId,
    policy: RecoveryPolicy,
    rstats: Rc<RefCell<RecoveryStats>>,
    /// Retries used by the current transfer.
    retries: u32,
    /// Last fault code (errcode::*).
    err_code: u32,
    /// Cycles since the last sign of transfer progress.
    watchdog: u32,
    /// The ICAP has raised `reconfiguring` during this attempt (needed
    /// to tell "drained through DESYNC" from "never synced").
    seen_reconfig: bool,
    /// The current transfer completed after at least one retry.
    recovered_latch: bool,
    /// Free-running cycle counter (recovery-latency bookkeeping). Only
    /// *differences* within one transfer are ever read, and a transfer
    /// never passes through `Idle`, so parking in `Idle` (which stops
    /// the counter) cannot skew a latency.
    cycle: u64,
    /// Cycle of the first fault of the current transfer.
    recovery_start: Option<u64>,
    /// The current eval drove `irq_out` high (pulse still to be cleared
    /// at the next posedge, so parking is not yet a no-op).
    irq_pulsed: bool,
    /// Doorbell rung by software DCR writes to this controller.
    bell: Option<DoorbellId>,
}

impl IcapCtrl {
    /// Build and register the controller. The bus handshake policy and
    /// backpressure behaviour come from the injected `faults`; the
    /// retry machinery from `policy`. Returns the shared recovery
    /// counters.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        regs: RegFile,
        port: MasterPort,
        icap: IcapPort,
        irq_out: SignalId,
        faults: &FaultSet,
        policy: RecoveryPolicy,
    ) -> Rc<RefCell<RecoveryStats>> {
        assert!(regs.len() >= 6, "IcapCTRL needs 6 DCR registers");
        let handshake = if faults.has(Bug::Dpr4P2pOnSharedBus) {
            // The original design's dedicated-link timing.
            Handshake::FixedLatency { addr_latency: 2 }
        } else {
            Handshake::Full
        };
        let rstats = Rc::new(RefCell::new(RecoveryStats::default()));
        // The bitstream-fetch DMA is the one the reconfiguration
        // timeline cares about: give it the configuration-plane lane.
        let mut dma = DmaDriver::new(port, handshake, BURST);
        dma.set_trace_track(0);
        let bell = sim.add_doorbell(regs.dirty_flag());
        let ctrl = IcapCtrl {
            clk,
            rst,
            regs,
            icap,
            dma,
            st: St::Idle,
            feed: std::collections::VecDeque::new(),
            fetching: false,
            addr: 0,
            fetch_left: 0,
            write_left: 0,
            done_latch: false,
            error_latch: false,
            ignore_ready: faults.has(Bug::Dpr3IgnoreIcapReady),
            irq_out,
            policy,
            rstats: rstats.clone(),
            retries: 0,
            err_code: errcode::NONE,
            watchdog: 0,
            seen_reconfig: false,
            recovered_latch: false,
            cycle: 0,
            recovery_start: None,
            irq_pulsed: false,
            bell: Some(bell),
        };
        let comp = sim.add_component(name, CompKind::UserStatic, Box::new(ctrl), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        rstats
    }

    fn update_status(&self) {
        let busy = !matches!(self.st, St::Idle) as u32;
        let status = busy
            | ((self.done_latch as u32) << 1)
            | ((self.error_latch as u32) << 2)
            | ((self.recovered_latch as u32) << 3);
        self.regs.set(reg::STATUS, status);
        self.regs.set(reg::RETRY, self.retries);
        self.regs.set(reg::ERRCODE, self.err_code);
    }

    /// Handle a detected transfer fault: either start a retry (abort,
    /// backoff, re-DMA) or — with the budget exhausted — latch the
    /// error, raise it at error severity and interrupt software.
    fn fail(&mut self, ctx: &mut Ctx<'_>, code: u32) {
        let icap = self.icap;
        self.err_code = code;
        {
            let mut s = self.rstats.borrow_mut();
            match code {
                errcode::BUS => s.bus_errors += 1,
                errcode::WATCHDOG => s.watchdog_fires += 1,
                errcode::INTEGRITY => s.integrity_errors += 1,
                _ => {}
            }
        }
        if self.recovery_start.is_none() {
            self.recovery_start = Some(self.cycle);
        }
        ctx.trace_instant(TraceCat::Retry, "fault", self.retries, code as u64);
        ctx.set_bit(icap.cwrite, false);
        if self.retries >= self.policy.max_retries {
            ctx.trace_instant(TraceCat::Retry, "exhausted", self.retries, code as u64);
            self.rstats.borrow_mut().exhausted += 1;
            ctx.error(format!(
                "IcapCTRL: reconfiguration failed permanently after {} retries (fault code {})",
                self.retries, code
            ));
            self.error_latch = true;
            ctx.set_bit(icap.ce, false);
            // Interrupt anyway so software can run its degraded path
            // instead of waiting forever for a done that never comes.
            ctx.set_bit(self.irq_out, true);
            self.irq_pulsed = true;
            self.st = St::Idle;
        } else {
            self.retries += 1;
            ctx.trace_instant(TraceCat::Retry, "retry", self.retries, code as u64);
            self.rstats.borrow_mut().retries += 1;
            ctx.warn(format!(
                "IcapCTRL: transfer fault (code {}), retry {}/{}",
                code, self.retries, self.policy.max_retries
            ));
            if !self.dma.idle() {
                self.dma.abort_flush(ctx);
            }
            self.st = St::AbortFlush;
        }
    }

    /// Begin (or re-begin) streaming the bitstream programmed in
    /// ADDR/SIZE.
    fn arm_transfer(&mut self, ctx: &mut Ctx<'_>) {
        let icap = self.icap;
        self.addr = self.regs.get(reg::ADDR);
        self.fetch_left = self.regs.get(reg::SIZE);
        self.write_left = self.fetch_left;
        self.feed.clear();
        self.fetching = false;
        self.watchdog = 0;
        self.seen_reconfig = false;
        ctx.set_bit(icap.ce, true);
        self.st = St::Active;
    }

    /// Exponential backoff for the upcoming retry attempt (held ≥ 2
    /// cycles so the ICAP is guaranteed to observe the abort strobe).
    fn backoff_cycles(&self) -> u32 {
        let shift = (self.retries.saturating_sub(1)).min(16);
        self.policy.backoff_base.saturating_mul(1 << shift).max(2)
    }
}

impl Component for IcapCtrl {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let icap = self.icap;
        if ctx.is_high(self.rst) {
            self.st = St::Idle;
            self.done_latch = false;
            self.error_latch = false;
            self.recovered_latch = false;
            self.retries = 0;
            self.err_code = errcode::NONE;
            self.watchdog = 0;
            self.recovery_start = None;
            self.dma.reset(ctx);
            ctx.set_bit(icap.cwrite, false);
            ctx.set_bit(icap.ce, false);
            ctx.set_bit(icap.abort, false);
            ctx.set_bit(self.irq_out, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        self.cycle = self.cycle.wrapping_add(1);
        ctx.set_bit(self.irq_out, false);
        self.irq_pulsed = false;
        for (off, v) in self.regs.take_writes() {
            if off == reg::CTRL && v & 1 != 0 {
                if self.st == St::Idle {
                    self.done_latch = false;
                    self.error_latch = false;
                    self.recovered_latch = false;
                    self.retries = 0;
                    self.err_code = errcode::NONE;
                    self.recovery_start = None;
                    if self.regs.get(reg::SIZE) == 0 {
                        ctx.warn("IcapCTRL started with zero-length bitstream");
                        self.done_latch = true;
                        ctx.set_bit(self.irq_out, true);
                        self.irq_pulsed = true;
                    } else {
                        self.arm_transfer(ctx);
                    }
                } else {
                    ctx.warn("IcapCTRL start while busy ignored");
                }
            }
        }
        match self.st {
            St::Idle => {}
            St::Active => {
                if self.policy.enabled {
                    self.watchdog += 1;
                    if ctx.is_high(icap.reconfiguring) {
                        self.seen_reconfig = true;
                    }
                }
                // Memory side: prefetch the next burst while the feed
                // queue has room (double buffering).
                if self.fetching {
                    if let Some(ev) = self.dma.step(ctx) {
                        match ev {
                            DmaEvent::ReadDone => {
                                self.feed.extend(self.dma.take_read_data());
                                self.fetching = false;
                                self.watchdog = 0;
                            }
                            DmaEvent::Error if self.policy.enabled => {
                                self.fetching = false;
                                self.fail(ctx, errcode::BUS);
                                self.update_status();
                                return;
                            }
                            _ => {
                                ctx.error("IcapCTRL bitstream DMA failed");
                                self.err_code = errcode::BUS;
                                self.error_latch = true;
                                ctx.set_bit(icap.ce, false);
                                ctx.set_bit(icap.cwrite, false);
                                self.st = St::Idle;
                                self.update_status();
                                return;
                            }
                        }
                    }
                } else if self.fetch_left > 0 && self.feed.len() < PREFETCH_LEVEL {
                    let n = self.fetch_left.min(BURST);
                    self.dma.start_read(self.addr, n);
                    self.addr += 4 * n;
                    self.fetch_left -= n;
                    self.fetching = true;
                }
                // ICAP side: one word per cycle, honouring (or, with
                // bug.dpr.3, ignoring) the port's backpressure.
                let can_write =
                    !self.feed.is_empty() && (self.ignore_ready || ctx.is_high(icap.ready));
                if can_write {
                    let w = self
                        .feed
                        .pop_front()
                        .expect("can_write is only set with a queued word");
                    ctx.set_bit(icap.cwrite, true);
                    ctx.set_u64(icap.cdata, w as u64);
                    self.write_left -= 1;
                    self.watchdog = 0;
                    if self.write_left == 0 {
                        self.st = if self.policy.enabled {
                            St::WaitDrain
                        } else {
                            St::DonePulse
                        };
                    }
                } else {
                    ctx.set_bit(icap.cwrite, false);
                }
                if self.policy.enabled
                    && self.st == St::Active
                    && self.watchdog >= self.policy.watchdog_cycles
                {
                    self.fail(ctx, errcode::WATCHDOG);
                }
            }
            St::WaitDrain => {
                // All words written; the ICAP is still draining its
                // FIFO. Success = the stream passed through DESYNC with
                // the integrity latch clear. A latched `crc_error` is an
                // integrity fault; a stream that never gets there
                // (framing corrupted) trips the watchdog.
                ctx.set_bit(icap.cwrite, false);
                if ctx.is_high(icap.reconfiguring) {
                    self.seen_reconfig = true;
                }
                if ctx.is_high(icap.crc_error) {
                    self.fail(ctx, errcode::INTEGRITY);
                } else if self.seen_reconfig && !ctx.is_high(icap.reconfiguring) {
                    if self.retries > 0 {
                        self.recovered_latch = true;
                        let mut s = self.rstats.borrow_mut();
                        s.recovered += 1;
                        if let Some(start) = self.recovery_start {
                            let lat = self.cycle.wrapping_sub(start);
                            s.recovery_cycles_total += lat;
                            s.recovery_cycles_max = s.recovery_cycles_max.max(lat);
                        }
                    }
                    self.st = St::DonePulse;
                } else {
                    self.watchdog += 1;
                    if self.watchdog >= self.policy.watchdog_cycles {
                        self.fail(ctx, errcode::WATCHDOG);
                    }
                }
            }
            St::AbortFlush => {
                ctx.set_bit(icap.cwrite, false);
                // Keep stepping the DMA until the cancelled transfer has
                // drained off the bus (any terminal event leaves it
                // idle).
                let idle = self.dma.idle() || self.dma.step(ctx).is_some();
                if idle {
                    self.fetching = false;
                    self.feed.clear();
                    // Hold the ICAP abort through the backoff window so
                    // the artifact re-arms its parser for the retry.
                    ctx.set_bit(icap.abort, true);
                    ctx.set_bit(icap.ce, false);
                    let left = self.backoff_cycles();
                    ctx.trace_begin(TraceCat::Retry, "backoff", self.retries, left as u64);
                    self.st = St::Backoff { left };
                }
            }
            St::Backoff { left } => {
                if left > 1 {
                    self.st = St::Backoff { left: left - 1 };
                } else {
                    ctx.trace_end(TraceCat::Retry, "backoff", self.retries, 0);
                    ctx.set_bit(icap.abort, false);
                    self.arm_transfer(ctx);
                }
            }
            St::DonePulse => {
                ctx.set_bit(icap.cwrite, false);
                ctx.set_bit(icap.ce, false);
                self.done_latch = true;
                ctx.set_bit(self.irq_out, true);
                self.irq_pulsed = true;
                self.st = St::Idle;
            }
        }
        self.update_status();
        // Idle with no pulse left to clear: only a DCR write (doorbell)
        // or reset can start the next transfer.
        if self.st == St::Idle && !self.irq_pulsed {
            if let Some(bell) = self.bell {
                ctx.park_until(&[self.rst], &[bell]);
            }
        }
    }
}
