//! IcapCTRL — the reconfiguration controller (user design, *not* a
//! simulation artifact).
//!
//! The controller DMAs a bitstream (in simulation: a SimB) from main
//! memory over the PLB and feeds it to the ICAP configuration port one
//! word at a time. The modified Optical Flow Demonstrator attaches it to
//! the shared PLB — in the original design it had a dedicated
//! point-to-point link, and the leftover fixed-latency timing assumption
//! is exactly bug.dpr.4. Software programs it over DCR:
//!
//! | offset | name  | behaviour                                  |
//! |--------|-------|--------------------------------------------|
//! | 0      | CTRL  | write bit0 = start transfer                |
//! | 1      | STATUS| bit0 busy, bit1 done (latched), bit2 error |
//! | 2      | ADDR  | bitstream byte address in memory           |
//! | 3      | SIZE  | bitstream length in 32-bit words           |
//!
//! `done` pulses the `irq_out` line for the interrupt controller.

use crate::faults::{Bug, FaultSet};
use dcr::RegFile;
use plb::dma::Handshake;
use plb::{DmaDriver, DmaEvent, MasterPort};
use resim::IcapPort;
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator};

/// DCR register offsets.
pub mod reg {
    /// Start control (write-1 bit0).
    pub const CTRL: u16 = 0;
    /// Status: busy/done/error.
    pub const STATUS: u16 = 1;
    /// Bitstream byte address.
    pub const ADDR: u16 = 2;
    /// Bitstream length in words.
    pub const SIZE: u16 = 3;
}

/// Words fetched from memory per burst (large bursts keep the feed
/// queue ahead of the ICAP's one-word-per-cycle drain).
const BURST: u32 = 128;
/// Feed-queue level below which the next burst is prefetched.
const PREFETCH_LEVEL: usize = 192;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Idle,
    /// Transfer in progress: the DMA prefetches bursts into the feed
    /// queue while the ICAP side drains it, one word per cycle.
    Active,
    DonePulse,
}

/// The reconfiguration controller component.
pub struct IcapCtrl {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    icap: IcapPort,
    dma: DmaDriver,
    st: St,
    /// Double-buffered feed queue between the DMA and the ICAP port.
    feed: std::collections::VecDeque<u32>,
    fetching: bool,
    addr: u32,
    /// Words still to fetch from memory.
    fetch_left: u32,
    /// Words still to write into the ICAP.
    write_left: u32,
    done_latch: bool,
    error_latch: bool,
    /// bug.dpr.3: do not check ICAP `ready` before writing.
    ignore_ready: bool,
    irq_out: SignalId,
}

impl IcapCtrl {
    /// Build and register the controller. The bus handshake policy and
    /// backpressure behaviour come from the injected `faults`.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        regs: RegFile,
        port: MasterPort,
        icap: IcapPort,
        irq_out: SignalId,
        faults: &FaultSet,
    ) {
        assert!(regs.len() >= 4, "IcapCTRL needs 4 DCR registers");
        let handshake = if faults.has(Bug::Dpr4P2pOnSharedBus) {
            // The original design's dedicated-link timing.
            Handshake::FixedLatency { addr_latency: 2 }
        } else {
            Handshake::Full
        };
        let ctrl = IcapCtrl {
            clk,
            rst,
            regs,
            icap,
            dma: DmaDriver::new(port, handshake, BURST),
            st: St::Idle,
            feed: std::collections::VecDeque::new(),
            fetching: false,
            addr: 0,
            fetch_left: 0,
            write_left: 0,
            done_latch: false,
            error_latch: false,
            ignore_ready: faults.has(Bug::Dpr3IgnoreIcapReady),
            irq_out,
        };
        sim.add_component(name, CompKind::UserStatic, Box::new(ctrl), &[clk, rst]);
    }

    fn update_status(&self) {
        let busy = !matches!(self.st, St::Idle) as u32;
        let status =
            busy | ((self.done_latch as u32) << 1) | ((self.error_latch as u32) << 2);
        self.regs.set(reg::STATUS, status);
    }
}

impl Component for IcapCtrl {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let icap = self.icap;
        if ctx.is_high(self.rst) {
            self.st = St::Idle;
            self.done_latch = false;
            self.error_latch = false;
            self.dma.reset(ctx);
            ctx.set_bit(icap.cwrite, false);
            ctx.set_bit(icap.ce, false);
            ctx.set_bit(self.irq_out, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        ctx.set_bit(self.irq_out, false);
        for (off, v) in self.regs.take_writes() {
            if off == reg::CTRL && v & 1 != 0 {
                if self.st == St::Idle {
                    self.addr = self.regs.get(reg::ADDR);
                    self.fetch_left = self.regs.get(reg::SIZE);
                    self.write_left = self.fetch_left;
                    self.feed.clear();
                    self.fetching = false;
                    self.done_latch = false;
                    self.error_latch = false;
                    if self.write_left == 0 {
                        ctx.warn("IcapCTRL started with zero-length bitstream");
                        self.done_latch = true;
                        ctx.set_bit(self.irq_out, true);
                    } else {
                        ctx.set_bit(icap.ce, true);
                        self.st = St::Active;
                    }
                } else {
                    ctx.warn("IcapCTRL start while busy ignored");
                }
            }
        }
        match self.st {
            St::Idle => {}
            St::Active => {
                // Memory side: prefetch the next burst while the feed
                // queue has room (double buffering).
                if self.fetching {
                    if let Some(ev) = self.dma.step(ctx) {
                        match ev {
                            DmaEvent::ReadDone => {
                                self.feed.extend(self.dma.take_read_data());
                                self.fetching = false;
                            }
                            _ => {
                                ctx.error("IcapCTRL bitstream DMA failed");
                                self.error_latch = true;
                                ctx.set_bit(icap.ce, false);
                                ctx.set_bit(icap.cwrite, false);
                                self.st = St::Idle;
                                self.update_status();
                                return;
                            }
                        }
                    }
                } else if self.fetch_left > 0 && self.feed.len() < PREFETCH_LEVEL {
                    let n = self.fetch_left.min(BURST);
                    self.dma.start_read(self.addr, n);
                    self.addr += 4 * n;
                    self.fetch_left -= n;
                    self.fetching = true;
                }
                // ICAP side: one word per cycle, honouring (or, with
                // bug.dpr.3, ignoring) the port's backpressure.
                let can_write = !self.feed.is_empty()
                    && (self.ignore_ready || ctx.is_high(icap.ready));
                if can_write {
                    let w = self.feed.pop_front().unwrap();
                    ctx.set_bit(icap.cwrite, true);
                    ctx.set_u64(icap.cdata, w as u64);
                    self.write_left -= 1;
                    if self.write_left == 0 {
                        self.st = St::DonePulse;
                    }
                } else {
                    ctx.set_bit(icap.cwrite, false);
                }
            }
            St::DonePulse => {
                ctx.set_bit(icap.cwrite, false);
                ctx.set_bit(icap.ce, false);
                self.done_latch = true;
                ctx.set_bit(self.irq_out, true);
                self.st = St::Idle;
            }
        }
        self.update_status();
    }
}
