//! Full-system assembly of the Optical Flow Demonstrator (Figure 1 of
//! the paper): engines + reconfiguration machinery + PowerPC + VIPs on a
//! shared PLB with a DCR daisy chain, under either simulation method.
//!
//! The assembly is composed from the subsystem builders in
//! [`crate::fabric`] plus a [`resim::ReconfigBackend`] that populates
//! the reconfigurable regions — [`SimMethod`] selects the backend, it is
//! no longer control flow threaded through the build. The
//! reconfiguration plane is region-indexed end-to-end: `SystemConfig`
//! carries a `Vec<RegionSpec>`, each region gets its own engine
//! cluster, isolation layer, engine-control block and interrupt line,
//! and all regions share one IcapCTRL whose SimB streams are routed by
//! the RR ID carried in each bitstream's frame address. The paper's
//! single-region system is the one-element case and is byte-identical
//! to the pre-refactor monolith.

use crate::artifacts::ArtifactCache;
use crate::fabric::{self, RegionNames};
use crate::faults::{Bug, FaultSet};
use crate::icapctrl::{IcapCtrl, RecoveryPolicy, RecoveryStats};
use crate::software::{self, dcr_map, SimMethod, SplitSwConfig, SwConfig};
use dcr::{DcrChainBuilder, RegFile};
use engines::EngineCtrl;
use plb::{MasterPort, MemFaultHandle, MonitorStats, SharedMem};
use ppc::IssStats;
use resim::{
    build_simb, build_simb_integrity, BackendStats, IcapConfig, IcapFaultHandle, ReconfigBackend,
    RegionPlan, ResimBackend, RrBoundary, SimbKind, VmuxBackend, VmuxConfig, VmuxRegion, XSource,
};
use rtlsim::{DirtyWatch, ExecMode, KernelError, SignalId, Simulator, PS_PER_NS};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use video::{Frame, Scene};

/// System clock period (100 MHz).
pub const CLK_PERIOD_PS: u64 = 10 * PS_PER_NS;
/// SimB module IDs.
pub const MODULE_CIE: u8 = 0x01;
/// SimB module ID of the matching engine (Table I's example).
pub const MODULE_ME: u8 = 0x02;
/// The (first) reconfigurable region's ID.
pub const RR_ID: u8 = 0x01;
/// Region ID of the second region in the split-pipeline scenario.
pub const RR_ID_B: u8 = 0x02;

/// What kind of engine a region module is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Census-transform image engine (CIE).
    Census,
    /// Motion-vector matching engine (ME).
    Matching,
}

/// One candidate module of a reconfigurable region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleSpec {
    /// SimB module ID (doubles as the VMUX signature value).
    pub id: u8,
    /// Which engine this module instantiates.
    pub kind: EngineKind,
}

impl ModuleSpec {
    /// A census-engine module with SimB ID `id`.
    pub fn census(id: u8) -> ModuleSpec {
        ModuleSpec {
            id,
            kind: EngineKind::Census,
        }
    }

    /// A matching-engine module with SimB ID `id`.
    pub fn matching(id: u8) -> ModuleSpec {
        ModuleSpec {
            id,
            kind: EngineKind::Matching,
        }
    }
}

/// One reconfigurable region of the platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSpec {
    /// Region ID carried in SimB frame addresses.
    pub id: u8,
    /// Boundary signal prefix (also names the region's isolation and
    /// portal machinery; see [`fabric::RegionNames`]).
    pub boundary: String,
    /// Candidate modules, in instantiation order.
    pub modules: Vec<ModuleSpec>,
    /// Module present in the initial (full) configuration.
    pub initial: Option<u8>,
}

impl RegionSpec {
    /// The paper's region: CIE and ME time-shared in one RR, CIE
    /// initially resident.
    pub fn time_shared() -> RegionSpec {
        RegionSpec {
            id: RR_ID,
            boundary: "rr".into(),
            modules: vec![
                ModuleSpec::census(MODULE_CIE),
                ModuleSpec::matching(MODULE_ME),
            ],
            initial: Some(MODULE_CIE),
        }
    }
}

/// The region topologies the system software supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// One region time-shared between the census and matching engines —
    /// the paper's demonstrator, two reconfigurations per frame.
    SingleRegion,
    /// CIE and ME resident in separate regions; each region is reloaded
    /// during the half-frame its engine idles, overlapping
    /// reconfiguration with the other engine's computation.
    SplitPipeline,
}

/// Build-time configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DPR simulation method (selects the [`ReconfigBackend`]).
    pub method: SimMethod,
    /// Injected bugs.
    pub faults: FaultSet,
    /// Reconfigurable regions, in instantiation order.
    pub regions: Vec<RegionSpec>,
    /// Frame width (multiple of 4).
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Frames to process.
    pub n_frames: usize,
    /// SimB FDRI payload length in words (designer-chosen; the paper
    /// uses 4 K words against a 129 K-word real bitstream).
    pub payload_words: usize,
    /// Configuration-clock divider of the ICAP artifact.
    pub cfg_divider: u32,
    /// Memory first-access wait states.
    pub mem_wait_states: u32,
    /// Shared-PLB grant ordering. Fixed priority is the demonstrator's
    /// wiring (video first, CPU last); round-robin is the alternative
    /// grant ordering the schedule fuzzer explores.
    pub arbitration: plb::ArbMode,
    /// Calibrated ISR housekeeping loops.
    pub isr_pad_loops: u32,
    /// bug.dpr.6a's fixed wait (tuned for the original faster clock).
    pub fixed_wait_loops: u32,
    /// Scene generator seed.
    pub seed: u64,
    /// Moving objects in the synthetic scene.
    pub scene_objects: usize,
    /// Error source driven onto region outputs during reconfiguration
    /// (ReSim only; the ablation knob for the X-injection policy).
    pub error_source: ErrorSourceKind,
    /// When the ICAP artifact triggers the module swap (ReSim only;
    /// ablation knob — the default is ReSim's last-payload-word choice).
    pub swap_trigger: resim::icap::SwapTrigger,
    /// Keep the configured module selected while the payload streams
    /// (ablation knob: `false` is ReSim's faithful deselect-and-inject
    /// behaviour; `true` is the optimistic model of earlier simulators).
    pub optimistic_region: bool,
    /// Resilient-reconfiguration policy. When enabled the SimBs carry a
    /// CRC32 integrity word, the ICAP defers swaps until it verifies,
    /// IcapCTRL detects faults and retries with backoff, and the system
    /// software degrades gracefully when the retry budget is exhausted.
    /// Disabled (the default) leaves every paper-reproduction number
    /// untouched.
    pub recovery: RecoveryPolicy,
    /// Kernel execution mode. [`ExecMode::Compiled`] runs the levelized
    /// steady-state schedule (activation filtering + parking) and falls
    /// back to full event-driven dispatch inside reconfiguration and
    /// X-injection windows; outputs are bit-identical in every mode.
    /// The default stays [`ExecMode::EventDriven`] so committed
    /// baselines are untouched.
    pub exec_mode: ExecMode,
}

/// Selectable error-injection policies (see `resim::portal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorSourceKind {
    /// Undefined `X` on every output bit (ReSim default, like DCS).
    X,
    /// Clean zeros — an optimistic simulator that never emits garbage.
    Silent,
    /// Pseudo-random known values.
    Random,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            method: SimMethod::Resim,
            faults: FaultSet::none(),
            regions: vec![RegionSpec::time_shared()],
            width: 64,
            height: 48,
            n_frames: 2,
            payload_words: 256,
            cfg_divider: 4,
            mem_wait_states: 1,
            arbitration: plb::ArbMode::FixedPriority,
            isr_pad_loops: 8,
            fixed_wait_loops: 250,
            seed: 2013,
            scene_objects: 2,
            error_source: ErrorSourceKind::X,
            swap_trigger: resim::icap::SwapTrigger::LastPayloadWord,
            optimistic_region: false,
            recovery: RecoveryPolicy::default(),
            exec_mode: ExecMode::EventDriven,
        }
    }
}

impl SystemConfig {
    /// Start a validating fluent builder seeded with the defaults.
    ///
    /// Unlike mutating a struct literal, [`SystemConfigBuilder::build`]
    /// rejects configurations the system cannot actually run (width not
    /// a multiple of 4, zero frames, a zero configuration-clock divider,
    /// an unsupported region topology) instead of failing deep inside
    /// `AvSystem::build`.
    ///
    /// ```
    /// use autovision::SystemConfig;
    /// let cfg = SystemConfig::builder()
    ///     .width(32)
    ///     .height(24)
    ///     .n_frames(1)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.width, 32);
    /// assert!(SystemConfig::builder().width(30).build().is_err());
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::default(),
        }
    }

    /// The two-region demonstrator's region list: CIE resident in region
    /// `RR_ID`, ME resident in region [`RR_ID_B`], each reloaded on
    /// alternating half-frames.
    pub fn split_regions() -> Vec<RegionSpec> {
        vec![
            RegionSpec {
                id: RR_ID,
                boundary: "rr".into(),
                modules: vec![ModuleSpec::census(MODULE_CIE)],
                initial: Some(MODULE_CIE),
            },
            RegionSpec {
                id: RR_ID_B,
                boundary: "rrb".into(),
                modules: vec![ModuleSpec::matching(MODULE_ME)],
                initial: Some(MODULE_ME),
            },
        ]
    }

    /// Classify (and validate) the region topology.
    ///
    /// Region-level structural errors (no regions, duplicate IDs, empty
    /// module sets, an `initial` module not in the set) are reported
    /// first; a structurally sound topology the system software cannot
    /// drive is [`ConfigError::UnsupportedTopology`].
    pub fn scenario(&self) -> Result<Scenario, ConfigError> {
        if self.regions.is_empty() {
            return Err(ConfigError::NoRegions);
        }
        for (i, r) in self.regions.iter().enumerate() {
            if self.regions[..i].iter().any(|o| o.id == r.id) {
                return Err(ConfigError::DuplicateRegionId { id: r.id });
            }
            if r.modules.is_empty() {
                return Err(ConfigError::EmptyRegion { id: r.id });
            }
            for (j, m) in r.modules.iter().enumerate() {
                if r.modules[..j].iter().any(|o| o.id == m.id) {
                    return Err(ConfigError::DuplicateModuleId {
                        region: r.id,
                        module: m.id,
                    });
                }
            }
            if let Some(init) = r.initial {
                if !r.modules.iter().any(|m| m.id == init) {
                    return Err(ConfigError::UnknownInitialModule {
                        region: r.id,
                        module: init,
                    });
                }
            }
        }
        let kinds: Vec<Vec<EngineKind>> = self
            .regions
            .iter()
            .map(|r| r.modules.iter().map(|m| m.kind).collect())
            .collect();
        let scenario = match kinds.as_slice() {
            [one] if one.contains(&EngineKind::Census) && one.contains(&EngineKind::Matching) => {
                Scenario::SingleRegion
            }
            [a, b]
                if a.as_slice() == [EngineKind::Census]
                    && b.as_slice() == [EngineKind::Matching] =>
            {
                Scenario::SplitPipeline
            }
            _ => return Err(ConfigError::UnsupportedTopology),
        };
        if scenario == Scenario::SplitPipeline {
            if !self.faults.bugs().is_empty() {
                return Err(ConfigError::UnsupportedInSplit {
                    feature: "injected bugs",
                });
            }
            if self.recovery.enabled {
                return Err(ConfigError::UnsupportedInSplit {
                    feature: "the recovery policy",
                });
            }
        }
        Ok(scenario)
    }
}

/// An invalid [`SystemConfig`], rejected by [`SystemConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Frame width must be a positive multiple of 4 (the census engine
    /// processes pixel quads and the DMA engines move word-aligned rows).
    WidthNotMultipleOf4 {
        /// The rejected width.
        width: usize,
    },
    /// Frame height must be positive.
    ZeroHeight,
    /// At least one frame must be processed.
    ZeroFrames,
    /// The ICAP configuration-clock divider cannot be zero.
    ZeroDivider,
    /// The SimB payload must contain at least one word.
    ZeroPayload,
    /// The platform needs at least one reconfigurable region.
    NoRegions,
    /// Two regions share one SimB region ID.
    DuplicateRegionId {
        /// The repeated ID.
        id: u8,
    },
    /// A region has no candidate modules.
    EmptyRegion {
        /// The offending region.
        id: u8,
    },
    /// A region lists one module ID twice.
    DuplicateModuleId {
        /// The offending region.
        region: u8,
        /// The repeated module ID.
        module: u8,
    },
    /// A region's initial module is not in its module set.
    UnknownInitialModule {
        /// The offending region.
        region: u8,
        /// The unknown module ID.
        module: u8,
    },
    /// The region/module topology matches no scenario the system
    /// software can drive (supported: one census+matching region;
    /// census-only region plus matching-only region).
    UnsupportedTopology,
    /// A feature the split-pipeline software does not implement.
    UnsupportedInSplit {
        /// What was requested.
        feature: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::WidthNotMultipleOf4 { width } => {
                write!(f, "frame width {width} is not a positive multiple of 4")
            }
            ConfigError::ZeroHeight => write!(f, "frame height must be positive"),
            ConfigError::ZeroFrames => write!(f, "at least one frame must be processed"),
            ConfigError::ZeroDivider => {
                write!(f, "configuration-clock divider must be positive")
            }
            ConfigError::ZeroPayload => write!(f, "SimB payload must be at least one word"),
            ConfigError::NoRegions => write!(f, "at least one reconfigurable region is required"),
            ConfigError::DuplicateRegionId { id } => {
                write!(f, "region ID {id:#x} is used by more than one region")
            }
            ConfigError::EmptyRegion { id } => {
                write!(f, "region {id:#x} has no candidate modules")
            }
            ConfigError::DuplicateModuleId { region, module } => {
                write!(f, "region {region:#x} lists module {module:#x} twice")
            }
            ConfigError::UnknownInitialModule { region, module } => {
                write!(
                    f,
                    "region {region:#x}'s initial module {module:#x} is not in its module set"
                )
            }
            ConfigError::UnsupportedTopology => {
                write!(f, "region topology matches no supported scenario")
            }
            ConfigError::UnsupportedInSplit { feature } => {
                write!(
                    f,
                    "{feature} are not supported in the split-pipeline scenario"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validating builder for [`SystemConfig`]; see
/// [`SystemConfig::builder`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// DPR simulation method.
    pub fn method(mut self, method: SimMethod) -> Self {
        self.cfg.method = method;
        self
    }

    /// Injected bugs.
    pub fn faults(mut self, faults: FaultSet) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Reconfigurable regions (validated against the supported
    /// scenarios; see [`SystemConfig::scenario`]).
    pub fn regions(mut self, regions: Vec<RegionSpec>) -> Self {
        self.cfg.regions = regions;
        self
    }

    /// Frame width in pixels (must be a positive multiple of 4).
    pub fn width(mut self, width: usize) -> Self {
        self.cfg.width = width;
        self
    }

    /// Frame height in pixels (must be positive).
    pub fn height(mut self, height: usize) -> Self {
        self.cfg.height = height;
        self
    }

    /// Frames to process (must be positive).
    pub fn n_frames(mut self, n_frames: usize) -> Self {
        self.cfg.n_frames = n_frames;
        self
    }

    /// SimB FDRI payload length in words (must be positive).
    pub fn payload_words(mut self, payload_words: usize) -> Self {
        self.cfg.payload_words = payload_words;
        self
    }

    /// Configuration-clock divider of the ICAP artifact (must be
    /// positive).
    pub fn cfg_divider(mut self, cfg_divider: u32) -> Self {
        self.cfg.cfg_divider = cfg_divider;
        self
    }

    /// Memory first-access wait states.
    pub fn mem_wait_states(mut self, mem_wait_states: u32) -> Self {
        self.cfg.mem_wait_states = mem_wait_states;
        self
    }

    /// Shared-PLB grant ordering.
    pub fn arbitration(mut self, arbitration: plb::ArbMode) -> Self {
        self.cfg.arbitration = arbitration;
        self
    }

    /// Calibrated ISR housekeeping loops.
    pub fn isr_pad_loops(mut self, isr_pad_loops: u32) -> Self {
        self.cfg.isr_pad_loops = isr_pad_loops;
        self
    }

    /// bug.dpr.6a's fixed wait loop count.
    pub fn fixed_wait_loops(mut self, fixed_wait_loops: u32) -> Self {
        self.cfg.fixed_wait_loops = fixed_wait_loops;
        self
    }

    /// Scene generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Moving objects in the synthetic scene.
    pub fn scene_objects(mut self, scene_objects: usize) -> Self {
        self.cfg.scene_objects = scene_objects;
        self
    }

    /// Error source driven onto region outputs during reconfiguration.
    pub fn error_source(mut self, error_source: ErrorSourceKind) -> Self {
        self.cfg.error_source = error_source;
        self
    }

    /// When the ICAP artifact triggers the module swap.
    pub fn swap_trigger(mut self, swap_trigger: resim::icap::SwapTrigger) -> Self {
        self.cfg.swap_trigger = swap_trigger;
        self
    }

    /// Keep the configured module selected while the payload streams.
    pub fn optimistic_region(mut self, optimistic_region: bool) -> Self {
        self.cfg.optimistic_region = optimistic_region;
        self
    }

    /// Resilient-reconfiguration policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.cfg.recovery = recovery;
        self
    }

    /// Kernel execution mode (see [`SystemConfig::exec_mode`]).
    pub fn exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.cfg.exec_mode = exec_mode;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.width == 0 || !cfg.width.is_multiple_of(4) {
            return Err(ConfigError::WidthNotMultipleOf4 { width: cfg.width });
        }
        if cfg.height == 0 {
            return Err(ConfigError::ZeroHeight);
        }
        if cfg.n_frames == 0 {
            return Err(ConfigError::ZeroFrames);
        }
        if cfg.cfg_divider == 0 {
            return Err(ConfigError::ZeroDivider);
        }
        if cfg.payload_words == 0 {
            return Err(ConfigError::ZeroPayload);
        }
        cfg.scenario()?;
        Ok(cfg)
    }
}

/// One SimB image staged in the bitstream "flash" region of memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimbSlot {
    /// Target region ID carried in the SimB's frame addresses.
    pub rr_id: u8,
    /// Module the SimB configures.
    pub module: u8,
    /// The module's engine kind (selects the payload seed).
    pub kind: EngineKind,
    /// Byte address of the image in main memory.
    pub addr: u32,
    /// Image length in words.
    pub words: u32,
}

/// Memory layout derived from a configuration.
#[derive(Debug, Clone)]
pub struct MemLayout {
    /// Total memory bytes.
    pub mem_bytes: usize,
    /// First input buffer (double-buffered).
    pub in0: u32,
    /// First census buffer (double-buffered).
    pub cen0: u32,
    /// Vector buffer.
    pub vecs: u32,
    /// ME SimB (address, words) — the first matching-engine image.
    pub simb_me: (u32, u32),
    /// CIE SimB (address, words) — the first census-engine image.
    pub simb_cie: (u32, u32),
    /// Every SimB image, one per region module, matching-engine images
    /// first (the legacy single-region order).
    pub simbs: Vec<SimbSlot>,
}

impl MemLayout {
    /// Compute the layout for a configuration.
    pub fn for_config(cfg: &SystemConfig) -> MemLayout {
        let fb = (cfg.width * cfg.height) as u32;
        let align = |a: u32| (a + 0xFFF) & !0xFFF;
        let in0 = 0x0004_0000;
        let cen0 = align(in0 + 2 * fb);
        let vecs = align(cen0 + 2 * fb);
        // Integrity SimBs carry one extra packet (2 words) before the
        // DESYNC trailer.
        let integrity = if cfg.recovery.enabled { 2 } else { 0 };
        let simb_words = (cfg.payload_words + 10 + integrity) as u32;
        let mut images: Vec<(u8, u8, EngineKind)> = cfg
            .regions
            .iter()
            .flat_map(|r| r.modules.iter().map(move |m| (r.id, m.id, m.kind)))
            .collect();
        // ME image first, then CIE (stable within each kind) — the
        // legacy flash order, reproduced for every topology.
        images.sort_by_key(|(_, _, kind)| match kind {
            EngineKind::Matching => 0,
            EngineKind::Census => 1,
        });
        let mut addr = align(vecs + 0x8000);
        let mut simbs = Vec::with_capacity(images.len());
        for (rr_id, module, kind) in images {
            simbs.push(SimbSlot {
                rr_id,
                module,
                kind,
                addr,
                words: simb_words,
            });
            addr = align(addr + 4 * simb_words);
        }
        let first = |kind: EngineKind| {
            simbs
                .iter()
                .find(|s| s.kind == kind)
                .map(|s| (s.addr, s.words))
                .unwrap_or((0, 0))
        };
        MemLayout {
            mem_bytes: (addr.max(0x0020_0000)) as usize,
            in0,
            cen0,
            vecs,
            simb_me: first(EngineKind::Matching),
            simb_cie: first(EngineKind::Census),
            simbs,
        }
    }
}

/// Outcome of a bounded system run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Output frames captured by the display VIP.
    pub frames_captured: usize,
    /// The CPU executed its final `halt`.
    pub halted: bool,
    /// The cycle budget ran out before the work completed.
    pub hung: bool,
    /// Clock cycles consumed.
    pub cycles: u64,
    /// The simulation kernel itself failed (e.g. a delta-cycle
    /// oscillation) before the run could finish. Carried as the typed
    /// [`rtlsim::KernelError`] — the same value `run_for` returned —
    /// instead of panicking, so verdict classification can report it as
    /// a detected failure.
    pub kernel_error: Option<KernelError>,
    /// The wall-clock deadline passed to [`AvSystem::run_with_deadline`]
    /// expired before frames, halt or the cycle budget. Always `false`
    /// for [`AvSystem::run`].
    pub deadline_hit: bool,
}

/// A fully built Optical Flow Demonstrator simulation.
pub struct AvSystem {
    /// The kernel (run/inspect through it).
    pub sim: Simulator,
    /// Main memory.
    pub mem: SharedMem,
    /// Frames captured by the display VIP.
    pub captured: Rc<RefCell<Vec<Frame>>>,
    /// Per-captured-frame count of X-poisoned words.
    pub captured_poison: Rc<RefCell<Vec<usize>>>,
    /// CPU statistics.
    pub cpu: Rc<RefCell<IssStats>>,
    /// The reconfiguration backend, retained for its statistics
    /// snapshot (see [`AvSystem::backend_stats`]).
    backend: Box<dyn ReconfigBackend>,
    /// Bus protocol monitor statistics.
    pub bus_monitor: Rc<RefCell<MonitorStats>>,
    /// Transient-fault injection handle of the memory slave (recovery
    /// campaign).
    pub mem_faults: MemFaultHandle,
    /// Transient-fault injection handle of the ICAP artifact (ReSim
    /// builds only).
    pub icap_faults: Option<IcapFaultHandle>,
    /// IcapCTRL recovery counters (all zero unless `recovery.enabled`).
    pub recovery: Rc<RefCell<RecoveryStats>>,
    /// The synthetic input frames fed by the camera VIP.
    pub input_frames: Vec<Frame>,
    /// Golden prediction shared from the [`ArtifactCache`] the system
    /// was built with (computed on demand otherwise).
    golden: Option<std::sync::Arc<crate::artifacts::SceneArtifacts>>,
    /// The configuration the system was built from.
    pub config: SystemConfig,
    /// Memory layout in use.
    pub layout: MemLayout,
    /// Named signals exposed for measurement probes.
    pub probes: SystemProbes,
}

/// Signals the benchmarks attach measurement probes to.
#[derive(Debug, Clone)]
pub struct SystemProbes {
    /// CIE busy (high while the census engine processes a frame).
    pub cie_busy: SignalId,
    /// ME busy.
    pub me_busy: SignalId,
    /// ICAP "during reconfiguration" window (ReSim builds only).
    pub reconfiguring: Option<SignalId>,
    /// Error-injection window: high while the SimB payload streams
    /// (ReSim builds only).
    pub inject: Option<SignalId>,
    /// First region's isolation control.
    pub isolate: SignalId,
    /// Per-region isolation probes, in [`RegionSpec`] order.
    pub regions: Vec<RegionProbes>,
}

/// Isolation-layer probe signals of one region.
#[derive(Debug, Clone, Copy)]
pub struct RegionProbes {
    /// Isolation control (high = region outputs gated to zero).
    pub isolate: SignalId,
    /// The region's gated busy output.
    pub busy: SignalId,
    /// The region's gated done output.
    pub done: SignalId,
}

impl AvSystem {
    /// Build the complete system.
    pub fn build(cfg: SystemConfig) -> AvSystem {
        Self::build_inner(cfg, None)
    }

    /// Build the complete system, sourcing pure setup artifacts (SimB
    /// word streams, the assembled software image, the synthetic scene
    /// and its golden prediction) from a shared [`ArtifactCache`].
    /// Bit-identical to [`AvSystem::build`] — the cache only absorbs
    /// re-derivation, never changes a value.
    pub fn build_with(cfg: SystemConfig, artifacts: &ArtifactCache) -> AvSystem {
        Self::build_inner(cfg, Some(artifacts))
    }

    fn build_inner(cfg: SystemConfig, artifacts: Option<&ArtifactCache>) -> AvSystem {
        let scenario = cfg
            .scenario()
            .expect("region topology must be valid (validated by SystemConfig::builder)");
        let layout = MemLayout::for_config(&cfg);
        let f = &cfg.faults;
        let mut sim = Simulator::new();
        let cr = fabric::clock_reset(&mut sim);

        // ----- memory -----
        let main_mem = fabric::main_memory(
            &mut sim,
            cr,
            layout.mem_bytes,
            cfg.mem_wait_states,
            f.has(Bug::Hw1MemBurstWrap),
        );

        // ----- DCR register blocks -----
        let n = cfg.regions.len();
        let eng_regs: Vec<RegFile> = (0..n)
            .map(|i| RegFile::new(dcr_map::eng_base(i), 8))
            .collect();
        let icap_regs = RegFile::new(dcr_map::ICAPC, 8);
        let intc_regs = RegFile::new(dcr_map::INTC, 3);
        let sys_regs = RegFile::new(dcr_map::SYS, 4);
        let vin_regs = RegFile::new(dcr_map::VIN, 4);
        let vout_regs = RegFile::new(dcr_map::VOUT, 4);
        let sig_regs: Vec<RegFile> = (0..n)
            .map(|i| RegFile::new(dcr_map::sig_base(i), 1))
            .collect();

        // ----- per-region engine clusters and boundaries -----
        let names: Vec<RegionNames> = cfg
            .regions
            .iter()
            .enumerate()
            .map(|(i, r)| RegionNames::for_region(i, &r.boundary))
            .collect();
        let clusters: Vec<fabric::EngineCluster> = cfg
            .regions
            .iter()
            .zip(&names)
            .map(|(spec, nm)| fabric::engine_cluster(&mut sim, cr, nm, spec))
            .collect();
        let boundaries: Vec<RrBoundary> = cfg
            .regions
            .iter()
            .map(|r| RrBoundary::alloc(&mut sim, &r.boundary))
            .collect();

        // ----- reconfiguration backend -----
        let mut backend: Box<dyn ReconfigBackend> = match cfg.method {
            SimMethod::Resim => {
                let kind = cfg.error_source;
                let seed = cfg.seed;
                let mut first = true;
                Box::new(ResimBackend::new(
                    "icap_artifact",
                    IcapConfig {
                        fifo_depth: 16,
                        cfg_divider: cfg.cfg_divider,
                        swap_trigger: cfg.swap_trigger,
                        require_integrity: cfg.recovery.enabled,
                        tolerant: cfg.recovery.enabled,
                    },
                    resim::RegionOptions {
                        deselect_during_inject: !cfg.optimistic_region,
                    },
                    Box::new(move |rr| {
                        // The first region keeps the configured seed so
                        // single-region runs are unchanged; later
                        // regions derive theirs from the RR ID.
                        let s = if first {
                            seed
                        } else {
                            seed ^ ((rr as u64) << 32)
                        };
                        first = false;
                        match kind {
                            ErrorSourceKind::X => Box::new(XSource),
                            ErrorSourceKind::Silent => Box::new(resim::SilentSource),
                            ErrorSourceKind::Random => Box::new(resim::RandomSource::new(s)),
                        }
                    }),
                ))
            }
            SimMethod::Vmux => {
                let vmux_regions: Vec<VmuxRegion> = cfg
                    .regions
                    .iter()
                    .enumerate()
                    .map(|(idx, r)| {
                        let reset_signature = if idx == 0 && f.has(Bug::Hw2SignatureUninit) {
                            None
                        } else {
                            r.initial.map(u32::from)
                        };
                        VmuxRegion {
                            name: names[idx].vmux.clone(),
                            regs: sig_regs[idx].clone(),
                            config: VmuxConfig { reset_signature },
                        }
                    })
                    .collect();
                Box::new(VmuxBackend::new("icap_unused", vmux_regions))
            }
        };
        let plans: Vec<RegionPlan> = cfg
            .regions
            .iter()
            .enumerate()
            .map(|(idx, spec)| RegionPlan {
                rr_id: spec.id,
                name: names[idx].portal.clone(),
                modules: clusters[idx].modules.clone(),
                boundary: boundaries[idx],
                initial: spec.initial,
            })
            .collect();
        let handles = backend.instantiate(&mut sim, cr.clk, cr.rst, plans);

        // ----- isolation between each region boundary and the bus -----
        let isolations: Vec<fabric::RegionIsolation> = names
            .iter()
            .zip(&boundaries)
            .enumerate()
            .map(|(idx, (nm, b))| fabric::region_isolation(&mut sim, nm, *b, cfg.regions[idx].id))
            .collect();

        // ----- engine control blocks (static region) -----
        let mut eng_irqs = Vec::with_capacity(n);
        for (idx, (cluster, iso)) in clusters.iter().zip(&isolations).enumerate() {
            let irq = sim.signal_init(&*names[idx].eng_irq, 1, 0);
            EngineCtrl::instantiate(
                &mut sim,
                &names[idx].eng_ctrl,
                cr.clk,
                cr.rst,
                eng_regs[idx].clone(),
                cluster.params,
                cluster.go,
                cluster.ereset,
                iso.busy,
                iso.done,
                irq,
                cfg.regions[idx].id as u32,
            );
            eng_irqs.push(irq);
        }

        // ----- system control -----
        fabric::system_control(
            &mut sim,
            cr,
            sys_regs.clone(),
            isolations.iter().map(|i| i.isolate).collect(),
        );

        // ----- reconfiguration controller (shared by all regions) -----
        let icap_irq = sim.signal_init("irq.icap", 1, 0);
        let icapctrl_port = MasterPort::alloc(&mut sim, "icapctrl.plb");
        let recovery_stats = IcapCtrl::instantiate(
            &mut sim,
            "icapctrl",
            cr.clk,
            cr.rst,
            icap_regs.clone(),
            icapctrl_port,
            handles.icap,
            icap_irq,
            f,
            cfg.recovery,
        );

        // ----- video VIPs -----
        let golden = artifacts.map(|a| a.scene(&cfg));
        let input_frames: Vec<Frame> = match &golden {
            Some(sa) => sa.inputs.clone(),
            None => {
                let scene = Scene::new(cfg.width, cfg.height, cfg.scene_objects, cfg.seed);
                (0..cfg.n_frames).map(|t| scene.frame(t)).collect()
            }
        };
        let video = fabric::video_subsystem(
            &mut sim,
            cr,
            vin_regs.clone(),
            vout_regs.clone(),
            input_frames.clone(),
            cfg.width,
            cfg.height,
            f.has(Bug::Hw3VideoInShortDma),
        );

        // ----- interrupt fabric -----
        // Line order fixes the status bits the software sees: the legacy
        // four first, extra regions' engine lines appended.
        let mut irq_lines = vec![video.vin_irq, eng_irqs[0], icap_irq, video.vout_irq];
        irq_lines.extend(eng_irqs.iter().skip(1).copied());
        let cpu_irq = fabric::interrupt_fabric(
            &mut sim,
            cr,
            irq_lines,
            intc_regs.clone(),
            f.has(Bug::Hw4IrqPulse),
        );

        // ----- DCR daisy chain -----
        // Default order keeps the engine block early; the dpr.2 variant
        // moves region 0's *last* (nearest the return path) and marks it
        // as living inside the region, corrupted while the SimB streams.
        let mut chain = DcrChainBuilder::new(&mut sim, "dcr", cr.clk, cr.rst);
        let eng_in_rr = f.has(Bug::Dpr2DcrInRr) && backend.models_bitstream();
        if !eng_in_rr {
            chain.add_slave("eng", eng_regs[0].clone(), None);
        }
        for (idx, regs) in eng_regs.iter().enumerate().skip(1) {
            chain.add_slave(&names[idx].eng, regs.clone(), None);
        }
        chain.add_slave("icapctrl", icap_regs.clone(), None);
        chain.add_slave("intc", intc_regs.clone(), None);
        chain.add_slave("sys", sys_regs.clone(), None);
        chain.add_slave("videoin", vin_regs.clone(), None);
        chain.add_slave("videoout", vout_regs.clone(), None);
        if !backend.models_bitstream() {
            for (idx, regs) in sig_regs.iter().enumerate() {
                chain.add_slave(&names[idx].sig_slave, regs.clone(), None);
            }
        }
        if eng_in_rr {
            chain.add_slave("eng", eng_regs[0].clone(), handles.inject);
        }
        let dcr_handle = chain.finish();

        // ----- CPU -----
        let src = match scenario {
            Scenario::SingleRegion => software::generate(&SwConfig {
                method: cfg.method,
                faults: cfg.faults.clone(),
                width: cfg.width as u32,
                height: cfg.height as u32,
                n_frames: cfg.n_frames as u32,
                in0: layout.in0,
                cen0: layout.cen0,
                vecs: layout.vecs,
                simb_me: layout.simb_me,
                simb_cie: layout.simb_cie,
                isr_pad_loops: cfg.isr_pad_loops,
                fixed_wait_loops: cfg.fixed_wait_loops,
                recovery: cfg.recovery.enabled,
            }),
            Scenario::SplitPipeline => software::generate_split(&SplitSwConfig {
                method: cfg.method,
                width: cfg.width as u32,
                height: cfg.height as u32,
                n_frames: cfg.n_frames as u32,
                in0: layout.in0,
                cen0: layout.cen0,
                vecs: layout.vecs,
                simb_me: layout.simb_me,
                simb_cie: layout.simb_cie,
                isr_pad_loops: cfg.isr_pad_loops,
            }),
        };
        let cpu = match artifacts {
            Some(a) => fabric::cpu_subsystem_prebuilt(
                &mut sim,
                cr,
                cpu_irq,
                &main_mem.mem,
                dcr_handle,
                &a.program(&src),
            ),
            None => fabric::cpu_subsystem(&mut sim, cr, cpu_irq, &main_mem.mem, dcr_handle, &src),
        };

        // ----- bitstream "flash": SimBs in main memory -----
        for slot in &layout.simbs {
            if let Some(a) = artifacts {
                let words = a.simb(
                    slot.module,
                    slot.kind,
                    slot.rr_id,
                    cfg.payload_words,
                    cfg.seed,
                    cfg.recovery.enabled,
                );
                main_mem.mem.load_words(slot.addr, &words);
                continue;
            }
            let seed = cfg.seed
                ^ match slot.kind {
                    EngineKind::Matching => 0x4D45,
                    EngineKind::Census => 0x0C1E,
                };
            let simb_kind = SimbKind::Config {
                module: slot.module,
            };
            let words = if cfg.recovery.enabled {
                build_simb_integrity(simb_kind, slot.rr_id, cfg.payload_words, seed)
            } else {
                build_simb(simb_kind, slot.rr_id, cfg.payload_words, seed)
            };
            main_mem.mem.load_words(slot.addr, &words);
        }

        // ----- the shared PLB -----
        // Priority: video-in, video-out, engine regions, IcapCTRL, CPU.
        let mut masters: Vec<(String, MasterPort)> = vec![
            ("videoin".to_string(), video.vin_port),
            ("videoout".to_string(), video.vout_port),
        ];
        for (nm, iso) in names.iter().zip(&isolations) {
            masters.push((nm.bus_label.clone(), iso.port));
        }
        masters.push(("icapctrl".to_string(), icapctrl_port));
        masters.push(("cpu".to_string(), cpu.port));
        let bus_monitor = fabric::shared_bus(
            &mut sim,
            cr,
            masters,
            main_mem.port,
            layout.mem_bytes,
            cfg.arbitration,
        );

        // ----- execution mode -----
        // Dirty windows: the kernel suspends compiled-mode filtering
        // (falling back to full event-driven dispatch) while reset is
        // asserted, while any region is isolated or mid-swap, and while
        // the region boundary handshake carries X — exactly the unsteady
        // windows where the paper's methods disagree cycle-by-cycle.
        sim.set_exec_mode(cfg.exec_mode);
        sim.watch_dirty(cr.rst, DirtyWatch::TruthyOrUnknown);
        for iso in &isolations {
            sim.watch_dirty(iso.isolate, DirtyWatch::TruthyOrUnknown);
        }
        for &w in &handles.dirty_watches {
            sim.watch_dirty(w, DirtyWatch::TruthyOrUnknown);
        }
        for b in &boundaries {
            sim.watch_dirty(b.busy, DirtyWatch::Unknown);
            sim.watch_dirty(b.done, DirtyWatch::Unknown);
        }

        let probes = SystemProbes {
            cie_busy: clusters
                .iter()
                .find_map(|c| c.census_busy)
                .expect("every supported topology has a census engine"),
            me_busy: clusters
                .iter()
                .find_map(|c| c.matching_busy)
                .expect("every supported topology has a matching engine"),
            reconfiguring: handles.reconfiguring,
            inject: handles.inject,
            isolate: isolations[0].isolate,
            regions: isolations
                .iter()
                .map(|i| RegionProbes {
                    isolate: i.isolate,
                    busy: i.busy,
                    done: i.done,
                })
                .collect(),
        };
        AvSystem {
            sim,
            mem: main_mem.mem,
            captured: video.captured,
            captured_poison: video.captured_poison,
            cpu: cpu.stats,
            backend,
            bus_monitor,
            mem_faults: main_mem.faults,
            icap_faults: handles.icap_faults,
            recovery: recovery_stats,
            input_frames,
            golden,
            config: cfg,
            layout,
            probes,
        }
    }

    /// Snapshot the reconfiguration backend's statistics: ICAP artifact
    /// counters (ReSim only) plus per-region swap-machinery counters in
    /// [`RegionSpec`] order, one uniform shape for either method.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Run until all frames are displayed, the CPU halts, or the cycle
    /// budget is exhausted. A kernel failure (delta overflow etc.) does
    /// not panic: it ends the run and is reported through
    /// [`RunOutcome::kernel_error`] so callers can classify it as a
    /// detected failure instead of tearing the whole process down.
    pub fn run(&mut self, budget_cycles: u64) -> RunOutcome {
        self.run_with_deadline(budget_cycles, None)
    }

    /// [`AvSystem::run`] with an additional *wall-clock* deadline,
    /// checked between 512-cycle simulation chunks. When it expires the
    /// run stops early with [`RunOutcome::deadline_hit`] set — the
    /// watchdog hook campaign executors use to degrade a runaway
    /// scenario into a typed row instead of stalling the whole pool.
    /// `None` behaves exactly like [`AvSystem::run`].
    pub fn run_with_deadline(
        &mut self,
        budget_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> RunOutcome {
        let start = self.sim.now();
        let chunk = 512 * CLK_PERIOD_PS;
        let outcome_at =
            |s: &Self, cycles: u64, hung: bool, err: Option<KernelError>, late: bool| RunOutcome {
                frames_captured: s.captured.borrow().len(),
                halted: s.cpu.borrow().halted,
                hung,
                cycles,
                kernel_error: err,
                deadline_hit: late,
            };
        loop {
            if let Err(e) = self.sim.run_for(chunk) {
                let cycles = (self.sim.now() - start) / CLK_PERIOD_PS;
                return outcome_at(self, cycles, false, Some(e), false);
            }
            let cycles = (self.sim.now() - start) / CLK_PERIOD_PS;
            let frames = self.captured.borrow().len();
            let halted = self.cpu.borrow().halted;
            if halted || frames >= self.config.n_frames {
                // Let in-flight display DMA finish.
                let err = self.sim.run_for(chunk).err();
                return outcome_at(self, cycles, false, err, false);
            }
            if cycles >= budget_cycles {
                return outcome_at(self, cycles, true, None, false);
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                return outcome_at(self, cycles, false, None, true);
            }
        }
    }

    /// Golden prediction of the displayed frames, replicating the
    /// hardware pipeline's buffer semantics (census ping-pong, matching
    /// against the previous census buffer, software vector markers).
    /// Both scenarios implement the same pipeline, so the prediction is
    /// topology-independent.
    pub fn golden_output(&self) -> Vec<Frame> {
        match &self.golden {
            Some(sa) => sa.golden.clone(),
            None => golden_output(&self.input_frames, self.config.width, self.config.height),
        }
    }
}

/// Pipeline-exact golden model of the displayed output frames.
pub fn golden_output(inputs: &[Frame], width: usize, height: usize) -> Vec<Frame> {
    let mut census_bufs = [Frame::new(width, height), Frame::new(width, height)];
    let params = video::MatchParams::default();
    let mut out = Vec::with_capacity(inputs.len());
    for (t, input) in inputs.iter().enumerate() {
        let cur = t & 1;
        census_bufs[cur] = video::census_transform(input);
        let prev = &census_bufs[cur ^ 1];
        let vectors = video::match_frames(prev, &census_bufs[cur], &params);
        let mut frame = input.clone();
        for v in &vectors {
            if v.dx == 0 && v.dy == 0 {
                continue;
            }
            frame.put(v.x as isize, v.y as isize, 255);
            frame.put(
                v.x as isize + v.dx as isize,
                v.y as isize + v.dy as isize,
                254,
            );
        }
        out.push(frame);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_aligned() {
        for payload in [64usize, 4096, 131072] {
            let cfg = SystemConfig {
                width: 320,
                height: 240,
                payload_words: payload,
                ..Default::default()
            };
            let l = MemLayout::for_config(&cfg);
            let fb = (cfg.width * cfg.height) as u32;
            // Ordered, non-overlapping regions.
            let regions = [
                (0x1000u32, 0x1000 + 0x8000), // program + data
                (l.in0, l.in0 + 2 * fb),      // input ping-pong
                (l.cen0, l.cen0 + 2 * fb),    // census ping-pong
                (l.vecs, l.vecs + 0x8000),    // vectors
                (l.simb_me.0, l.simb_me.0 + 4 * l.simb_me.1),
                (l.simb_cie.0, l.simb_cie.0 + 4 * l.simb_cie.1),
            ];
            for w in regions.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:x?} vs {:x?}", w[0], w[1]);
            }
            assert!(regions.last().unwrap().1 as usize <= l.mem_bytes);
            // SimB length covers the whole stream (payload + framing).
            assert_eq!(l.simb_me.1, payload as u32 + 10);
            // Page-aligned buffer bases.
            for base in [l.in0, l.cen0, l.vecs, l.simb_me.0, l.simb_cie.0] {
                assert_eq!(base & 0xFFF, 0, "{base:#x} unaligned");
            }
        }
    }

    #[test]
    fn split_layout_matches_single_region_addresses() {
        let single = MemLayout::for_config(&SystemConfig::default());
        let split = MemLayout::for_config(&SystemConfig {
            regions: SystemConfig::split_regions(),
            ..Default::default()
        });
        // Same two images at the same addresses — only the ME image's
        // target region differs.
        assert_eq!(single.simb_me, split.simb_me);
        assert_eq!(single.simb_cie, split.simb_cie);
        assert_eq!(split.simbs.len(), 2);
        assert_eq!(split.simbs[0].rr_id, RR_ID_B);
        assert_eq!(split.simbs[0].module, MODULE_ME);
        assert_eq!(split.simbs[1].rr_id, RR_ID);
        assert_eq!(split.simbs[1].module, MODULE_CIE);
        assert_eq!(single.simbs[0].rr_id, RR_ID);
        assert_eq!(single.simbs[1].rr_id, RR_ID);
    }

    #[test]
    fn golden_output_draws_only_on_moving_scenes() {
        let w = 48;
        let h = 40;
        let scene = Scene::new(w, h, 3, 7);
        let inputs: Vec<Frame> = (0..3).map(|t| scene.frame(t)).collect();
        let out = golden_output(&inputs, w, h);
        assert_eq!(out.len(), 3);
        // Frame 0 matches against an empty census buffer: vectors are
        // high-cost garbage but only nonzero displacements draw.
        for (t, (o, i)) in out.iter().zip(&inputs).enumerate().skip(1) {
            assert!(
                o.differing_pixels(i) > 0,
                "frame {t} should carry vector markers"
            );
        }
    }
}
