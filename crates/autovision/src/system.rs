//! Full-system assembly of the Optical Flow Demonstrator (Figure 1 of
//! the paper): engines + reconfiguration machinery + PowerPC + VIPs on a
//! shared PLB with a DCR daisy chain, under either simulation method.

use crate::faults::{Bug, FaultSet};
use crate::icapctrl::{IcapCtrl, RecoveryPolicy, RecoveryStats};
use crate::software::{self, dcr_map, SimMethod, SwConfig, SIG_CIE, SIG_ME};
use crate::vips::{VideoInVip, VideoOutVip};
use dcr::{DcrChainBuilder, RegFile};
use engines::{
    CensusEngine, EngineCtrl, EngineIf, EngineParamSignals, IsoPair, Isolation, MatchingEngine,
};
use plb::{
    AddressWindow, MasterPort, MemFaultHandle, MemorySlave, MonitorStats, PlbBus, PlbBusConfig,
    PlbMonitor, SharedMem,
};
use ppc::{IntController, IssConfig, IssStats, PpcIss};
use resim::{
    build_simb, build_simb_integrity, instantiate_vmux, IcapArtifact, IcapConfig, IcapFaultHandle,
    IcapStats, PortalStats, RrBoundary, SimbKind, VmuxConfig, XSource,
};
use rtlsim::{
    Clock, CompKind, Component, Ctx, KernelError, ResetGen, SignalId, Simulator, PS_PER_NS,
};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use video::{Frame, MatchParams, Scene};

/// System clock period (100 MHz).
pub const CLK_PERIOD_PS: u64 = 10 * PS_PER_NS;
/// SimB module IDs.
pub const MODULE_CIE: u8 = 0x01;
/// SimB module ID of the matching engine (Table I's example).
pub const MODULE_ME: u8 = 0x02;
/// The reconfigurable region's ID.
pub const RR_ID: u8 = 0x01;

/// Build-time configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DPR simulation method.
    pub method: SimMethod,
    /// Injected bugs.
    pub faults: FaultSet,
    /// Frame width (multiple of 4).
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Frames to process.
    pub n_frames: usize,
    /// SimB FDRI payload length in words (designer-chosen; the paper
    /// uses 4 K words against a 129 K-word real bitstream).
    pub payload_words: usize,
    /// Configuration-clock divider of the ICAP artifact.
    pub cfg_divider: u32,
    /// Memory first-access wait states.
    pub mem_wait_states: u32,
    /// Calibrated ISR housekeeping loops.
    pub isr_pad_loops: u32,
    /// bug.dpr.6a's fixed wait (tuned for the original faster clock).
    pub fixed_wait_loops: u32,
    /// Scene generator seed.
    pub seed: u64,
    /// Moving objects in the synthetic scene.
    pub scene_objects: usize,
    /// Error source driven onto region outputs during reconfiguration
    /// (ReSim only; the ablation knob for the X-injection policy).
    pub error_source: ErrorSourceKind,
    /// When the ICAP artifact triggers the module swap (ReSim only;
    /// ablation knob — the default is ReSim's last-payload-word choice).
    pub swap_trigger: resim::icap::SwapTrigger,
    /// Keep the configured module selected while the payload streams
    /// (ablation knob: `false` is ReSim's faithful deselect-and-inject
    /// behaviour; `true` is the optimistic model of earlier simulators).
    pub optimistic_region: bool,
    /// Resilient-reconfiguration policy. When enabled the SimBs carry a
    /// CRC32 integrity word, the ICAP defers swaps until it verifies,
    /// IcapCTRL detects faults and retries with backoff, and the system
    /// software degrades gracefully when the retry budget is exhausted.
    /// Disabled (the default) leaves every paper-reproduction number
    /// untouched.
    pub recovery: RecoveryPolicy,
}

/// Selectable error-injection policies (see `resim::portal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorSourceKind {
    /// Undefined `X` on every output bit (ReSim default, like DCS).
    X,
    /// Clean zeros — an optimistic simulator that never emits garbage.
    Silent,
    /// Pseudo-random known values.
    Random,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            method: SimMethod::Resim,
            faults: FaultSet::none(),
            width: 64,
            height: 48,
            n_frames: 2,
            payload_words: 256,
            cfg_divider: 4,
            mem_wait_states: 1,
            isr_pad_loops: 8,
            fixed_wait_loops: 250,
            seed: 2013,
            scene_objects: 2,
            error_source: ErrorSourceKind::X,
            swap_trigger: resim::icap::SwapTrigger::LastPayloadWord,
            optimistic_region: false,
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl SystemConfig {
    /// Start a validating fluent builder seeded with the defaults.
    ///
    /// Unlike mutating a struct literal, [`SystemConfigBuilder::build`]
    /// rejects configurations the system cannot actually run (width not
    /// a multiple of 4, zero frames, a zero configuration-clock divider)
    /// instead of failing deep inside `AvSystem::build`.
    ///
    /// ```
    /// use autovision::SystemConfig;
    /// let cfg = SystemConfig::builder()
    ///     .width(32)
    ///     .height(24)
    ///     .n_frames(1)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.width, 32);
    /// assert!(SystemConfig::builder().width(30).build().is_err());
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::default(),
        }
    }
}

/// An invalid [`SystemConfig`], rejected by [`SystemConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Frame width must be a positive multiple of 4 (the census engine
    /// processes pixel quads and the DMA engines move word-aligned rows).
    WidthNotMultipleOf4 {
        /// The rejected width.
        width: usize,
    },
    /// Frame height must be positive.
    ZeroHeight,
    /// At least one frame must be processed.
    ZeroFrames,
    /// The ICAP configuration-clock divider cannot be zero.
    ZeroDivider,
    /// The SimB payload must contain at least one word.
    ZeroPayload,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::WidthNotMultipleOf4 { width } => {
                write!(f, "frame width {width} is not a positive multiple of 4")
            }
            ConfigError::ZeroHeight => write!(f, "frame height must be positive"),
            ConfigError::ZeroFrames => write!(f, "at least one frame must be processed"),
            ConfigError::ZeroDivider => {
                write!(f, "configuration-clock divider must be positive")
            }
            ConfigError::ZeroPayload => write!(f, "SimB payload must be at least one word"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent, validating builder for [`SystemConfig`]; see
/// [`SystemConfig::builder`].
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// DPR simulation method.
    pub fn method(mut self, method: SimMethod) -> Self {
        self.cfg.method = method;
        self
    }

    /// Injected bugs.
    pub fn faults(mut self, faults: FaultSet) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Frame width in pixels (must be a positive multiple of 4).
    pub fn width(mut self, width: usize) -> Self {
        self.cfg.width = width;
        self
    }

    /// Frame height in pixels (must be positive).
    pub fn height(mut self, height: usize) -> Self {
        self.cfg.height = height;
        self
    }

    /// Frames to process (must be positive).
    pub fn n_frames(mut self, n_frames: usize) -> Self {
        self.cfg.n_frames = n_frames;
        self
    }

    /// SimB FDRI payload length in words (must be positive).
    pub fn payload_words(mut self, payload_words: usize) -> Self {
        self.cfg.payload_words = payload_words;
        self
    }

    /// Configuration-clock divider of the ICAP artifact (must be
    /// positive).
    pub fn cfg_divider(mut self, cfg_divider: u32) -> Self {
        self.cfg.cfg_divider = cfg_divider;
        self
    }

    /// Memory first-access wait states.
    pub fn mem_wait_states(mut self, mem_wait_states: u32) -> Self {
        self.cfg.mem_wait_states = mem_wait_states;
        self
    }

    /// Calibrated ISR housekeeping loops.
    pub fn isr_pad_loops(mut self, isr_pad_loops: u32) -> Self {
        self.cfg.isr_pad_loops = isr_pad_loops;
        self
    }

    /// bug.dpr.6a's fixed wait loop count.
    pub fn fixed_wait_loops(mut self, fixed_wait_loops: u32) -> Self {
        self.cfg.fixed_wait_loops = fixed_wait_loops;
        self
    }

    /// Scene generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Moving objects in the synthetic scene.
    pub fn scene_objects(mut self, scene_objects: usize) -> Self {
        self.cfg.scene_objects = scene_objects;
        self
    }

    /// Error source driven onto region outputs during reconfiguration.
    pub fn error_source(mut self, error_source: ErrorSourceKind) -> Self {
        self.cfg.error_source = error_source;
        self
    }

    /// When the ICAP artifact triggers the module swap.
    pub fn swap_trigger(mut self, swap_trigger: resim::icap::SwapTrigger) -> Self {
        self.cfg.swap_trigger = swap_trigger;
        self
    }

    /// Keep the configured module selected while the payload streams.
    pub fn optimistic_region(mut self, optimistic_region: bool) -> Self {
        self.cfg.optimistic_region = optimistic_region;
        self
    }

    /// Resilient-reconfiguration policy.
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.cfg.recovery = recovery;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        let cfg = self.cfg;
        if cfg.width == 0 || !cfg.width.is_multiple_of(4) {
            return Err(ConfigError::WidthNotMultipleOf4 { width: cfg.width });
        }
        if cfg.height == 0 {
            return Err(ConfigError::ZeroHeight);
        }
        if cfg.n_frames == 0 {
            return Err(ConfigError::ZeroFrames);
        }
        if cfg.cfg_divider == 0 {
            return Err(ConfigError::ZeroDivider);
        }
        if cfg.payload_words == 0 {
            return Err(ConfigError::ZeroPayload);
        }
        Ok(cfg)
    }
}

/// Memory layout derived from a configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemLayout {
    /// Total memory bytes.
    pub mem_bytes: usize,
    /// First input buffer (double-buffered).
    pub in0: u32,
    /// First census buffer (double-buffered).
    pub cen0: u32,
    /// Vector buffer.
    pub vecs: u32,
    /// ME SimB (address, words).
    pub simb_me: (u32, u32),
    /// CIE SimB (address, words).
    pub simb_cie: (u32, u32),
}

impl MemLayout {
    /// Compute the layout for a configuration.
    pub fn for_config(cfg: &SystemConfig) -> MemLayout {
        let fb = (cfg.width * cfg.height) as u32;
        let align = |a: u32| (a + 0xFFF) & !0xFFF;
        let in0 = 0x0004_0000;
        let cen0 = align(in0 + 2 * fb);
        let vecs = align(cen0 + 2 * fb);
        // Integrity SimBs carry one extra packet (2 words) before the
        // DESYNC trailer.
        let integrity = if cfg.recovery.enabled { 2 } else { 0 };
        let simb_words = (cfg.payload_words + 10 + integrity) as u32;
        let simb_me = align(vecs + 0x8000);
        let simb_cie = align(simb_me + 4 * simb_words);
        let end = align(simb_cie + 4 * simb_words);
        MemLayout {
            mem_bytes: end.max(0x0020_0000) as usize,
            in0,
            cen0,
            vecs,
            simb_me: (simb_me, simb_words),
            simb_cie: (simb_cie, simb_words),
        }
    }
}

/// Drives the isolate wire from the SYS DCR block and stores heartbeats.
struct SysCtrl {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    isolate: SignalId,
}

impl Component for SysCtrl {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            ctx.set_bit(self.isolate, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        for (off, v) in self.regs.take_writes() {
            if off == 0 {
                ctx.set_bit(self.isolate, v & 1 != 0);
            }
            // off 2 = heartbeat: value is already stored in the regfile.
        }
    }
}

/// Copies the bus responses of the isolated port back to the region
/// boundary (inputs into the region need no isolation).
struct ReverseRelay {
    from: MasterPort,
    to: MasterPort,
}

impl Component for ReverseRelay {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set(self.to.gnt, ctx.get(self.from.gnt));
        ctx.set(self.to.addr_ack, ctx.get(self.from.addr_ack));
        ctx.set(self.to.wready, ctx.get(self.from.wready));
        ctx.set(self.to.rvalid, ctx.get(self.from.rvalid));
        ctx.set(self.to.rdata, ctx.get(self.from.rdata));
        ctx.set(self.to.complete, ctx.get(self.from.complete));
        ctx.set(self.to.err, ctx.get(self.from.err));
    }
}

/// Outcome of a bounded system run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Output frames captured by the display VIP.
    pub frames_captured: usize,
    /// The CPU executed its final `halt`.
    pub halted: bool,
    /// The cycle budget ran out before the work completed.
    pub hung: bool,
    /// Clock cycles consumed.
    pub cycles: u64,
    /// The simulation kernel itself failed (e.g. a delta-cycle
    /// oscillation) before the run could finish. Carried as the typed
    /// [`rtlsim::KernelError`] — the same value `run_for` returned —
    /// instead of panicking, so verdict classification can report it as
    /// a detected failure.
    pub kernel_error: Option<KernelError>,
}

/// A fully built Optical Flow Demonstrator simulation.
pub struct AvSystem {
    /// The kernel (run/inspect through it).
    pub sim: Simulator,
    /// Main memory.
    pub mem: SharedMem,
    /// Frames captured by the display VIP.
    pub captured: Rc<RefCell<Vec<Frame>>>,
    /// Per-captured-frame count of X-poisoned words.
    pub captured_poison: Rc<RefCell<Vec<usize>>>,
    /// CPU statistics.
    pub cpu: Rc<RefCell<IssStats>>,
    /// ICAP artifact statistics (ReSim builds only).
    pub icap: Option<Rc<RefCell<IcapStats>>>,
    /// Portal statistics (ReSim builds only).
    pub portal: Option<Rc<RefCell<PortalStats>>>,
    /// Bus protocol monitor statistics.
    pub bus_monitor: Rc<RefCell<MonitorStats>>,
    /// Transient-fault injection handle of the memory slave (recovery
    /// campaign).
    pub mem_faults: MemFaultHandle,
    /// Transient-fault injection handle of the ICAP artifact (ReSim
    /// builds only).
    pub icap_faults: Option<IcapFaultHandle>,
    /// IcapCTRL recovery counters (all zero unless `recovery.enabled`).
    pub recovery: Rc<RefCell<RecoveryStats>>,
    /// The synthetic input frames fed by the camera VIP.
    pub input_frames: Vec<Frame>,
    /// The configuration the system was built from.
    pub config: SystemConfig,
    /// Memory layout in use.
    pub layout: MemLayout,
    /// Named signals exposed for measurement probes.
    pub probes: SystemProbes,
}

/// Signals the benchmarks attach measurement probes to.
#[derive(Debug, Clone, Copy)]
pub struct SystemProbes {
    /// CIE busy (high while the census engine processes a frame).
    pub cie_busy: SignalId,
    /// ME busy.
    pub me_busy: SignalId,
    /// ICAP "during reconfiguration" window (ReSim builds only).
    pub reconfiguring: Option<SignalId>,
    /// Error-injection window: high while the SimB payload streams
    /// (ReSim builds only).
    pub inject: Option<SignalId>,
    /// Isolation control.
    pub isolate: SignalId,
}

impl AvSystem {
    /// Build the complete system.
    pub fn build(cfg: SystemConfig) -> AvSystem {
        let layout = MemLayout::for_config(&cfg);
        let f = &cfg.faults;
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let rst = sim.signal("rst", 1);
        sim.add_component(
            "clkgen",
            CompKind::Vip,
            Box::new(Clock::new(clk, CLK_PERIOD_PS)),
            &[],
        );
        sim.add_component(
            "rstgen",
            CompKind::Vip,
            Box::new(ResetGen::new(rst, 5 * CLK_PERIOD_PS)),
            &[],
        );

        // ----- memory -----
        let mem = SharedMem::new(layout.mem_bytes);
        let (mem_port, mem_faults) = MemorySlave::instantiate_faulty(
            &mut sim,
            "ddr",
            clk,
            rst,
            mem.clone(),
            cfg.mem_wait_states,
            f.has(Bug::Hw1MemBurstWrap),
        );

        // ----- DCR register blocks -----
        let eng_regs = RegFile::new(dcr_map::ENG, 8);
        let icap_regs = RegFile::new(dcr_map::ICAPC, 8);
        let intc_regs = RegFile::new(dcr_map::INTC, 3);
        let sys_regs = RegFile::new(dcr_map::SYS, 4);
        let vin_regs = RegFile::new(dcr_map::VIN, 4);
        let vout_regs = RegFile::new(dcr_map::VOUT, 4);
        let sig_regs = RegFile::new(dcr_map::SIG, 1);

        // ----- engines (both instantiated in parallel) -----
        let go = sim.signal_init("eng.go", 1, 0);
        let ereset = sim.signal_init("eng.ereset", 1, 0);
        let params = EngineParamSignals::alloc(&mut sim, "eng.params");
        let cie_if = EngineIf::alloc(&mut sim, "cie", clk, rst, go, ereset, &params);
        let me_if = EngineIf::alloc(&mut sim, "me", clk, rst, go, ereset, &params);
        CensusEngine::instantiate(&mut sim, "cie", cie_if, 2);
        MatchingEngine::instantiate(&mut sim, "me", me_if, MatchParams::default());

        // ----- region boundary, method-specific swap machinery -----
        let boundary = RrBoundary::alloc(&mut sim, "rr");
        let (icap_port, icap_stats, portal_stats, icap_faults) = match cfg.method {
            SimMethod::Resim => {
                let (icap_port, icap_stats, icap_faults) = IcapArtifact::instantiate_faulty(
                    &mut sim,
                    "icap_artifact",
                    clk,
                    rst,
                    IcapConfig {
                        fifo_depth: 16,
                        cfg_divider: cfg.cfg_divider,
                        swap_trigger: cfg.swap_trigger,
                        require_integrity: cfg.recovery.enabled,
                        tolerant: cfg.recovery.enabled,
                    },
                );
                let source: Box<dyn resim::ErrorSource> = match cfg.error_source {
                    ErrorSourceKind::X => Box::new(XSource),
                    ErrorSourceKind::Silent => Box::new(resim::SilentSource),
                    ErrorSourceKind::Random => Box::new(resim::RandomSource::new(cfg.seed)),
                };
                let portal_stats = resim::instantiate_region_with(
                    &mut sim,
                    "rr0",
                    clk,
                    rst,
                    RR_ID,
                    icap_port,
                    vec![(MODULE_CIE, cie_if), (MODULE_ME, me_if)],
                    boundary,
                    Some(MODULE_CIE),
                    source,
                    resim::RegionOptions {
                        deselect_during_inject: !cfg.optimistic_region,
                    },
                );
                (
                    icap_port,
                    Some(icap_stats),
                    Some(portal_stats),
                    Some(icap_faults),
                )
            }
            SimMethod::Vmux => {
                // IcapCTRL is instantiated but unused: give it an inert
                // ICAP port that is always ready.
                let icap_port = resim::IcapPort::alloc(&mut sim, "icap_unused");
                sim.poke_u64(icap_port.ready, 1);
                let reset_signature = if f.has(Bug::Hw2SignatureUninit) {
                    None
                } else {
                    Some(SIG_CIE)
                };
                instantiate_vmux(
                    &mut sim,
                    "vmux",
                    clk,
                    rst,
                    sig_regs.clone(),
                    vec![(SIG_CIE, cie_if), (SIG_ME, me_if)],
                    boundary,
                    VmuxConfig { reset_signature },
                );
                (icap_port, None, None, None)
            }
        };

        // ----- isolation between the region boundary and the bus -----
        let isolate = sim.signal_init("isolate", 1, 0);
        let iso_busy = sim.signal("iso.busy", 1);
        let iso_done = sim.signal("iso.done", 1);
        let iso_port = MasterPort::alloc(&mut sim, "rr_iso.plb");
        let mut pairs = vec![
            IsoPair {
                from: boundary.busy,
                to: iso_busy,
            },
            IsoPair {
                from: boundary.done,
                to: iso_done,
            },
        ];
        for (from, to) in boundary
            .plb
            .master_driven()
            .iter()
            .zip(iso_port.master_driven())
        {
            pairs.push(IsoPair { from: *from, to });
        }
        Isolation::instantiate(&mut sim, "isolation", isolate, pairs);
        let rev = ReverseRelay {
            from: iso_port,
            to: boundary.plb,
        };
        sim.add_component(
            "rr_rsp_relay",
            CompKind::UserStatic,
            Box::new(rev),
            &[
                iso_port.gnt,
                iso_port.addr_ack,
                iso_port.wready,
                iso_port.rvalid,
                iso_port.rdata,
                iso_port.complete,
                iso_port.err,
            ],
        );

        // ----- engine control block (static region) -----
        let eng_irq = sim.signal_init("irq.engine", 1, 0);
        EngineCtrl::instantiate(
            &mut sim,
            "eng_ctrl",
            clk,
            rst,
            eng_regs.clone(),
            params,
            go,
            ereset,
            iso_busy,
            iso_done,
            eng_irq,
        );

        // ----- system control -----
        SysCtrl {
            clk,
            rst,
            regs: sys_regs.clone(),
            isolate,
        }
        .register(&mut sim);

        // ----- reconfiguration controller -----
        let icap_irq = sim.signal_init("irq.icap", 1, 0);
        let icapctrl_port = MasterPort::alloc(&mut sim, "icapctrl.plb");
        let recovery_stats = IcapCtrl::instantiate(
            &mut sim,
            "icapctrl",
            clk,
            rst,
            icap_regs.clone(),
            icapctrl_port,
            icap_port,
            icap_irq,
            f,
            cfg.recovery,
        );

        // ----- video VIPs -----
        let scene = Scene::new(cfg.width, cfg.height, cfg.scene_objects, cfg.seed);
        let input_frames: Vec<Frame> = (0..cfg.n_frames).map(|t| scene.frame(t)).collect();
        let vin_irq = sim.signal_init("irq.videoin", 1, 0);
        let vout_irq = sim.signal_init("irq.videoout", 1, 0);
        let vin_port = MasterPort::alloc(&mut sim, "videoin.plb");
        let vout_port = MasterPort::alloc(&mut sim, "videoout.plb");
        VideoInVip::instantiate(
            &mut sim,
            "videoin",
            clk,
            rst,
            vin_regs.clone(),
            vin_port,
            vin_irq,
            input_frames.clone(),
            f.has(Bug::Hw3VideoInShortDma),
        );
        let (captured, captured_poison) = VideoOutVip::instantiate(
            &mut sim,
            "videoout",
            clk,
            rst,
            vout_regs.clone(),
            vout_port,
            vout_irq,
            cfg.width,
            cfg.height,
        );

        // ----- interrupt controller -----
        let cpu_irq = sim.signal("irq.cpu", 1);
        IntController::instantiate_with(
            &mut sim,
            "intc",
            clk,
            rst,
            vec![vin_irq, eng_irq, icap_irq, vout_irq],
            cpu_irq,
            intc_regs.clone(),
            false,
            f.has(Bug::Hw4IrqPulse),
        );

        // ----- DCR daisy chain -----
        // Default order keeps the engine block early; the dpr.2 variant
        // moves it *last* (nearest the return path) and marks it as
        // living inside the region, corrupted while the SimB streams.
        let mut chain = DcrChainBuilder::new(&mut sim, "dcr", clk, rst);
        let eng_in_rr = f.has(Bug::Dpr2DcrInRr) && cfg.method == SimMethod::Resim;
        if !eng_in_rr {
            chain.add_slave("eng", eng_regs.clone(), None);
        }
        chain.add_slave("icapctrl", icap_regs.clone(), None);
        chain.add_slave("intc", intc_regs.clone(), None);
        chain.add_slave("sys", sys_regs.clone(), None);
        chain.add_slave("videoin", vin_regs.clone(), None);
        chain.add_slave("videoout", vout_regs.clone(), None);
        if cfg.method == SimMethod::Vmux {
            chain.add_slave("signature", sig_regs.clone(), None);
        }
        if eng_in_rr {
            chain.add_slave("eng", eng_regs.clone(), Some(icap_port.inject));
        }
        let dcr_handle = chain.finish();

        // ----- CPU -----
        let cpu_port = MasterPort::alloc(&mut sim, "cpu.plb");
        let sw = SwConfig {
            method: cfg.method,
            faults: cfg.faults.clone(),
            width: cfg.width as u32,
            height: cfg.height as u32,
            n_frames: cfg.n_frames as u32,
            in0: layout.in0,
            cen0: layout.cen0,
            vecs: layout.vecs,
            simb_me: layout.simb_me,
            simb_cie: layout.simb_cie,
            isr_pad_loops: cfg.isr_pad_loops,
            fixed_wait_loops: cfg.fixed_wait_loops,
            recovery: cfg.recovery.enabled,
        };
        let src = software::generate(&sw);
        let program = ppc::assemble(&src, 0x1000).expect("system software must assemble");
        mem.load_bytes(program.base, &program.to_bytes());
        let isr = program.symbol("isr");
        mem.write_u32(
            0x500,
            ppc::Instr::B {
                target: (isr as i64 - 0x500) as i32,
                link: false,
            }
            .encode(),
        );
        let cpu_stats = PpcIss::instantiate(
            &mut sim,
            "ppc_iss",
            clk,
            rst,
            cpu_irq,
            cpu_port,
            mem.clone(),
            dcr_handle,
            IssConfig {
                entry: 0x1000,
                vector_base: 0,
                trace_depth: 0,
            },
        );

        // ----- bitstream "flash": SimBs in main memory -----
        let make_simb = |kind, seed| {
            if cfg.recovery.enabled {
                build_simb_integrity(kind, RR_ID, cfg.payload_words, seed)
            } else {
                build_simb(kind, RR_ID, cfg.payload_words, seed)
            }
        };
        mem.load_words(
            layout.simb_me.0,
            &make_simb(SimbKind::Config { module: MODULE_ME }, cfg.seed ^ 0x4D45),
        );
        mem.load_words(
            layout.simb_cie.0,
            &make_simb(SimbKind::Config { module: MODULE_CIE }, cfg.seed ^ 0x0C1E),
        );

        // ----- the shared PLB -----
        // Priority: video-in, video-out, engine region, IcapCTRL, CPU.
        let masters = vec![vin_port, vout_port, iso_port, icapctrl_port, cpu_port];
        let named: Vec<(String, MasterPort)> = [
            ("videoin", vin_port),
            ("videoout", vout_port),
            ("engine_rr", iso_port),
            ("icapctrl", icapctrl_port),
            ("cpu", cpu_port),
        ]
        .into_iter()
        .map(|(n, p)| (n.to_string(), p))
        .collect();
        let bus_monitor = PlbMonitor::instantiate(&mut sim, "plb_monitor", clk, rst, named);
        PlbBus::new(
            &mut sim,
            "plb",
            clk,
            rst,
            PlbBusConfig::default(),
            masters,
            vec![(
                mem_port,
                AddressWindow {
                    base: 0,
                    len: layout.mem_bytes as u32,
                },
            )],
        );

        let probes = SystemProbes {
            cie_busy: cie_if.busy,
            me_busy: me_if.busy,
            reconfiguring: icap_stats.as_ref().map(|_| icap_port.reconfiguring),
            inject: icap_stats.as_ref().map(|_| icap_port.inject),
            isolate,
        };
        AvSystem {
            sim,
            mem,
            captured,
            captured_poison,
            cpu: cpu_stats,
            icap: icap_stats,
            portal: portal_stats,
            bus_monitor,
            mem_faults,
            icap_faults,
            recovery: recovery_stats,
            input_frames,
            config: cfg,
            layout,
            probes,
        }
    }

    /// Run until all frames are displayed, the CPU halts, or the cycle
    /// budget is exhausted. A kernel failure (delta overflow etc.) does
    /// not panic: it ends the run and is reported through
    /// [`RunOutcome::kernel_error`] so callers can classify it as a
    /// detected failure instead of tearing the whole process down.
    pub fn run(&mut self, budget_cycles: u64) -> RunOutcome {
        let start = self.sim.now();
        let chunk = 512 * CLK_PERIOD_PS;
        let outcome_at = |s: &Self, cycles: u64, hung: bool, err: Option<KernelError>| RunOutcome {
            frames_captured: s.captured.borrow().len(),
            halted: s.cpu.borrow().halted,
            hung,
            cycles,
            kernel_error: err,
        };
        loop {
            if let Err(e) = self.sim.run_for(chunk) {
                let cycles = (self.sim.now() - start) / CLK_PERIOD_PS;
                return outcome_at(self, cycles, false, Some(e));
            }
            let cycles = (self.sim.now() - start) / CLK_PERIOD_PS;
            let frames = self.captured.borrow().len();
            let halted = self.cpu.borrow().halted;
            if halted || frames >= self.config.n_frames {
                // Let in-flight display DMA finish.
                let err = self.sim.run_for(chunk).err();
                return outcome_at(self, cycles, false, err);
            }
            if cycles >= budget_cycles {
                return outcome_at(self, cycles, true, None);
            }
        }
    }

    /// Golden prediction of the displayed frames, replicating the
    /// hardware pipeline's buffer semantics (census ping-pong, matching
    /// against the previous census buffer, software vector markers).
    pub fn golden_output(&self) -> Vec<Frame> {
        golden_output(&self.input_frames, self.config.width, self.config.height)
    }
}

impl SysCtrl {
    fn register(self, sim: &mut Simulator) {
        let sens = [self.clk, self.rst];
        sim.add_component("sysctrl", CompKind::UserStatic, Box::new(self), &sens);
    }
}

/// Pipeline-exact golden model of the displayed output frames.
pub fn golden_output(inputs: &[Frame], width: usize, height: usize) -> Vec<Frame> {
    let mut census_bufs = [Frame::new(width, height), Frame::new(width, height)];
    let params = MatchParams::default();
    let mut out = Vec::with_capacity(inputs.len());
    for (t, input) in inputs.iter().enumerate() {
        let cur = t & 1;
        census_bufs[cur] = video::census_transform(input);
        let prev = &census_bufs[cur ^ 1];
        let vectors = video::match_frames(prev, &census_bufs[cur], &params);
        let mut frame = input.clone();
        for v in &vectors {
            if v.dx == 0 && v.dy == 0 {
                continue;
            }
            frame.put(v.x as isize, v.y as isize, 255);
            frame.put(
                v.x as isize + v.dx as isize,
                v.y as isize + v.dy as isize,
                254,
            );
        }
        out.push(frame);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_aligned() {
        for payload in [64usize, 4096, 131072] {
            let cfg = SystemConfig {
                width: 320,
                height: 240,
                payload_words: payload,
                ..Default::default()
            };
            let l = MemLayout::for_config(&cfg);
            let fb = (cfg.width * cfg.height) as u32;
            // Ordered, non-overlapping regions.
            let regions = [
                (0x1000u32, 0x1000 + 0x8000), // program + data
                (l.in0, l.in0 + 2 * fb),      // input ping-pong
                (l.cen0, l.cen0 + 2 * fb),    // census ping-pong
                (l.vecs, l.vecs + 0x8000),    // vectors
                (l.simb_me.0, l.simb_me.0 + 4 * l.simb_me.1),
                (l.simb_cie.0, l.simb_cie.0 + 4 * l.simb_cie.1),
            ];
            for w in regions.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:x?} vs {:x?}", w[0], w[1]);
            }
            assert!(regions.last().unwrap().1 as usize <= l.mem_bytes);
            // SimB length covers the whole stream (payload + framing).
            assert_eq!(l.simb_me.1, payload as u32 + 10);
            // Page-aligned buffer bases.
            for base in [l.in0, l.cen0, l.vecs, l.simb_me.0, l.simb_cie.0] {
                assert_eq!(base & 0xFFF, 0, "{base:#x} unaligned");
            }
        }
    }

    #[test]
    fn golden_output_draws_only_on_moving_scenes() {
        let w = 48;
        let h = 40;
        let scene = Scene::new(w, h, 3, 7);
        let inputs: Vec<Frame> = (0..3).map(|t| scene.frame(t)).collect();
        let out = golden_output(&inputs, w, h);
        assert_eq!(out.len(), 3);
        // Frame 0 matches against an empty census buffer: vectors are
        // high-cost garbage but only nonzero displacements draw.
        for (t, (o, i)) in out.iter().zip(&inputs).enumerate().skip(1) {
            assert!(
                o.differing_pixels(i) > 0,
                "frame {t} should carry vector markers"
            );
        }
    }
}
