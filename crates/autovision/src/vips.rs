//! Video verification IPs — the camera and display replacements.
//!
//! "Since the simulation environment does not have a camera or a
//! display, the video input and output modules were replaced with
//! VIPs "to mimic the input/output video stream ... transfer to/from
//! the simulated main memory via cycle-accurate PLB bus operations."
//!
//! Both VIPs are demand-driven through small DCR register blocks, so the
//! embedded software sequences them exactly as it sequenced the real
//! camera/display IP cores.

use dcr::RegFile;
use plb::dma::Handshake;
use plb::{DmaDriver, DmaEvent, MasterPort};
use rtlsim::{CompKind, Component, Ctx, DoorbellId, SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;
use video::Frame;

/// DCR register offsets shared by both VIPs.
pub mod reg {
    /// Frame buffer byte address.
    pub const ADDR: u16 = 0;
    /// Write bit0 = go.
    pub const CTRL: u16 = 1;
    /// bit0 = busy.
    pub const STATUS: u16 = 2;
}

/// Shared handle to the frames the display VIP has captured.
pub type CapturedFrames = Rc<RefCell<Vec<Frame>>>;
/// Shared handle to the per-frame X-poisoned word counts.
pub type PoisonCounts = Rc<RefCell<Vec<usize>>>;

/// The video-input VIP: on `go`, DMA-writes the next source frame to the
/// programmed address and pulses its interrupt line.
pub struct VideoInVip {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    dma: DmaDriver,
    irq_out: SignalId,
    frames: Vec<Frame>,
    next: usize,
    busy: bool,
    /// bug.hw.3: stop the transfer one burst (16 words) short.
    short_dma: bool,
    supplied: Rc<RefCell<usize>>,
    /// Doorbell rung by software DCR writes to this VIP's registers.
    bell: Option<DoorbellId>,
}

impl VideoInVip {
    /// Build and register the VIP; returns a counter of supplied frames.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        regs: RegFile,
        port: MasterPort,
        irq_out: SignalId,
        frames: Vec<Frame>,
        short_dma: bool,
    ) -> Rc<RefCell<usize>> {
        assert!(!frames.is_empty(), "video input needs at least one frame");
        let supplied = Rc::new(RefCell::new(0));
        let bell = sim.add_doorbell(regs.dirty_flag());
        let vip = VideoInVip {
            clk,
            rst,
            regs,
            dma: DmaDriver::new(port, Handshake::Full, 16),
            irq_out,
            frames,
            next: 0,
            busy: false,
            short_dma,
            supplied: supplied.clone(),
            bell: Some(bell),
        };
        let comp = sim.add_component(name, CompKind::Vip, Box::new(vip), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        supplied
    }
}

impl Component for VideoInVip {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            self.busy = false;
            self.next = 0;
            self.dma.reset(ctx);
            ctx.set_bit(self.irq_out, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        ctx.set_bit(self.irq_out, false);
        let mut pulsed = false;
        for (off, v) in self.regs.take_writes() {
            if off == reg::CTRL && v & 1 != 0 && !self.busy {
                let frame = &self.frames[self.next % self.frames.len()];
                self.next += 1;
                let mut words = frame.to_words();
                if self.short_dma {
                    // BUG: the end-address calculation drops the last
                    // burst worth of pixels.
                    let keep = words.len().saturating_sub(16).max(1);
                    words.truncate(keep);
                }
                self.dma.start_write(self.regs.get(reg::ADDR), words);
                self.busy = true;
            }
        }
        if self.busy {
            if let Some(ev) = self.dma.step(ctx) {
                match ev {
                    DmaEvent::WriteDone => {
                        self.busy = false;
                        *self.supplied.borrow_mut() += 1;
                        ctx.set_bit(self.irq_out, true);
                        pulsed = true;
                    }
                    _ => {
                        ctx.error("video-in DMA failed");
                        self.busy = false;
                    }
                }
            }
        }
        self.regs.set(reg::STATUS, self.busy as u32);
        // Idle with no interrupt pulse to clear: nothing moves until the
        // software writes a register (doorbell) or reset asserts.
        if !self.busy && !pulsed {
            if let Some(bell) = self.bell {
                ctx.park_until(&[self.rst], &[bell]);
            }
        }
    }
}

/// The video-output VIP: on `go`, DMA-reads a frame from the programmed
/// address into the shared capture log (our "display").
pub struct VideoOutVip {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    dma: DmaDriver,
    irq_out: SignalId,
    width: usize,
    height: usize,
    busy: bool,
    captured: Rc<RefCell<Vec<Frame>>>,
    /// Beats of the current read that carried X (poisoned pixels) —
    /// surfaced per captured frame.
    poisoned: Rc<RefCell<Vec<usize>>>,
    /// Doorbell rung by software DCR writes to this VIP's registers.
    bell: Option<DoorbellId>,
}

impl VideoOutVip {
    /// Build and register the VIP; returns (captured frames, per-frame
    /// poisoned-beat counts).
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        regs: RegFile,
        port: MasterPort,
        irq_out: SignalId,
        width: usize,
        height: usize,
    ) -> (CapturedFrames, PoisonCounts) {
        let captured = Rc::new(RefCell::new(Vec::new()));
        let poisoned = Rc::new(RefCell::new(Vec::new()));
        let bell = sim.add_doorbell(regs.dirty_flag());
        let vip = VideoOutVip {
            clk,
            rst,
            regs,
            dma: DmaDriver::new(port, Handshake::Full, 16),
            irq_out,
            width,
            height,
            busy: false,
            captured: captured.clone(),
            poisoned: poisoned.clone(),
            bell: Some(bell),
        };
        let comp = sim.add_component(name, CompKind::Vip, Box::new(vip), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        (captured, poisoned)
    }
}

impl Component for VideoOutVip {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            self.busy = false;
            self.dma.reset(ctx);
            ctx.set_bit(self.irq_out, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        ctx.set_bit(self.irq_out, false);
        let mut pulsed = false;
        for (off, v) in self.regs.take_writes() {
            if off == reg::CTRL && v & 1 != 0 && !self.busy {
                let words = (self.width * self.height / 4) as u32;
                self.dma.start_read(self.regs.get(reg::ADDR), words);
                self.busy = true;
            }
        }
        if self.busy {
            if let Some(ev) = self.dma.step(ctx) {
                match ev {
                    DmaEvent::ReadDone => {
                        self.busy = false;
                        let unknowns = self.dma.unknown_beats().len();
                        let words = self.dma.take_read_data();
                        self.captured.borrow_mut().push(Frame::from_words(
                            self.width,
                            self.height,
                            &words,
                        ));
                        self.poisoned.borrow_mut().push(unknowns);
                        ctx.set_bit(self.irq_out, true);
                        pulsed = true;
                    }
                    _ => {
                        ctx.error("video-out DMA failed");
                        self.busy = false;
                    }
                }
            }
        }
        self.regs.set(reg::STATUS, self.busy as u32);
        // Idle with no interrupt pulse to clear: nothing moves until the
        // software writes a register (doorbell) or reset asserts.
        if !self.busy && !pulsed {
            if let Some(bell) = self.bell {
                ctx.park_until(&[self.rst], &[bell]);
            }
        }
    }
}
