//! # autovision — the Optical Flow Demonstrator
//!
//! Full-system integration of the paper's design under test (Figure 1):
//!
//! * two video engines (CIE, ME) time-sharing one reconfigurable region,
//!   swapped **twice per frame** by partial reconfiguration;
//! * the reconfiguration machinery: [`IcapCtrl`] (bitstream DMA over the
//!   shared PLB into the ICAP port) and the Isolation module;
//! * a PowerPC running the pipelined, interrupt-driven system software
//!   ([`software`], Figure 2);
//! * camera/display Verification IPs backed by deterministic synthetic
//!   traffic scenes;
//! * the DCR daisy chain carrying every control register.
//!
//! [`AvSystem::build`] assembles the whole design under either
//! simulation method ([`SimMethod::Vmux`] or [`SimMethod::Resim`]) with
//! any subset of the catalogued [`faults::Bug`]s injected, and
//! [`AvSystem::run`] executes frames to completion with golden-model
//! scoring available via [`AvSystem::golden_output`].

pub mod artifacts;
pub mod fabric;
pub mod faults;
pub mod icapctrl;
pub mod software;
pub mod system;
pub mod vips;

pub use artifacts::{ArtifactCache, SceneArtifacts};
pub use faults::{Bug, BugClass, FaultSet};
pub use icapctrl::{IcapCtrl, RecoveryPolicy, RecoveryStats};
pub use plb::ArbMode;
pub use software::{SimMethod, SplitSwConfig, SwConfig};
pub use system::{
    golden_output, AvSystem, ConfigError, EngineKind, ErrorSourceKind, MemLayout, ModuleSpec,
    RegionProbes, RegionSpec, RunOutcome, Scenario, SimbSlot, SystemConfig, SystemConfigBuilder,
    SystemProbes, CLK_PERIOD_PS, MODULE_CIE, MODULE_ME, RR_ID, RR_ID_B,
};
pub use vips::{VideoInVip, VideoOutVip};
