//! Composable SoC-fabric builders.
//!
//! `AvSystem::build` used to be one ~400-line monolith that allocated
//! every signal and component of the demonstrator inline. This module
//! splits it into reusable subsystem builders — clocking/reset, main
//! memory, engine clusters, region isolation, system control, video
//! VIPs, interrupt fabric, CPU, shared bus — each returning a typed
//! handle struct, so a platform is assembled from parts.
//!
//! Builders are deliberately *order-preserving*: the single-region
//! system assembled through them allocates exactly the same signals and
//! components, in exactly the same order, as the original monolith —
//! which is what keeps the paper-reproduction outputs (tables, VCD,
//! kernel counters) byte-identical. Anything that generalises to N
//! regions ([`RegionNames`], [`engine_cluster`], [`region_isolation`],
//! [`system_control`]) reproduces the legacy names for region index 0
//! and derives names for the rest.

use crate::system::{EngineKind, RegionSpec, CLK_PERIOD_PS};
use dcr::RegFile;
use engines::{CensusEngine, EngineIf, EngineParamSignals, IsoPair, Isolation, MatchingEngine};
use plb::{
    AddressWindow, ArbMode, MasterPort, MemFaultHandle, MemorySlave, MonitorStats, PlbBus,
    PlbBusConfig, PlbMonitor, SharedMem, SlavePort,
};
use ppc::{IntController, IssConfig, IssStats, PpcIss};
use resim::RrBoundary;
use rtlsim::{Clock, CompKind, Component, Ctx, DoorbellId, ResetGen, SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;
use video::{Frame, MatchParams};

// ---------------------------------------------------------------------
// clocking / reset
// ---------------------------------------------------------------------

/// The global clock and power-on reset wires.
#[derive(Debug, Clone, Copy)]
pub struct ClockReset {
    /// System clock.
    pub clk: SignalId,
    /// Power-on reset (high for the first few cycles).
    pub rst: SignalId,
}

/// Allocate `clk`/`rst` and the generators driving them.
pub fn clock_reset(sim: &mut Simulator) -> ClockReset {
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, CLK_PERIOD_PS)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 5 * CLK_PERIOD_PS)),
        &[],
    );
    ClockReset { clk, rst }
}

// ---------------------------------------------------------------------
// main memory
// ---------------------------------------------------------------------

/// Main memory and its bus-slave port.
pub struct MainMemory {
    /// Backing store (shared with the CPU ISS and test probes).
    pub mem: SharedMem,
    /// The DDR controller's slave port on the PLB.
    pub port: SlavePort,
    /// Transient-fault injection handle.
    pub faults: MemFaultHandle,
}

/// Instantiate the DDR model.
pub fn main_memory(
    sim: &mut Simulator,
    cr: ClockReset,
    bytes: usize,
    wait_states: u32,
    stale_first_beat_bug: bool,
) -> MainMemory {
    let mem = SharedMem::new(bytes);
    let (port, faults) = MemorySlave::instantiate_faulty(
        sim,
        "ddr",
        cr.clk,
        cr.rst,
        mem.clone(),
        wait_states,
        stale_first_beat_bug,
    );
    MainMemory { mem, port, faults }
}

// ---------------------------------------------------------------------
// per-region naming
// ---------------------------------------------------------------------

/// Instance names of one reconfigurable region's machinery.
///
/// Region index 0 reproduces the legacy single-region names exactly
/// (`"isolate"`, `"eng.go"`, `"cie"`, ...); later regions derive names
/// from the index and the region's boundary prefix, so every region is
/// distinguishable in waveforms and monitor reports.
#[derive(Debug, Clone)]
pub struct RegionNames {
    /// Region index in [`RegionSpec`] order.
    pub idx: usize,
    /// Boundary signal prefix (`"rr"` for region 0).
    pub boundary: String,
    /// Extended-portal / wrapper instance prefix.
    pub portal: String,
    /// Engine-cluster shared-wire prefix (`"eng"` / `"eng1"` ...).
    pub eng: String,
    /// Engine control block instance name.
    pub eng_ctrl: String,
    /// Engine done/interrupt wire.
    pub eng_irq: String,
    /// Isolation control wire.
    pub isolate: String,
    /// Isolated busy output.
    pub iso_busy: String,
    /// Isolated done output.
    pub iso_done: String,
    /// Isolated bus-master port prefix.
    pub iso_port: String,
    /// Isolation component instance.
    pub isolation: String,
    /// Response-relay component instance.
    pub relay: String,
    /// VMUX wrapper instance prefix.
    pub vmux: String,
    /// DCR slave name of the region's signature register.
    pub sig_slave: String,
    /// Bus-monitor label of the region's master port.
    pub bus_label: String,
}

impl RegionNames {
    /// Compute the names for region `idx` with boundary prefix
    /// `boundary`.
    pub fn for_region(idx: usize, boundary: &str) -> RegionNames {
        let b = boundary;
        if idx == 0 {
            RegionNames {
                idx,
                boundary: b.to_string(),
                portal: format!("{b}0"),
                eng: "eng".into(),
                eng_ctrl: "eng_ctrl".into(),
                eng_irq: "irq.engine".into(),
                isolate: "isolate".into(),
                iso_busy: "iso.busy".into(),
                iso_done: "iso.done".into(),
                iso_port: format!("{b}_iso.plb"),
                isolation: "isolation".into(),
                relay: format!("{b}_rsp_relay"),
                vmux: "vmux".into(),
                sig_slave: "signature".into(),
                bus_label: format!("engine_{b}"),
            }
        } else {
            RegionNames {
                idx,
                boundary: b.to_string(),
                portal: format!("{b}{idx}"),
                eng: format!("eng{idx}"),
                eng_ctrl: format!("eng_ctrl{idx}"),
                eng_irq: format!("irq.engine{idx}"),
                isolate: format!("{b}.isolate"),
                iso_busy: format!("{b}.iso.busy"),
                iso_done: format!("{b}.iso.done"),
                iso_port: format!("{b}_iso.plb"),
                isolation: format!("{b}_isolation"),
                relay: format!("{b}_rsp_relay"),
                vmux: format!("vmux{idx}"),
                sig_slave: format!("signature{idx}"),
                bus_label: format!("engine_{b}"),
            }
        }
    }

    /// Instance name of a module of `kind` inside this region
    /// (`"cie"`/`"me"` for region 0, `"cie1"`/`"me1"` ...).
    pub fn module(&self, kind: EngineKind) -> String {
        let base = match kind {
            EngineKind::Census => "cie",
            EngineKind::Matching => "me",
        };
        if self.idx == 0 {
            base.to_string()
        } else {
            format!("{base}{}", self.idx)
        }
    }
}

// ---------------------------------------------------------------------
// engine cluster (the modules of one region)
// ---------------------------------------------------------------------

/// The engines of one region plus the static-region wires they share.
pub struct EngineCluster {
    /// Shared one-cycle start pulse.
    pub go: SignalId,
    /// Shared one-cycle soft-reset pulse.
    pub ereset: SignalId,
    /// Shared parameter wires (driven by the engine control block).
    pub params: EngineParamSignals,
    /// SimB module ID paired with each module's boundary interface, in
    /// [`RegionSpec`] order.
    pub modules: Vec<(u8, EngineIf)>,
    /// Busy signal of the census module, when the region has one.
    pub census_busy: Option<SignalId>,
    /// Busy signal of the matching module, when the region has one.
    pub matching_busy: Option<SignalId>,
}

/// Instantiate every module of `spec` in parallel (all interfaces are
/// allocated before any engine body, matching the legacy layout).
pub fn engine_cluster(
    sim: &mut Simulator,
    cr: ClockReset,
    names: &RegionNames,
    spec: &RegionSpec,
) -> EngineCluster {
    let go = sim.signal_init(format!("{}.go", names.eng), 1, 0);
    let ereset = sim.signal_init(format!("{}.ereset", names.eng), 1, 0);
    let params = EngineParamSignals::alloc(sim, &format!("{}.params", names.eng));
    let ifs: Vec<EngineIf> = spec
        .modules
        .iter()
        .map(|m| {
            EngineIf::alloc(
                sim,
                &names.module(m.kind),
                cr.clk,
                cr.rst,
                go,
                ereset,
                &params,
            )
        })
        .collect();
    let mut census_busy = None;
    let mut matching_busy = None;
    for (m, io) in spec.modules.iter().zip(&ifs) {
        let name = names.module(m.kind);
        match m.kind {
            EngineKind::Census => {
                CensusEngine::instantiate(sim, &name, *io, 2);
                census_busy.get_or_insert(io.busy);
            }
            EngineKind::Matching => {
                MatchingEngine::instantiate(sim, &name, *io, MatchParams::default());
                matching_busy.get_or_insert(io.busy);
            }
        }
    }
    EngineCluster {
        go,
        ereset,
        params,
        modules: spec
            .modules
            .iter()
            .zip(ifs)
            .map(|(m, io)| (m.id, io))
            .collect(),
        census_busy,
        matching_busy,
    }
}

// ---------------------------------------------------------------------
// region isolation
// ---------------------------------------------------------------------

/// The isolation layer between one region boundary and the static
/// system: gated busy/done/bus-request wires plus the region's bus
/// master port.
pub struct RegionIsolation {
    /// Isolation control (high = region outputs forced to zero).
    pub isolate: SignalId,
    /// Gated busy.
    pub busy: SignalId,
    /// Gated done.
    pub done: SignalId,
    /// The region's isolated master port on the shared bus.
    pub port: MasterPort,
}

/// Copies the bus responses of the isolated port back to the region
/// boundary (inputs into the region need no isolation).
struct ReverseRelay {
    from: MasterPort,
    to: MasterPort,
}

impl Component for ReverseRelay {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set(self.to.gnt, ctx.get(self.from.gnt));
        ctx.set(self.to.addr_ack, ctx.get(self.from.addr_ack));
        ctx.set(self.to.wready, ctx.get(self.from.wready));
        ctx.set(self.to.rvalid, ctx.get(self.from.rvalid));
        ctx.set(self.to.rdata, ctx.get(self.from.rdata));
        ctx.set(self.to.complete, ctx.get(self.from.complete));
        ctx.set(self.to.err, ctx.get(self.from.err));
    }
}

/// Wrap `boundary` in an Isolation instance and a response relay.
pub fn region_isolation(
    sim: &mut Simulator,
    names: &RegionNames,
    boundary: RrBoundary,
    rr_id: u8,
) -> RegionIsolation {
    let isolate = sim.signal_init(&*names.isolate, 1, 0);
    let busy = sim.signal(&*names.iso_busy, 1);
    let done = sim.signal(&*names.iso_done, 1);
    let port = MasterPort::alloc(sim, &names.iso_port);
    let mut pairs = vec![
        IsoPair {
            from: boundary.busy,
            to: busy,
        },
        IsoPair {
            from: boundary.done,
            to: done,
        },
    ];
    for (from, to) in boundary
        .plb
        .master_driven()
        .iter()
        .zip(port.master_driven())
    {
        pairs.push(IsoPair { from: *from, to });
    }
    Isolation::instantiate(sim, &names.isolation, isolate, pairs, rr_id as u32);
    let rev = ReverseRelay {
        from: port,
        to: boundary.plb,
    };
    let relay_comp = sim.add_component(
        &*names.relay,
        CompKind::UserStatic,
        Box::new(rev),
        &[
            port.gnt,
            port.addr_ack,
            port.wready,
            port.rvalid,
            port.rdata,
            port.complete,
            port.err,
        ],
    );
    sim.declare_comb(
        relay_comp,
        &[
            port.gnt,
            port.addr_ack,
            port.wready,
            port.rvalid,
            port.rdata,
            port.complete,
            port.err,
        ],
        &[
            boundary.plb.gnt,
            boundary.plb.addr_ack,
            boundary.plb.wready,
            boundary.plb.rvalid,
            boundary.plb.rdata,
            boundary.plb.complete,
            boundary.plb.err,
        ],
    );
    RegionIsolation {
        isolate,
        busy,
        done,
        port,
    }
}

// ---------------------------------------------------------------------
// system control
// ---------------------------------------------------------------------

/// Drives the per-region isolate wires from the SYS DCR block and stores
/// heartbeats. Register 0 is an isolation bitmask: bit *i* controls
/// region *i* — the single-region system's software, which writes 0/1,
/// is the one-bit case.
struct SysCtrl {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    isolates: Vec<SignalId>,
    /// Doorbell rung by software DCR writes to the SYS block.
    bell: Option<DoorbellId>,
}

impl Component for SysCtrl {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            for &s in &self.isolates {
                ctx.set_bit(s, false);
            }
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        for (off, v) in self.regs.take_writes() {
            if off == 0 {
                for (i, &s) in self.isolates.iter().enumerate() {
                    ctx.set_bit(s, v & (1 << i) != 0);
                }
            }
            // off 2 = heartbeat: value is already stored in the regfile.
        }
        // Purely software-driven: only a DCR write or reset can change
        // the isolate outputs.
        if let Some(bell) = self.bell {
            ctx.park_until(&[self.rst], &[bell]);
        }
    }
}

/// Instantiate the system-control block over the regions' isolate wires
/// (in region order).
pub fn system_control(sim: &mut Simulator, cr: ClockReset, regs: RegFile, isolates: Vec<SignalId>) {
    let bell = sim.add_doorbell(regs.dirty_flag());
    let ctl = SysCtrl {
        clk: cr.clk,
        rst: cr.rst,
        regs,
        isolates,
        bell: Some(bell),
    };
    let sens = [cr.clk, cr.rst];
    let comp = sim.add_component("sysctrl", CompKind::UserStatic, Box::new(ctl), &sens);
    sim.declare_clocked(comp, cr.clk);
}

// ---------------------------------------------------------------------
// video subsystem
// ---------------------------------------------------------------------

/// The camera and display VIPs.
pub struct VideoSubsystem {
    /// Camera frame-captured interrupt.
    pub vin_irq: SignalId,
    /// Display frame-shown interrupt.
    pub vout_irq: SignalId,
    /// Camera DMA master port.
    pub vin_port: MasterPort,
    /// Display DMA master port.
    pub vout_port: MasterPort,
    /// Frames captured by the display VIP.
    pub captured: Rc<RefCell<Vec<Frame>>>,
    /// Per-captured-frame count of X-poisoned words.
    pub captured_poison: Rc<RefCell<Vec<usize>>>,
}

/// Instantiate camera and display VIPs over `input_frames`.
#[allow(clippy::too_many_arguments)]
pub fn video_subsystem(
    sim: &mut Simulator,
    cr: ClockReset,
    vin_regs: RegFile,
    vout_regs: RegFile,
    input_frames: Vec<Frame>,
    width: usize,
    height: usize,
    short_dma_bug: bool,
) -> VideoSubsystem {
    let vin_irq = sim.signal_init("irq.videoin", 1, 0);
    let vout_irq = sim.signal_init("irq.videoout", 1, 0);
    let vin_port = MasterPort::alloc(sim, "videoin.plb");
    let vout_port = MasterPort::alloc(sim, "videoout.plb");
    crate::vips::VideoInVip::instantiate(
        sim,
        "videoin",
        cr.clk,
        cr.rst,
        vin_regs,
        vin_port,
        vin_irq,
        input_frames,
        short_dma_bug,
    );
    let (captured, captured_poison) = crate::vips::VideoOutVip::instantiate(
        sim, "videoout", cr.clk, cr.rst, vout_regs, vout_port, vout_irq, width, height,
    );
    VideoSubsystem {
        vin_irq,
        vout_irq,
        vin_port,
        vout_port,
        captured,
        captured_poison,
    }
}

// ---------------------------------------------------------------------
// interrupt fabric
// ---------------------------------------------------------------------

/// Instantiate the interrupt controller over `lines` (bit *i* of the
/// status register is `lines[i]`) and return the CPU interrupt wire.
pub fn interrupt_fabric(
    sim: &mut Simulator,
    cr: ClockReset,
    lines: Vec<SignalId>,
    regs: RegFile,
    pulse_irq_bug: bool,
) -> SignalId {
    let cpu_irq = sim.signal("irq.cpu", 1);
    IntController::instantiate_with(
        sim,
        "intc",
        cr.clk,
        cr.rst,
        lines,
        cpu_irq,
        regs,
        false,
        pulse_irq_bug,
    );
    cpu_irq
}

// ---------------------------------------------------------------------
// CPU subsystem
// ---------------------------------------------------------------------

/// The PowerPC subsystem: assembled program in memory, ISR vector, ISS.
pub struct CpuSubsystem {
    /// CPU bus master port.
    pub port: MasterPort,
    /// Execution statistics (halt flag, instruction counts).
    pub stats: Rc<RefCell<IssStats>>,
}

/// Assemble `source` at `0x1000`, install the external-interrupt vector
/// branch at `0x500`, and instantiate the ISS.
pub fn cpu_subsystem(
    sim: &mut Simulator,
    cr: ClockReset,
    cpu_irq: SignalId,
    mem: &SharedMem,
    dcr_handle: dcr::DcrHandle,
    source: &str,
) -> CpuSubsystem {
    let program = ppc::assemble(source, 0x1000).expect("system software must assemble");
    cpu_subsystem_prebuilt(sim, cr, cpu_irq, mem, dcr_handle, &program)
}

/// [`cpu_subsystem`] with an already-assembled program image — the
/// artifact-cache path, where one assembly serves many builds.
pub fn cpu_subsystem_prebuilt(
    sim: &mut Simulator,
    cr: ClockReset,
    cpu_irq: SignalId,
    mem: &SharedMem,
    dcr_handle: dcr::DcrHandle,
    program: &ppc::Program,
) -> CpuSubsystem {
    let port = MasterPort::alloc(sim, "cpu.plb");
    mem.load_bytes(program.base, &program.to_bytes());
    let isr = program.symbol("isr");
    mem.write_u32(
        0x500,
        ppc::Instr::B {
            target: (isr as i64 - 0x500) as i32,
            link: false,
        }
        .encode(),
    );
    let stats = PpcIss::instantiate(
        sim,
        "ppc_iss",
        cr.clk,
        cr.rst,
        cpu_irq,
        port,
        mem.clone(),
        dcr_handle,
        IssConfig {
            entry: 0x1000,
            vector_base: 0,
            trace_depth: 0,
        },
    );
    CpuSubsystem { port, stats }
}

// ---------------------------------------------------------------------
// shared bus
// ---------------------------------------------------------------------

/// Instantiate the bus monitor and the PLB over `masters` (label +
/// port, in priority order) and the memory slave.
pub fn shared_bus(
    sim: &mut Simulator,
    cr: ClockReset,
    masters: Vec<(String, MasterPort)>,
    mem_port: SlavePort,
    mem_bytes: usize,
    arbitration: ArbMode,
) -> Rc<RefCell<MonitorStats>> {
    let ports: Vec<MasterPort> = masters.iter().map(|(_, p)| *p).collect();
    let bus_monitor = PlbMonitor::instantiate(sim, "plb_monitor", cr.clk, cr.rst, masters);
    PlbBus::new(
        sim,
        "plb",
        cr.clk,
        cr.rst,
        PlbBusConfig {
            arbitration,
            ..Default::default()
        },
        ports,
        vec![(
            mem_port,
            AddressWindow {
                base: 0,
                len: mem_bytes as u32,
            },
        )],
    );
    bus_monitor
}
