//! Injectable faults — the case study's bug catalog.
//!
//! Each flag switches one defect into an otherwise-correct system. The
//! verification harness (crate `verif`) runs every bug under both
//! simulation methods and classifies detection, regenerating the paper's
//! Table III and Figure 5.

/// One nameable bug from the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bug {
    /// bug.hw.1 — the memory controller's burst-read path drives a stale
    /// first beat (static region; corrupts every DMA'd frame row).
    Hw1MemBurstWrap,
    /// bug.hw.2 — the VMUX-only `engine_signature` register is not
    /// initialised at reset; no engine is ever selected. Exists only in
    /// the Virtual-Multiplexing testbench: the canonical *false alarm*.
    Hw2SignatureUninit,
    /// bug.hw.3 — video-in DMA stops one burst early; the last pixel
    /// rows of every input frame are stale.
    Hw3VideoInShortDma,
    /// bug.hw.4 — the interrupt controller pulses `irq` for one cycle
    /// instead of holding it until acknowledged; a CPU mid-stall misses
    /// interrupts and the frame pipeline hangs.
    Hw4IrqPulse,
    /// bug.sw.1 — the software draws motion vectors onto the frame
    /// buffer the camera is currently overwriting, not the one just
    /// processed.
    Sw1DrawWrongBuffer,
    /// bug.sw.2 — the main loop caches the vectors-ready flag in a
    /// register instead of re-reading memory; it never observes
    /// completion.
    Sw2FlagCached,
    /// bug.dpr.1 — software never asserts the isolation control around
    /// reconfiguration; spurious region outputs reach the static design.
    Dpr1NoIsolation,
    /// bug.dpr.2 — the engine DCR registers were left *inside* the
    /// reconfigurable region; during reconfiguration they drive X into
    /// the daisy chain and corrupt every downstream access.
    Dpr2DcrInRr,
    /// bug.dpr.3 — IcapCTRL ignores the ICAP `ready` backpressure and
    /// overflows the configuration FIFO.
    Dpr3IgnoreIcapReady,
    /// bug.dpr.4 — IcapCTRL still uses the original design's
    /// point-to-point fixed-latency bus timing on the shared PLB
    /// (paper Table III).
    Dpr4P2pOnSharedBus,
    /// bug.dpr.5 — after the controller's word-size parameter changed,
    /// the software driver still computes the bitstream size with the
    /// old divisor and transfers only half the SimB (paper Table III).
    Dpr5StaleSizeCalc,
    /// bug.dpr.6a — software waits a fixed dummy-loop count tuned for
    /// the original (faster) configuration clock before resetting the
    /// engines; on the slower clock the reset lands mid-transfer.
    Dpr6aShortFixedWait,
    /// bug.dpr.6b — software does not wait for bitstream-transfer
    /// completion at all before resetting and starting the new engine
    /// (paper Table III).
    Dpr6bNoWaitTransfer,
    /// fault.trans.1 — a single-event upset flips one bit of one SimB
    /// word on the memory read path; the stored bitstream itself is
    /// untouched, so a retried transfer sees clean data.
    TransientSimbBitFlip,
    /// fault.trans.2 — the memory slave stalls one bitstream burst far
    /// past its normal latency (a refresh collision); the transfer
    /// eventually resumes on its own.
    TransientDmaStall,
    /// fault.trans.3 — the bus answers one bitstream read with a
    /// spurious error response (a one-off arbiter glitch).
    TransientBusError,
    /// fault.trans.4 — the ICAP drops `ready` for a stretch of cycles
    /// mid-configuration, stalling the write port.
    TransientIcapReadyDrop,
}

impl Bug {
    /// Every catalogued bug.
    pub const ALL: [Bug; 13] = [
        Bug::Hw1MemBurstWrap,
        Bug::Hw2SignatureUninit,
        Bug::Hw3VideoInShortDma,
        Bug::Hw4IrqPulse,
        Bug::Sw1DrawWrongBuffer,
        Bug::Sw2FlagCached,
        Bug::Dpr1NoIsolation,
        Bug::Dpr2DcrInRr,
        Bug::Dpr3IgnoreIcapReady,
        Bug::Dpr4P2pOnSharedBus,
        Bug::Dpr5StaleSizeCalc,
        Bug::Dpr6aShortFixedWait,
        Bug::Dpr6bNoWaitTransfer,
    ];

    /// Randomized *transient* faults used by the recovery campaign
    /// (`verif::recovery`). Deliberately **not** part of [`Bug::ALL`]:
    /// they are environmental upsets, not design defects, and the
    /// paper's Table III / Figure 5 totals must not count them.
    pub const TRANSIENTS: [Bug; 4] = [
        Bug::TransientSimbBitFlip,
        Bug::TransientDmaStall,
        Bug::TransientBusError,
        Bug::TransientIcapReadyDrop,
    ];

    /// The paper-style identifier, e.g. `"bug.dpr.6b"`.
    pub fn id(&self) -> &'static str {
        match self {
            Bug::Hw1MemBurstWrap => "bug.hw.1",
            Bug::Hw2SignatureUninit => "bug.hw.2",
            Bug::Hw3VideoInShortDma => "bug.hw.3",
            Bug::Hw4IrqPulse => "bug.hw.4",
            Bug::Sw1DrawWrongBuffer => "bug.sw.1",
            Bug::Sw2FlagCached => "bug.sw.2",
            Bug::Dpr1NoIsolation => "bug.dpr.1",
            Bug::Dpr2DcrInRr => "bug.dpr.2",
            Bug::Dpr3IgnoreIcapReady => "bug.dpr.3",
            Bug::Dpr4P2pOnSharedBus => "bug.dpr.4",
            Bug::Dpr5StaleSizeCalc => "bug.dpr.5",
            Bug::Dpr6aShortFixedWait => "bug.dpr.6a",
            Bug::Dpr6bNoWaitTransfer => "bug.dpr.6b",
            Bug::TransientSimbBitFlip => "fault.trans.1",
            Bug::TransientDmaStall => "fault.trans.2",
            Bug::TransientBusError => "fault.trans.3",
            Bug::TransientIcapReadyDrop => "fault.trans.4",
        }
    }

    /// The bug with the given paper-style identifier — the inverse of
    /// [`Bug::id`], covering the transient faults too. Used by the
    /// campaign wire protocol to parse submitted scenarios.
    pub fn from_id(id: &str) -> Option<Bug> {
        Bug::ALL
            .into_iter()
            .chain(Bug::TRANSIENTS)
            .find(|b| b.id() == id)
    }

    /// Short description for reports.
    pub fn describe(&self) -> &'static str {
        match self {
            Bug::Hw1MemBurstWrap => "burst reads drive a stale first beat",
            Bug::Hw2SignatureUninit => {
                "engine_signature register not reset (VMUX-only false alarm)"
            }
            Bug::Hw3VideoInShortDma => "video-in DMA end address one burst short",
            Bug::Hw4IrqPulse => "interrupt line pulses instead of holding level",
            Bug::Sw1DrawWrongBuffer => "vectors drawn onto the buffer being captured",
            Bug::Sw2FlagCached => "vectors-ready flag cached in a register",
            Bug::Dpr1NoIsolation => "isolation never asserted during reconfiguration",
            Bug::Dpr2DcrInRr => "engine DCR registers left inside the RR",
            Bug::Dpr3IgnoreIcapReady => "IcapCTRL ignores ICAP backpressure",
            Bug::Dpr4P2pOnSharedBus => "IcapCTRL point-to-point timing on shared PLB",
            Bug::Dpr5StaleSizeCalc => "driver computes bitstream size with stale parameter",
            Bug::Dpr6aShortFixedWait => "fixed wait tuned for the old (faster) config clock",
            Bug::Dpr6bNoWaitTransfer => "no wait for transfer completion before engine reset",
            Bug::TransientSimbBitFlip => "single-bit upset on one SimB word readout",
            Bug::TransientDmaStall => "memory stalls one bitstream burst past its latency",
            Bug::TransientBusError => "spurious bus-error response on one bitstream read",
            Bug::TransientIcapReadyDrop => "ICAP drops ready mid-configuration",
        }
    }

    /// The paper-level bug this catalog entry belongs to. dpr.6a and
    /// dpr.6b are variants of one engine-reset timing bug (the paper's
    /// Table III itself names "bug.dpr.6b"), so Figure 5's count of six
    /// DPR bugs counts them once.
    pub fn paper_group(&self) -> &'static str {
        match self {
            Bug::Dpr6aShortFixedWait | Bug::Dpr6bNoWaitTransfer => "bug.dpr.6",
            other => other.id(),
        }
    }

    /// Classification used by the Figure-5 timeline.
    pub fn class(&self) -> BugClass {
        match self {
            Bug::Hw1MemBurstWrap | Bug::Hw3VideoInShortDma | Bug::Hw4IrqPulse => BugClass::Static,
            Bug::Hw2SignatureUninit => BugClass::FalseAlarm,
            Bug::Sw1DrawWrongBuffer | Bug::Sw2FlagCached => BugClass::Software,
            Bug::TransientSimbBitFlip
            | Bug::TransientDmaStall
            | Bug::TransientBusError
            | Bug::TransientIcapReadyDrop => BugClass::Transient,
            _ => BugClass::Dpr,
        }
    }
}

/// Bug classes as the paper groups them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugClass {
    /// Static-region hardware bugs (found by both methods).
    Static,
    /// Software bugs.
    Software,
    /// Reconfiguration-machinery bugs (ReSim-only).
    Dpr,
    /// Simulation-environment artifacts (VMUX-only false alarms).
    FalseAlarm,
    /// Randomized transient upsets injected by the recovery campaign;
    /// recoverable by design, never counted in the paper's totals.
    Transient,
}

/// The set of bugs injected into one system build.
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    bugs: Vec<Bug>,
}

impl FaultSet {
    /// No injected bugs (the golden design).
    pub fn none() -> FaultSet {
        FaultSet::default()
    }

    /// A single injected bug.
    pub fn one(bug: Bug) -> FaultSet {
        FaultSet { bugs: vec![bug] }
    }

    /// Is `bug` injected?
    pub fn has(&self, bug: Bug) -> bool {
        self.bugs.contains(&bug)
    }

    /// Add a bug.
    pub fn with(mut self, bug: Bug) -> FaultSet {
        if !self.has(bug) {
            self.bugs.push(bug);
        }
        self
    }

    /// All injected bugs.
    pub fn bugs(&self) -> &[Bug] {
        &self.bugs
    }

    /// No bugs injected?
    pub fn is_empty(&self) -> bool {
        self.bugs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_id_inverts_id_for_the_whole_catalog() {
        for b in Bug::ALL.into_iter().chain(Bug::TRANSIENTS) {
            assert_eq!(Bug::from_id(b.id()), Some(b));
        }
        assert_eq!(Bug::from_id("bug.nope.9"), None);
    }

    #[test]
    fn catalog_ids_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for b in Bug::ALL {
            assert!(seen.insert(b.id()), "duplicate id {}", b.id());
            assert!(!b.describe().is_empty());
        }
        assert_eq!(Bug::ALL.len(), 13);
    }

    #[test]
    fn class_totals_match_the_paper() {
        // Figure 5: 3 static bugs, 2 software bugs, 6 DPR bugs, plus the
        // VMUX false alarm.
        let count = |c: BugClass| {
            Bug::ALL
                .iter()
                .filter(|b| b.class() == c)
                .map(|b| b.paper_group())
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert_eq!(count(BugClass::Static), 3);
        assert_eq!(count(BugClass::Software), 2);
        assert_eq!(count(BugClass::Dpr), 6);
        assert_eq!(count(BugClass::FalseAlarm), 1);
    }

    #[test]
    fn transients_stay_out_of_the_paper_catalog() {
        // The recovery campaign's transient upsets must not perturb the
        // Table III / Figure 5 bug accounting.
        let mut seen = std::collections::HashSet::new();
        for b in Bug::ALL.iter().chain(Bug::TRANSIENTS.iter()) {
            assert!(seen.insert(b.id()), "duplicate id {}", b.id());
        }
        for b in Bug::TRANSIENTS {
            assert!(!Bug::ALL.contains(&b));
            assert_eq!(b.class(), BugClass::Transient);
            assert!(b.id().starts_with("fault.trans."));
            assert!(!b.describe().is_empty());
        }
    }

    #[test]
    fn fault_set_operations() {
        let fs = FaultSet::none();
        assert!(!fs.has(Bug::Dpr1NoIsolation));
        let fs = fs.with(Bug::Dpr1NoIsolation).with(Bug::Dpr1NoIsolation);
        assert_eq!(fs.bugs().len(), 1);
        assert!(fs.has(Bug::Dpr1NoIsolation));
        assert!(FaultSet::one(Bug::Sw2FlagCached).has(Bug::Sw2FlagCached));
    }
}
