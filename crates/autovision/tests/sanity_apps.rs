//! The paper's week-3 bring-up milestones, replayed: a "hello world"
//! program and a "camera to VGA display" passthrough running on the full
//! platform with no engines and no reconfiguration involved.

use autovision::software::{generate_sanity, SanityApp};
use autovision::{AvSystem, SimMethod, SystemConfig};

fn cfg() -> SystemConfig {
    SystemConfig {
        method: SimMethod::Resim,
        width: 32,
        height: 24,
        n_frames: 3,
        payload_words: 64,
        ..Default::default()
    }
}

/// Swap the generated system software for a sanity program: assemble,
/// load over the standard image, and reset the CPU state by rebuilding.
fn run_sanity(app: SanityApp, budget: u64) -> AvSystem {
    let mut sys = AvSystem::build(cfg());
    let src = generate_sanity(app);
    let prog = ppc::assemble(&src, 0x1000).expect("sanity program assembles");
    // Overwrite the main image (same entry point).
    sys.mem.load_bytes(0x1000, &prog.to_bytes());
    // Halt-pad the gap so stale instructions beyond the new program
    // cannot execute if control falls through.
    let pad_start = 0x1000 + prog.words.len() as u32 * 4;
    for a in (pad_start..pad_start + 0x100).step_by(4) {
        sys.mem.write_u32(a, ppc::Instr::Trap.encode());
    }
    let chunk = 512 * autovision::CLK_PERIOD_PS;
    let mut cycles = 0u64;
    while !sys.cpu.borrow().halted && cycles < budget {
        sys.sim.run_for(chunk).unwrap();
        cycles += 512;
    }
    assert!(sys.cpu.borrow().halted, "sanity app did not halt");
    assert!(
        sys.cpu.borrow().error.is_none(),
        "{:?}",
        sys.cpu.borrow().error
    );
    sys
}

#[test]
fn hello_world_runs_on_the_platform() {
    let sys = run_sanity(SanityApp::HelloWorld { at: 0x9000 }, 100_000);
    assert_eq!(&sys.mem.dump_bytes(0x9000, 8), b"HELODPR!");
    assert!(!sys.sim.has_errors(), "{:?}", sys.sim.messages());
}

#[test]
fn camera_to_display_passthrough() {
    let frames = 3u32;
    let sys = run_sanity(
        SanityApp::CameraToDisplay {
            buffer: 0x40000,
            frames,
        },
        2_000_000,
    );
    let captured = sys.captured.borrow();
    assert_eq!(captured.len(), frames as usize);
    // The display shows exactly what the camera produced — no engines
    // touched anything.
    for (t, out) in captured.iter().enumerate() {
        assert_eq!(out, &sys.input_frames[t], "frame {t} differs");
    }
    assert!(!sys.sim.has_errors(), "{:?}", sys.sim.messages());
    // And the reconfiguration machinery stayed idle.
    assert_eq!(sys.backend_stats().icap.map(|i| i.swaps).unwrap_or(0), 0);
}
