//! Full-system runs of the Optical Flow Demonstrator under both
//! simulation methods: the golden design must process frames end-to-end
//! with bit-exact displayed output and no checker errors.

use autovision::{AvSystem, SimMethod, SystemConfig};

fn config(method: SimMethod) -> SystemConfig {
    SystemConfig {
        method,
        width: 32,
        height: 24,
        n_frames: 2,
        payload_words: 64,
        ..Default::default()
    }
}

fn run_clean(method: SimMethod) {
    let mut sys = AvSystem::build(config(method));
    let outcome = sys.run(2_000_000);
    assert!(
        !outcome.hung,
        "{method:?}: hung after {} cycles with {} frames; messages: {:#?}",
        outcome.cycles,
        outcome.frames_captured,
        sys.sim.messages()
    );
    assert_eq!(outcome.frames_captured, 2, "{method:?}");
    assert!(
        !sys.sim.has_errors(),
        "{method:?}: checker errors: {:#?}",
        sys.sim.messages()
    );
    let golden = sys.golden_output();
    let captured = sys.captured.borrow();
    for (t, (got, want)) in captured.iter().zip(&golden).enumerate() {
        assert_eq!(
            got.differing_pixels(want),
            0,
            "{method:?}: frame {t} mismatches golden ({} px, mad {:.3})",
            got.differing_pixels(want),
            got.mean_abs_diff(want)
        );
    }
    assert_eq!(sys.captured_poison.borrow().iter().sum::<usize>(), 0);
}

#[test]
fn resim_clean_system_processes_frames_bit_exactly() {
    run_clean(SimMethod::Resim);
}

#[test]
fn vmux_clean_system_processes_frames_bit_exactly() {
    run_clean(SimMethod::Vmux);
}

#[test]
fn resim_performs_two_reconfigurations_per_frame() {
    let mut sys = AvSystem::build(config(SimMethod::Resim));
    let outcome = sys.run(2_000_000);
    assert!(!outcome.hung);
    let stats = sys.backend_stats();
    let icap = stats.icap.as_ref().unwrap();
    // Two swaps per frame (CIE->ME and ME->CIE).
    assert_eq!(icap.swaps, 2 * 2, "swaps");
    assert_eq!(icap.desyncs, 2 * 2, "completed bitstreams");
    assert_eq!(stats.regions[0].swaps, 2 * 2);
    assert_eq!(icap.words_dropped, 0);
    // Every SimB word made it through the controller.
    let expected_words = 2 * 2 * sys.layout.simb_me.1 as u64;
    assert_eq!(icap.words_accepted, expected_words);
}

#[test]
fn vmux_never_exercises_the_reconfiguration_machinery() {
    let mut sys = AvSystem::build(config(SimMethod::Vmux));
    let outcome = sys.run(2_000_000);
    assert!(!outcome.hung);
    assert!(
        sys.backend_stats().icap.is_none(),
        "no ICAP artifact in the VMUX testbench"
    );
    // The IcapCTRL module is instantiated but idle: its DCR status never
    // left the reset state.
    // (Software never programs it under VMUX — the paper's point.)
    assert_eq!(sys.sim.toggle_count_prefix("icapctrl.plb.req"), 0);
}

#[test]
fn cpu_executes_isrs_and_main_loop_work() {
    let mut sys = AvSystem::build(config(SimMethod::Resim));
    let outcome = sys.run(2_000_000);
    assert!(!outcome.hung);
    let cpu = sys.cpu.borrow();
    assert!(
        cpu.interrupts >= 2 * 5 - 1,
        "ISR per pipeline step: {}",
        cpu.interrupts
    );
    assert!(cpu.isr_cycles > 0);
    assert!(cpu.instret > 1_000);
    assert!(cpu.error.is_none(), "{:?}", cpu.error);
}

#[test]
fn reconfiguration_time_is_bitstream_transfer_time() {
    // Same system, longer SimB => later completion (the delay VMUX
    // models as zero). Measured end-to-end on the full design.
    let cycles_for = |payload: usize| -> u64 {
        let mut cfg = config(SimMethod::Resim);
        cfg.payload_words = payload;
        let mut sys = AvSystem::build(cfg);
        let out = sys.run(4_000_000);
        assert!(!out.hung, "payload {payload} hung");
        out.cycles
    };
    let short = cycles_for(32);
    let long = cycles_for(2048);
    // 4 transfers of (2048-32) extra words at >= cfg_divider cycles/word.
    assert!(
        long > short + 4 * 2_000,
        "longer bitstreams must visibly delay the pipeline: {short} vs {long}"
    );
}
