//! Builder validation — one test per [`ConfigError`] variant — and the
//! [`MemLayout::for_config`] boundary cases the system depends on.

use autovision::{
    Bug, ConfigError, EngineKind, FaultSet, MemLayout, ModuleSpec, RecoveryPolicy, RegionSpec,
    SystemConfig, MODULE_CIE, MODULE_ME, RR_ID, RR_ID_B,
};

fn region(id: u8, modules: Vec<ModuleSpec>, initial: Option<u8>) -> RegionSpec {
    RegionSpec {
        id,
        boundary: "rr".into(),
        modules,
        initial,
    }
}

#[test]
fn rejects_width_not_a_positive_multiple_of_4() {
    assert_eq!(
        SystemConfig::builder().width(30).build().unwrap_err(),
        ConfigError::WidthNotMultipleOf4 { width: 30 }
    );
    assert_eq!(
        SystemConfig::builder().width(0).build().unwrap_err(),
        ConfigError::WidthNotMultipleOf4 { width: 0 }
    );
}

#[test]
fn rejects_zero_height() {
    assert_eq!(
        SystemConfig::builder().height(0).build().unwrap_err(),
        ConfigError::ZeroHeight
    );
}

#[test]
fn rejects_zero_frames() {
    assert_eq!(
        SystemConfig::builder().n_frames(0).build().unwrap_err(),
        ConfigError::ZeroFrames
    );
}

#[test]
fn rejects_zero_cfg_divider() {
    assert_eq!(
        SystemConfig::builder().cfg_divider(0).build().unwrap_err(),
        ConfigError::ZeroDivider
    );
}

#[test]
fn rejects_zero_payload() {
    assert_eq!(
        SystemConfig::builder()
            .payload_words(0)
            .build()
            .unwrap_err(),
        ConfigError::ZeroPayload
    );
}

#[test]
fn rejects_an_empty_region_list() {
    assert_eq!(
        SystemConfig::builder().regions(vec![]).build().unwrap_err(),
        ConfigError::NoRegions
    );
}

#[test]
fn rejects_a_duplicated_region_id() {
    let regions = vec![
        region(RR_ID, vec![ModuleSpec::census(MODULE_CIE)], None),
        region(RR_ID, vec![ModuleSpec::matching(MODULE_ME)], None),
    ];
    assert_eq!(
        SystemConfig::builder()
            .regions(regions)
            .build()
            .unwrap_err(),
        ConfigError::DuplicateRegionId { id: RR_ID }
    );
}

#[test]
fn rejects_a_region_without_modules() {
    assert_eq!(
        SystemConfig::builder()
            .regions(vec![region(RR_ID, vec![], None)])
            .build()
            .unwrap_err(),
        ConfigError::EmptyRegion { id: RR_ID }
    );
}

#[test]
fn rejects_a_duplicated_module_id() {
    let modules = vec![
        ModuleSpec::census(MODULE_CIE),
        ModuleSpec::matching(MODULE_CIE),
    ];
    assert_eq!(
        SystemConfig::builder()
            .regions(vec![region(RR_ID, modules, None)])
            .build()
            .unwrap_err(),
        ConfigError::DuplicateModuleId {
            region: RR_ID,
            module: MODULE_CIE
        }
    );
}

#[test]
fn rejects_an_initial_module_outside_the_region() {
    let modules = vec![
        ModuleSpec::census(MODULE_CIE),
        ModuleSpec::matching(MODULE_ME),
    ];
    assert_eq!(
        SystemConfig::builder()
            .regions(vec![region(RR_ID, modules, Some(0x7F))])
            .build()
            .unwrap_err(),
        ConfigError::UnknownInitialModule {
            region: RR_ID,
            module: 0x7F
        }
    );
}

#[test]
fn rejects_a_topology_the_software_cannot_drive() {
    // A lone census-only region matches neither the time-shared single
    // region nor the census+matching split.
    assert_eq!(
        SystemConfig::builder()
            .regions(vec![region(
                RR_ID,
                vec![ModuleSpec::census(MODULE_CIE)],
                None
            )])
            .build()
            .unwrap_err(),
        ConfigError::UnsupportedTopology
    );
}

#[test]
fn rejects_split_features_the_software_does_not_implement() {
    assert_eq!(
        SystemConfig::builder()
            .regions(SystemConfig::split_regions())
            .faults(FaultSet::one(Bug::Dpr1NoIsolation))
            .build()
            .unwrap_err(),
        ConfigError::UnsupportedInSplit {
            feature: "injected bugs"
        }
    );
    assert_eq!(
        SystemConfig::builder()
            .regions(SystemConfig::split_regions())
            .recovery(RecoveryPolicy {
                enabled: true,
                ..RecoveryPolicy::default()
            })
            .build()
            .unwrap_err(),
        ConfigError::UnsupportedInSplit {
            feature: "the recovery policy"
        }
    );
}

// --- MemLayout::for_config boundary cases -------------------------------

#[test]
fn layout_orders_buffers_without_overlap() {
    let cfg = SystemConfig::default();
    let l = MemLayout::for_config(&cfg);
    let fb = (cfg.width * cfg.height) as u32;
    assert!(l.in0 + 2 * fb <= l.cen0, "input buffers overlap census");
    assert!(l.cen0 + 2 * fb <= l.vecs, "census buffers overlap vectors");
    assert!(
        l.vecs + 0x8000 <= l.simbs[0].addr,
        "vector buffer overlaps the SimB flash"
    );
    for pair in l.simbs.windows(2) {
        assert!(
            pair[0].addr + 4 * pair[0].words <= pair[1].addr,
            "SimB images overlap: {pair:?}"
        );
    }
    let last = l.simbs.last().unwrap();
    assert!(l.mem_bytes as u32 >= last.addr + 4 * last.words);
}

#[test]
fn layout_keeps_the_memory_floor_for_tiny_frames() {
    let cfg = SystemConfig::builder()
        .width(4)
        .height(1)
        .n_frames(1)
        .payload_words(1)
        .build()
        .unwrap();
    let l = MemLayout::for_config(&cfg);
    assert_eq!(l.mem_bytes, 0x0020_0000, "minimum memory window");
    // Every address stays 4 KiB aligned even at degenerate sizes.
    for a in [l.in0, l.cen0, l.vecs, l.simbs[0].addr] {
        assert_eq!(a % 0x1000, 0, "{a:#x} is not page aligned");
    }
}

#[test]
fn layout_grows_past_the_floor_for_huge_payloads() {
    let cfg = SystemConfig::builder()
        .payload_words(300_000)
        .build()
        .unwrap();
    let l = MemLayout::for_config(&cfg);
    assert!(
        l.mem_bytes > 0x0020_0000,
        "two 300 K-word images must not fit the 2 MiB floor"
    );
    let last = l.simbs.last().unwrap();
    assert!(l.mem_bytes as u32 >= last.addr + 4 * last.words);
}

#[test]
fn layout_charges_the_integrity_packet_to_every_simb() {
    let plain = MemLayout::for_config(&SystemConfig::default());
    let cfg = SystemConfig {
        recovery: RecoveryPolicy {
            enabled: true,
            ..RecoveryPolicy::default()
        },
        ..SystemConfig::default()
    };
    let checked = MemLayout::for_config(&cfg);
    for (p, c) in plain.simbs.iter().zip(&checked.simbs) {
        assert_eq!(c.words, p.words + 2, "integrity packet is two words");
    }
}

#[test]
fn split_layout_keeps_the_legacy_flash_order() {
    let cfg = SystemConfig {
        regions: SystemConfig::split_regions(),
        ..SystemConfig::default()
    };
    let l = MemLayout::for_config(&cfg);
    // ME image first, then CIE — the single-region flash order,
    // reproduced so the software's SimB table stays stable.
    assert_eq!(l.simbs.len(), 2);
    assert_eq!(l.simbs[0].kind, EngineKind::Matching);
    assert_eq!(l.simbs[0].rr_id, RR_ID_B);
    assert_eq!(l.simbs[1].kind, EngineKind::Census);
    assert_eq!(l.simbs[1].rr_id, RR_ID);
    assert_eq!(l.simb_me, (l.simbs[0].addr, l.simbs[0].words));
    assert_eq!(l.simb_cie, (l.simbs[1].addr, l.simbs[1].words));
}
