//! End-to-end runs of the two-region split-pipeline demonstrator: CIE
//! and ME in separate reconfigurable regions, reconfigured on
//! alternating half-frames. The displayed output must stay bit-exact
//! against the same golden model as the single-region system, and under
//! ReSim each region must see exactly one partial reconfiguration per
//! frame behind its own isolation window.

use autovision::{AvSystem, SimMethod, SystemConfig};

const N_FRAMES: usize = 2;

fn config(method: SimMethod) -> SystemConfig {
    SystemConfig {
        method,
        width: 32,
        height: 24,
        n_frames: N_FRAMES,
        payload_words: 64,
        regions: SystemConfig::split_regions(),
        ..Default::default()
    }
}

fn run_clean(method: SimMethod) -> AvSystem {
    let mut sys = AvSystem::build(config(method));
    let outcome = sys.run(4_000_000);
    assert!(
        !outcome.hung,
        "{method:?}: hung after {} cycles with {} frames; messages: {:#?}",
        outcome.cycles,
        outcome.frames_captured,
        sys.sim.messages()
    );
    assert_eq!(outcome.frames_captured, N_FRAMES, "{method:?}");
    assert!(
        !sys.sim.has_errors(),
        "{method:?}: checker errors: {:#?}",
        sys.sim.messages()
    );
    let golden = sys.golden_output();
    {
        let captured = sys.captured.borrow();
        for (t, (got, want)) in captured.iter().zip(&golden).enumerate() {
            assert_eq!(
                got.differing_pixels(want),
                0,
                "{method:?}: frame {t} mismatches golden ({} px, mad {:.3})",
                got.differing_pixels(want),
                got.mean_abs_diff(want)
            );
        }
        assert_eq!(sys.captured_poison.borrow().iter().sum::<usize>(), 0);
    }
    sys
}

#[test]
fn resim_split_pipeline_processes_frames_bit_exactly() {
    run_clean(SimMethod::Resim);
}

#[test]
fn vmux_split_pipeline_processes_frames_bit_exactly() {
    let sys = run_clean(SimMethod::Vmux);
    // Both engines are permanently resident: no ICAP artifact, zeroed
    // region counters, and the IcapCTRL bus master never wakes up.
    let stats = sys.backend_stats();
    assert!(stats.icap.is_none());
    assert_eq!(stats.total_swaps(), 0);
    assert_eq!(sys.sim.toggle_count_prefix("icapctrl.plb.req"), 0);
}

#[test]
fn resim_split_reconfigures_each_region_once_per_frame() {
    let sys = run_clean(SimMethod::Resim);
    let n = N_FRAMES as u64;

    // One shared ICAP streams both regions' images: two swaps per frame
    // system-wide, but each region's portal sees exactly one.
    let stats = sys.backend_stats();
    let icap = stats.icap.as_ref().expect("ReSim build has an ICAP");
    assert_eq!(icap.swaps, 2 * n, "system-wide swaps");
    assert_eq!(icap.desyncs, 2 * n, "completed bitstreams");
    assert_eq!(icap.words_dropped, 0);
    assert_eq!(stats.regions.len(), 2, "one portal per region");
    assert_eq!(stats.regions[0].swaps, n, "region A (CIE) swaps");
    assert_eq!(stats.regions[1].swaps, n, "region B (ME) swaps");
    let expected_words = n * (sys.layout.simb_me.1 + sys.layout.simb_cie.1) as u64;
    assert_eq!(icap.words_accepted, expected_words);

    // Isolation windows: each frame isolates B during its ME reload
    // (first half) and A during its CIE reload (second half) — one
    // rising and one falling edge per region per frame, nothing more.
    assert_eq!(sys.probes.regions.len(), 2);
    assert_eq!(
        sys.sim.toggle_count_prefix("isolate"),
        2 * n,
        "region A isolation window per frame"
    );
    assert_eq!(
        sys.sim.toggle_count_prefix("rrb.isolate"),
        2 * n,
        "region B isolation window per frame"
    );
}

#[test]
fn split_reconfiguration_hides_behind_compute() {
    // The point of the split pipeline: reconfiguration overlaps the
    // other region's compute half instead of serialising with it.
    // Stretching the bitstream by the same amount must cost the split
    // system far less wall-clock than the time-shared system, where
    // every extra word sits on the frame's critical path.
    let cycles_for = |split: bool, payload: usize| -> u64 {
        let mut cfg = SystemConfig {
            method: SimMethod::Resim,
            width: 64,
            height: 48,
            n_frames: N_FRAMES,
            payload_words: payload,
            ..Default::default()
        };
        if split {
            cfg.regions = SystemConfig::split_regions();
        }
        let mut sys = AvSystem::build(cfg);
        let out = sys.run(16_000_000);
        assert!(!out.hung, "split={split} payload={payload} hung");
        assert_eq!(out.frames_captured, N_FRAMES);
        out.cycles
    };
    let single_extra = cycles_for(false, 1024).saturating_sub(cycles_for(false, 32));
    let split_extra = cycles_for(true, 1024).saturating_sub(cycles_for(true, 32));
    assert!(
        2 * split_extra < single_extra,
        "overlapped reconfiguration must hide most of the bitstream \
         stretch the time-shared system pays in full: \
         split +{split_extra} vs single-region +{single_extra} cycles"
    );
}
