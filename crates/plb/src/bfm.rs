//! A scripted bus-functional-model master for testing the bus fabric.

use crate::dma::{DmaDriver, DmaEvent, Handshake};
use crate::port::MasterPort;
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One scripted operation.
#[derive(Debug, Clone)]
pub enum BfmOp {
    /// Write `data` starting at `addr`.
    Write {
        /// Start byte address.
        addr: u32,
        /// Beats to write.
        data: Vec<u32>,
    },
    /// Read `words` beats from `addr`.
    Read {
        /// Start byte address.
        addr: u32,
        /// Beats to read.
        words: u32,
    },
    /// Stay idle for `cycles` clock cycles.
    Delay {
        /// Idle cycles.
        cycles: u32,
    },
}

/// Results shared with the testbench.
#[derive(Debug, Default)]
pub struct BfmLog {
    /// Data captured by each completed read, in script order.
    pub reads: Vec<Vec<u32>>,
    /// Completed operation count (writes + reads).
    pub completed: usize,
    /// Bus errors observed.
    pub errors: usize,
}

/// A scripted PLB master: executes its operations in order, one at a
/// time, and records results into a shared [`BfmLog`].
pub struct TestMaster {
    clk: SignalId,
    rst: SignalId,
    dma: DmaDriver,
    script: VecDeque<BfmOp>,
    delay_left: u32,
    log: Rc<RefCell<BfmLog>>,
}

impl TestMaster {
    /// Build and register a scripted master; returns its port and log.
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        handshake: Handshake,
        max_burst: u32,
        script: Vec<BfmOp>,
    ) -> (MasterPort, Rc<RefCell<BfmLog>>) {
        let port = MasterPort::alloc(sim, name);
        let log = Rc::new(RefCell::new(BfmLog::default()));
        let tm = TestMaster {
            clk,
            rst,
            dma: DmaDriver::new(port, handshake, max_burst),
            script: script.into(),
            delay_left: 0,
            log: log.clone(),
        };
        let comp = sim.add_component(name, CompKind::Vip, Box::new(tm), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        (port, log)
    }
}

impl Component for TestMaster {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            self.dma.reset(ctx);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        if let Some(ev) = self.dma.step(ctx) {
            let mut log = self.log.borrow_mut();
            match ev {
                DmaEvent::WriteDone => log.completed += 1,
                DmaEvent::ReadDone => {
                    log.reads.push(self.dma.take_read_data());
                    log.completed += 1;
                }
                DmaEvent::Error => log.errors += 1,
                // The BFM never cancels transfers.
                DmaEvent::Aborted => {}
            }
        }
        if self.dma.idle() {
            if self.delay_left > 0 {
                self.delay_left -= 1;
                return;
            }
            match self.script.pop_front() {
                Some(BfmOp::Write { addr, data }) => self.dma.start_write(addr, data),
                Some(BfmOp::Read { addr, words }) => self.dma.start_read(addr, words),
                Some(BfmOp::Delay { cycles }) => self.delay_left = cycles,
                // Script exhausted and the DMA engine idle: done forever
                // (short of a reset).
                None => ctx.park_until(&[self.rst], &[]),
            }
        }
    }
}
