//! Bus protocol checker.
//!
//! The monitor is a verification IP: it never drives the bus, it only
//! observes. It reports kernel [`rtlsim::Severity::Error`] diagnostics
//! for:
//!
//! * `X`/`Z` on any master-driven control signal (`req`, `wvalid`,
//!   `rready`) — the signature of a reconfigurable region leaking
//!   spurious values into the static region past a broken isolation
//!   module;
//! * an `X` address or size presented with `req`;
//! * a master driving `wvalid` while not granted (the fixed-latency
//!   point-to-point assumption colliding with a shared bus);
//! * write data containing `X` while `wvalid` is asserted.
//!
//! Each distinct violation per master is reported once to keep logs
//! readable; the total count is still available via
//! [`MonitorStats::violations`].

use crate::port::MasterPort;
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

/// Counters shared with the testbench.
#[derive(Debug, Default, Clone)]
pub struct MonitorStats {
    /// Total protocol violations observed (all kinds, all masters).
    pub violations: u64,
    /// Violations caused by unknown (`X`/`Z`) values.
    pub x_violations: u64,
    /// Ungranted-drive violations.
    pub ungranted_drives: u64,
}

/// The checker component. Attach with [`PlbMonitor::instantiate`].
pub struct PlbMonitor {
    clk: SignalId,
    rst: SignalId,
    masters: Vec<(String, MasterPort)>,
    reported: Vec<[bool; 5]>,
    /// Per master: a request is outstanding and no address ack has been
    /// observed yet, so data valids are premature.
    awaiting_ack: Vec<bool>,
    stats: Rc<RefCell<MonitorStats>>,
    /// Every signal the checks read, i.e. the park wake set.
    wake: Vec<SignalId>,
    /// A violation counted during the current eval; parking would change
    /// the per-cycle violation count of a persistent condition.
    fired: bool,
}

impl PlbMonitor {
    /// Build and register a monitor over the given masters; returns the
    /// shared statistics handle.
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        masters: Vec<(String, MasterPort)>,
    ) -> Rc<RefCell<MonitorStats>> {
        let stats = Rc::new(RefCell::new(MonitorStats::default()));
        let mut wake: Vec<SignalId> = vec![rst];
        for (_, p) in &masters {
            wake.extend_from_slice(&[
                p.req, p.addr, p.size, p.wvalid, p.wdata, p.rready, p.gnt, p.addr_ack,
            ]);
        }
        let mon = PlbMonitor {
            clk,
            rst,
            reported: vec![[false; 5]; masters.len()],
            awaiting_ack: vec![false; masters.len()],
            masters,
            stats: stats.clone(),
            wake,
            fired: false,
        };
        let comp = sim.add_component(name, CompKind::Vip, Box::new(mon), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        stats
    }

    /// Count a violation; returns true the first time this (master,
    /// kind) fires, so the caller can emit the one diagnostic without
    /// paying for message formatting on every cycle of a persistent
    /// violation.
    fn flag(&mut self, midx: usize, kind: usize, is_x: bool) -> bool {
        self.fired = true;
        {
            let mut s = self.stats.borrow_mut();
            s.violations += 1;
            if is_x {
                s.x_violations += 1;
            }
            if kind == 3 {
                s.ungranted_drives += 1;
            }
        }
        if !self.reported[midx][kind] {
            self.reported[midx][kind] = true;
            true
        } else {
            false
        }
    }
}

impl Component for PlbMonitor {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) || !ctx.rose(self.clk) {
            return;
        }
        self.fired = false;
        for i in 0..self.masters.len() {
            let p = self.masters[i].1;
            // Unknown on control signals.
            if (ctx.get(p.req).has_unknown()
                || ctx.get(p.wvalid).has_unknown()
                || ctx.get(p.rready).has_unknown())
                && self.flag(i, 0, true)
            {
                ctx.error(format!(
                    "master '{}': X/Z on bus control signal",
                    self.masters[i].0
                ));
            }
            // Unknown address/size while requesting.
            if ctx.is_high(p.req)
                && (ctx.get(p.addr).has_unknown() || ctx.get(p.size).has_unknown())
                && self.flag(i, 1, true)
            {
                ctx.error(format!(
                    "master '{}': request with X/Z address or size",
                    self.masters[i].0
                ));
            }
            // Unknown write data while claiming it is valid.
            if ctx.is_high(p.wvalid) && ctx.get(p.wdata).has_unknown() && self.flag(i, 2, true) {
                ctx.error(format!(
                    "master '{}': X/Z write data with wvalid",
                    self.masters[i].0
                ));
            }
            // Driving data without owning the bus.
            if ctx.is_high(p.wvalid) && !ctx.is_high(p.gnt) && self.flag(i, 3, false) {
                ctx.error(format!(
                    "master '{}': wvalid asserted without bus grant",
                    self.masters[i].0
                ));
            }
            // Track the address phase: data valids before the slave has
            // acknowledged the address are premature (the fixed-latency
            // point-to-point assumption colliding with a shared bus —
            // bug.dpr.4's signature).
            if ctx.is_high(p.addr_ack) {
                self.awaiting_ack[i] = false;
            } else if ctx.is_high(p.req) {
                self.awaiting_ack[i] = true;
            }
            if self.awaiting_ack[i]
                && !ctx.is_high(p.addr_ack)
                && (ctx.is_high(p.wvalid) || ctx.is_high(p.rready))
                && self.flag(i, 4, false)
            {
                ctx.error(format!(
                    "master '{}': data phase started before address ack",
                    self.masters[i].0
                ));
            }
        }
        // Clean cycle: the checks are pure functions of the observed
        // signals, so nothing can fire until one of them changes.
        if !self.fired {
            ctx.park_until(&self.wake, &[]);
        }
    }
}
