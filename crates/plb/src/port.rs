//! Signal bundles for bus attachment points.

use crate::{ADDR_BITS, DATA_BITS, SIZE_BITS};
use rtlsim::{SignalId, Simulator};

/// The signals a bus master exposes.
///
/// The first group is driven by the master, the second by the bus. A
/// master that sits inside a reconfigurable region drives these through
/// the isolation module, so during reconfiguration the bus-facing side
/// can be clamped while the region-side carries `X`.
#[derive(Debug, Clone, Copy)]
pub struct MasterPort {
    // Master-driven.
    /// Transaction request.
    pub req: SignalId,
    /// Read (1) / write (0) select, valid while `req`.
    pub rnw: SignalId,
    /// Byte address of the first beat, valid while `req`.
    pub addr: SignalId,
    /// Number of 32-bit beats (1..=255), valid while `req`.
    pub size: SignalId,
    /// Write-data valid.
    pub wvalid: SignalId,
    /// Write data for the current beat.
    pub wdata: SignalId,
    /// Master ready to accept read data.
    pub rready: SignalId,
    // Bus-driven.
    /// Arbiter grant (held for the whole transfer).
    pub gnt: SignalId,
    /// Slave accepted the address phase.
    pub addr_ack: SignalId,
    /// Slave ready to accept the current write beat.
    pub wready: SignalId,
    /// Read data valid.
    pub rvalid: SignalId,
    /// Read data for the current beat.
    pub rdata: SignalId,
    /// One-cycle pulse: transfer finished.
    pub complete: SignalId,
    /// Transfer aborted (decode miss or slave error); pulses with
    /// `complete`.
    pub err: SignalId,
}

impl MasterPort {
    /// Allocate the port's signals under `prefix` (e.g. `"plb.icap"`).
    /// Master-driven outputs start at 0 so an idle, never-evaluated
    /// master does not wedge arbitration with `X` requests.
    pub fn alloc(sim: &mut Simulator, prefix: &str) -> MasterPort {
        MasterPort {
            req: sim.signal_init(format!("{prefix}.req"), 1, 0),
            rnw: sim.signal_init(format!("{prefix}.rnw"), 1, 0),
            addr: sim.signal_init(format!("{prefix}.addr"), ADDR_BITS, 0),
            size: sim.signal_init(format!("{prefix}.size"), SIZE_BITS, 0),
            wvalid: sim.signal_init(format!("{prefix}.wvalid"), 1, 0),
            wdata: sim.signal_init(format!("{prefix}.wdata"), DATA_BITS, 0),
            rready: sim.signal_init(format!("{prefix}.rready"), 1, 0),
            gnt: sim.signal_init(format!("{prefix}.gnt"), 1, 0),
            addr_ack: sim.signal_init(format!("{prefix}.addr_ack"), 1, 0),
            wready: sim.signal_init(format!("{prefix}.wready"), 1, 0),
            rvalid: sim.signal_init(format!("{prefix}.rvalid"), 1, 0),
            rdata: sim.signal_init(format!("{prefix}.rdata"), DATA_BITS, 0),
            complete: sim.signal_init(format!("{prefix}.complete"), 1, 0),
            err: sim.signal_init(format!("{prefix}.err"), 1, 0),
        }
    }

    /// The master-driven signals, in a stable order (used for isolation
    /// clamping and error injection at a region boundary).
    pub fn master_driven(&self) -> [SignalId; 7] {
        [
            self.req,
            self.rnw,
            self.addr,
            self.size,
            self.wvalid,
            self.wdata,
            self.rready,
        ]
    }

    /// The bus-driven signals, in a stable order.
    pub fn bus_driven(&self) -> [SignalId; 8] {
        [
            self.gnt,
            self.addr_ack,
            self.wready,
            self.rvalid,
            self.rdata,
            self.complete,
            self.err,
            self.gnt, // padding slot kept for width symmetry
        ]
    }
}

/// The signals a bus slave exposes. First group driven by the bus,
/// second by the slave.
#[derive(Debug, Clone, Copy)]
pub struct SlavePort {
    // Bus-driven.
    /// This slave is selected for the current transfer.
    pub sel: SignalId,
    /// Read/write of the selected transfer.
    pub a_rnw: SignalId,
    /// Start address of the selected transfer.
    pub a_addr: SignalId,
    /// Beat count of the selected transfer.
    pub a_size: SignalId,
    /// Write-beat valid (relayed from the granted master).
    pub wvalid: SignalId,
    /// Write data (relayed from the granted master).
    pub wdata: SignalId,
    /// Master ready for read data (relayed).
    pub rready: SignalId,
    // Slave-driven.
    /// Slave accepts the address phase.
    pub aready: SignalId,
    /// Slave ready for the current write beat.
    pub wready: SignalId,
    /// Read data valid.
    pub rvalid: SignalId,
    /// Read data.
    pub rdata: SignalId,
    /// One-cycle completion pulse.
    pub complete: SignalId,
    /// Error pulse (with `complete`).
    pub err: SignalId,
}

impl SlavePort {
    /// Allocate the port's signals under `prefix` (e.g. `"plb.mem"`).
    pub fn alloc(sim: &mut Simulator, prefix: &str) -> SlavePort {
        SlavePort {
            sel: sim.signal_init(format!("{prefix}.sel"), 1, 0),
            a_rnw: sim.signal_init(format!("{prefix}.a_rnw"), 1, 0),
            a_addr: sim.signal_init(format!("{prefix}.a_addr"), ADDR_BITS, 0),
            a_size: sim.signal_init(format!("{prefix}.a_size"), SIZE_BITS, 0),
            wvalid: sim.signal_init(format!("{prefix}.wvalid"), 1, 0),
            wdata: sim.signal_init(format!("{prefix}.wdata"), DATA_BITS, 0),
            rready: sim.signal_init(format!("{prefix}.rready"), 1, 0),
            aready: sim.signal_init(format!("{prefix}.aready"), 1, 0),
            wready: sim.signal_init(format!("{prefix}.wready"), 1, 0),
            rvalid: sim.signal_init(format!("{prefix}.rvalid"), 1, 0),
            rdata: sim.signal_init(format!("{prefix}.rdata"), DATA_BITS, 0),
            complete: sim.signal_init(format!("{prefix}.complete"), 1, 0),
            err: sim.signal_init(format!("{prefix}.err"), 1, 0),
        }
    }
}
