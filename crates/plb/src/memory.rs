//! Main-memory slave with wait states and X-poison tracking.

use crate::port::SlavePort;
use rtlsim::{CompKind, Component, Ctx, Lv, SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

/// Byte-addressable memory shared between the simulation and the
/// testbench (for loading programs, frames and bitstreams, and for
/// inspecting results).
///
/// Every 32-bit word carries a *poison* flag: a word written while any
/// of its bits were `X`/`Z` is poisoned, and reads of poisoned words
/// return all-`X`. This lets corruption caused by a broken isolation
/// module survive a round trip through memory and surface later in a
/// scoreboard comparison, just as it would on real hardware as garbage
/// pixel data.
#[derive(Clone)]
pub struct SharedMem {
    inner: Rc<RefCell<MemInner>>,
}

struct MemInner {
    data: Vec<u8>,
    poison: Vec<bool>, // one flag per 32-bit word
}

impl SharedMem {
    /// Allocate `bytes` of zeroed memory (rounded up to a word).
    pub fn new(bytes: usize) -> SharedMem {
        let bytes = (bytes + 3) & !3;
        SharedMem {
            inner: Rc::new(RefCell::new(MemInner {
                data: vec![0; bytes],
                poison: vec![false; bytes / 4],
            })),
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.inner.borrow().data.len()
    }

    /// True if the memory has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read a little-endian 32-bit word. Returns `None` (poisoned) if the
    /// word was last written with unknown bits. Panics if out of range or
    /// unaligned.
    pub fn read_u32(&self, addr: u32) -> Option<u32> {
        let inner = self.inner.borrow();
        let a = addr as usize;
        assert!(a.is_multiple_of(4), "unaligned read at {addr:#010x}");
        assert!(
            a + 4 <= inner.data.len(),
            "read out of range at {addr:#010x}"
        );
        if inner.poison[a / 4] {
            return None;
        }
        let bytes = inner.data[a..a + 4]
            .try_into()
            .expect("range-checked 4-byte slice");
        Some(u32::from_le_bytes(bytes))
    }

    /// Write a little-endian 32-bit word and clear its poison flag.
    pub fn write_u32(&self, addr: u32, v: u32) {
        let mut inner = self.inner.borrow_mut();
        let a = addr as usize;
        assert!(a.is_multiple_of(4), "unaligned write at {addr:#010x}");
        assert!(
            a + 4 <= inner.data.len(),
            "write out of range at {addr:#010x}"
        );
        inner.data[a..a + 4].copy_from_slice(&v.to_le_bytes());
        inner.poison[a / 4] = false;
    }

    /// Mark a word as poisoned (used by the bus-side write path when the
    /// incoming data had unknown bits).
    pub fn poison_word(&self, addr: u32) {
        let mut inner = self.inner.borrow_mut();
        let a = addr as usize / 4;
        inner.poison[a] = true;
    }

    /// Is the word at `addr` poisoned?
    pub fn is_poisoned(&self, addr: u32) -> bool {
        self.inner.borrow().poison[addr as usize / 4]
    }

    /// Number of poisoned words in the whole memory.
    pub fn poisoned_words(&self) -> usize {
        self.inner.borrow().poison.iter().filter(|p| **p).count()
    }

    /// Bulk-load bytes at `addr` (testbench side; clears poison).
    pub fn load_bytes(&self, addr: u32, bytes: &[u8]) {
        let mut inner = self.inner.borrow_mut();
        let a = addr as usize;
        assert!(a + bytes.len() <= inner.data.len(), "load out of range");
        inner.data[a..a + bytes.len()].copy_from_slice(bytes);
        for w in a / 4..(a + bytes.len()).div_ceil(4) {
            inner.poison[w] = false;
        }
    }

    /// Bulk-load 32-bit words at `addr`.
    pub fn load_words(&self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, *w);
        }
    }

    /// Bulk-read `n` words from `addr`; poisoned words read as `None`.
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<Option<u32>> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u32)).collect()
    }

    /// Copy out raw bytes (poison ignored) — for file output.
    pub fn dump_bytes(&self, addr: u32, n: usize) -> Vec<u8> {
        let inner = self.inner.borrow();
        inner.data[addr as usize..addr as usize + n].to_vec()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemState {
    Idle,
    AckWait { left: u32 },
    Write { addr: u32, beats_left: u32 },
    Read { addr: u32, beats_left: u32 },
    Complete,
}

/// One-shot transient-fault plan for a [`MemorySlave`].
///
/// The recovery campaign arms a fault through a shared
/// [`MemFaultHandle`] while the simulation runs; the slave consumes it on
/// the next eligible *read* transaction and then behaves normally again —
/// the memory contents themselves are never altered, so a retried
/// transfer sees clean data. Write transactions are never disturbed.
#[derive(Debug, Default)]
pub struct MemFaultPlan {
    /// Address window `[lo, hi)` a read must start in to be eligible.
    /// `None` makes every read eligible. Used to target SimB fetches
    /// without disturbing CPU instruction or frame traffic.
    pub window: Option<(u32, u32)>,
    /// Respond to this many eligible reads with a bus error
    /// (`err`+`complete`, no data phase) instead of serving them.
    pub error_next_reads: u32,
    /// Delay the address ack of the next eligible read by this many
    /// cycles (consumed once). The transaction then completes normally,
    /// so a bounded stall never wedges the bus.
    pub stall_next_read: Option<u32>,
    /// Flip `bit` (mod 32) of beat `beat` (clamped to the burst length)
    /// of the next eligible read — a transient single-bit readout upset.
    pub flip_next_read: Option<(u32, u32)>,
    /// Number of bus errors injected so far.
    pub errors_fired: u64,
    /// Number of stalls injected so far.
    pub stalls_fired: u64,
    /// Number of bit flips injected so far.
    pub flips_fired: u64,
}

/// Shared handle through which a testbench arms [`MemFaultPlan`] faults.
pub type MemFaultHandle = Rc<RefCell<MemFaultPlan>>;

/// The memory slave FSM attached to a [`SlavePort`].
pub struct MemorySlave {
    port: SlavePort,
    clk: SignalId,
    rst: SignalId,
    mem: SharedMem,
    /// Cycles between `sel` and `aready` (first-access latency).
    wait_states: u32,
    /// Injectable defect: the burst-read output register is enabled one
    /// beat late, so the first beat of every multi-beat read drives the
    /// *previous* transfer's data (single-beat reads take the non-burst
    /// path and are unaffected) — the case study's static-region bug
    /// class.
    stale_first_beat_bug: bool,
    /// The read output register (observable only through the defect).
    rdata_reg: u32,
    state: MemState,
    /// Armed transient faults (campaign-controlled), if any.
    faults: Option<MemFaultHandle>,
    /// A consumed flip fault waiting for its target beat.
    active_flip: Option<(u32, u32)>,
    /// Beat counter within the current read transaction.
    beat_idx: u32,
}

impl MemorySlave {
    /// Create the slave FSM; register it with
    /// [`MemorySlave::instantiate`] or manually.
    pub fn new(
        port: SlavePort,
        clk: SignalId,
        rst: SignalId,
        mem: SharedMem,
        wait_states: u32,
    ) -> MemorySlave {
        MemorySlave {
            port,
            clk,
            rst,
            mem,
            wait_states,
            stale_first_beat_bug: false,
            rdata_reg: 0,
            state: MemState::Idle,
            faults: None,
            active_flip: None,
            beat_idx: 0,
        }
    }

    /// Enable the stale-first-beat burst-read defect (fault injection).
    pub fn with_stale_beat_bug(mut self, on: bool) -> MemorySlave {
        self.stale_first_beat_bug = on;
        self
    }

    /// Attach a transient-fault plan handle (recovery campaign).
    pub fn with_faults(mut self, faults: MemFaultHandle) -> MemorySlave {
        self.faults = Some(faults);
        self
    }

    /// Allocate a port, build the slave and register it with the kernel.
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        mem: SharedMem,
        wait_states: u32,
    ) -> SlavePort {
        Self::instantiate_with(sim, name, clk, rst, mem, wait_states, false)
    }

    /// As [`MemorySlave::instantiate`], optionally with the
    /// stale-first-beat defect enabled.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate_with(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        mem: SharedMem,
        wait_states: u32,
        stale_first_beat_bug: bool,
    ) -> SlavePort {
        let port = SlavePort::alloc(sim, name);
        let slave = MemorySlave::new(port, clk, rst, mem, wait_states)
            .with_stale_beat_bug(stale_first_beat_bug);
        let comp = sim.add_component(name, CompKind::UserStatic, Box::new(slave), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        port
    }

    /// As [`MemorySlave::instantiate_with`], with a transient-fault plan
    /// attached. Returns the port and the handle used to arm faults.
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate_faulty(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        mem: SharedMem,
        wait_states: u32,
        stale_first_beat_bug: bool,
    ) -> (SlavePort, MemFaultHandle) {
        let port = SlavePort::alloc(sim, name);
        let handle: MemFaultHandle = Rc::new(RefCell::new(MemFaultPlan::default()));
        let slave = MemorySlave::new(port, clk, rst, mem, wait_states)
            .with_stale_beat_bug(stale_first_beat_bug)
            .with_faults(handle.clone());
        let comp = sim.add_component(name, CompKind::UserStatic, Box::new(slave), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        (port, handle)
    }
}

impl Component for MemorySlave {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let p = self.port;
        if ctx.is_high(self.rst) {
            self.state = MemState::Idle;
            self.active_flip = None;
            self.beat_idx = 0;
            ctx.set_bit(p.aready, false);
            ctx.set_bit(p.wready, false);
            ctx.set_bit(p.rvalid, false);
            ctx.set_u64(p.rdata, 0);
            ctx.set_bit(p.complete, false);
            ctx.set_bit(p.err, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        match self.state {
            MemState::Idle => {
                if ctx.is_high(p.sel) {
                    if self.wait_states == 0 {
                        self.accept(ctx);
                    } else {
                        self.state = MemState::AckWait {
                            left: self.wait_states,
                        };
                    }
                } else {
                    // Deselected: nothing happens until the bus steers a
                    // transaction here (or reset changes).
                    ctx.park_until(&[p.sel, self.rst], &[]);
                }
            }
            MemState::AckWait { left } => {
                if left == 1 {
                    self.accept(ctx);
                } else {
                    self.state = MemState::AckWait { left: left - 1 };
                }
            }
            MemState::Write { addr, beats_left } => {
                ctx.set_bit(p.aready, false);
                if ctx.is_high(p.wvalid) {
                    // Beat commits this edge (wready was high).
                    let data = ctx.get(p.wdata);
                    match data.to_u64() {
                        Some(v) => self.mem.write_u32(addr, v as u32),
                        None => {
                            // Unknown data: store the lossy value and
                            // poison the word so later reads return X.
                            self.mem.write_u32(addr, data.to_u64_lossy() as u32);
                            self.mem.poison_word(addr);
                        }
                    }
                    if beats_left == 1 {
                        ctx.set_bit(p.wready, false);
                        ctx.set_bit(p.complete, true);
                        self.state = MemState::Complete;
                    } else {
                        self.state = MemState::Write {
                            addr: addr + 4,
                            beats_left: beats_left - 1,
                        };
                    }
                }
            }
            MemState::Read { addr, beats_left } => {
                ctx.set_bit(p.aready, false);
                if ctx.is_high(p.rready) {
                    // Current beat consumed; advance.
                    if beats_left == 1 {
                        ctx.set_bit(p.rvalid, false);
                        ctx.set_bit(p.complete, true);
                        self.state = MemState::Complete;
                    } else {
                        let next = addr + 4;
                        self.drive_read(ctx, next, false);
                        self.state = MemState::Read {
                            addr: next,
                            beats_left: beats_left - 1,
                        };
                    }
                }
            }
            MemState::Complete => {
                ctx.set_bit(p.complete, false);
                ctx.set_bit(p.err, false);
                self.state = MemState::Idle;
            }
        }
    }
}

impl MemorySlave {
    fn accept(&mut self, ctx: &mut Ctx<'_>) {
        let p = self.port;
        let addr = ctx.get(p.a_addr).to_u64_lossy() as u32;
        let size = (ctx.get(p.a_size).to_u64_lossy() as u32).max(1);
        let rnw = ctx.is_high(p.a_rnw);
        if rnw && self.consume_read_fault(ctx, addr, size) {
            return;
        }
        ctx.set_bit(p.aready, true);
        if rnw {
            self.beat_idx = 0;
            self.drive_read(ctx, addr, size > 1);
            self.state = MemState::Read {
                addr,
                beats_left: size,
            };
        } else {
            ctx.set_bit(p.wready, true);
            self.state = MemState::Write {
                addr,
                beats_left: size,
            };
        }
    }

    /// Check the armed fault plan against an incoming read. Returns
    /// `true` when the fault replaces the normal accept path (bus error
    /// or stall); a bit flip only arms `active_flip` and lets the
    /// transaction proceed.
    fn consume_read_fault(&mut self, ctx: &mut Ctx<'_>, addr: u32, size: u32) -> bool {
        let Some(handle) = &self.faults else {
            return false;
        };
        let mut plan = handle.borrow_mut();
        let eligible = plan.window.is_none_or(|(lo, hi)| addr >= lo && addr < hi);
        if !eligible {
            return false;
        }
        if plan.error_next_reads > 0 {
            plan.error_next_reads -= 1;
            plan.errors_fired += 1;
            let p = self.port;
            ctx.set_bit(p.err, true);
            ctx.set_bit(p.complete, true);
            self.state = MemState::Complete;
            return true;
        }
        if let Some(n) = plan.stall_next_read.take() {
            plan.stalls_fired += 1;
            self.state = MemState::AckWait { left: n.max(1) };
            return true;
        }
        if let Some((beat, bit)) = plan.flip_next_read.take() {
            plan.flips_fired += 1;
            self.active_flip = Some((beat.min(size - 1), bit & 31));
        }
        false
    }

    fn drive_read(&mut self, ctx: &mut Ctx<'_>, addr: u32, first_of_burst: bool) {
        let p = self.port;
        let stale = self.rdata_reg;
        match self.mem.read_u32(addr) {
            Some(v) => {
                let mut out = if self.stale_first_beat_bug && first_of_burst {
                    // BUG: the output register enable lags one beat on
                    // the burst path; the previous transfer's data goes
                    // out first.
                    stale
                } else {
                    v
                };
                if let Some((beat, bit)) = self.active_flip {
                    if self.beat_idx == beat {
                        out ^= 1 << bit;
                        self.active_flip = None;
                    }
                }
                ctx.set_u64(p.rdata, out as u64);
                self.rdata_reg = v;
            }
            None => ctx.set(p.rdata, Lv::xes(32)), // poisoned word reads as X
        }
        self.beat_idx += 1;
        ctx.set_bit(p.rvalid, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_mem_round_trip() {
        let mem = SharedMem::new(64);
        mem.write_u32(0, 0xDEADBEEF);
        mem.write_u32(60, 42);
        assert_eq!(mem.read_u32(0), Some(0xDEADBEEF));
        assert_eq!(mem.read_u32(60), Some(42));
        assert_eq!(mem.read_u32(4), Some(0));
    }

    #[test]
    fn poison_round_trip() {
        let mem = SharedMem::new(64);
        mem.write_u32(8, 7);
        mem.poison_word(8);
        assert_eq!(mem.read_u32(8), None);
        assert!(mem.is_poisoned(8));
        assert_eq!(mem.poisoned_words(), 1);
        // A clean write heals the word.
        mem.write_u32(8, 9);
        assert_eq!(mem.read_u32(8), Some(9));
        assert_eq!(mem.poisoned_words(), 0);
    }

    #[test]
    fn bulk_load_and_read() {
        let mem = SharedMem::new(128);
        mem.load_words(16, &[1, 2, 3, 4]);
        assert_eq!(
            mem.read_words(16, 4),
            vec![Some(1), Some(2), Some(3), Some(4)]
        );
        mem.load_bytes(0, &[0x78, 0x56, 0x34, 0x12]);
        assert_eq!(mem.read_u32(0), Some(0x12345678));
        assert_eq!(mem.dump_bytes(0, 2), vec![0x78, 0x56]);
    }

    #[test]
    #[should_panic(expected = "unaligned read")]
    fn unaligned_read_panics() {
        SharedMem::new(64).read_u32(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        SharedMem::new(64).write_u32(64, 1);
    }

    #[test]
    fn size_rounds_up_to_word() {
        let mem = SharedMem::new(5);
        assert_eq!(mem.len(), 8);
        assert!(!mem.is_empty());
    }
}
