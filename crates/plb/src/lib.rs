//! # plb — a cycle-accurate Processor Local Bus model
//!
//! The AutoVision Optical Flow Demonstrator connects its video engines,
//! reconfiguration controller (IcapCTRL), video VIPs and PowerPC to main
//! memory over a shared PLB (Figure 1 of the paper). This crate models
//! that bus at the signal level on top of the [`rtlsim`] kernel:
//!
//! * [`PlbBus`] — clocked arbiter (fixed-priority or round-robin) plus a
//!   combinational crossbar relay between the granted master and the
//!   address-decoded slave.
//! * [`MasterPort`] / [`SlavePort`] — the signal bundles a master or
//!   slave exposes to the bus.
//! * [`DmaDriver`] — a reusable master-side burst FSM that engines, VIPs,
//!   IcapCTRL and the processor embed to perform memory transfers.
//! * [`MemorySlave`] — main memory with configurable wait states, backed
//!   by a [`SharedMem`] buffer the testbench can load frames, programs
//!   and bitstreams into.
//! * [`PlbMonitor`] — a protocol checker that flags `X` on control
//!   signals and handshake violations; this is how corruption escaping a
//!   reconfigurable region whose isolation is broken becomes a *detected*
//!   bug.
//!
//! ## Protocol
//!
//! All signals are sampled on the PLB clock's rising edge.
//!
//! 1. **Request.** A master asserts `req` with `rnw`, `addr` and `size`
//!    (beats of 32-bit words) held stable.
//! 2. **Grant + decode.** When idle, the arbiter picks the winning
//!    requester (mode-dependent) and asserts its `gnt` while selecting
//!    the slave whose address window matches. An unmapped address
//!    completes immediately with `err`.
//! 3. **Address ack.** The slave raises `aready` when it accepts the
//!    transaction; the bus forwards this as the master's `addr_ack`, and
//!    the master deasserts `req`.
//! 4. **Data.** Writes move one beat on every edge where `wvalid &&
//!    wready`; reads on every edge where `rvalid && rready` (AXI-style
//!    two-way handshake, so either side may throttle).
//! 5. **Complete.** After the final beat the slave pulses `complete`
//!    (forwarded to the master) and the bus re-arbitrates.
//!
//! The bus also supports the *point-to-point* configuration of the
//! original AutoVision design (`BusMode::PointToPoint`), in which the
//! single master owns the slave permanently and no arbitration happens.
//! The case study's bug.dpr.4 is an IcapCTRL still configured for
//! point-to-point operation being dropped onto the shared bus.

pub mod bfm;
pub mod bus;
pub mod dma;
pub mod memory;
pub mod monitor;
pub mod port;

pub use bfm::{BfmOp, TestMaster};
pub use bus::{AddressWindow, ArbMode, BusMode, PlbBus, PlbBusConfig};
pub use dma::{DmaDriver, DmaEvent};
pub use memory::{MemFaultHandle, MemFaultPlan, MemorySlave, SharedMem};
pub use monitor::{MonitorStats, PlbMonitor};
pub use port::{MasterPort, SlavePort};

/// Data bus width in bits.
pub const DATA_BITS: u8 = 32;
/// Address bus width in bits.
pub const ADDR_BITS: u8 = 32;
/// Burst-size field width in bits (max 255 beats per burst).
pub const SIZE_BITS: u8 = 8;
/// Largest burst the bus protocol allows.
pub const MAX_BURST: usize = 255;
