//! Reusable master-side burst transfer FSM.
//!
//! Every PLB master in the system — video engines, video VIPs, the
//! IcapCTRL reconfiguration controller and the processor bridge — embeds
//! a [`DmaDriver`] and steps it once per clock edge. The driver splits an
//! arbitrarily long transfer into bursts, runs the request/grant and
//! valid/ready handshakes, and reports completion.
//!
//! The [`Handshake`] policy selects between the fully interlocked
//! protocol and the *fixed-latency* assumption of the original design's
//! point-to-point IcapCTRL attachment. On a dedicated link the fixed
//! timing happens to match, but on a shared, arbitrated bus it silently
//! drops or corrupts beats — this is exactly the paper's bug.dpr.4.

use crate::port::MasterPort;
use rtlsim::{Ctx, TraceCat};

/// Master handshake policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handshake {
    /// Fully interlocked: wait for grant/ack, honour `wready`/`rvalid`.
    Full,
    /// Original point-to-point timing: start data `addr_latency` cycles
    /// after asserting the request and move one beat per cycle without
    /// checking any ready/valid signal.
    FixedLatency {
        /// Cycles from request to assumed data phase.
        addr_latency: u32,
    },
}

/// Completion events returned by [`DmaDriver::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaEvent {
    /// A write transfer finished (all bursts).
    WriteDone,
    /// A read transfer finished; data is available via
    /// [`DmaDriver::take_read_data`].
    ReadDone,
    /// The bus reported an error (decode miss or slave abort).
    Error,
    /// A transfer cancelled with [`DmaDriver::abort_flush`] has finished
    /// draining; the driver is idle again and any captured data was
    /// discarded.
    Aborted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Idle,
    Launch,
    AwaitAck { waited: u32 },
    WData { beats_left: u32 },
    RData { beats_left: u32 },
    AwaitComplete,
}

/// Burst-splitting DMA master FSM. Call [`DmaDriver::step`] on every
/// rising clock edge of the owning component.
pub struct DmaDriver {
    port: MasterPort,
    handshake: Handshake,
    max_burst: u32,
    state: St,
    rnw: bool,
    next_addr: u32,
    words_left: u32,
    wbuf: Vec<u32>,
    wpos: usize,
    rbuf: Vec<u32>,
    /// Read data may contain X (e.g. poisoned memory words); those beats
    /// are recorded here by index for scoreboard use.
    rx_unknown: Vec<usize>,
    /// Set by [`DmaDriver::abort_flush`]: finish the in-flight burst
    /// protocol-cleanly, discard its data, and do not launch the next
    /// burst.
    discard: bool,
    /// Trace lane for burst spans ([`TraceCat::Dma`]); `None` keeps the
    /// driver silent (the default — only masters opted in by their owner
    /// emit, so lanes stay unambiguous).
    trace_track: Option<u32>,
    /// A burst span is open (trace bookkeeping only).
    burst_open: bool,
}

impl DmaDriver {
    /// Create an idle driver for `port`. `max_burst` is clamped to the
    /// protocol maximum of 255 beats.
    pub fn new(port: MasterPort, handshake: Handshake, max_burst: u32) -> DmaDriver {
        DmaDriver {
            port,
            handshake,
            max_burst: max_burst.clamp(1, crate::MAX_BURST as u32),
            state: St::Idle,
            rnw: false,
            next_addr: 0,
            words_left: 0,
            wbuf: Vec::new(),
            wpos: 0,
            rbuf: Vec::new(),
            rx_unknown: Vec::new(),
            discard: false,
            trace_track: None,
            burst_open: false,
        }
    }

    /// Opt this driver's bursts into the structured trace on lane
    /// `track` (see [`TraceCat::Dma`]). Owners with multiple masters
    /// should hand out distinct lanes.
    pub fn set_trace_track(&mut self, track: u32) {
        self.trace_track = Some(track);
    }

    #[inline]
    fn trace_burst_begin(&mut self, ctx: &mut Ctx<'_>, burst: u32) {
        if let Some(t) = self.trace_track {
            ctx.trace_begin(TraceCat::Dma, "burst", t, burst as u64);
            self.burst_open = true;
        }
    }

    #[inline]
    fn trace_burst_end(&mut self, ctx: &mut Ctx<'_>, arg: u64) {
        if self.burst_open {
            self.burst_open = false;
            if let Some(t) = self.trace_track {
                ctx.trace_end(TraceCat::Dma, "burst", t, arg);
            }
        }
    }

    /// The port this driver drives.
    pub fn port(&self) -> MasterPort {
        self.port
    }

    /// True when no transfer is in flight.
    pub fn idle(&self) -> bool {
        self.state == St::Idle
    }

    /// Begin a write of `data` to `addr`. Panics if busy or empty.
    pub fn start_write(&mut self, addr: u32, data: Vec<u32>) {
        assert!(self.idle(), "DMA driver busy");
        assert!(!data.is_empty(), "empty DMA write");
        self.rnw = false;
        self.next_addr = addr;
        self.words_left = data.len() as u32;
        self.wbuf = data;
        self.wpos = 0;
        self.state = St::Launch;
    }

    /// Begin a read of `words` 32-bit beats from `addr`. Panics if busy
    /// or zero-length.
    pub fn start_read(&mut self, addr: u32, words: u32) {
        assert!(self.idle(), "DMA driver busy");
        assert!(words > 0, "empty DMA read");
        self.rnw = true;
        self.next_addr = addr;
        self.words_left = words;
        self.rbuf = Vec::with_capacity(words as usize);
        self.rx_unknown.clear();
        self.state = St::Launch;
    }

    /// Take the data captured by the last completed read.
    pub fn take_read_data(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.rbuf)
    }

    /// Beat indices of the last read that carried unknown (`X`) bits.
    pub fn unknown_beats(&self) -> &[usize] {
        &self.rx_unknown
    }

    /// Drop any in-flight transfer and deassert all outputs (used on
    /// reset).
    pub fn reset(&mut self, ctx: &mut Ctx<'_>) {
        let p = self.port;
        self.trace_burst_end(ctx, u64::MAX);
        self.state = St::Idle;
        self.discard = false;
        self.wbuf.clear();
        self.rbuf.clear();
        ctx.set_bit(p.req, false);
        ctx.set_bit(p.wvalid, false);
        ctx.set_bit(p.rready, false);
    }

    /// Cancel the current transfer *protocol-cleanly*.
    ///
    /// A PLB master cannot simply drop a burst the arbiter has already
    /// granted: the slave would sit in its data phase forever and the
    /// arbiter — which releases a grant only on the slave's `complete`
    /// pulse — would wedge the whole bus. So once the request may have
    /// been granted, the driver instead *drains*: it finishes the
    /// in-flight burst normally, discards the data, skips any remaining
    /// bursts and reports [`DmaEvent::Aborted`] from a later
    /// [`DmaDriver::step`]. Only a transfer that has not yet asserted its
    /// bus request is cancelled immediately.
    ///
    /// Returns `true` when the driver is already idle afterwards; `false`
    /// means keep stepping until `Aborted` arrives.
    pub fn abort_flush(&mut self, ctx: &mut Ctx<'_>) -> bool {
        match self.state {
            St::Idle => true,
            // `req` is only asserted when Launch is *stepped*, so the bus
            // has not seen this transfer yet: safe to drop on the floor.
            St::Launch => {
                self.abort(ctx);
                true
            }
            _ => {
                self.discard = true;
                false
            }
        }
    }

    fn burst_len(&self) -> u32 {
        self.words_left.min(self.max_burst)
    }

    /// Advance the FSM by one clock edge. Returns a [`DmaEvent`] when the
    /// whole transfer (all bursts) finishes.
    pub fn step(&mut self, ctx: &mut Ctx<'_>) -> Option<DmaEvent> {
        let p = self.port;
        match self.state {
            St::Idle => None,
            St::Launch => {
                let burst = self.burst_len();
                self.trace_burst_begin(ctx, burst);
                ctx.set_bit(p.req, true);
                ctx.set_bit(p.rnw, self.rnw);
                ctx.set_u64(p.addr, self.next_addr as u64);
                ctx.set_u64(p.size, burst as u64);
                self.state = St::AwaitAck { waited: 0 };
                None
            }
            St::AwaitAck { waited } => {
                if ctx.is_high(p.err) && ctx.is_high(p.complete) {
                    self.trace_burst_end(ctx, 1);
                    self.abort(ctx);
                    return Some(DmaEvent::Error);
                }
                let proceed = match self.handshake {
                    Handshake::Full => ctx.is_high(p.addr_ack),
                    Handshake::FixedLatency { addr_latency } => waited >= addr_latency,
                };
                if proceed {
                    ctx.set_bit(p.req, false);
                    let burst = self.burst_len();
                    if self.rnw {
                        ctx.set_bit(p.rready, true);
                        self.state = St::RData { beats_left: burst };
                    } else {
                        ctx.set_bit(p.wvalid, true);
                        ctx.set_u64(p.wdata, self.wbuf[self.wpos] as u64);
                        self.state = St::WData { beats_left: burst };
                    }
                } else {
                    self.state = St::AwaitAck { waited: waited + 1 };
                }
                None
            }
            St::WData { beats_left } => {
                let commit = match self.handshake {
                    Handshake::Full => ctx.is_high(p.wready),
                    Handshake::FixedLatency { .. } => true,
                };
                if commit {
                    // The beat at wpos transferred on this edge.
                    self.wpos += 1;
                    self.words_left -= 1;
                    self.next_addr = self.next_addr.wrapping_add(4);
                    if beats_left == 1 {
                        ctx.set_bit(p.wvalid, false);
                        self.state = St::AwaitComplete;
                    } else {
                        ctx.set_u64(p.wdata, self.wbuf[self.wpos] as u64);
                        self.state = St::WData {
                            beats_left: beats_left - 1,
                        };
                    }
                }
                None
            }
            St::RData { beats_left } => {
                let commit = match self.handshake {
                    Handshake::Full => ctx.is_high(p.rvalid),
                    Handshake::FixedLatency { .. } => true,
                };
                if commit {
                    let data = ctx.get(p.rdata);
                    if data.has_unknown() {
                        self.rx_unknown.push(self.rbuf.len());
                    }
                    self.rbuf.push(data.to_u64_lossy() as u32);
                    self.words_left -= 1;
                    self.next_addr = self.next_addr.wrapping_add(4);
                    if beats_left == 1 {
                        ctx.set_bit(p.rready, false);
                        self.state = St::AwaitComplete;
                    } else {
                        self.state = St::RData {
                            beats_left: beats_left - 1,
                        };
                    }
                }
                None
            }
            St::AwaitComplete => {
                let done = match self.handshake {
                    Handshake::Full => ctx.is_high(p.complete),
                    // Fixed-latency masters don't watch `complete` either.
                    Handshake::FixedLatency { .. } => true,
                };
                if !done {
                    return None;
                }
                self.trace_burst_end(ctx, u64::from(ctx.is_high(p.err)));
                if ctx.is_high(p.err) {
                    let draining = self.discard;
                    self.abort(ctx);
                    return Some(if draining {
                        DmaEvent::Aborted
                    } else {
                        DmaEvent::Error
                    });
                }
                if self.discard {
                    // Burst drained; drop its data and any remaining
                    // bursts of the cancelled transfer.
                    self.abort(ctx);
                    self.rbuf.clear();
                    Some(DmaEvent::Aborted)
                } else if self.words_left > 0 {
                    self.state = St::Launch;
                    None
                } else {
                    self.state = St::Idle;
                    Some(if self.rnw {
                        DmaEvent::ReadDone
                    } else {
                        DmaEvent::WriteDone
                    })
                }
            }
        }
    }

    fn abort(&mut self, ctx: &mut Ctx<'_>) {
        let p = self.port;
        self.state = St::Idle;
        self.discard = false;
        self.wbuf.clear();
        ctx.set_bit(p.req, false);
        ctx.set_bit(p.wvalid, false);
        ctx.set_bit(p.rready, false);
    }
}
