//! The bus itself: a clocked arbiter plus a combinational crossbar relay.
//!
//! The arbiter and relay are two kernel components sharing state through
//! internal signals (`owner`, `slave`, `errm`), mirroring how a
//! synthesized bus splits into sequential arbitration and combinational
//! steering logic. The relay forwards [`rtlsim::Lv`] values verbatim, so
//! `X` driven by a reconfigurable region whose isolation is broken
//! travels across the bus exactly as it would in a 4-state HDL simulation.

use crate::port::{MasterPort, SlavePort};
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator};

/// Arbitration policy among requesting masters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbMode {
    /// Lowest master index wins (index = priority; video-in is typically
    /// index 0 so the real-time stream never starves).
    FixedPriority,
    /// Rotating priority starting after the previous winner.
    RoundRobin,
}

/// Bus topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusMode {
    /// Arbitrated shared bus (the modified Optical Flow Demonstrator).
    Shared,
    /// Dedicated master-0 to slave-0 link with no arbitration (the
    /// original design's NPI-style IcapCTRL attachment). Only legal with
    /// exactly one master and one slave.
    PointToPoint,
}

/// One slave's address window.
#[derive(Debug, Clone, Copy)]
pub struct AddressWindow {
    /// First byte address covered.
    pub base: u32,
    /// Window length in bytes.
    pub len: u32,
}

impl AddressWindow {
    /// Does `addr` fall inside this window?
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.len
    }
}

/// Bus configuration.
#[derive(Debug, Clone)]
pub struct PlbBusConfig {
    /// Arbitration policy (ignored in point-to-point mode).
    pub arbitration: ArbMode,
    /// Topology.
    pub mode: BusMode,
    /// If set, the arbiter reports an error when one transfer holds the
    /// bus longer than this many clock cycles (hung-slave detector).
    pub hang_limit_cycles: Option<u64>,
}

impl Default for PlbBusConfig {
    fn default() -> Self {
        PlbBusConfig {
            arbitration: ArbMode::FixedPriority,
            mode: BusMode::Shared,
            hang_limit_cycles: Some(1_000_000),
        }
    }
}

const NONE: u64 = 0xFF;

/// Builder/handle for an instantiated bus.
pub struct PlbBus {
    /// Internal: index of the granted master, `0xFF` when idle.
    pub owner: SignalId,
    /// Internal: index of the selected slave, `0xFF` when idle.
    pub slave: SignalId,
    /// Internal: master index receiving a decode-error pulse.
    pub errm: SignalId,
}

struct Arbiter {
    clk: SignalId,
    rst: SignalId,
    cfg: PlbBusConfig,
    masters: Vec<MasterPort>,
    slaves: Vec<(SlavePort, AddressWindow)>,
    owner: SignalId,
    slave: SignalId,
    errm: SignalId,
    rr_next: usize,
    held_cycles: u64,
    hang_reported: bool,
    /// Request lines plus reset: the only inputs that can start a grant
    /// while the bus is idle, i.e. the park wake set.
    wake: Vec<SignalId>,
}

impl Arbiter {
    fn decode(&self, addr: u32) -> Option<usize> {
        self.slaves.iter().position(|(_, w)| w.contains(addr))
    }

    fn pick_winner(&mut self, ctx: &Ctx<'_>) -> Option<usize> {
        let n = self.masters.len();
        match self.cfg.arbitration {
            ArbMode::FixedPriority => (0..n).find(|&m| ctx.is_high(self.masters[m].req)),
            ArbMode::RoundRobin => {
                let start = self.rr_next;
                (0..n)
                    .map(|i| (start + i) % n)
                    .find(|&m| ctx.is_high(self.masters[m].req))
            }
        }
    }
}

impl Component for Arbiter {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            match self.cfg.mode {
                BusMode::PointToPoint => {
                    // Permanently wired master 0 <-> slave 0.
                    ctx.set_u64(self.owner, 0);
                    ctx.set_u64(self.slave, 0);
                }
                BusMode::Shared => {
                    ctx.set_u64(self.owner, NONE);
                    ctx.set_u64(self.slave, NONE);
                }
            }
            ctx.set_u64(self.errm, NONE);
            self.held_cycles = 0;
            self.hang_reported = false;
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        if self.cfg.mode == BusMode::PointToPoint {
            // Permanently granted: only reset ever changes the outputs.
            ctx.park_until(&[self.rst], &[]);
            return; // nothing to arbitrate
        }
        // Error pulses last one cycle.
        if ctx.get_u64(self.errm) != Some(NONE) {
            ctx.set_u64(self.errm, NONE);
        }
        let owner = ctx.get_u64(self.owner).unwrap_or(NONE);
        if owner == NONE {
            self.held_cycles = 0;
            self.hang_reported = false;
            let winner = self.pick_winner(ctx);
            if winner.is_none() && ctx.get_u64(self.errm) == Some(NONE) {
                // Idle bus, no error pulse to clear: quiescent until a
                // master raises a request (or reset changes). The grant
                // counter state is already zeroed.
                ctx.park_until(&self.wake, &[]);
            }
            if let Some(w) = winner {
                match ctx.get_u64(self.masters[w].addr).map(|a| a as u32) {
                    Some(addr) => match self.decode(addr) {
                        Some(s) => {
                            ctx.set_u64(self.owner, w as u64);
                            ctx.set_u64(self.slave, s as u64);
                            self.rr_next = (w + 1) % self.masters.len();
                        }
                        None => {
                            ctx.warn(format!("decode miss: master {w} addr {addr:#010x}"));
                            ctx.set_u64(self.errm, w as u64);
                        }
                    },
                    None => {
                        ctx.error(format!("master {w} requested with X/Z address"));
                        ctx.set_u64(self.errm, w as u64);
                    }
                }
            }
        } else {
            self.held_cycles += 1;
            let s = ctx.get_u64(self.slave).unwrap_or(NONE) as usize;
            if s < self.slaves.len() && ctx.is_high(self.slaves[s].0.complete) {
                ctx.set_u64(self.owner, NONE);
                ctx.set_u64(self.slave, NONE);
            } else if let Some(limit) = self.cfg.hang_limit_cycles {
                if self.held_cycles > limit && !self.hang_reported {
                    self.hang_reported = true;
                    ctx.error(format!(
                        "bus hang: master {owner} has held the bus for {limit} cycles"
                    ));
                }
            }
        }
    }
}

struct Relay {
    masters: Vec<MasterPort>,
    slaves: Vec<SlavePort>,
    owner: SignalId,
    slave: SignalId,
    errm: SignalId,
    /// In point-to-point mode the grant is permanent, so the slave's
    /// transaction-start strobe must come from the master's `req` rather
    /// than from the (constant) steering state.
    p2p: bool,
}

impl Component for Relay {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let owner = ctx.get(self.owner).to_u64_lossy();
        let slave = ctx.get(self.slave).to_u64_lossy();
        let errm = ctx.get(self.errm).to_u64_lossy();
        let granted = owner != NONE && (slave as usize) < self.slaves.len();
        for (mi, m) in self.masters.iter().enumerate() {
            let mine = granted && owner == mi as u64;
            if mine {
                let s = &self.slaves[slave as usize];
                ctx.set_bit(m.gnt, true);
                ctx.set(m.addr_ack, ctx.get(s.aready));
                ctx.set(m.wready, ctx.get(s.wready));
                ctx.set(m.rvalid, ctx.get(s.rvalid));
                ctx.set(m.rdata, ctx.get(s.rdata));
                ctx.set(m.complete, ctx.get(s.complete));
                ctx.set(m.err, ctx.get(s.err));
            } else {
                ctx.set_bit(m.gnt, false);
                ctx.set_bit(m.addr_ack, false);
                ctx.set_bit(m.wready, false);
                ctx.set_bit(m.rvalid, false);
                ctx.set_u64(m.rdata, 0);
                let e = errm == mi as u64;
                ctx.set_bit(m.complete, e);
                ctx.set_bit(m.err, e);
            }
        }
        for (si, s) in self.slaves.iter().enumerate() {
            let mine = granted && slave == si as u64;
            if mine {
                let m = &self.masters[owner as usize];
                let sel = if self.p2p { ctx.is_high(m.req) } else { true };
                ctx.set_bit(s.sel, sel);
                ctx.set(s.a_rnw, ctx.get(m.rnw));
                ctx.set(s.a_addr, ctx.get(m.addr));
                ctx.set(s.a_size, ctx.get(m.size));
                ctx.set(s.wvalid, ctx.get(m.wvalid));
                ctx.set(s.wdata, ctx.get(m.wdata));
                ctx.set(s.rready, ctx.get(m.rready));
            } else {
                ctx.set_bit(s.sel, false);
                ctx.set_bit(s.a_rnw, false);
                ctx.set_u64(s.a_addr, 0);
                ctx.set_u64(s.a_size, 0);
                ctx.set_bit(s.wvalid, false);
                ctx.set_u64(s.wdata, 0);
                ctx.set_bit(s.rready, false);
            }
        }
    }
}

impl PlbBus {
    /// Instantiate the bus. `slaves` pairs each slave port with its
    /// address window; windows must not overlap. Panics on an invalid
    /// point-to-point configuration or overlapping windows.
    pub fn new(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        cfg: PlbBusConfig,
        masters: Vec<MasterPort>,
        slaves: Vec<(SlavePort, AddressWindow)>,
    ) -> PlbBus {
        assert!(
            !masters.is_empty() && !slaves.is_empty(),
            "bus needs >=1 master and slave"
        );
        if cfg.mode == BusMode::PointToPoint {
            assert!(
                masters.len() == 1 && slaves.len() == 1,
                "point-to-point bus takes exactly one master and one slave"
            );
        }
        for (i, (_, a)) in slaves.iter().enumerate() {
            for (_, b) in slaves.iter().skip(i + 1) {
                let disjoint = a.base + a.len <= b.base || b.base + b.len <= a.base;
                assert!(disjoint, "overlapping address windows");
            }
        }
        let p2p = cfg.mode == BusMode::PointToPoint;
        let init_owner = if p2p { 0 } else { NONE };
        let owner = sim.signal_init(format!("{name}.owner"), 8, init_owner);
        let slave = sim.signal_init(format!("{name}.slave"), 8, init_owner);
        let errm = sim.signal_init(format!("{name}.errm"), 8, NONE);

        let mut wake: Vec<SignalId> = masters.iter().map(|m| m.req).collect();
        wake.push(rst);
        let arb = Arbiter {
            clk,
            rst,
            cfg,
            masters: masters.clone(),
            slaves: slaves.clone(),
            owner,
            slave,
            errm,
            rr_next: 0,
            held_cycles: 0,
            hang_reported: false,
            wake,
        };
        let arb_comp = sim.add_component(
            format!("{name}.arbiter"),
            CompKind::UserStatic,
            Box::new(arb),
            &[clk, rst],
        );
        sim.declare_clocked(arb_comp, clk);

        let relay = Relay {
            masters: masters.clone(),
            slaves: slaves.iter().map(|(p, _)| *p).collect(),
            owner,
            slave,
            errm,
            p2p,
        };
        // Sensitivity: steering state plus every endpoint-driven signal.
        let mut sens: Vec<SignalId> = vec![owner, slave, errm];
        for m in &masters {
            sens.extend_from_slice(&m.master_driven());
        }
        for (s, _) in &slaves {
            sens.extend_from_slice(&[s.aready, s.wready, s.rvalid, s.rdata, s.complete, s.err]);
        }
        let mut writes: Vec<SignalId> = Vec::new();
        for m in &masters {
            writes.extend_from_slice(&[
                m.gnt, m.addr_ack, m.wready, m.rvalid, m.rdata, m.complete, m.err,
            ]);
        }
        for (s, _) in &slaves {
            writes.extend_from_slice(&[
                s.sel, s.a_rnw, s.a_addr, s.a_size, s.wvalid, s.wdata, s.rready,
            ]);
        }
        let relay_comp = sim.add_component(
            format!("{name}.relay"),
            CompKind::UserStatic,
            Box::new(relay),
            &sens,
        );
        sim.declare_comb(relay_comp, &sens, &writes);

        PlbBus { owner, slave, errm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_containment() {
        let w = AddressWindow {
            base: 0x1000,
            len: 0x100,
        };
        assert!(w.contains(0x1000));
        assert!(w.contains(0x10FF));
        assert!(!w.contains(0x1100));
        assert!(!w.contains(0xFFF));
    }

    #[test]
    #[should_panic(expected = "overlapping address windows")]
    fn overlapping_windows_rejected() {
        let mut sim = Simulator::new();
        let clk = sim.signal_init("clk", 1, 0);
        let rst = sim.signal_init("rst", 1, 0);
        let m = MasterPort::alloc(&mut sim, "m0");
        let s0 = SlavePort::alloc(&mut sim, "s0");
        let s1 = SlavePort::alloc(&mut sim, "s1");
        PlbBus::new(
            &mut sim,
            "plb",
            clk,
            rst,
            PlbBusConfig::default(),
            vec![m],
            vec![
                (
                    s0,
                    AddressWindow {
                        base: 0,
                        len: 0x2000,
                    },
                ),
                (
                    s1,
                    AddressWindow {
                        base: 0x1000,
                        len: 0x1000,
                    },
                ),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "point-to-point bus takes exactly one")]
    fn p2p_multi_master_rejected() {
        let mut sim = Simulator::new();
        let clk = sim.signal_init("clk", 1, 0);
        let rst = sim.signal_init("rst", 1, 0);
        let m0 = MasterPort::alloc(&mut sim, "m0");
        let m1 = MasterPort::alloc(&mut sim, "m1");
        let s0 = SlavePort::alloc(&mut sim, "s0");
        let cfg = PlbBusConfig {
            mode: BusMode::PointToPoint,
            ..Default::default()
        };
        PlbBus::new(
            &mut sim,
            "plb",
            clk,
            rst,
            cfg,
            vec![m0, m1],
            vec![(
                s0,
                AddressWindow {
                    base: 0,
                    len: 0x1000,
                },
            )],
        );
    }
}
