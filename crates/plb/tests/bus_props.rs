//! Property tests: data integrity on the shared bus under random
//! multi-master contention, for both arbitration policies.

use plb::dma::Handshake;
use plb::{
    AddressWindow, ArbMode, BfmOp, MemorySlave, PlbBus, PlbBusConfig, SharedMem, TestMaster,
};
use proptest::prelude::*;
use rtlsim::{Clock, CompKind, ResetGen, Simulator};

const PERIOD: u64 = 10_000;

#[derive(Debug, Clone)]
struct MasterPlan {
    /// (offset within the master's private region, payload words)
    writes: Vec<(u32, Vec<u32>)>,
    delay: u32,
    burst: u32,
}

fn arb_plan() -> impl Strategy<Value = MasterPlan> {
    (
        prop::collection::vec((0u32..64, prop::collection::vec(any::<u32>(), 1..24)), 1..4),
        0u32..8,
        1u32..24,
    )
        .prop_map(|(raw, delay, burst)| {
            // Stack the writes so they never overlap within the region.
            let mut writes = Vec::new();
            let mut cursor = 0u32;
            for (gap, data) in raw {
                let at = cursor + gap * 4;
                cursor = at + data.len() as u32 * 4;
                writes.push((at, data));
            }
            MasterPlan {
                writes,
                delay,
                burst,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn contended_writes_never_corrupt(
        plans in prop::collection::vec(arb_plan(), 2..4),
        round_robin in any::<bool>(),
        wait_states in 0u32..3,
    ) {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let rst = sim.signal("rst", 1);
        sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, PERIOD)), &[]);
        sim.add_component("rst", CompKind::Vip, Box::new(ResetGen::new(rst, 2 * PERIOD)), &[]);
        let mem = SharedMem::new(256 * 1024);
        let sport = MemorySlave::instantiate(&mut sim, "mem", clk, rst, mem.clone(), wait_states);

        // Each master owns a disjoint 16 KiB region.
        let mut ports = Vec::new();
        let mut logs = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            let base = 0x4000 * (i as u32 + 1);
            let mut script = vec![BfmOp::Delay { cycles: plan.delay }];
            for (off, data) in &plan.writes {
                script.push(BfmOp::Write { addr: base + off, data: data.clone() });
            }
            // Read everything back at the end.
            for (off, data) in &plan.writes {
                script.push(BfmOp::Read { addr: base + off, words: data.len() as u32 });
            }
            let (port, log) = TestMaster::instantiate(
                &mut sim,
                format!("m{i}").as_str(),
                clk,
                rst,
                Handshake::Full,
                plan.burst,
                script,
            );
            ports.push(port);
            logs.push(log);
        }
        let cfg = PlbBusConfig {
            arbitration: if round_robin { ArbMode::RoundRobin } else { ArbMode::FixedPriority },
            ..Default::default()
        };
        PlbBus::new(
            &mut sim,
            "plb",
            clk,
            rst,
            cfg,
            ports,
            vec![(sport, AddressWindow { base: 0, len: 256 * 1024 })],
        );

        sim.run_for(60_000 * PERIOD).unwrap();
        prop_assert!(!sim.has_errors(), "{:?}", sim.messages());
        for (i, (plan, log)) in plans.iter().zip(&logs).enumerate() {
            let base = 0x4000 * (i as u32 + 1);
            let log = log.borrow();
            prop_assert_eq!(log.errors, 0, "master {} bus errors", i);
            prop_assert_eq!(
                log.completed,
                plan.writes.len() * 2,
                "master {} unfinished traffic",
                i
            );
            // Read-back data matches what this master wrote.
            for (ri, (off, data)) in plan.writes.iter().enumerate() {
                prop_assert_eq!(&log.reads[ri], data, "master {} read {}", i, ri);
                // And the memory backing store agrees.
                for (w, expect) in data.iter().enumerate() {
                    let got = mem.read_u32(base + off + 4 * w as u32);
                    prop_assert_eq!(got, Some(*expect));
                }
            }
        }
    }
}
