//! End-to-end transfer tests over the shared bus fabric.

use plb::dma::Handshake;
use plb::{
    AddressWindow, ArbMode, BfmOp, BusMode, MemorySlave, PlbBus, PlbBusConfig, PlbMonitor,
    SharedMem, TestMaster,
};
use rtlsim::{Clock, CompKind, ResetGen, Simulator};

const PERIOD: u64 = 10_000;

struct Tb {
    sim: Simulator,
    mem: SharedMem,
}

fn testbench(
    cfg: PlbBusConfig,
    wait_states: u32,
    scripts: Vec<(Handshake, u32, Vec<BfmOp>)>,
) -> (Tb, Vec<std::rc::Rc<std::cell::RefCell<plb::bfm::BfmLog>>>) {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 3 * PERIOD)),
        &[],
    );

    let mem = SharedMem::new(64 * 1024);
    let sport = MemorySlave::instantiate(&mut sim, "mem", clk, rst, mem.clone(), wait_states);

    let mut ports = Vec::new();
    let mut logs = Vec::new();
    for (i, (hs, burst, script)) in scripts.into_iter().enumerate() {
        let (port, log) = TestMaster::instantiate(
            &mut sim,
            format!("m{i}").as_str(),
            clk,
            rst,
            hs,
            burst,
            script,
        );
        ports.push((format!("m{i}"), port));
        logs.push(log);
    }
    PlbMonitor::instantiate(&mut sim, "plbmon", clk, rst, ports.clone());
    PlbBus::new(
        &mut sim,
        "plb",
        clk,
        rst,
        cfg,
        ports.iter().map(|(_, p)| *p).collect(),
        vec![(
            sport,
            AddressWindow {
                base: 0,
                len: 64 * 1024,
            },
        )],
    );
    (Tb { sim, mem }, logs)
}

#[test]
fn single_master_write_then_read_back() {
    let data: Vec<u32> = (0..32).map(|i| 0x1000 + i).collect();
    let (mut tb, logs) = testbench(
        PlbBusConfig::default(),
        0,
        vec![(
            Handshake::Full,
            16,
            vec![
                BfmOp::Write {
                    addr: 0x100,
                    data: data.clone(),
                },
                BfmOp::Read {
                    addr: 0x100,
                    words: 32,
                },
            ],
        )],
    );
    tb.sim.run_for(3_000 * PERIOD).unwrap();
    let log = logs[0].borrow();
    assert_eq!(log.errors, 0);
    assert_eq!(log.completed, 2);
    assert_eq!(log.reads[0], data);
    // Memory contents visible to the testbench too.
    assert_eq!(tb.mem.read_u32(0x100), Some(0x1000));
    assert_eq!(tb.mem.read_u32(0x100 + 31 * 4), Some(0x1000 + 31));
    assert!(!tb.sim.has_errors(), "{:?}", tb.sim.messages());
}

#[test]
fn wait_states_slow_but_do_not_corrupt() {
    let data: Vec<u32> = (0..64).map(|i| i * 7 + 1).collect();
    let (mut tb, logs) = testbench(
        PlbBusConfig::default(),
        5,
        vec![(
            Handshake::Full,
            8,
            vec![
                BfmOp::Write {
                    addr: 0,
                    data: data.clone(),
                },
                BfmOp::Read { addr: 0, words: 64 },
            ],
        )],
    );
    tb.sim.run_for(5_000 * PERIOD).unwrap();
    let log = logs[0].borrow();
    assert_eq!(log.completed, 2, "transfers did not finish");
    assert_eq!(log.reads[0], data);
    assert!(!tb.sim.has_errors());
}

#[test]
fn two_masters_interleave_without_data_loss() {
    let a: Vec<u32> = (0..100).map(|i| 0xAA00_0000 + i).collect();
    let b: Vec<u32> = (0..100).map(|i| 0xBB00_0000 + i).collect();
    let (mut tb, logs) = testbench(
        PlbBusConfig::default(),
        0,
        vec![
            (
                Handshake::Full,
                16,
                vec![
                    BfmOp::Write {
                        addr: 0x0,
                        data: a.clone(),
                    },
                    BfmOp::Read {
                        addr: 0x0,
                        words: 100,
                    },
                ],
            ),
            (
                Handshake::Full,
                16,
                vec![
                    BfmOp::Write {
                        addr: 0x2000,
                        data: b.clone(),
                    },
                    BfmOp::Read {
                        addr: 0x2000,
                        words: 100,
                    },
                ],
            ),
        ],
    );
    tb.sim.run_for(10_000 * PERIOD).unwrap();
    assert_eq!(logs[0].borrow().completed, 2);
    assert_eq!(logs[1].borrow().completed, 2);
    assert_eq!(logs[0].borrow().reads[0], a);
    assert_eq!(logs[1].borrow().reads[0], b);
    assert!(!tb.sim.has_errors());
}

#[test]
fn fixed_priority_prefers_lower_index() {
    // Both masters hammer the bus; master 0 must finish first.
    let mk = |tag: u32| -> Vec<BfmOp> {
        (0..20)
            .map(|i| BfmOp::Write {
                addr: 0x1000 * (tag + 1) + i * 64,
                data: vec![tag; 16],
            })
            .collect()
    };
    let (mut tb, logs) = testbench(
        PlbBusConfig {
            arbitration: ArbMode::FixedPriority,
            ..Default::default()
        },
        0,
        vec![(Handshake::Full, 16, mk(0)), (Handshake::Full, 16, mk(1))],
    );
    // Run until master 0 done.
    let mut m0_done_at = None;
    let mut m1_done_at = None;
    for step in 0..4_000 {
        tb.sim.run_for(PERIOD).unwrap();
        if m0_done_at.is_none() && logs[0].borrow().completed == 20 {
            m0_done_at = Some(step);
        }
        if m1_done_at.is_none() && logs[1].borrow().completed == 20 {
            m1_done_at = Some(step);
        }
        if m0_done_at.is_some() && m1_done_at.is_some() {
            break;
        }
    }
    let (d0, d1) = (m0_done_at.unwrap(), m1_done_at.unwrap());
    assert!(
        d0 < d1,
        "fixed priority must favour master 0 ({d0} vs {d1})"
    );
}

#[test]
fn round_robin_shares_the_bus_fairly() {
    let mk = |tag: u32| -> Vec<BfmOp> {
        (0..20)
            .map(|i| BfmOp::Write {
                addr: 0x1000 * (tag + 1) + i * 64,
                data: vec![tag; 16],
            })
            .collect()
    };
    let (mut tb, logs) = testbench(
        PlbBusConfig {
            arbitration: ArbMode::RoundRobin,
            ..Default::default()
        },
        0,
        vec![(Handshake::Full, 16, mk(0)), (Handshake::Full, 16, mk(1))],
    );
    let mut m0_done_at = None;
    let mut m1_done_at = None;
    for step in 0..4_000 {
        tb.sim.run_for(PERIOD).unwrap();
        if m0_done_at.is_none() && logs[0].borrow().completed == 20 {
            m0_done_at = Some(step);
        }
        if m1_done_at.is_none() && logs[1].borrow().completed == 20 {
            m1_done_at = Some(step);
        }
        if m0_done_at.is_some() && m1_done_at.is_some() {
            break;
        }
    }
    let (d0, d1) = (m0_done_at.unwrap() as i64, m1_done_at.unwrap() as i64);
    assert!(
        (d0 - d1).abs() <= 25,
        "round robin should finish close together ({d0} vs {d1})"
    );
}

#[test]
fn decode_miss_reports_error_to_master() {
    let (mut tb, logs) = testbench(
        PlbBusConfig::default(),
        0,
        vec![(
            Handshake::Full,
            16,
            vec![
                BfmOp::Write {
                    addr: 0xDEAD_0000,
                    data: vec![1, 2, 3],
                },
                // A good transfer afterwards proves the bus recovered.
                BfmOp::Write {
                    addr: 0x40,
                    data: vec![9],
                },
            ],
        )],
    );
    tb.sim.run_for(500 * PERIOD).unwrap();
    let log = logs[0].borrow();
    assert_eq!(log.errors, 1);
    assert_eq!(log.completed, 1);
    assert_eq!(tb.mem.read_u32(0x40), Some(9));
}

#[test]
fn fixed_latency_master_works_on_point_to_point_bus() {
    // The original AutoVision IcapCTRL attachment: dedicated link, fixed
    // timing assumption. On the point-to-point bus this must work.
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 3 * PERIOD)),
        &[],
    );
    let mem = SharedMem::new(4096);
    let sport = MemorySlave::instantiate(&mut sim, "mem", clk, rst, mem.clone(), 0);
    let data: Vec<u32> = (0..16).collect();
    // addr_latency=2 matches: req at edge N, grant immediate (p2p),
    // aready at N+1, data phase from N+2.
    let (port, log) = TestMaster::instantiate(
        &mut sim,
        "m0",
        clk,
        rst,
        Handshake::FixedLatency { addr_latency: 2 },
        16,
        vec![BfmOp::Write {
            addr: 0x10,
            data: data.clone(),
        }],
    );
    PlbBus::new(
        &mut sim,
        "plb",
        clk,
        rst,
        PlbBusConfig {
            mode: BusMode::PointToPoint,
            ..Default::default()
        },
        vec![port],
        vec![(sport, AddressWindow { base: 0, len: 4096 })],
    );
    sim.run_for(200 * PERIOD).unwrap();
    assert_eq!(log.borrow().completed, 1);
    for (i, v) in data.iter().enumerate() {
        assert_eq!(mem.read_u32(0x10 + 4 * i as u32), Some(*v), "word {i}");
    }
}

#[test]
fn fixed_latency_master_fails_on_shared_bus_and_is_flagged() {
    // bug.dpr.4 in miniature: the same fixed-latency master dropped onto
    // the arbitrated shared bus with a competing master. Its data beats
    // fire before/without grant alignment and the transfer corrupts.
    let data: Vec<u32> = (100..116).collect();
    let (mut tb, _logs) = testbench(
        PlbBusConfig::default(),
        3, // wait states push aready well past the assumed latency
        vec![(
            Handshake::FixedLatency { addr_latency: 2 },
            16,
            vec![BfmOp::Write {
                addr: 0x10,
                data: data.clone(),
            }],
        )],
    );
    tb.sim.run_for(500 * PERIOD).unwrap();
    // The write must NOT have landed intact.
    let written: Vec<Option<u32>> = tb.mem.read_words(0x10, 16);
    let intact = written.iter().zip(&data).all(|(w, d)| *w == Some(*d));
    assert!(!intact, "fixed-latency master should corrupt on shared bus");
    // And the monitor flagged the protocol violation (ungranted drive or
    // the resulting hang/corruption).
    assert!(tb.sim.has_errors(), "monitor should flag the violation");
}

#[test]
fn x_poisoned_memory_reads_back_as_unknown() {
    let (mut tb, logs) = testbench(
        PlbBusConfig::default(),
        0,
        vec![(
            Handshake::Full,
            8,
            vec![
                BfmOp::Delay { cycles: 5 },
                BfmOp::Read {
                    addr: 0x200,
                    words: 4,
                },
            ],
        )],
    );
    tb.mem.load_words(0x200, &[1, 2, 3, 4]);
    tb.mem.poison_word(0x204);
    tb.sim.run_for(300 * PERIOD).unwrap();
    let log = logs[0].borrow();
    assert_eq!(log.completed, 1);
    // Beat 1 was poisoned.
    assert_eq!(log.reads[0][0], 1);
    assert_eq!(log.reads[0][2], 3);
    assert_eq!(log.reads[0][3], 4);
}
