//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the subset of the criterion API its benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! `iter` / `iter_with_setup`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed
//! for a fixed number of batches; median batch time is reported on
//! stdout together with derived element throughput when configured.
//! There is no statistical analysis, plotting, or baseline storage —
//! only honest wall-clock numbers, which is what the paper tables need.
//! Under `cargo test` (criterion benches run with `--test`), each
//! bench executes exactly one iteration as a smoke test, mirroring
//! upstream behaviour.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so call sites may use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timing loop handed to the benchmark closure.
pub struct Bencher {
    /// Total time across timed iterations.
    elapsed: Duration,
    iters: u64,
    smoke_only: bool,
}

impl Bencher {
    fn target_iters(&self) -> u64 {
        if self.smoke_only {
            1
        } else {
            self.iters
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let n = self.target_iters();
        let start = Instant::now();
        for _ in 0..n {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
    ) {
        let n = self.target_iters();
        let mut total = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

struct Settings {
    sample_size: usize,
    throughput: Option<Throughput>,
    smoke_only: bool,
}

fn run_one(name: &str, settings: &Settings, f: impl Fn(&mut Bencher)) {
    // Warm-up: one untimed pass.
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
        smoke_only: true,
    };
    f(&mut warm);
    if settings.smoke_only {
        println!("bench {name}: ok (smoke)");
        return;
    }
    let mut per_iter = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
            smoke_only: false,
        };
        f(&mut b);
        per_iter.push(b.elapsed);
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    match settings.throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            let rate = n as f64 / median.as_secs_f64();
            println!("bench {name}: median {median:?} ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            let rate = n as f64 / median.as_secs_f64();
            println!("bench {name}: median {median:?} ({rate:.0} B/s)");
        }
        _ => println!("bench {name}: median {median:?}"),
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Settings,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl Fn(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, &self.settings, |b| f(b, input));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl Fn(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, &self.settings, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    smoke_only: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false benches with `--test`;
        // `cargo bench` passes `--bench`. Smoke-run under test.
        let args: Vec<String> = std::env::args().collect();
        let smoke_only = !args.iter().any(|a| a == "--bench");
        Criterion {
            smoke_only,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = Settings {
            sample_size: self.default_sample_size,
            throughput: None,
            smoke_only: self.smoke_only,
        };
        BenchmarkGroup {
            name: name.into(),
            settings,
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl Fn(&mut Bencher)) -> &mut Self {
        let settings = Settings {
            sample_size: self.default_sample_size,
            throughput: None,
            smoke_only: self.smoke_only,
        };
        run_one(name, &settings, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            smoke_only: false,
            default_sample_size: 3,
        };
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn iter_with_setup_times_only_the_routine() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 2,
            smoke_only: false,
        };
        b.iter_with_setup(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
        );
        assert!(b.elapsed >= Duration::ZERO);
    }

    #[test]
    fn bench_function_smoke() {
        let mut c = Criterion {
            smoke_only: true,
            default_sample_size: 5,
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
