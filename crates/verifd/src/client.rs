//! A small blocking client for the `verifd` protocol, shared by
//! `verifctl`, the bench harness and the test suite.

use crate::proto::{self, Done};
use crate::server::Endpoint;
use obs::json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use verif::wire::CampaignSubmission;

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

/// What a served submission streamed back: the raw row JSON objects
/// (byte-identical to [`verif::wire::row_to_json`] output) and the
/// terminal summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// Submission id the daemon assigned.
    pub id: u64,
    /// Scenario count the daemon planned.
    pub scenarios: usize,
    /// Raw row objects, in delivery (= submission) order.
    pub rows: Vec<String>,
    /// The terminal summary.
    pub done: Done,
}

impl Served {
    /// Reassemble the full `campaign_report/v1` document from the
    /// streamed rows — byte-identical to the in-process
    /// [`verif::wire::report_to_json`] rendering of the same campaign.
    pub fn report_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"campaign_report/v1\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(r);
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  ],\n  \"stats\": {{\"scenarios\": {}, \"workers\": {}}}\n}}\n",
            self.rows.len(),
            self.done.workers
        ));
        out
    }
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connect to an endpoint (`unix:<path>`, `tcp:<addr>`, or a bare
    /// Unix socket path).
    pub fn connect(endpoint: &str) -> io::Result<Client> {
        match Endpoint::parse(endpoint) {
            Endpoint::Unix(path) => {
                let s = UnixStream::connect(path)?;
                let r = s.try_clone()?;
                Ok(Client {
                    reader: BufReader::new(Box::new(r)),
                    writer: Box::new(s),
                })
            }
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                let r = s.try_clone()?;
                Ok(Client {
                    reader: BufReader::new(Box::new(r)),
                    writer: Box::new(s),
                })
            }
        }
    }

    /// Send one frame (a line).
    pub fn send(&mut self, frame: &str) -> io::Result<()> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receive and parse one frame; `None` on a closed connection.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return Json::parse(line.trim_end_matches('\n'))
                .map(Some)
                .map_err(proto_err);
        }
    }

    /// Receive one frame, turning EOF and `error/v1` into errors.
    pub fn expect_frame(&mut self) -> io::Result<Json> {
        let v = self
            .recv()?
            .ok_or_else(|| proto_err("connection closed mid-response"))?;
        if proto::schema_of(&v) == Some(proto::ERROR_SCHEMA) {
            let msg = v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error");
            return Err(proto_err(format!("daemon error: {msg}")));
        }
        Ok(v)
    }

    /// Submit a campaign and invoke `on_row` with each raw row JSON
    /// object as it streams in; returns the collected [`Served`].
    pub fn submit_streaming(
        &mut self,
        sub: &CampaignSubmission,
        mut on_row: impl FnMut(&str),
    ) -> io::Result<Served> {
        self.send(&proto::oneline(&sub.to_json()))?;
        let accepted = self.expect_frame()?;
        if proto::schema_of(&accepted) != Some(proto::ACCEPTED_SCHEMA) {
            return Err(proto_err("expected campaign_accepted/v1"));
        }
        let id = accepted
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| proto_err("accepted frame without id"))?;
        let scenarios = accepted
            .get("scenarios")
            .and_then(Json::as_u64)
            .ok_or_else(|| proto_err("accepted frame without scenario count"))?
            as usize;
        let (rows, done) = self.drain_rows(id, &mut on_row)?;
        Ok(Served {
            id,
            scenarios,
            rows,
            done,
        })
    }

    /// Submit a campaign and collect everything.
    pub fn submit(&mut self, sub: &CampaignSubmission) -> io::Result<Served> {
        self.submit_streaming(sub, |_| {})
    }

    /// Watch (replay + follow) an existing submission.
    pub fn watch(
        &mut self,
        id: u64,
        mut on_row: impl FnMut(&str),
    ) -> io::Result<(Vec<String>, Done)> {
        self.send(&proto::watch_frame(id))?;
        self.drain_rows(id, &mut on_row)
    }

    fn drain_rows(
        &mut self,
        id: u64,
        on_row: &mut impl FnMut(&str),
    ) -> io::Result<(Vec<String>, Done)> {
        let mut rows = Vec::new();
        loop {
            let v = self.expect_frame()?;
            match proto::schema_of(&v) {
                Some(proto::ROW_SCHEMA) => {
                    if v.get("id").and_then(Json::as_u64) != Some(id) {
                        return Err(proto_err("row frame for a different submission"));
                    }
                    let row = v
                        .get("row")
                        .ok_or_else(|| proto_err("row frame without row object"))?;
                    // Canonical re-render: byte-identical to the wire
                    // bytes, since the daemon rendered with the same
                    // single row printer.
                    let raw = verif::wire::WireRow::from_value(row)
                        .map_err(proto_err)?
                        .to_json();
                    on_row(&raw);
                    rows.push(raw);
                }
                Some(proto::DONE_SCHEMA) => {
                    let done = Done::from_value(&v).map_err(proto_err)?;
                    if done.id != id {
                        return Err(proto_err("done frame for a different submission"));
                    }
                    return Ok((rows, done));
                }
                other => {
                    return Err(proto_err(format!(
                        "unexpected frame {:?} while streaming rows",
                        other
                    )))
                }
            }
        }
    }

    /// Cancel a submission.
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.send(&proto::cancel_frame(id))?;
        let v = self.expect_frame()?;
        if proto::schema_of(&v) != Some(proto::CANCEL_OK_SCHEMA) {
            return Err(proto_err("expected cancel_ok/v1"));
        }
        Ok(())
    }

    /// Scrape the daemon's one-lined `obs_metrics/v1` snapshot.
    pub fn metrics(&mut self) -> io::Result<String> {
        self.send(&proto::bare_frame(proto::METRICS_SCHEMA))?;
        let v = self.expect_frame()?;
        if proto::schema_of(&v) != Some("obs_metrics/v1") {
            return Err(proto_err("expected obs_metrics/v1 snapshot"));
        }
        // Hand callers the raw line; re-rendering a metrics snapshot is
        // not part of the byte-identity contract.
        Ok(render_snapshot(&v))
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&proto::bare_frame(proto::PING_SCHEMA))?;
        let v = self.expect_frame()?;
        if proto::schema_of(&v) != Some(proto::PONG_SCHEMA) {
            return Err(proto_err("expected pong/v1"));
        }
        Ok(())
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.send(&proto::bare_frame(proto::SHUTDOWN_SCHEMA))?;
        let v = self.expect_frame()?;
        if proto::schema_of(&v) != Some(proto::SHUTDOWN_OK_SCHEMA) {
            return Err(proto_err("expected shutdown_ok/v1"));
        }
        Ok(())
    }
}

/// Re-render a parsed metrics snapshot compactly (sorted structure is
/// preserved because the parser keeps member order).
fn render_snapshot(v: &Json) -> String {
    fn go(v: &Json, out: &mut String) {
        match v {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&obs::json::escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    go(it, out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, val)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&obs::json::escape(k));
                    out.push_str("\":");
                    go(val, out);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    go(v, &mut out);
    out
}
