//! The `verifd` daemon binary.
//!
//! ```text
//! verifd [--unix PATH] [--tcp ADDR] [--max-campaigns N] [--max-queued N]
//!        [--threads N] [--scenario-budget N]
//! ```
//!
//! With no endpoint flags it listens on `verifd.sock` in the working
//! directory. Once every listener is bound it prints a single ready
//! line to stdout (`verifd ready unix=... tcp=...`) so supervisors and
//! CI scripts can wait for it, then serves until a client sends
//! `shutdown/v1`.

use verifd::server::{Endpoint, RunningServer, ServerConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    flag_value(args, flag)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("verifd: {flag} needs an integer, got \"{v}\"");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: verifd [--unix PATH] [--tcp ADDR] [--max-campaigns N] \
             [--max-queued N] [--threads N] [--scenario-budget N]"
        );
        return;
    }
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        max_campaigns: usize_flag(&args, "--max-campaigns", defaults.max_campaigns),
        max_queued: usize_flag(&args, "--max-queued", defaults.max_queued),
        threads: usize_flag(&args, "--threads", defaults.threads),
        scenario_budget: usize_flag(&args, "--scenario-budget", defaults.scenario_budget),
    };
    let mut endpoints = Vec::new();
    if let Some(path) = flag_value(&args, "--unix") {
        endpoints.push(Endpoint::Unix(path.into()));
    }
    if let Some(addr) = flag_value(&args, "--tcp") {
        endpoints.push(Endpoint::Tcp(addr));
    }
    if endpoints.is_empty() {
        endpoints.push(Endpoint::Unix("verifd.sock".into()));
    }
    let running = match RunningServer::start(cfg, &endpoints) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("verifd: failed to bind: {e}");
            std::process::exit(1);
        }
    };
    let mut ready = String::from("verifd ready");
    if let Some(p) = running.unix_path() {
        ready.push_str(&format!(" unix={}", p.display()));
    }
    if let Some(a) = running.tcp_addr() {
        ready.push_str(&format!(" tcp={a}"));
    }
    println!("{ready}");
    use std::io::Write;
    let _ = std::io::stdout().flush();
    running.wait();
}
