//! The `verifctl` client binary.
//!
//! ```text
//! verifctl --connect ENDPOINT submit [--file SUB.json] [--matrix]
//!          [--recovery N] [--recovery-off] [--seed N] [--budget-cycles N]
//!          [--threads N] [--scenario-budget N] [--exec-mode MODE]
//!          [--report]
//! verifctl --connect ENDPOINT watch --id N
//! verifctl --connect ENDPOINT cancel --id N
//! verifctl --connect ENDPOINT metrics
//! verifctl --connect ENDPOINT ping
//! verifctl --connect ENDPOINT shutdown
//! ```
//!
//! `ENDPOINT` is `unix:<path>`, `tcp:<host:port>`, or a bare Unix
//! socket path. `submit` prints each streamed row object on its own
//! line (or, with `--report`, the reassembled `campaign_report/v1`
//! document — byte-identical to an in-process run) and finishes with
//! the `campaign_done/v1` summary on stderr.

use verif::wire::CampaignSubmission;
use verifd::client::Client;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("verifctl: bad value \"{v}\" for {flag}");
            std::process::exit(2);
        })
    })
}

fn die(msg: &str) -> ! {
    eprintln!("verifctl: {msg}");
    std::process::exit(1);
}

fn build_submission(args: &[String]) -> CampaignSubmission {
    if let Some(path) = flag_value(args, "--file") {
        let doc = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        return CampaignSubmission::from_json(&doc)
            .unwrap_or_else(|e| die(&format!("bad submission document: {e}")));
    }
    let mut sub = CampaignSubmission {
        matrix: has_flag(args, "--matrix"),
        ..Default::default()
    };
    if let Some(runs) = parsed_flag::<usize>(args, "--recovery") {
        sub.recovery_runs = runs;
        sub.recovery_on = !has_flag(args, "--recovery-off");
    }
    if let Some(seed) = parsed_flag::<u64>(args, "--seed") {
        sub.seed = seed;
    }
    if let Some(b) = parsed_flag::<u64>(args, "--budget-cycles") {
        sub.budget_cycles = b;
    }
    if let Some(t) = parsed_flag::<usize>(args, "--threads") {
        sub.threads = t;
    }
    if let Some(b) = parsed_flag::<usize>(args, "--scenario-budget") {
        sub.scenario_budget = b;
    }
    if let Some(mode) = flag_value(args, "--exec-mode") {
        sub.exec_mode = mode
            .parse()
            .unwrap_or_else(|e| die(&format!("bad --exec-mode: {e}")));
    }
    if !sub.matrix && sub.recovery_runs == 0 {
        die("empty submission: pass --matrix, --recovery N, or --file SUB.json");
    }
    sub
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || has_flag(&args, "--help") || has_flag(&args, "-h") {
        eprintln!(
            "usage: verifctl --connect ENDPOINT \
             (submit|watch|cancel|metrics|ping|shutdown) [options]"
        );
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let endpoint =
        flag_value(&args, "--connect").unwrap_or_else(|| die("missing --connect ENDPOINT"));
    let command = args
        .iter()
        .find(|a| {
            matches!(
                a.as_str(),
                "submit" | "watch" | "cancel" | "metrics" | "ping" | "shutdown"
            )
        })
        .unwrap_or_else(|| die("missing command"))
        .clone();
    let mut client = Client::connect(&endpoint)
        .unwrap_or_else(|e| die(&format!("cannot connect to {endpoint}: {e}")));
    let result = match command.as_str() {
        "submit" => {
            let sub = build_submission(&args);
            let want_report = has_flag(&args, "--report");
            let served = client
                .submit_streaming(&sub, |row| {
                    if !want_report {
                        println!("{row}");
                    }
                })
                .unwrap_or_else(|e| die(&format!("submit failed: {e}")));
            if want_report {
                print!("{}", served.report_json());
            }
            eprintln!(
                "campaign {}: {} rows, {} failures, workers={}, cache {}h/{}m{}",
                served.id,
                served.done.rows,
                served.done.failures,
                served.done.workers,
                served.done.artifact_hits,
                served.done.artifact_misses,
                if served.done.cancelled {
                    ", CANCELLED"
                } else {
                    ""
                }
            );
            Ok(())
        }
        "watch" => {
            let id = parsed_flag::<u64>(&args, "--id").unwrap_or_else(|| die("watch needs --id N"));
            client.watch(id, |row| println!("{row}")).map(|(_, done)| {
                eprintln!(
                    "campaign {id}: {} rows, {} failures",
                    done.rows, done.failures
                );
            })
        }
        "cancel" => {
            let id =
                parsed_flag::<u64>(&args, "--id").unwrap_or_else(|| die("cancel needs --id N"));
            client
                .cancel(id)
                .map(|()| eprintln!("campaign {id}: cancel requested"))
        }
        "metrics" => client.metrics().map(|snap| println!("{snap}")),
        "ping" => client.ping().map(|()| println!("pong")),
        "shutdown" => client
            .shutdown()
            .map(|()| eprintln!("daemon shutting down")),
        _ => unreachable!(),
    };
    if let Err(e) = result {
        die(&format!("{command} failed: {e}"));
    }
}
