//! The NDJSON frame vocabulary of the `verifd` IPC protocol.
//!
//! Every frame is one line: a single JSON object whose `schema` member
//! names its type and version. Requests:
//!
//! | schema               | payload                                    |
//! |----------------------|--------------------------------------------|
//! | `campaign_submit/v1` | a [`verif::wire::CampaignSubmission`] doc  |
//! | `campaign_watch/v1`  | `id` — replay/follow a submission's rows   |
//! | `campaign_cancel/v1` | `id` — cancel a running submission         |
//! | `metrics_scrape/v1`  | none — scrape the daemon metrics snapshot  |
//! | `ping/v1`            | none                                       |
//! | `shutdown/v1`        | none — stop the daemon                     |
//!
//! Responses: `campaign_accepted/v1` (`id`, `scenarios`), a stream of
//! `campaign_row/v1` frames (each embedding one row object exactly as
//! [`verif::wire::row_to_json`] renders it), a terminal
//! `campaign_done/v1`, plus `cancel_ok/v1`, `pong/v1`, `shutdown_ok/v1`,
//! a one-lined `obs_metrics/v1` snapshot, and `error/v1` for anything
//! rejected.
//!
//! Multi-line documents (submissions, metrics snapshots) are sent
//! through [`oneline`]: raw newlines are structural whitespace in the
//! repo's JSON dialect — escaped strings never contain them — so
//! stripping them preserves the document byte-for-byte after a
//! parse/re-render.

use obs::json::{escape, number, Json};

/// Request schemas.
pub const SUBMIT_SCHEMA: &str = verif::wire::CAMPAIGN_SUBMIT_SCHEMA;
/// See [`SUBMIT_SCHEMA`].
pub const WATCH_SCHEMA: &str = "campaign_watch/v1";
/// See [`SUBMIT_SCHEMA`].
pub const CANCEL_SCHEMA: &str = "campaign_cancel/v1";
/// See [`SUBMIT_SCHEMA`].
pub const METRICS_SCHEMA: &str = "metrics_scrape/v1";
/// See [`SUBMIT_SCHEMA`].
pub const PING_SCHEMA: &str = "ping/v1";
/// See [`SUBMIT_SCHEMA`].
pub const SHUTDOWN_SCHEMA: &str = "shutdown/v1";

/// Response schemas.
pub const ACCEPTED_SCHEMA: &str = "campaign_accepted/v1";
/// See [`ACCEPTED_SCHEMA`].
pub const ROW_SCHEMA: &str = "campaign_row/v1";
/// See [`ACCEPTED_SCHEMA`].
pub const DONE_SCHEMA: &str = "campaign_done/v1";
/// See [`ACCEPTED_SCHEMA`].
pub const CANCEL_OK_SCHEMA: &str = "cancel_ok/v1";
/// See [`ACCEPTED_SCHEMA`].
pub const PONG_SCHEMA: &str = "pong/v1";
/// See [`ACCEPTED_SCHEMA`].
pub const SHUTDOWN_OK_SCHEMA: &str = "shutdown_ok/v1";
/// See [`ACCEPTED_SCHEMA`].
pub const ERROR_SCHEMA: &str = "error/v1";

/// Strip raw newlines from a multi-line JSON document so it fits one
/// NDJSON frame. Safe for this repo's JSON dialect: [`escape`] never
/// emits a raw newline inside a string, so every `\n` in a rendered
/// document is structural whitespace.
pub fn oneline(doc: &str) -> String {
    doc.replace('\n', "")
}

/// The `schema` member of a parsed frame.
pub fn schema_of(v: &Json) -> Option<&str> {
    v.get("schema").and_then(Json::as_str)
}

/// An `error/v1` frame.
pub fn error_frame(msg: &str) -> String {
    format!(
        "{{\"schema\": \"{ERROR_SCHEMA}\", \"error\": \"{}\"}}",
        escape(msg)
    )
}

/// A `campaign_accepted/v1` frame.
pub fn accepted_frame(id: u64, scenarios: usize) -> String {
    format!("{{\"schema\": \"{ACCEPTED_SCHEMA}\", \"id\": {id}, \"scenarios\": {scenarios}}}")
}

/// A `campaign_row/v1` frame around one already-rendered row object.
pub fn row_frame(id: u64, row_json: &str) -> String {
    format!("{{\"schema\": \"{ROW_SCHEMA}\", \"id\": {id}, \"row\": {row_json}}}")
}

/// A `campaign_watch/v1` request.
pub fn watch_frame(id: u64) -> String {
    format!("{{\"schema\": \"{WATCH_SCHEMA}\", \"id\": {id}}}")
}

/// A `campaign_cancel/v1` request.
pub fn cancel_frame(id: u64) -> String {
    format!("{{\"schema\": \"{CANCEL_SCHEMA}\", \"id\": {id}}}")
}

/// A bodyless request frame (`ping/v1`, `metrics_scrape/v1`,
/// `shutdown/v1`).
pub fn bare_frame(schema: &str) -> String {
    format!("{{\"schema\": \"{schema}\"}}")
}

/// The terminal summary of one served submission. Everything here is
/// either a deterministic aggregate of the rows or an explicitly
/// wall-clock-dependent service statistic (`wall_s`, cache deltas).
#[derive(Debug, Clone, PartialEq)]
pub struct Done {
    /// Submission id.
    pub id: u64,
    /// Rows delivered (always the full scenario count, even when
    /// cancelled — cancellation yields typed `cancelled` rows).
    pub rows: u64,
    /// Rows that carry no verification result (failed / timed out /
    /// cancelled).
    pub failures: u64,
    /// Worker threads the daemon granted the run.
    pub workers: u64,
    /// Artifact-cache hits this submission contributed.
    pub artifact_hits: u64,
    /// Artifact-cache misses this submission contributed.
    pub artifact_misses: u64,
    /// Was the submission cancelled mid-run?
    pub cancelled: bool,
    /// Wall-clock seconds of the campaign run.
    pub wall_s: f64,
}

impl Done {
    /// The `campaign_done/v1` frame.
    pub fn to_frame(&self) -> String {
        format!(
            "{{\"schema\": \"{DONE_SCHEMA}\", \"id\": {}, \"rows\": {}, \"failures\": {}, \
             \"workers\": {}, \"artifact_hits\": {}, \"artifact_misses\": {}, \
             \"cancelled\": {}, \"wall_s\": {}}}",
            self.id,
            self.rows,
            self.failures,
            self.workers,
            self.artifact_hits,
            self.artifact_misses,
            self.cancelled,
            number(self.wall_s),
        )
    }

    /// Parse a `campaign_done/v1` frame.
    pub fn from_value(v: &Json) -> Result<Done, String> {
        if schema_of(v) != Some(DONE_SCHEMA) {
            return Err(format!("not a {DONE_SCHEMA} frame"));
        }
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-integer key {key}"))
        };
        Ok(Done {
            id: u("id")?,
            rows: u("rows")?,
            failures: u("failures")?,
            workers: u("workers")?,
            artifact_hits: u("artifact_hits")?,
            artifact_misses: u("artifact_misses")?,
            cancelled: v
                .get("cancelled")
                .and_then(Json::as_bool)
                .ok_or("missing or non-bool key cancelled")?,
            wall_s: v.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_frame_roundtrips() {
        let d = Done {
            id: 3,
            rows: 12,
            failures: 1,
            workers: 4,
            artifact_hits: 30,
            artifact_misses: 2,
            cancelled: false,
            wall_s: 0.25,
        };
        let v = Json::parse(&d.to_frame()).expect("frame parses");
        assert_eq!(Done::from_value(&v).expect("done parses"), d);
    }

    #[test]
    fn oneline_preserves_document_content() {
        let sub = verif::wire::CampaignSubmission {
            scenarios: vec![verif::Scenario::Clean],
            ..Default::default()
        };
        let flat = oneline(&sub.to_json());
        assert!(!flat.contains('\n'));
        assert_eq!(
            verif::wire::CampaignSubmission::from_json(&flat).expect("flat doc parses"),
            sub
        );
    }

    #[test]
    fn row_frame_embeds_the_row_object_verbatim() {
        let row = "{\"index\": 0, \"scenario\": \"Clean\", \"kind\": \"timed_out\"}";
        let frame = row_frame(7, row);
        let v = Json::parse(&frame).expect("frame parses");
        assert_eq!(schema_of(&v), Some(ROW_SCHEMA));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        let embedded = v.get("row").expect("row member");
        let rendered = verif::wire::WireRow::from_value(embedded)
            .expect("row parses")
            .to_json();
        assert_eq!(rendered, row);
    }
}
