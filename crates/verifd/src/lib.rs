//! # verifd — the long-running campaign service
//!
//! The batch flow builds the AutoVision system, runs one experiment and
//! exits, paying the full setup cost (SimB derivation, software images,
//! golden predictions) every time. This crate makes the simulator a
//! *server*: a daemon that keeps one [`autovision::ArtifactCache`] hot
//! across submissions and serves campaign runs over a newline-delimited
//! JSON IPC protocol on a Unix socket and/or TCP.
//!
//! * [`proto`] — the NDJSON frame vocabulary (requests, responses, and
//!   the one-lining rule that keeps multi-line documents NDJSON-safe);
//! * [`server`] — the daemon: admission control over concurrent
//!   campaigns, per-submission row streaming, a campaign registry for
//!   watch/cancel, and a `/metrics`-style scrape of the shared
//!   [`obs::MetricsRegistry`] plus the compiled-plane tally;
//! * [`client`] — a small blocking client used by `verifctl`, the bench
//!   harness and the test suite.
//!
//! ## Determinism contract
//!
//! Campaign rows streamed over the socket are **byte-identical** to the
//! rows an in-process [`verif::Campaign`] run renders, because both
//! sides serialize through the one schema definition in [`verif::wire`].
//! Admission control, thread caps and the shared artifact cache may
//! change *when* a row arrives, never *what* it says.

pub mod client;
pub mod proto;
pub mod server;

pub use client::Client;
pub use proto::Done;
pub use server::{Endpoint, RunningServer, Server, ServerConfig};
