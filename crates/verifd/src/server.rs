//! The daemon: admission control, campaign execution, row streaming,
//! watch/cancel, and the metrics scrape.
//!
//! Architecture: each accepted connection gets its own handler thread.
//! A `campaign_submit/v1` runs its campaign *on the submitting
//! connection's thread* (the work-stealing pool inside the campaign
//! supplies the parallelism), streaming `campaign_row/v1` frames as the
//! executor delivers rows in submission order. Admission control is a
//! counting gate: at most `max_campaigns` submissions run concurrently;
//! up to `max_queued` more block in line; beyond that submissions are
//! rejected with `error/v1` so a flooded daemon degrades loudly instead
//! of accumulating unbounded threads.
//!
//! Every row frame is also appended to the submission's registry entry,
//! so `campaign_watch/v1` on another connection can replay and follow a
//! run. `campaign_cancel/v1` flips the entry's cancellation flag; the
//! executor converts every not-yet-started scenario into a typed
//! `cancelled` row, keeping delivery index-complete.

use crate::proto;
use autovision::ArtifactCache;
use obs::json::Json;
use obs::MetricsRegistry;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use verif::wire::CampaignSubmission;

/// Daemon policy knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Campaigns allowed to run concurrently.
    pub max_campaigns: usize,
    /// Submissions allowed to wait for admission beyond the running
    /// ones; anything past this is rejected.
    pub max_queued: usize,
    /// Worker threads granted per campaign. `0` honours the
    /// submission's request (which may itself be 0 = executor default).
    pub threads: usize,
    /// Scenario budget forced on every campaign. `0` honours the
    /// submission's request.
    pub scenario_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_campaigns: 2,
            max_queued: 8,
            threads: 0,
            scenario_budget: 0,
        }
    }
}

#[derive(Default)]
struct EntryState {
    /// Row frames in delivery order (already rendered, ready to replay).
    frames: Vec<String>,
    /// The terminal frame, once the run finished.
    done: Option<String>,
}

/// One submission's registry entry: the frame log watchers replay and
/// the cancellation flag.
struct CampaignEntry {
    cancel: AtomicBool,
    state: Mutex<EntryState>,
    progress: Condvar,
}

impl CampaignEntry {
    fn push_frame(&self, frame: String) {
        let mut st = self.state.lock().expect("entry lock poisoned");
        st.frames.push(frame);
        self.progress.notify_all();
    }

    fn finish(&self, done: String) {
        let mut st = self.state.lock().expect("entry lock poisoned");
        st.done = Some(done);
        self.progress.notify_all();
    }
}

#[derive(Default)]
struct Admission {
    running: usize,
    queued: usize,
}

/// The daemon state shared by every connection: the hot artifact cache,
/// the metrics registry, the admission gate and the campaign registry.
pub struct Server {
    cfg: ServerConfig,
    artifacts: ArtifactCache,
    metrics: Mutex<MetricsRegistry>,
    admission: Mutex<Admission>,
    admit: Condvar,
    next_id: AtomicU64,
    campaigns: Mutex<BTreeMap<u64, Arc<CampaignEntry>>>,
    stopping: AtomicBool,
    /// Resolved listen endpoints, filled in by [`RunningServer::start`]
    /// so [`Server::stop`] can poke each blocking `accept` awake no
    /// matter which thread requests shutdown (`shutdown/v1` arrives on
    /// a connection handler, not the thread that owns the listeners).
    endpoints: Mutex<Vec<Endpoint>>,
}

/// Releases one admission slot on drop, so a panicking campaign cannot
/// wedge the gate.
struct AdmissionGuard<'a> {
    server: &'a Server,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        let mut a = self
            .server
            .admission
            .lock()
            .expect("admission lock poisoned");
        a.running -= 1;
        drop(a);
        self.server.admit.notify_all();
    }
}

impl Server {
    /// A server with the given policy and a fresh artifact cache.
    pub fn new(cfg: ServerConfig) -> Server {
        Server {
            cfg,
            artifacts: ArtifactCache::new(),
            metrics: Mutex::new(MetricsRegistry::new()),
            admission: Mutex::new(Admission::default()),
            admit: Condvar::new(),
            next_id: AtomicU64::new(0),
            campaigns: Mutex::new(BTreeMap::new()),
            stopping: AtomicBool::new(false),
            endpoints: Mutex::new(Vec::new()),
        }
    }

    /// The shared artifact cache every submission runs against. Exposed
    /// so harnesses can measure what a warm daemon buys: building a
    /// system against this cache after a few campaigns skips every
    /// derivation a cold in-process run pays for.
    pub fn artifacts(&self) -> &ArtifactCache {
        &self.artifacts
    }

    /// Has shutdown been requested?
    pub fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Request shutdown (listeners stop accepting; in-flight connections
    /// finish their current request). Pokes every listener with a
    /// throwaway connection so blocking `accept` calls observe the flag.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::Release);
        self.admit.notify_all();
        let endpoints = self.endpoints.lock().expect("endpoint list poisoned");
        for ep in endpoints.iter() {
            match ep {
                Endpoint::Unix(path) => {
                    let _ = UnixStream::connect(path);
                }
                Endpoint::Tcp(addr) => {
                    let _ = TcpStream::connect(addr);
                }
            }
        }
    }

    /// Block until an admission slot is free, or reject when the wait
    /// line itself is full.
    fn admit_one(&self) -> Result<AdmissionGuard<'_>, String> {
        let mut a = self.admission.lock().expect("admission lock poisoned");
        if a.running < self.cfg.max_campaigns {
            a.running += 1;
            return Ok(AdmissionGuard { server: self });
        }
        if a.queued >= self.cfg.max_queued {
            return Err(format!(
                "busy: {} campaigns running, {} queued (limit {})",
                a.running, a.queued, self.cfg.max_queued
            ));
        }
        a.queued += 1;
        while a.running >= self.cfg.max_campaigns && !self.stopping() {
            a = self.admit.wait(a).expect("admission lock poisoned");
        }
        a.queued -= 1;
        if self.stopping() {
            return Err("shutting down".to_string());
        }
        a.running += 1;
        Ok(AdmissionGuard { server: self })
    }

    /// The one-lined `obs_metrics/v1` snapshot: service counters, the
    /// last campaign's executor stats, cache totals and the process-wide
    /// compiled-plane tally.
    pub fn metrics_snapshot(&self) -> String {
        let mut reg = self.metrics.lock().expect("metrics lock poisoned");
        {
            let a = self.admission.lock().expect("admission lock poisoned");
            reg.counter("service.campaigns_running", a.running as u64);
            reg.counter("service.campaigns_queued", a.queued as u64);
        }
        let (hits, misses) = self.artifacts.stats();
        reg.counter("service.artifact_cache.hits", hits);
        reg.counter("service.artifact_cache.misses", misses);
        let ct = verif::compiled_tally();
        reg.counter("compiled.plans", ct.plans);
        reg.counter("compiled.compile_nanos", ct.compile_nanos);
        reg.counter("compiled.steady_points", ct.steady_points);
        reg.counter("compiled.fallback_points", ct.fallback_points);
        reg.counter("compiled.signal_wakes", ct.signal_wakes);
        reg.counter("compiled.skipped_parked", ct.skipped_parked);
        proto::oneline(&reg.snapshot_json())
    }

    /// Serve one connection: read request frames line by line until EOF
    /// or shutdown. Write errors are treated as a vanished client.
    pub fn serve_connection<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        mut writer: W,
    ) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if !self.dispatch(&line, &mut writer)? {
                break;
            }
        }
        Ok(())
    }

    /// Handle one request frame. Returns `false` when the connection
    /// should close (shutdown).
    fn dispatch<W: Write + Send>(&self, line: &str, writer: &mut W) -> io::Result<bool> {
        let parsed = Json::parse(line);
        let reply = |writer: &mut W, frame: &str| -> io::Result<()> {
            writer.write_all(frame.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()
        };
        let v = match parsed {
            Ok(v) => v,
            Err(e) => {
                reply(writer, &proto::error_frame(&format!("bad frame: {e}")))?;
                return Ok(true);
            }
        };
        match proto::schema_of(&v) {
            Some(proto::SUBMIT_SCHEMA) => {
                self.handle_submit(line, writer)?;
                Ok(true)
            }
            Some(proto::WATCH_SCHEMA) => {
                match v.get("id").and_then(Json::as_u64) {
                    Some(id) => self.handle_watch(id, writer)?,
                    None => reply(writer, &proto::error_frame("watch needs an integer id"))?,
                }
                Ok(true)
            }
            Some(proto::CANCEL_SCHEMA) => {
                let frame = match v.get("id").and_then(Json::as_u64) {
                    Some(id) => {
                        let entry = self
                            .campaigns
                            .lock()
                            .expect("registry lock poisoned")
                            .get(&id)
                            .cloned();
                        match entry {
                            Some(e) => {
                                e.cancel.store(true, Ordering::Release);
                                format!(
                                    "{{\"schema\": \"{}\", \"id\": {id}}}",
                                    proto::CANCEL_OK_SCHEMA
                                )
                            }
                            None => proto::error_frame(&format!("unknown campaign id {id}")),
                        }
                    }
                    None => proto::error_frame("cancel needs an integer id"),
                };
                reply(writer, &frame)?;
                Ok(true)
            }
            Some(proto::METRICS_SCHEMA) => {
                reply(writer, &self.metrics_snapshot())?;
                Ok(true)
            }
            Some(proto::PING_SCHEMA) => {
                reply(writer, &proto::bare_frame(proto::PONG_SCHEMA))?;
                Ok(true)
            }
            Some(proto::SHUTDOWN_SCHEMA) => {
                self.stop();
                reply(writer, &proto::bare_frame(proto::SHUTDOWN_OK_SCHEMA))?;
                Ok(false)
            }
            Some(other) => {
                // A recognised family at the wrong version gets a
                // pointed rejection naming the supported schema, so
                // clients from the future know what to downgrade to.
                let supported = [
                    proto::SUBMIT_SCHEMA,
                    proto::WATCH_SCHEMA,
                    proto::CANCEL_SCHEMA,
                    proto::METRICS_SCHEMA,
                    proto::PING_SCHEMA,
                    proto::SHUTDOWN_SCHEMA,
                ]
                .into_iter()
                .find(|s| {
                    s.rsplit_once('/').map(|(family, _)| family)
                        == other.rsplit_once('/').map(|(family, _)| family)
                });
                let msg = match supported {
                    Some(s) => {
                        format!("unsupported schema version \"{other}\": this daemon speaks {s}")
                    }
                    None => format!("unknown request schema \"{other}\""),
                };
                reply(writer, &proto::error_frame(&msg))?;
                Ok(true)
            }
            None => {
                reply(writer, &proto::error_frame("frame has no schema member"))?;
                Ok(true)
            }
        }
    }

    fn handle_submit<W: Write + Send>(&self, line: &str, writer: &mut W) -> io::Result<()> {
        let sub = match CampaignSubmission::from_json(line) {
            Ok(s) => s,
            Err(e) => {
                writer.write_all(proto::error_frame(&e).as_bytes())?;
                writer.write_all(b"\n")?;
                return writer.flush();
            }
        };
        let threads = if self.cfg.threads > 0 {
            self.cfg.threads
        } else {
            sub.threads
        };
        let budget = if self.cfg.scenario_budget > 0 {
            self.cfg.scenario_budget
        } else {
            sub.scenario_budget
        };
        let campaign = sub.plan(threads, budget);
        let guard = match self.admit_one() {
            Ok(g) => g,
            Err(e) => {
                writer.write_all(proto::error_frame(&e).as_bytes())?;
                writer.write_all(b"\n")?;
                return writer.flush();
            }
        };
        let id = self.next_id.fetch_add(1, Ordering::AcqRel) + 1;
        let entry = Arc::new(CampaignEntry {
            cancel: AtomicBool::new(false),
            state: Mutex::new(EntryState::default()),
            progress: Condvar::new(),
        });
        self.campaigns
            .lock()
            .expect("registry lock poisoned")
            .insert(id, entry.clone());
        writer.write_all(proto::accepted_frame(id, campaign.scenarios().len()).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;

        // Stream rows as the executor delivers them. A write failure
        // means the submitter vanished: cancel the run (watchers still
        // get the cancelled tail via the registry) but keep draining so
        // the entry log stays index-complete.
        let client_gone = AtomicBool::new(false);
        let report = {
            let writer = Mutex::new(&mut *writer);
            campaign.run_streaming_with(&self.artifacts, Some(&entry.cancel), |row| {
                let frame = proto::row_frame(id, &verif::wire::row_to_json(row));
                if !client_gone.load(Ordering::Relaxed) {
                    let mut w = writer.lock().expect("writer lock poisoned");
                    let ok = w
                        .write_all(frame.as_bytes())
                        .and_then(|()| w.write_all(b"\n"))
                        .and_then(|()| w.flush())
                        .is_ok();
                    if !ok {
                        client_gone.store(true, Ordering::Relaxed);
                        entry.cancel.store(true, Ordering::Release);
                    }
                }
                entry.push_frame(frame);
            })
        };
        drop(guard);

        let done = proto::Done {
            id,
            rows: report.rows.len() as u64,
            failures: report.failures().len() as u64,
            workers: report.stats.workers.len() as u64,
            artifact_hits: report.stats.artifact_hits,
            artifact_misses: report.stats.artifact_misses,
            cancelled: entry.cancel.load(Ordering::Acquire),
            wall_s: report.stats.wall_s,
        };
        let done_frame = done.to_frame();
        entry.finish(done_frame.clone());
        {
            let mut reg = self.metrics.lock().expect("metrics lock poisoned");
            reg.add("service.submissions", 1);
            reg.add("service.rows", done.rows);
            reg.add("service.failures", done.failures);
            if done.cancelled {
                reg.add("service.cancelled", 1);
            }
            report.stats.record(&mut reg);
        }
        if client_gone.load(Ordering::Relaxed) {
            return Ok(());
        }
        writer.write_all(done_frame.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    }

    fn handle_watch<W: Write>(&self, id: u64, writer: &mut W) -> io::Result<()> {
        let entry = self
            .campaigns
            .lock()
            .expect("registry lock poisoned")
            .get(&id)
            .cloned();
        let Some(entry) = entry else {
            writer
                .write_all(proto::error_frame(&format!("unknown campaign id {id}")).as_bytes())?;
            writer.write_all(b"\n")?;
            return writer.flush();
        };
        let mut next = 0usize;
        loop {
            let (frames, done): (Vec<String>, Option<String>) = {
                let mut st = entry.state.lock().expect("entry lock poisoned");
                while st.frames.len() == next && st.done.is_none() {
                    st = entry.progress.wait(st).expect("entry lock poisoned");
                }
                (st.frames[next..].to_vec(), st.done.clone())
            };
            for f in &frames {
                writer.write_all(f.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            next += frames.len();
            if let Some(d) = done {
                // Only emit the terminal frame once every row frame has
                // been replayed.
                let caught_up = {
                    let st = entry.state.lock().expect("entry lock poisoned");
                    st.frames.len() == next
                };
                if caught_up {
                    writer.write_all(d.as_bytes())?;
                    writer.write_all(b"\n")?;
                    return writer.flush();
                }
            }
        }
    }
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`; port 0 binds an ephemeral port and
    /// the resolved address is reported back).
    Tcp(String),
}

impl Endpoint {
    /// Parse `unix:<path>` / `tcp:<addr>` (a bare string is a Unix
    /// path).
    pub fn parse(s: &str) -> Endpoint {
        if let Some(addr) = s.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_string())
        } else if let Some(path) = s.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else {
            Endpoint::Unix(PathBuf::from(s))
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

/// A started daemon: the shared [`Server`], its resolved endpoints and
/// the accept threads.
pub struct RunningServer {
    server: Arc<Server>,
    endpoints: Vec<Endpoint>,
    accept_threads: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RunningServer {
    /// Bind every endpoint and start accepting. TCP endpoints are
    /// reported back with their resolved port; a pre-existing socket
    /// file at a Unix path is replaced.
    pub fn start(cfg: ServerConfig, endpoints: &[Endpoint]) -> io::Result<RunningServer> {
        let server = Arc::new(Server::new(cfg));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut resolved = Vec::new();
        let mut listeners = Vec::new();
        for ep in endpoints {
            listeners.push(match ep {
                Endpoint::Unix(path) => {
                    let _ = std::fs::remove_file(path);
                    resolved.push(Endpoint::Unix(path.clone()));
                    Listener::Unix(UnixListener::bind(path)?)
                }
                Endpoint::Tcp(addr) => {
                    let l = TcpListener::bind(addr)?;
                    resolved.push(Endpoint::Tcp(l.local_addr()?.to_string()));
                    Listener::Tcp(l)
                }
            });
        }
        // Record the endpoints before any connection can be served, so
        // a `shutdown/v1` arriving instantly still pokes every accept.
        *server.endpoints.lock().expect("endpoint list poisoned") = resolved.clone();
        let mut accept_threads = Vec::new();
        for listener in listeners {
            let srv = server.clone();
            let conn_reg = conns.clone();
            accept_threads.push(std::thread::spawn(move || {
                accept_loop(srv, listener, conn_reg)
            }));
        }
        Ok(RunningServer {
            server,
            endpoints: resolved,
            accept_threads,
            conns,
        })
    }

    /// The shared server state (tests poke metrics through this).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The resolved endpoints (TCP with its actual port).
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// The first Unix endpoint's path, if any.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.endpoints.iter().find_map(|e| match e {
            Endpoint::Unix(p) => Some(p),
            _ => None,
        })
    }

    /// The first TCP endpoint's resolved address, if any.
    pub fn tcp_addr(&self) -> Option<&str> {
        self.endpoints.iter().find_map(|e| match e {
            Endpoint::Tcp(a) => Some(a.as_str()),
            _ => None,
        })
    }

    /// Stop accepting, wake the accept loops, and join every thread.
    /// Connection handlers exit when their client disconnects, so the
    /// caller must drop (or have dropped) every open client connection
    /// before calling this, or the join blocks.
    pub fn shutdown(self) {
        self.server.stop();
        for ep in &self.endpoints {
            // Poke each listener so its blocking accept returns and the
            // loop observes the stop flag.
            match ep {
                Endpoint::Unix(path) => {
                    let _ = UnixStream::connect(path);
                }
                Endpoint::Tcp(addr) => {
                    let _ = TcpStream::connect(addr);
                }
            }
        }
        for t in self.accept_threads {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for t in conns {
            let _ = t.join();
        }
        for ep in &self.endpoints {
            if let Endpoint::Unix(path) = ep {
                let _ = std::fs::remove_file(path);
            }
        }
    }

    /// Block until every accept thread exits (a client sent
    /// `shutdown/v1`). The daemon binary's main loop.
    pub fn wait(self) {
        for t in self.accept_threads {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn registry poisoned"));
        for t in conns {
            let _ = t.join();
        }
        for ep in &self.endpoints {
            if let Endpoint::Unix(path) = ep {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

fn accept_loop(server: Arc<Server>, listener: Listener, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        if server.stopping() {
            return;
        }
        let handle = match &listener {
            Listener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    let srv = server.clone();
                    std::thread::spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let _ = srv.serve_connection(BufReader::new(read_half), stream);
                    })
                }
                Err(_) => continue,
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    let srv = server.clone();
                    std::thread::spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let _ = srv.serve_connection(BufReader::new(read_half), stream);
                    })
                }
                Err(_) => continue,
            },
        };
        conns.lock().expect("conn registry poisoned").push(handle);
    }
}
