//! The service determinism suite: rows streamed over the socket must be
//! byte-identical to in-process campaign runs, and admission control
//! must never bend row order — even under a forced 1-scenario window
//! with concurrent submissions.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use verif::wire::{report_to_json, row_to_json, CampaignSubmission};
use verif::{MatrixConfig, Scenario};
use verifd::client::Client;
use verifd::server::{Endpoint, RunningServer, ServerConfig};

static SOCKET_SERIAL: AtomicU64 = AtomicU64::new(0);

fn socket_path() -> PathBuf {
    let n = SOCKET_SERIAL.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("verifd-test-{}-{n}.sock", std::process::id()))
}

fn start_unix(cfg: ServerConfig) -> (RunningServer, String) {
    let path = socket_path();
    let server =
        RunningServer::start(cfg, &[Endpoint::Unix(path.clone())]).expect("bind unix socket");
    (server, format!("unix:{}", path.display()))
}

fn mixed_submission() -> CampaignSubmission {
    CampaignSubmission {
        scenarios: vec![
            Scenario::Clean,
            Scenario::Bug(autovision::Bug::Dpr4P2pOnSharedBus),
            Scenario::SplitClean,
        ],
        recovery_runs: 2,
        recovery_on: true,
        seed: 0xFA_17,
        ..Default::default()
    }
}

/// In-process reference rows for a submission as the daemon will plan
/// it (thread count cannot change a row, but the report's worker count
/// must match for full-document comparison).
fn reference_rows(sub: &CampaignSubmission, threads: usize) -> (Vec<String>, String) {
    let report = sub.plan(threads, 0).run();
    let rows = report.rows.iter().map(row_to_json).collect();
    (rows, report_to_json(&report))
}

#[test]
fn socket_rows_are_byte_identical_to_in_process_runs() {
    let (server, endpoint) = start_unix(ServerConfig {
        threads: 2,
        ..Default::default()
    });
    let sub = mixed_submission();
    let (want_rows, want_report) = reference_rows(&sub, 2);

    let mut client = Client::connect(&endpoint).expect("connect");
    let served = client.submit(&sub).expect("submit");
    assert_eq!(served.scenarios, 5);
    assert_eq!(
        served.rows, want_rows,
        "socket rows differ from in-process rows"
    );
    assert_eq!(
        served.report_json(),
        want_report,
        "reassembled report differs from in-process rendering"
    );
    assert_eq!(served.done.rows, 5);
    assert!(!served.done.cancelled);

    // Second identical submission: the shared cache is warm now, so the
    // run derives nothing new — and the rows are still byte-identical.
    let served2 = client.submit(&sub).expect("second submit");
    assert_eq!(served2.rows, want_rows);
    assert_eq!(
        served2.done.artifact_misses, 0,
        "warm-cache submission re-derived artifacts"
    );
    assert!(served2.done.artifact_hits > 0);
    drop(client);
    server.shutdown();
}

#[test]
fn concurrent_submissions_under_forced_single_scenario_window_stay_index_ordered() {
    // scenario_budget = 1 forces the tightest admission window the
    // executor supports: the pool may never run ahead of the oldest
    // incomplete scenario.
    let (server, endpoint) = start_unix(ServerConfig {
        max_campaigns: 2,
        threads: 2,
        scenario_budget: 1,
        ..Default::default()
    });
    let sub_a = mixed_submission();
    let sub_b = CampaignSubmission {
        recovery_runs: 4,
        recovery_on: false,
        seed: 0xB0_07,
        ..Default::default()
    };
    let (want_a, _) = reference_rows(&sub_a, 2);
    let (want_b, _) = reference_rows(&sub_b, 2);

    let (got_a, got_b) = std::thread::scope(|s| {
        let ep_a = endpoint.clone();
        let ep_b = endpoint.clone();
        let a = s.spawn(move || {
            let mut c = Client::connect(&ep_a).expect("connect a");
            c.submit(&sub_a).expect("submit a")
        });
        let b = s.spawn(move || {
            let mut c = Client::connect(&ep_b).expect("connect b");
            c.submit(&sub_b).expect("submit b")
        });
        (a.join().expect("a"), b.join().expect("b"))
    });

    for (name, served, want) in [("a", &got_a, &want_a), ("b", &got_b, &want_b)] {
        assert_eq!(served.rows, *want, "campaign {name} rows corrupted");
        for (i, row) in served.rows.iter().enumerate() {
            let parsed = verif::wire::WireRow::from_json(row).expect("row parses");
            assert_eq!(parsed.index, i, "campaign {name} rows out of order");
        }
    }
    assert_ne!(got_a.id, got_b.id, "submissions must get distinct ids");
    server.shutdown();
}

#[test]
fn tcp_endpoint_serves_ping_metrics_and_campaigns() {
    let server = RunningServer::start(
        ServerConfig::default(),
        &[Endpoint::Tcp("127.0.0.1:0".to_string())],
    )
    .expect("bind tcp");
    let addr = server.tcp_addr().expect("resolved tcp addr").to_string();
    let mut client = Client::connect(&format!("tcp:{addr}")).expect("connect tcp");
    client.ping().expect("ping");

    let sub = CampaignSubmission {
        scenarios: vec![Scenario::Clean],
        ..Default::default()
    };
    let (want, _) = reference_rows(&sub, 0);
    let served = client.submit(&sub).expect("submit over tcp");
    assert_eq!(served.rows, want);

    let snap = client.metrics().expect("metrics scrape");
    assert!(snap.contains("\"schema\":\"obs_metrics/v1\""), "{snap}");
    assert!(snap.contains("service.submissions"), "{snap}");
    assert!(snap.contains("compiled.plans"), "{snap}");
    assert!(
        !snap.contains('\n'),
        "metrics snapshot must be one NDJSON line"
    );
    drop(client);
    server.shutdown();
}

#[test]
fn watch_replays_the_full_row_log_after_completion() {
    let (server, endpoint) = start_unix(ServerConfig::default());
    let sub = CampaignSubmission {
        scenarios: vec![Scenario::Clean, Scenario::SplitClean],
        ..Default::default()
    };
    let mut submitter = Client::connect(&endpoint).expect("connect submitter");
    let served = submitter.submit(&sub).expect("submit");

    let mut watcher = Client::connect(&endpoint).expect("connect watcher");
    let (rows, done) = watcher.watch(served.id, |_| {}).expect("watch");
    assert_eq!(
        rows, served.rows,
        "watch replay differs from the live stream"
    );
    assert_eq!(done, served.done);

    let err = watcher
        .watch(9999, |_| {})
        .expect_err("unknown id must fail");
    assert!(err.to_string().contains("unknown campaign id"), "{err}");
    drop(submitter);
    drop(watcher);
    server.shutdown();
}

#[test]
fn cancellation_keeps_delivery_index_complete() {
    let (server, endpoint) = start_unix(ServerConfig {
        threads: 1,
        ..Default::default()
    });
    let sub = CampaignSubmission {
        recovery_runs: 8,
        recovery_on: true,
        seed: 0xCA_9C,
        ..Default::default()
    };
    let endpoint2 = endpoint.clone();
    let mut client = Client::connect(&endpoint).expect("connect");
    let mut cancelled_sent = false;
    let served = client
        .submit_streaming(&sub, |_| {
            if !cancelled_sent {
                cancelled_sent = true;
                // Cancel from a second connection as soon as the first
                // row lands. The submission id is 1 on a fresh server.
                let mut c = Client::connect(&endpoint2).expect("connect canceller");
                c.cancel(1).expect("cancel");
            }
        })
        .expect("submit");
    assert_eq!(served.done.rows, 8, "cancellation must not drop rows");
    for (i, row) in served.rows.iter().enumerate() {
        let parsed = verif::wire::WireRow::from_json(row).expect("row parses");
        assert_eq!(parsed.index, i);
    }
    let cancelled_rows = served
        .rows
        .iter()
        .filter(|r| r.contains("\"kind\": \"cancelled\""))
        .count() as u64;
    if served.done.cancelled {
        assert_eq!(
            served.done.failures, cancelled_rows,
            "failures must count exactly the cancelled rows here"
        );
    } else {
        assert_eq!(cancelled_rows, 0);
    }
    drop(client);
    server.shutdown();
}

#[test]
fn flooded_daemon_rejects_loudly_instead_of_queueing_forever() {
    let (server, endpoint) = start_unix(ServerConfig {
        max_campaigns: 1,
        max_queued: 0,
        threads: 1,
        ..Default::default()
    });
    let sub = CampaignSubmission {
        recovery_runs: 6,
        recovery_on: true,
        ..Default::default()
    };
    let endpoint2 = endpoint.clone();
    let mut client = Client::connect(&endpoint).expect("connect");
    let mut second_result: Option<std::io::Error> = None;
    let mut tried = false;
    let served = client
        .submit_streaming(&sub, |_| {
            if !tried {
                tried = true;
                // While the first campaign holds the only admission
                // slot, a second submission must be rejected.
                let mut c = Client::connect(&endpoint2).expect("connect second");
                second_result = c
                    .submit(&CampaignSubmission {
                        scenarios: vec![Scenario::Clean],
                        ..Default::default()
                    })
                    .err();
            }
        })
        .expect("first submit");
    assert_eq!(served.done.rows, 6);
    let err = second_result.expect("second submission should have been rejected");
    assert!(err.to_string().contains("busy"), "{err}");
    drop(client);
    server.shutdown();
}

#[test]
fn bad_submissions_get_typed_errors_not_hangups() {
    let (server, endpoint) = start_unix(ServerConfig::default());
    let mut client = Client::connect(&endpoint).expect("connect");

    client.send("this is not json").expect("send garbage");
    let v = client.recv().expect("recv").expect("frame");
    assert_eq!(verifd::proto::schema_of(&v), Some("error/v1"));

    client
        .send("{\"schema\": \"campaign_submit/v99\", \"scenarios\": []}")
        .expect("send wrong version");
    let v = client.recv().expect("recv").expect("frame");
    assert_eq!(verifd::proto::schema_of(&v), Some("error/v1"));
    let msg = v.get("error").and_then(obs::json::Json::as_str).unwrap();
    assert!(msg.contains("campaign_submit/v1"), "{msg}");

    // The connection survives both errors.
    client.ping().expect("ping still works");
    drop(client);
    server.shutdown();
}

#[test]
fn base_config_matches_the_pinned_matrix_base() {
    // The submission schema fixes the base configuration to the matrix
    // default; if that default drifts, wire documents silently change
    // meaning. Pin the load-bearing fields.
    let base = MatrixConfig::default().base;
    assert_eq!((base.width, base.height), (32, 24));
    assert_eq!(base.n_frames, 2);
}
