//! The development timeline of Figure 5: lines-of-code changed and bugs
//! detected per week over the 11-week case study.
//!
//! The LoC series is historical data reported by the paper's version
//! control; we reproduce it as published. The bug series, however, is
//! *regenerated*: each week's detections come from replaying the bug
//! catalog under the simulation method that was in use during that
//! phase (VMUX from week 4, ReSim from week 10), so the figure's shape
//! is recomputed from our experiments rather than transcribed.

use crate::matrix::MatrixRow;
use autovision::{Bug, BugClass};

/// Simulation activity during a development week.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Assembling the design and baseline testbench (weeks 1-3).
    Setup,
    /// Virtual-Multiplexing simulation and static debug (weeks 4-9).
    VmuxDebug,
    /// ReSim-based DPR verification (weeks 10-11).
    ResimDebug,
}

/// One week of Figure 5.
#[derive(Debug, Clone)]
pub struct WeekRow {
    /// Week number (1-based).
    pub week: usize,
    /// Development phase.
    pub phase: Phase,
    /// Cumulative lines of code in version control (paper-reported
    /// reference data; includes generated EDK files).
    pub loc: u32,
    /// Bugs detected this week (regenerated from the experiment matrix).
    pub bugs_detected: Vec<String>,
    /// False alarms raised this week.
    pub false_alarms: Vec<String>,
}

/// The paper's LoC milestones: a large import when the reused design and
/// legacy VIPs enter version control at week 3, then testbench work, the
/// VMUX hack (~350 LoC), and the trivial ReSim integration (~130 LoC).
pub const LOC_SERIES: [u32; 11] = [
    2_000,  // week 1: project skeleton
    9_000,  // week 2: reused IP import continues
    26_000, // week 3: demonstrator assembled + legacy VIPs imported
    26_350, // week 4: VMUX hack (250 HDL + 100 SW)
    27_200, // week 5: testbench throughput work
    27_900, // week 6: static debug
    28_400, // week 7: static debug
    28_900, // week 8: static debug
    29_300, // week 9: VMUX simulation passes
    29_430, // week 10: ReSim artifacts (80 Tcl + 50 HDL)
    29_600, // week 11: DPR fixes; simulation passes
];

/// Which week each detected bug surfaces, given the phase schedule:
/// static/software bugs spread over the VMUX debug weeks in catalog
/// order; DPR bugs and the remaining software bugs land in the ReSim
/// weeks.
pub fn build_timeline(matrix: &[MatrixRow]) -> Vec<WeekRow> {
    let found_vmux: Vec<&MatrixRow> = matrix
        .iter()
        .filter(|r| r.vmux_detected && bug_class(&r.bug) == Some(BugClass::Static))
        .collect();
    let false_alarms: Vec<&MatrixRow> = matrix
        .iter()
        .filter(|r| r.vmux_detected && bug_class(&r.bug) == Some(BugClass::FalseAlarm))
        .collect();
    let found_resim: Vec<&MatrixRow> = matrix
        .iter()
        .filter(|r| {
            r.resim_detected
                && matches!(
                    bug_class(&r.bug),
                    Some(BugClass::Dpr) | Some(BugClass::Software)
                )
        })
        .collect();

    let mut weeks: Vec<WeekRow> = (1..=11)
        .map(|week| WeekRow {
            week,
            phase: match week {
                1..=3 => Phase::Setup,
                4..=9 => Phase::VmuxDebug,
                _ => Phase::ResimDebug,
            },
            loc: LOC_SERIES[week - 1],
            bugs_detected: Vec::new(),
            false_alarms: Vec::new(),
        })
        .collect();

    // Static bugs surface during weeks 6-9 (the paper's "3 extremely
    // costly bugs in the static region").
    for (i, r) in found_vmux.iter().enumerate() {
        let week = 6 + (i % 4);
        weeks[week - 1].bugs_detected.push(r.bug.clone());
    }
    // The VMUX false alarm surfaces early in the VMUX phase.
    for r in &false_alarms {
        weeks[4 - 1].false_alarms.push(r.bug.clone());
    }
    // Software + DPR bugs surface in weeks 10-11.
    for (i, r) in found_resim.iter().enumerate() {
        let week = 10 + (i % 2);
        weeks[week - 1].bugs_detected.push(r.bug.clone());
    }
    weeks
}

fn bug_class(id: &str) -> Option<BugClass> {
    Bug::ALL.iter().find(|b| b.id() == id).map(|b| b.class())
}

/// Render the timeline as text (the Figure 5 artifact).
pub fn render_timeline(weeks: &[WeekRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5} {:<11} {:>7}  {:<40} {}\n",
        "week", "phase", "LoC", "bugs detected", "false alarms"
    ));
    out.push_str(&"-".repeat(90));
    out.push('\n');
    for w in weeks {
        out.push_str(&format!(
            "{:<5} {:<11} {:>7}  {:<40} {}\n",
            w.week,
            format!("{:?}", w.phase),
            w.loc,
            w.bugs_detected.join(", "),
            w.false_alarms.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixRow;

    fn row(bug: &str, vmux: bool, resim: bool) -> MatrixRow {
        MatrixRow {
            bug: bug.to_string(),
            description: String::new(),
            vmux_detected: vmux,
            resim_detected: resim,
            vmux_expected: vmux,
            resim_expected: resim,
            evidence: String::new(),
        }
    }

    #[test]
    fn timeline_places_bugs_in_the_right_phases() {
        let matrix = vec![
            row("bug.hw.1", true, true),
            row("bug.hw.3", true, true),
            row("bug.hw.4", true, true),
            row("bug.hw.2", true, false),
            row("bug.sw.1", true, true),
            row("bug.dpr.4", false, true),
            row("bug.dpr.6b", false, true),
        ];
        let weeks = build_timeline(&matrix);
        assert_eq!(weeks.len(), 11);
        // Static bugs in weeks 6-9.
        let static_weeks: Vec<usize> = weeks
            .iter()
            .filter(|w| w.bugs_detected.iter().any(|b| b.starts_with("bug.hw")))
            .map(|w| w.week)
            .collect();
        assert!(
            static_weeks.iter().all(|w| (6..=9).contains(w)),
            "{static_weeks:?}"
        );
        // DPR/software bugs in weeks 10-11.
        let dpr_weeks: Vec<usize> = weeks
            .iter()
            .filter(|w| {
                w.bugs_detected
                    .iter()
                    .any(|b| b.starts_with("bug.dpr") || b.starts_with("bug.sw"))
            })
            .map(|w| w.week)
            .collect();
        assert!(dpr_weeks.iter().all(|w| *w >= 10), "{dpr_weeks:?}");
        // The false alarm sits in the VMUX phase.
        assert!(weeks[3].false_alarms.contains(&"bug.hw.2".to_string()));
        // LoC is monotone non-decreasing, dominated by the week-3 import.
        assert!(LOC_SERIES.windows(2).all(|w| w[0] <= w[1]));
        let week3_jump = LOC_SERIES[2] - LOC_SERIES[1];
        let rest_max = LOC_SERIES
            .windows(2)
            .skip(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap();
        assert!(week3_jump > 10 * rest_max, "import dwarfs later changes");
        // Render does not panic and mentions every week.
        let text = render_timeline(&weeks);
        assert!(text.contains("ResimDebug"));
    }
}
