//! Measurement probes.
//!
//! [`Probe`] is a typed handle to a signal in a running simulation: a
//! `Probe<u64>` reads and writes numeric values, a `Probe<Lv>` works at
//! the 4-value-logic level. Both carry their [`SignalId`] and the view
//! type in the type system, replacing the stringly
//! `peek`/`poke`-by-`SignalId`-plus-`signal_name` pattern the harnesses
//! used to hand-roll.
//!
//! [`probe_high_time`] attaches an accumulator that measures how long a
//! signal stays high — used by the Table II harness to attribute
//! simulated time to the CIE, the ME and the DPR intervals by watching
//! their busy/window signals, exactly as one would measure in a
//! waveform viewer.

use rtlsim::{CompKind, Component, Ctx, Lv, SignalId, Simulator};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

/// Typed handle to a signal: `T` selects the view (`u64` or [`Lv`]).
///
/// A probe is `Copy` and independent of the simulator's lifetime; it
/// reads and writes by borrowing the simulator per call:
///
/// ```
/// use rtlsim::Simulator;
/// use verif::Probe;
///
/// let mut sim = Simulator::new();
/// let busy = sim.signal_init("cie.busy", 1, 0);
/// let probe = Probe::<u64>::new(busy);
/// assert_eq!(probe.read(&sim), Some(0));
/// probe.write(&mut sim, 1);
/// sim.settle().unwrap();
/// assert!(probe.is_high(&sim));
/// ```
#[derive(Debug)]
pub struct Probe<T> {
    sig: SignalId,
    _view: PhantomData<fn() -> T>,
}

// Manual impls: `#[derive]` would needlessly require `T: Copy`.
impl<T> Clone for Probe<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Probe<T> {}

impl<T> Probe<T> {
    /// Wrap a signal handle in a typed probe.
    pub fn new(sig: SignalId) -> Probe<T> {
        Probe {
            sig,
            _view: PhantomData,
        }
    }

    /// The underlying signal handle.
    pub fn signal(&self) -> SignalId {
        self.sig
    }

    /// The probed signal's hierarchical name.
    pub fn name<'a>(&self, sim: &'a Simulator) -> &'a str {
        sim.signal_name(self.sig)
    }

    /// True if the signal currently has at least one driven-1 bit.
    pub fn is_high(&self, sim: &Simulator) -> bool {
        sim.peek(self.sig).truthy()
    }

    /// Number of value changes the signal has seen.
    pub fn toggles(&self, sim: &Simulator) -> u64 {
        sim.toggle_count(self.sig)
    }

    /// Re-view the same signal through a different value type.
    pub fn as_view<U>(&self) -> Probe<U> {
        Probe::new(self.sig)
    }
}

impl Probe<u64> {
    /// Read the current value; `None` if any bit is `X`/`Z`.
    pub fn read(&self, sim: &Simulator) -> Option<u64> {
        sim.peek_u64(self.sig)
    }

    /// Drive a value from the testbench (applies on the next settle).
    pub fn write(&self, sim: &mut Simulator, v: u64) {
        sim.poke_u64(self.sig, v);
    }
}

impl Probe<Lv> {
    /// Read the current 4-value contents.
    pub fn read(&self, sim: &Simulator) -> Lv {
        sim.peek(self.sig)
    }

    /// Drive a 4-value word from the testbench (applies on the next
    /// settle).
    pub fn write(&self, sim: &mut Simulator, v: Lv) {
        sim.poke(self.sig, v);
    }
}

impl<T> From<SignalId> for Probe<T> {
    fn from(sig: SignalId) -> Probe<T> {
        Probe::new(sig)
    }
}

impl<T> From<Probe<T>> for SignalId {
    fn from(p: Probe<T>) -> SignalId {
        p.sig
    }
}

/// Accumulated measurements of one signal.
#[derive(Debug, Default, Clone, Copy)]
pub struct HighTime {
    /// Total picoseconds the signal spent high.
    pub total_ps: u64,
    /// Number of high pulses observed (completed).
    pub pulses: u64,
}

struct HighTimeProbe {
    sig: SignalId,
    rose_at: Option<u64>,
    out: Rc<RefCell<HighTime>>,
}

impl Component for HighTimeProbe {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.rose(self.sig) && self.rose_at.is_none() {
            self.rose_at = Some(ctx.now());
        } else if ctx.fell(self.sig) {
            if let Some(t0) = self.rose_at.take() {
                let mut o = self.out.borrow_mut();
                o.total_ps += ctx.now() - t0;
                o.pulses += 1;
            }
        }
    }
}

/// Attach a high-time probe to a signal; read results through the
/// handle. Accepts a bare [`SignalId`] or any typed [`Probe`] over it.
pub fn probe_high_time(
    sim: &mut Simulator,
    name: &str,
    sig: impl Into<Probe<Lv>>,
) -> Rc<RefCell<HighTime>> {
    let sig = sig.into().signal();
    let out = Rc::new(RefCell::new(HighTime::default()));
    let probe = HighTimeProbe {
        sig,
        rose_at: None,
        out: out.clone(),
    };
    sim.add_component(name, CompKind::Vip, Box::new(probe), &[sig]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlsim::{Clock, Lv};

    #[test]
    fn measures_pulse_widths() {
        let mut sim = Simulator::new();
        let s = sim.signal_init("s", 1, 0);
        let p = Probe::<Lv>::new(s);
        let ht = probe_high_time(&mut sim, "probe", p);
        sim.run_for(10_000).unwrap();
        p.write(&mut sim, Lv::bit(true));
        sim.run_for(35_000).unwrap();
        p.write(&mut sim, Lv::bit(false));
        sim.run_for(10_000).unwrap();
        p.write(&mut sim, Lv::bit(true));
        sim.run_for(5_000).unwrap();
        p.write(&mut sim, Lv::bit(false));
        sim.run_for(1_000).unwrap();
        let m = *ht.borrow();
        assert_eq!(m.pulses, 2);
        assert_eq!(m.total_ps, 40_000);
    }

    #[test]
    fn ignores_signal_that_stays_low() {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let s = sim.signal_init("s", 1, 0);
        sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, 10_000)), &[]);
        let ht = probe_high_time(&mut sim, "probe", s);
        sim.run_for(500_000).unwrap();
        assert_eq!(ht.borrow().pulses, 0);
        assert_eq!(ht.borrow().total_ps, 0);
    }

    #[test]
    fn typed_views_read_and_write() {
        let mut sim = Simulator::new();
        let s = sim.signal_init("dut.count", 8, 7);
        let n = Probe::<u64>::new(s);
        assert_eq!(n.read(&sim), Some(7));
        assert_eq!(n.name(&sim), "dut.count");
        assert_eq!(n.signal(), s);
        n.write(&mut sim, 42);
        sim.settle().unwrap();
        assert_eq!(n.read(&sim), Some(42));
        assert!(n.is_high(&sim));

        let l: Probe<Lv> = n.as_view();
        assert_eq!(l.read(&sim).to_u64(), Some(42));
        l.write(&mut sim, Lv::xes(8));
        sim.settle().unwrap();
        assert_eq!(n.read(&sim), None, "X bits have no numeric view");
        assert!(l.read(&sim).eq_case(&Lv::xes(8)));

        // SignalId round-trips through the probe.
        let back: rtlsim::SignalId = l.into();
        assert_eq!(back, s);
        let _from_sig: Probe<u64> = s.into();
    }
}
