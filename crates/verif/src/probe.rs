//! Measurement probes: accumulate how long a signal stays high.
//!
//! Used by the Table II harness to attribute simulated time to the
//! CIE, the ME and the DPR intervals by watching their busy/window
//! signals, exactly as one would measure in a waveform viewer.

use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

/// Accumulated measurements of one signal.
#[derive(Debug, Default, Clone, Copy)]
pub struct HighTime {
    /// Total picoseconds the signal spent high.
    pub total_ps: u64,
    /// Number of high pulses observed (completed).
    pub pulses: u64,
}

struct HighTimeProbe {
    sig: SignalId,
    rose_at: Option<u64>,
    out: Rc<RefCell<HighTime>>,
}

impl Component for HighTimeProbe {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.rose(self.sig) && self.rose_at.is_none() {
            self.rose_at = Some(ctx.now());
        } else if ctx.fell(self.sig) {
            if let Some(t0) = self.rose_at.take() {
                let mut o = self.out.borrow_mut();
                o.total_ps += ctx.now() - t0;
                o.pulses += 1;
            }
        }
    }
}

/// Attach a high-time probe to `sig`; read results through the handle.
pub fn probe_high_time(sim: &mut Simulator, name: &str, sig: SignalId) -> Rc<RefCell<HighTime>> {
    let out = Rc::new(RefCell::new(HighTime::default()));
    let probe = HighTimeProbe {
        sig,
        rose_at: None,
        out: out.clone(),
    };
    sim.add_component(name, CompKind::Vip, Box::new(probe), &[sig]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlsim::{Clock, Lv};

    #[test]
    fn measures_pulse_widths() {
        let mut sim = Simulator::new();
        let s = sim.signal_init("s", 1, 0);
        let ht = probe_high_time(&mut sim, "probe", s);
        sim.run_for(10_000).unwrap();
        sim.poke(s, Lv::bit(true));
        sim.run_for(35_000).unwrap();
        sim.poke(s, Lv::bit(false));
        sim.run_for(10_000).unwrap();
        sim.poke(s, Lv::bit(true));
        sim.run_for(5_000).unwrap();
        sim.poke(s, Lv::bit(false));
        sim.run_for(1_000).unwrap();
        let m = *ht.borrow();
        assert_eq!(m.pulses, 2);
        assert_eq!(m.total_ps, 40_000);
    }

    #[test]
    fn ignores_signal_that_stays_low() {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let s = sim.signal_init("s", 1, 0);
        sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, 10_000)), &[]);
        let ht = probe_high_time(&mut sim, "probe", s);
        sim.run_for(500_000).unwrap();
        assert_eq!(ht.borrow().pulses, 0);
        assert_eq!(ht.borrow().total_ps, 0);
    }
}
