//! # verif — the verification harness
//!
//! Machinery that turns the AutoVision system plus the bug catalog into
//! the paper's quantitative results:
//!
//! * [`detect`] — run one configured system and classify the outcome
//!   with automated oracles (checker errors, golden-model scoreboard,
//!   poison tracking, hang detection);
//! * [`executor`] — the campaign execution plane: a work-stealing
//!   scenario pool behind the unified [`Scenario`] / [`Campaign`] API,
//!   with deterministic aggregation, shared setup artifacts, panic
//!   isolation and per-worker scheduling metrics;
//! * [`matrix`] — the full bug × method detection matrix (Table III),
//!   with the paper's expected outcomes encoded for regression checking;
//! * [`timeline`] — the Figure 5 development timeline, with the bug
//!   series regenerated from the matrix;
//! * [`turnaround`] — the §V-B simulation vs on-chip debug-turnaround
//!   comparison;
//! * [`recovery`] — the randomized transient-fault injection campaign
//!   measuring the resilient-reconfiguration machinery;
//! * [`reconfig_timeline`] — per-region reconfiguration timelines
//!   reconstructed from the kernel's structured trace;
//! * [`fuzz`] — coverage-guided fuzzing of the reconfiguration
//!   schedule, with signature-deduplicated failures and deterministic
//!   shrinking to minimal replayable reproducers;
//! * [`wire`] — the versioned campaign wire schemas
//!   (`campaign_submit/v1`, `campaign_report/v1`) shared by the
//!   in-process API, the `verifd` daemon and the `verifctl` client.

pub mod coverage;
pub mod detect;
pub mod executor;
pub mod fuzz;
pub mod matrix;
pub mod probe;
pub mod reconfig_timeline;
pub mod recovery;
pub mod timeline;
pub mod turnaround;
pub mod wire;

pub use coverage::{CoverageProbes, DprCoverage};
pub use detect::{
    compiled_tally, run_experiment, run_experiment_with, CompiledTally, Evidence, Verdict,
};
pub use executor::{
    execute, execute_streaming, run_scenario, Campaign, CampaignBuilder, CampaignOptions,
    CampaignReport, CampaignRow, ExecutorStats, PoolOptions, RecoveryRow, RecoverySpec, Scenario,
    ScenarioCtx, ScenarioOutcome, ScenarioSpan, Schedule, WorkerStats,
};
pub use fuzz::{
    coverage_of, failure_signature, replay, run_fuzz, shrink, FuzzFailure, FuzzOptions, FuzzReport,
    FuzzRepro, FuzzRow, FuzzSchedule, FuzzSpec, FuzzTopology,
};
pub use matrix::{
    expected_detection, render_matrix, run_bug, run_clean, run_split_clean, MatrixConfig, MatrixRow,
};
pub use probe::{probe_high_time, HighTime, Probe};
pub use reconfig_timeline::{ReconfigTimeline, RegionTimeline};
pub use recovery::{
    render_campaign, run_one, summarize, CampaignConfig, CampaignSummary, RunClass,
};
pub use timeline::{build_timeline, render_timeline, Phase, WeekRow, LOC_SERIES};
pub use turnaround::{compare, Turnaround, FRAMES_TO_DETECT, ONCHIP_ITERATION_MIN};
pub use wire::{
    report_from_json, report_to_json, row_to_json, scenario_from_json, scenario_to_json, wire_row,
    CampaignSubmission, WireOutcome, WireReport, WireRow, CAMPAIGN_REPORT_SCHEMA,
    CAMPAIGN_SUBMIT_SCHEMA,
};
