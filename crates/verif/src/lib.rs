//! # verif — the verification harness
//!
//! Machinery that turns the AutoVision system plus the bug catalog into
//! the paper's quantitative results:
//!
//! * [`detect`] — run one configured system and classify the outcome
//!   with automated oracles (checker errors, golden-model scoreboard,
//!   poison tracking, hang detection);
//! * [`executor`] — the campaign execution plane: a work-stealing
//!   scenario pool behind the unified [`Scenario`] / [`Campaign`] API,
//!   with deterministic aggregation, shared setup artifacts, panic
//!   isolation and per-worker scheduling metrics;
//! * [`matrix`] — the full bug × method detection matrix (Table III),
//!   with the paper's expected outcomes encoded for regression checking;
//! * [`timeline`] — the Figure 5 development timeline, with the bug
//!   series regenerated from the matrix;
//! * [`turnaround`] — the §V-B simulation vs on-chip debug-turnaround
//!   comparison;
//! * [`recovery`] — the randomized transient-fault injection campaign
//!   measuring the resilient-reconfiguration machinery;
//! * [`reconfig_timeline`] — per-region reconfiguration timelines
//!   reconstructed from the kernel's structured trace;
//! * [`fuzz`] — coverage-guided fuzzing of the reconfiguration
//!   schedule, with signature-deduplicated failures and deterministic
//!   shrinking to minimal replayable reproducers.

pub mod coverage;
pub mod detect;
pub mod executor;
pub mod fuzz;
pub mod matrix;
pub mod probe;
pub mod reconfig_timeline;
pub mod recovery;
pub mod timeline;
pub mod turnaround;

pub use coverage::{CoverageProbes, DprCoverage};
pub use detect::{run_experiment, run_experiment_with, Evidence, Verdict};
pub use executor::{
    execute, execute_streaming, run_scenario, Campaign, CampaignBuilder, CampaignOptions,
    CampaignReport, CampaignRow, ExecutorStats, PoolOptions, RecoveryRow, RecoverySpec, Scenario,
    ScenarioCtx, ScenarioOutcome, ScenarioSpan, Schedule, WorkerStats,
};
pub use fuzz::{
    coverage_of, failure_signature, replay, run_fuzz, shrink, FuzzFailure, FuzzOptions, FuzzReport,
    FuzzRepro, FuzzRow, FuzzSchedule, FuzzSpec, FuzzTopology,
};
#[allow(deprecated)]
pub use matrix::run_matrix;
pub use matrix::{
    expected_detection, render_matrix, run_bug, run_clean, run_split_clean, MatrixConfig, MatrixRow,
};
pub use probe::{probe_high_time, HighTime, Probe};
pub use reconfig_timeline::{ReconfigTimeline, RegionTimeline};
pub use recovery::{
    render_campaign, run_one, summarize, CampaignConfig, CampaignSummary, RunClass,
};
#[allow(deprecated)]
pub use recovery::{run_campaign, RunReport};
pub use timeline::{build_timeline, render_timeline, Phase, WeekRow, LOC_SERIES};
pub use turnaround::{compare, Turnaround, FRAMES_TO_DETECT, ONCHIP_ITERATION_MIN};
