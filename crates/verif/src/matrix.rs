//! The detection matrix: every catalogued bug under both simulation
//! methods — the machine-checkable core of the paper's Table III.

use crate::detect::Verdict;
use crate::executor::ScenarioCtx;
use autovision::{ArtifactCache, Bug, BugClass, FaultSet, SimMethod, SystemConfig};

/// Expected detection for (bug, method) per the paper's analysis. The
/// expectation depends only on what the method's backend *models*, not
/// on which enum variant names it.
pub fn expected_detection(bug: Bug, method: SimMethod) -> bool {
    let bitstream = method.models_bitstream();
    match bug.class() {
        // Static and software bugs do not involve the reconfiguration
        // process: both methods catch them.
        BugClass::Static | BugClass::Software => true,
        // The signature-register false alarm exists only in testbenches
        // that fake the swap instead of modelling the bitstream.
        BugClass::FalseAlarm => !bitstream,
        // DPR bugs need the bitstream traffic, injection and timing;
        // transient upsets corrupt the bitstream traffic itself. A
        // backend without a bitstream can exercise neither. (With
        // recovery enabled transients are *recovered*, not detected —
        // the recovery campaign, not this matrix, measures that.)
        BugClass::Dpr | BugClass::Transient => bitstream,
    }
}

/// One row of the matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixRow {
    /// Bug identifier (`bug.dpr.4` style); `"(none)"` for the clean run.
    pub bug: String,
    /// Bug description.
    pub description: String,
    /// Detection under Virtual Multiplexing.
    pub vmux_detected: bool,
    /// Detection under ReSim.
    pub resim_detected: bool,
    /// Expectation under VMUX.
    pub vmux_expected: bool,
    /// Expectation under ReSim.
    pub resim_expected: bool,
    /// First evidence string under ReSim (or VMUX for the false alarm).
    pub evidence: String,
}

impl MatrixRow {
    /// Row matches the paper's expectation for both methods.
    pub fn as_expected(&self) -> bool {
        self.vmux_detected == self.vmux_expected && self.resim_detected == self.resim_expected
    }
}

/// Configuration template for matrix runs; `build` customises per run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Base system configuration (method/faults overwritten per run).
    pub base: SystemConfig,
    /// Hang budget per run, in cycles.
    pub budget_cycles: u64,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            base: SystemConfig {
                width: 32,
                height: 24,
                n_frames: 2,
                payload_words: 256,
                ..Default::default()
            },
            budget_cycles: 400_000,
        }
    }
}

fn first_evidence(resim: &Verdict, vmux: &Verdict) -> String {
    resim
        .evidence
        .first()
        .or(vmux.evidence.first())
        .map(|e| format!("{e:?}"))
        .unwrap_or_default()
}

/// Run a single bug under both methods within an executor context.
pub fn run_bug_in(ctx: &ScenarioCtx<'_>, bug: Bug) -> MatrixRow {
    let vmux = ctx.experiment(SimMethod::Vmux, FaultSet::one(bug), None);
    let resim = ctx.experiment(SimMethod::Resim, FaultSet::one(bug), None);
    MatrixRow {
        bug: bug.id().to_string(),
        description: bug.describe().to_string(),
        vmux_detected: vmux.detected,
        resim_detected: resim.detected,
        vmux_expected: expected_detection(bug, SimMethod::Vmux),
        resim_expected: expected_detection(bug, SimMethod::Resim),
        evidence: first_evidence(&resim, &vmux),
    }
}

/// Run the clean (no-bug) configuration under both methods; both must be
/// silent, or every other row is meaningless.
pub fn run_clean_in(ctx: &ScenarioCtx<'_>) -> MatrixRow {
    let vmux = ctx.experiment(SimMethod::Vmux, FaultSet::none(), None);
    let resim = ctx.experiment(SimMethod::Resim, FaultSet::none(), None);
    MatrixRow {
        bug: "(none)".to_string(),
        description: "golden design".to_string(),
        vmux_detected: vmux.detected,
        resim_detected: resim.detected,
        vmux_expected: false,
        resim_expected: false,
        evidence: first_evidence(&resim, &vmux),
    }
}

/// Run the clean two-region split pipeline under both methods — the
/// multi-region analogue of [`run_clean_in`]. Bugs cannot be injected
/// into this topology (the builder rejects them), so the split scenario
/// contributes a single must-be-silent row rather than a full matrix.
pub fn run_split_clean_in(ctx: &ScenarioCtx<'_>) -> MatrixRow {
    let regions = SystemConfig::split_regions();
    let vmux = ctx.experiment(SimMethod::Vmux, FaultSet::none(), Some(regions.clone()));
    let resim = ctx.experiment(SimMethod::Resim, FaultSet::none(), Some(regions));
    MatrixRow {
        bug: "(split)".to_string(),
        description: "golden two-region pipeline".to_string(),
        vmux_detected: vmux.detected,
        resim_detected: resim.detected,
        vmux_expected: false,
        resim_expected: false,
        evidence: first_evidence(&resim, &vmux),
    }
}

fn one_off_ctx(mc: &MatrixConfig, f: impl FnOnce(&ScenarioCtx<'_>) -> MatrixRow) -> MatrixRow {
    let artifacts = ArtifactCache::new();
    let ctx = ScenarioCtx::new(&mc.base, mc.budget_cycles, &artifacts);
    f(&ctx)
}

/// Run a single bug under both methods (one-off variant of
/// [`run_bug_in`] with a private artifact cache).
pub fn run_bug(mc: &MatrixConfig, bug: Bug) -> MatrixRow {
    one_off_ctx(mc, |ctx| run_bug_in(ctx, bug))
}

/// One-off variant of [`run_clean_in`] with a private artifact cache.
pub fn run_clean(mc: &MatrixConfig) -> MatrixRow {
    one_off_ctx(mc, run_clean_in)
}

/// One-off variant of [`run_split_clean_in`] with a private artifact
/// cache.
pub fn run_split_clean(mc: &MatrixConfig) -> MatrixRow {
    one_off_ctx(mc, run_split_clean_in)
}

/// Render the matrix as an aligned text table (the Table III artifact).
pub fn render_matrix(rows: &[MatrixRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<52} {:>6} {:>6}  {}\n",
        "bug", "description", "VMUX", "ReSim", "status"
    ));
    out.push_str(&"-".repeat(96));
    out.push('\n');
    for r in rows {
        let mark = |d: bool| if d { "FOUND" } else { "-" };
        let status = if r.as_expected() {
            "as paper"
        } else {
            "UNEXPECTED"
        };
        out.push_str(&format!(
            "{:<12} {:<52} {:>6} {:>6}  {}\n",
            r.bug,
            &r.description[..r.description.len().min(52)],
            mark(r.vmux_detected),
            mark(r.resim_detected),
            status
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bug: &str, v: bool, r: bool, ev: bool, er: bool) -> MatrixRow {
        MatrixRow {
            bug: bug.into(),
            description: "d".into(),
            vmux_detected: v,
            resim_detected: r,
            vmux_expected: ev,
            resim_expected: er,
            evidence: String::new(),
        }
    }

    #[test]
    fn expectation_table_matches_the_paper() {
        use autovision::{Bug, SimMethod};
        // Spot-check the paper's Table III rows.
        assert!(expected_detection(Bug::Hw2SignatureUninit, SimMethod::Vmux));
        assert!(!expected_detection(
            Bug::Hw2SignatureUninit,
            SimMethod::Resim
        ));
        assert!(!expected_detection(
            Bug::Dpr4P2pOnSharedBus,
            SimMethod::Vmux
        ));
        assert!(expected_detection(
            Bug::Dpr4P2pOnSharedBus,
            SimMethod::Resim
        ));
        assert!(expected_detection(Bug::Hw1MemBurstWrap, SimMethod::Vmux));
        assert!(expected_detection(
            Bug::Sw1DrawWrongBuffer,
            SimMethod::Resim
        ));
    }

    #[test]
    fn split_clean_row_is_silent_under_both_methods() {
        let row = run_split_clean(&MatrixConfig::default());
        assert!(
            row.as_expected() && !row.vmux_detected && !row.resim_detected,
            "split pipeline must run clean: {row:?}"
        );
    }

    #[test]
    fn render_marks_unexpected_rows() {
        let rows = vec![
            row("bug.x", true, true, true, true),
            row("bug.y", false, false, false, true),
        ];
        assert!(rows[0].as_expected());
        assert!(!rows[1].as_expected());
        let text = render_matrix(&rows);
        assert!(text.contains("as paper"));
        assert!(text.contains("UNEXPECTED"));
        assert!(text.contains("FOUND"));
    }
}
