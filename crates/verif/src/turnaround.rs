//! Debug-turnaround comparison (paper §V-B): simulation vs on-chip.
//!
//! The paper reports 11 minutes of ModelSim time per simulated frame,
//! all bugs surfacing within the first 2-4 frames (≤ 44 minutes per
//! debug iteration), against a 52-minute implementation+bitstream
//! iteration for ChipScope on-chip debugging — before counting the many
//! extra iterations on-chip probing needs because it sees only a few
//! signals at a time.

/// Paper-reported constant: implementation + bitstream generation time
/// for one on-chip debug iteration, in minutes.
pub const ONCHIP_ITERATION_MIN: f64 = 52.0;
/// Paper-reported constant: frames within which every bug surfaced.
pub const FRAMES_TO_DETECT: u64 = 4;

/// One row of the turnaround comparison.
#[derive(Debug, Clone)]
pub struct Turnaround {
    /// Wall-clock seconds to simulate one frame (measured on this host).
    pub sim_sec_per_frame: f64,
    /// Frames needed to expose the bug class (measured or the paper's
    /// bound).
    pub frames_to_detect: u64,
    /// Simulation debug iteration, in minutes.
    pub sim_iteration_min: f64,
    /// On-chip debug iteration, in minutes (paper constant — synthesis
    /// is out of scope for this reproduction).
    pub onchip_iteration_min: f64,
    /// Ratio on-chip/simulation (>1 means simulation wins per
    /// iteration, before counting iteration-count advantages).
    pub advantage: f64,
}

/// Build the comparison from a measured per-frame simulation cost.
pub fn compare(sim_sec_per_frame: f64, frames_to_detect: u64) -> Turnaround {
    let sim_iteration_min = sim_sec_per_frame * frames_to_detect as f64 / 60.0;
    Turnaround {
        sim_sec_per_frame,
        frames_to_detect,
        sim_iteration_min,
        onchip_iteration_min: ONCHIP_ITERATION_MIN,
        advantage: ONCHIP_ITERATION_MIN / sim_iteration_min.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_numbers_favour_simulation() {
        // At the paper's own 11 min/frame, 4 frames = 44 min < 52 min.
        let t = compare(11.0 * 60.0, FRAMES_TO_DETECT);
        assert!((t.sim_iteration_min - 44.0).abs() < 1e-9);
        assert!(t.advantage > 1.0);
    }

    #[test]
    fn our_faster_substrate_increases_the_advantage() {
        let t = compare(2.0, 4);
        assert!(t.sim_iteration_min < 1.0);
        assert!(t.advantage > 100.0);
    }
}
