//! Randomized transient-fault injection campaign for the resilient
//! reconfiguration machinery.
//!
//! Each run builds the full Optical Flow Demonstrator under ReSim, arms
//! one seeded transient fault from [`Bug::TRANSIENTS`] against the
//! bitstream path (a SimB readout bit flip, a bounded DMA stall, a
//! spurious bus error, or a dropped ICAP `ready`), and classifies the
//! outcome against the golden pipeline model. Running the same campaign
//! with the recovery policy enabled and disabled yields the recovery
//! matrix: how many frames survive, how many are corrupted or hang, and
//! the retry/latency cost of recovering.
//!
//! Faults are armed through the injection handles the system exposes
//! ([`AvSystem::mem_faults`], [`AvSystem::icap_faults`]) with an address
//! window restricted to the SimB storage, so CPU instruction and frame
//! traffic are never disturbed — exactly the single-event-upset model
//! the recovery hardware is designed against.

use crate::executor::{RecoveryRow, RecoverySpec, ScenarioCtx};
use autovision::{AvSystem, Bug, RecoveryPolicy, SimMethod, SystemConfig, CLK_PERIOD_PS};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Classified outcome of one injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// All frames delivered and byte-identical to the golden model.
    Survived,
    /// Frames delivered but at least one differs from the golden model
    /// (or carries X-poisoned words).
    Corrupted,
    /// The pipeline stopped making progress: budget exhausted, kernel
    /// error, or fewer frames than expected.
    Hung,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Base system configuration (method is forced to ReSim; the
    /// recovery policy is set per campaign mode).
    pub base: SystemConfig,
    /// Injection runs per campaign (cycled over the four transient
    /// fault kinds).
    pub runs: usize,
    /// Master campaign seed.
    pub seed: u64,
    /// Hang budget per run, in cycles.
    pub budget_cycles: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            base: SystemConfig {
                width: 32,
                height: 24,
                n_frames: 2,
                payload_words: 256,
                ..Default::default()
            },
            runs: 16,
            seed: 0xFA_17,
            budget_cycles: 400_000,
        }
    }
}

/// Aggregated campaign results for one recovery mode.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Runs executed.
    pub runs: usize,
    /// Runs whose fault actually fired.
    pub fired: usize,
    /// Fired runs that survived with golden-identical output.
    pub survived: usize,
    /// Fired runs with corrupted output.
    pub corrupted: usize,
    /// Fired runs that hung.
    pub hung: usize,
    /// Total retry attempts.
    pub retries: u64,
    /// Total transfers recovered after retry.
    pub recovered: u64,
    /// Total transfers that exhausted the retry budget.
    pub exhausted: u64,
    /// Mean recovery latency over recovered transfers, in cycles.
    pub mean_recovery_cycles: f64,
    /// Worst recovery latency, in cycles.
    pub max_recovery_cycles: u64,
}

impl CampaignSummary {
    /// Fraction of fired runs that survived (1.0 when nothing fired).
    pub fn recovery_rate(&self) -> f64 {
        if self.fired == 0 {
            1.0
        } else {
            self.survived as f64 / self.fired as f64
        }
    }
}

/// Derive per-run fault parameters and arm them on a freshly built
/// system. Returns nothing; firing is read back from the handles.
fn arm_fault(sys: &mut AvSystem, fault: Bug, rng: &mut StdRng) {
    // Window covering both SimB images — only bitstream fetches are
    // eligible.
    let lo = sys.layout.simb_me.0;
    let hi = sys.layout.simb_cie.0 + 4 * sys.layout.simb_cie.1;
    let wd = sys
        .config
        .recovery
        .watchdog_cycles
        .max(RecoveryPolicy::default().watchdog_cycles);
    let mut mem = sys.mem_faults.borrow_mut();
    mem.window = Some((lo, hi));
    match fault {
        Bug::TransientSimbBitFlip => {
            // Any beat of an early burst: hits SYNC/header words as well
            // as payload, exercising both the CRC and the drain watchdog.
            mem.flip_next_read = Some((rng.random_range(0u32..64), rng.random_range(0u32..32)));
        }
        Bug::TransientDmaStall => {
            // Longer than the watchdog so the stall is *detected*, short
            // enough that the slave always completes on its own.
            mem.stall_next_read = Some(rng.random_range(wd + 64..2 * wd));
        }
        Bug::TransientBusError => {
            mem.error_next_reads = rng.random_range(1u32..=2);
        }
        Bug::TransientIcapReadyDrop => {
            if let Some(icap) = &sys.icap_faults {
                icap.borrow_mut().drop_ready_for = rng.random_range(wd + 64..2 * wd);
            }
        }
        other => panic!("{other:?} is not a transient fault"),
    }
}

fn fault_fired(sys: &AvSystem, fault: Bug) -> bool {
    let mem = sys.mem_faults.borrow();
    match fault {
        Bug::TransientSimbBitFlip => mem.flips_fired > 0,
        Bug::TransientDmaStall => mem.stalls_fired > 0,
        Bug::TransientBusError => mem.errors_fired > 0,
        Bug::TransientIcapReadyDrop => sys
            .icap_faults
            .as_ref()
            .map(|h| h.borrow().drops_fired > 0)
            .unwrap_or(false),
        _ => false,
    }
}

/// Execute one injection run within an executor context: `spec` gives
/// the fault, seed and recovery mode; the base configuration, cycle
/// budget and shared artifact cache come from `ctx`.
pub fn run_one(ctx: &ScenarioCtx<'_>, spec: RecoverySpec) -> RecoveryRow {
    let RecoverySpec {
        fault,
        seed,
        recovery_on,
    } = spec;
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SystemConfig {
        method: SimMethod::Resim,
        recovery: RecoveryPolicy {
            enabled: recovery_on,
            ..Default::default()
        },
        ..ctx.base.clone()
    };
    let n_frames = cfg.n_frames;
    let mut sys = AvSystem::build_with(cfg, ctx.artifacts);
    arm_fault(&mut sys, fault, &mut rng);
    // Randomize the arrival phase of the fault relative to the frame
    // pipeline. The armed fault stays pending until its first eligible
    // event, so any warmup before the final reconfiguration still fires.
    let warmup_cycles: u64 = rng.random_range(0u64..4096);
    let _ = sys.sim.run_for(warmup_cycles * CLK_PERIOD_PS);
    let outcome = sys.run_with_deadline(ctx.budget_cycles, ctx.deadline);
    if outcome.deadline_hit {
        std::panic::panic_any(crate::executor::ScenarioTimeout);
    }

    let golden = sys.golden_output();
    let captured = sys.captured.borrow();
    let poison = sys.captured_poison.borrow();
    let mut frames_ok = 0usize;
    let mut frames_bad = 0usize;
    for (i, (got, want)) in captured.iter().zip(&golden).enumerate() {
        let poisoned = poison.get(i).copied().unwrap_or(0) > 0;
        if got.differing_pixels(want) > 0 || poisoned {
            frames_bad += 1;
        } else {
            frames_ok += 1;
        }
    }
    let hung = outcome.hung || outcome.kernel_error.is_some() || outcome.frames_captured < n_frames;
    let class = if hung {
        RunClass::Hung
    } else if frames_bad > 0 {
        RunClass::Corrupted
    } else {
        RunClass::Survived
    };
    let r = sys.recovery.borrow();
    RecoveryRow {
        fault,
        seed,
        fired: fault_fired(&sys, fault),
        class,
        frames_ok,
        frames_bad,
        retries: r.retries,
        recovered: r.recovered,
        exhausted: r.exhausted,
        recovery_cycles_max: r.recovery_cycles_max,
        recovery_cycles_total: r.recovery_cycles_total,
    }
}

/// Aggregate run reports into a summary.
pub fn summarize(reports: &[RecoveryRow]) -> CampaignSummary {
    let mut s = CampaignSummary {
        runs: reports.len(),
        ..Default::default()
    };
    for r in reports {
        if !r.fired {
            continue;
        }
        s.fired += 1;
        match r.class {
            RunClass::Survived => s.survived += 1,
            RunClass::Corrupted => s.corrupted += 1,
            RunClass::Hung => s.hung += 1,
        }
        s.retries += r.retries;
        s.recovered += r.recovered;
        s.exhausted += r.exhausted;
        s.max_recovery_cycles = s.max_recovery_cycles.max(r.recovery_cycles_max);
        s.mean_recovery_cycles += r.recovery_cycles_total as f64;
    }
    if s.recovered > 0 {
        s.mean_recovery_cycles /= s.recovered as f64;
    } else {
        s.mean_recovery_cycles = 0.0;
    }
    s
}

/// Render one mode's campaign as an aligned per-fault table.
pub fn render_campaign(label: &str, reports: &[RecoveryRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{label}\n{:<14} {:<50} {:>5} {:>6} {:>9} {:>10} {:>5} {:>8}\n",
        "fault", "description", "runs", "fired", "survived", "corrupted", "hung", "retries"
    ));
    out.push_str(&"-".repeat(114));
    out.push('\n');
    for fault in Bug::TRANSIENTS {
        let rs: Vec<&RecoveryRow> = reports.iter().filter(|r| r.fault == fault).collect();
        if rs.is_empty() {
            continue;
        }
        let count = |c: RunClass| rs.iter().filter(|r| r.fired && r.class == c).count();
        out.push_str(&format!(
            "{:<14} {:<50} {:>5} {:>6} {:>9} {:>10} {:>5} {:>8}\n",
            fault.id(),
            fault.describe(),
            rs.len(),
            rs.iter().filter(|r| r.fired).count(),
            count(RunClass::Survived),
            count(RunClass::Corrupted),
            count(RunClass::Hung),
            rs.iter().map(|r| r.retries).sum::<u64>(),
        ));
    }
    let s = summarize(reports);
    out.push_str(&format!(
        "fired {} / {} runs: {} survived, {} corrupted, {} hung — recovery rate {:.0}%\n",
        s.fired,
        s.runs,
        s.survived,
        s.corrupted,
        s.hung,
        100.0 * s.recovery_rate()
    ));
    if s.recovered > 0 {
        out.push_str(&format!(
            "recovered {} transfer(s) in {} retr{}; recovery latency mean {:.0} / max {} cycles\n",
            s.recovered,
            s.retries,
            if s.retries == 1 { "y" } else { "ies" },
            s.mean_recovery_cycles,
            s.max_recovery_cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Campaign;

    fn quick_campaign(threads: usize) -> Campaign {
        Campaign::builder()
            .threads(threads)
            .recovery_campaign(4, true)
            .build()
    }

    #[test]
    fn every_transient_fault_fires_and_recovers() {
        let reports = quick_campaign(4).run().recovery_rows();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(r.fired, "{:?} (seed {:#x}) never fired", r.fault, r.seed);
            assert_eq!(
                r.class,
                RunClass::Survived,
                "{:?} (seed {:#x}) not recovered: {r:?}",
                r.fault,
                r.seed
            );
            assert_eq!(r.exhausted, 0);
        }
        // At least the detected faults (stall, bus error, ready drop,
        // and header-word flips) must have gone through a retry.
        assert!(reports.iter().map(|r| r.retries).sum::<u64>() >= 3);
        let s = summarize(&reports);
        assert_eq!(s.hung, 0);
        assert!(s.recovery_rate() >= 0.9);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = quick_campaign(2).run().recovery_rows();
        let b = quick_campaign(4).run().recovery_rows();
        assert_eq!(a, b);
    }

    #[test]
    fn summarize_excludes_unfired_runs() {
        let mk = |fired: bool, class: RunClass| RecoveryRow {
            fault: Bug::TransientSimbBitFlip,
            seed: 0,
            fired,
            class,
            frames_ok: 2,
            frames_bad: 0,
            retries: 1,
            recovered: 1,
            exhausted: 0,
            recovery_cycles_max: 10,
            recovery_cycles_total: 10,
        };
        let s = summarize(&[mk(true, RunClass::Survived), mk(false, RunClass::Survived)]);
        assert_eq!(s.runs, 2);
        assert_eq!(s.fired, 1);
        assert_eq!(s.survived, 1);
        assert_eq!(s.recovered, 1);
        assert!((s.recovery_rate() - 1.0).abs() < 1e-9);
    }
}
