//! Reconfiguration timeline reconstructed from the structured trace.
//!
//! Earlier harnesses reconstructed "what happened during
//! reconfiguration" with bespoke logging — one `HighTime` probe per
//! signal of interest, installed before the run and read back after it.
//! The kernel's structured trace makes that reconstruction generic: the
//! reconfiguration plane already emits typed spans (SimB transfers per
//! region, isolation windows, portal swap strobes, retry attempts), so
//! a timeline is a pure function of the event stream, needs no signals
//! resolved up front, and works for any region count.

use obs::{span_durations, Span};
use rtlsim::{TraceCat, TraceEvent, TraceKind};
use std::collections::BTreeMap;

/// Reconfiguration activity of one region, reconstructed from the
/// trace event stream.
#[derive(Debug, Clone, Default)]
pub struct RegionTimeline {
    /// Region ID (the span track the reconfiguration plane files its
    /// events under).
    pub rr_id: u32,
    /// SimB transfer windows (SYNC's first FAR to DESYNC).
    pub transfers: Vec<Span>,
    /// Isolation assert/release windows.
    pub isolation: Vec<Span>,
    /// Portal swap instants, in picoseconds.
    pub swaps: Vec<u64>,
}

impl RegionTimeline {
    /// True when every transfer lies inside some isolation window —
    /// the invariant the X-injection methodology is meant to enforce.
    pub fn transfers_isolated(&self) -> bool {
        self.transfers.iter().all(|t| {
            self.isolation
                .iter()
                .any(|w| w.start_ps <= t.start_ps && t.end_ps <= w.end_ps)
        })
    }
}

/// The whole run's reconfiguration timeline: per-region activity plus
/// the system-wide retry count.
#[derive(Debug, Clone, Default)]
pub struct ReconfigTimeline {
    /// Per-region timelines, ordered by region ID.
    pub regions: Vec<RegionTimeline>,
    /// IcapCTRL retry attempts observed anywhere in the stream.
    pub retries: u64,
}

impl ReconfigTimeline {
    /// Reconstruct the timeline from a trace event stream (as returned
    /// by `Simulator::trace_events`).
    pub fn from_events(events: &[TraceEvent]) -> ReconfigTimeline {
        let mut regions: BTreeMap<u32, RegionTimeline> = BTreeMap::new();
        fn region(map: &mut BTreeMap<u32, RegionTimeline>, rr: u32) -> &mut RegionTimeline {
            map.entry(rr).or_insert_with(|| RegionTimeline {
                rr_id: rr,
                ..RegionTimeline::default()
            })
        }
        for s in span_durations(events, TraceCat::Simb, "transfer") {
            region(&mut regions, s.track).transfers.push(s);
        }
        for s in span_durations(events, TraceCat::Isolation, "window") {
            region(&mut regions, s.track).isolation.push(s);
        }
        let mut retries = 0;
        for e in events {
            match (e.cat, e.kind, e.name) {
                (TraceCat::Portal, TraceKind::Instant, "swap") => {
                    region(&mut regions, e.track).swaps.push(e.time_ps);
                }
                (TraceCat::Retry, TraceKind::Instant, "retry") => retries += 1,
                _ => {}
            }
        }
        ReconfigTimeline {
            regions: regions.into_values().collect(),
            retries,
        }
    }

    /// Render the timeline as text, one line per region plus one span
    /// line per transfer.
    pub fn render(&self) -> String {
        let us = |ps: u64| ps as f64 / 1e6;
        let mut out = String::new();
        for r in &self.regions {
            out.push_str(&format!(
                "region rr{}: {} transfers, {} isolation windows, {} swaps{}\n",
                r.rr_id,
                r.transfers.len(),
                r.isolation.len(),
                r.swaps.len(),
                if r.transfers_isolated() {
                    ""
                } else {
                    "  [TRANSFER OUTSIDE ISOLATION]"
                }
            ));
            for (i, t) in r.transfers.iter().enumerate() {
                out.push_str(&format!(
                    "  transfer {i}: {:.3}..{:.3} us (module {:#04x})\n",
                    us(t.start_ps),
                    us(t.end_ps),
                    t.arg
                ));
            }
        }
        if self.retries > 0 {
            out.push_str(&format!("retries: {}\n", self.retries));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlsim::TraceKind;

    fn ev(
        time_ps: u64,
        seq: u64,
        kind: TraceKind,
        cat: TraceCat,
        name: &'static str,
        track: u32,
        arg: u64,
    ) -> TraceEvent {
        TraceEvent {
            time_ps,
            seq,
            kind,
            cat,
            name,
            track,
            arg,
        }
    }

    #[test]
    fn timeline_groups_spans_by_region_and_checks_isolation() {
        use TraceCat::*;
        use TraceKind::*;
        let events = vec![
            ev(100, 0, Begin, Isolation, "window", 1, 0),
            ev(150, 1, Begin, Simb, "transfer", 1, 0x02),
            ev(300, 2, Instant, Portal, "swap", 1, 0x02),
            ev(310, 3, End, Simb, "transfer", 1, 0x02),
            ev(400, 4, End, Isolation, "window", 1, 0),
            // Region 2: transfer with no isolation window at all.
            ev(500, 5, Begin, Simb, "transfer", 2, 0x01),
            ev(600, 6, End, Simb, "transfer", 2, 0x01),
            ev(650, 7, Instant, Retry, "retry", 0, 3),
        ];
        let tl = ReconfigTimeline::from_events(&events);
        assert_eq!(tl.regions.len(), 2);
        assert_eq!(tl.regions[0].rr_id, 1);
        assert_eq!(tl.regions[0].transfers.len(), 1);
        assert_eq!(tl.regions[0].isolation.len(), 1);
        assert_eq!(tl.regions[0].swaps, vec![300]);
        assert!(tl.regions[0].transfers_isolated());
        assert!(!tl.regions[1].transfers_isolated());
        assert_eq!(tl.retries, 1);
        let text = tl.render();
        assert!(text.contains("region rr1: 1 transfers"));
        assert!(text.contains("TRANSFER OUTSIDE ISOLATION"));
        assert!(text.contains("retries: 1"));
    }
}
