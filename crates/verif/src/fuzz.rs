//! Coverage-guided fuzzing of the *reconfiguration schedule*, with
//! deterministic shrinking.
//!
//! The catalogued bugs (Table III) and the seeded transient campaign
//! cover the failure modes the paper's authors knew to look for. The
//! fuzzer covers the ones they didn't: it mutates *when* things happen —
//! the DPR start offset against the frame phase, ISR housekeeping
//! timing, the configuration-clock divider, memory wait states, the
//! bus-grant ordering, the region topology — plus what flows through the
//! bitstream path (SimB word-stream corruption through the PR 1
//! transient-fault hooks), and keeps the schedules that make the design
//! *do something new*.
//!
//! "New" is judged against a coverage map extracted from the structured
//! trace plane: isolation-window edge margins, portal-swap placement,
//! ISR overlap with transfers and isolation windows, ICAP parse-phase
//! instants, retry/backoff paths, DMA/engine activity. Every coverage
//! point is a stable [`rtlsim::coverage_key`] hash, so the map — and
//! with it corpus evolution — is bit-identical across hosts and worker
//! counts.
//!
//! # Determinism
//!
//! The fuzzer runs in *rounds*: each round derives a batch of schedules
//! from the corpus with a seeded [`StdRng`], executes the batch as
//! [`Scenario::Fuzz`] rows through the work-stealing [`Campaign`] pool
//! (inheriting panic isolation, the wall-clock watchdog and
//! index-ordered delivery), and only then folds results into the
//! coverage map, corpus and failure set — in submission order. Mutation
//! randomness never interleaves with execution, so the same seed yields
//! bit-identical schedules, corpus evolution and shrunk reproducers for
//! any thread count.
//!
//! # Failures, dedup, shrinking
//!
//! A failing schedule (any detection oracle fired, or the scenario
//! panicked) is keyed by a stable *signature* — the ordered set of
//! evidence kinds, e.g. `"checker:plb_monitor+hang"` — and only the
//! first witness of each signature is shrunk: knobs are reverted to the
//! baseline schedule whole, then numeric knobs are bisected toward the
//! baseline, keeping every candidate that still reproduces the same
//! signature. The result is a minimal reproducer (fewest deviating
//! knobs, smallest warmup offset) emitted as a replayable [`FuzzRepro`]
//! JSON document.

use crate::detect::{self, Evidence, Verdict};
use crate::executor::{Campaign, Scenario, ScenarioCtx, ScenarioOutcome, ScenarioTimeout};
use crate::reconfig_timeline::ReconfigTimeline;
use autovision::{
    ArtifactCache, AvSystem, FaultSet, RecoveryPolicy, RegionSpec, SimMethod, SystemConfig,
    CLK_PERIOD_PS,
};
use obs::{span_durations, Span};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtlsim::{coverage_key, log2_bucket, ExecMode, TraceCat, TraceEvent, TraceKind};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Trace capacity for fuzz runs: small frames keep event counts in the
/// low thousands, so 64 K slots never drop and cost ~2.5 MiB per
/// in-flight scenario instead of the 10 MiB default.
const FUZZ_TRACE_CAPACITY: usize = 1 << 16;

/// Which region topology a fuzzed schedule runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzTopology {
    /// One region time-shared between the engines (the paper's
    /// demonstrator).
    Single,
    /// CIE and ME in separate regions with interleaved per-region swaps.
    Split,
}

/// One fuzzed reconfiguration schedule: every timing / ordering /
/// corruption knob the mutator may turn, as plain `Copy` data so a
/// schedule can ride inside the `Copy` [`Scenario`] enum. Execution is
/// a pure function of (base config, schedule) — the fuzzer's RNG is
/// only used to *derive* schedules, never to run them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuzzSchedule {
    /// Idle cycles simulated before the software starts — shifts every
    /// DPR window against the frame phase.
    pub warmup_cycles: u32,
    /// ISR housekeeping loops (ISR trigger-to-return timing).
    pub isr_pad_loops: u32,
    /// Configuration-clock divider of the ICAP artifact.
    pub cfg_divider: u32,
    /// Memory first-access wait states.
    pub mem_wait_states: u32,
    /// bug.dpr.6a's fixed wait loops (live when the base config seeds
    /// that bug; inert otherwise).
    pub fixed_wait_loops: u32,
    /// Round-robin PLB grant ordering instead of fixed priority.
    pub round_robin: bool,
    /// Region topology.
    pub topology: FuzzTopology,
    /// Run with the recovery policy enabled.
    pub recovery_on: bool,
    /// Flip one bit of one SimB word on the memory read path:
    /// `(beat, bit)`.
    pub flip: Option<(u32, u32)>,
    /// Stall one SimB burst for this many cycles.
    pub stall: Option<u32>,
    /// Answer this many SimB reads with a spurious bus error.
    pub bus_errors: u32,
    /// Drop ICAP `ready` for this many cycles mid-configuration.
    pub ready_drop: Option<u32>,
    /// Kernel execution mode the schedule runs under. Behaviour is
    /// bit-identical across modes by contract, so this knob never
    /// changes coverage or a failure signature — mutating it *is* the
    /// check: a mode-dependent verdict would surface as a new,
    /// shrinkable signature whose minimal reproducer flips only this
    /// knob.
    pub exec_mode: ExecMode,
}

/// Number of independently mutable knobs (the shrinker walks them by
/// index).
const KNOBS: usize = 13;

impl FuzzSchedule {
    /// The unmutated schedule of a base configuration: running it is
    /// behaviourally identical to running `base` itself (modulo the
    /// forced ReSim method).
    pub fn baseline(base: &SystemConfig) -> FuzzSchedule {
        FuzzSchedule {
            warmup_cycles: 0,
            isr_pad_loops: base.isr_pad_loops,
            cfg_divider: base.cfg_divider,
            mem_wait_states: base.mem_wait_states,
            fixed_wait_loops: base.fixed_wait_loops,
            round_robin: base.arbitration == autovision::ArbMode::RoundRobin,
            topology: if base.regions.len() >= 2 {
                FuzzTopology::Split
            } else {
                FuzzTopology::Single
            },
            recovery_on: base.recovery.enabled,
            flip: None,
            stall: None,
            bus_errors: 0,
            ready_drop: None,
            exec_mode: base.exec_mode,
        }
    }

    /// True when the schedule arms any SimB word-stream fault.
    pub fn injects_fault(&self) -> bool {
        self.flip.is_some()
            || self.stall.is_some()
            || self.bus_errors > 0
            || self.ready_drop.is_some()
    }

    /// Enforce cross-knob invariants: the split pipeline's system
    /// software supports neither fault injection nor the recovery
    /// protocol, so a `Split` schedule drops both.
    pub fn sanitized(mut self) -> FuzzSchedule {
        if self.topology == FuzzTopology::Split {
            self.recovery_on = false;
            self.flip = None;
            self.stall = None;
            self.bus_errors = 0;
            self.ready_drop = None;
        }
        self
    }

    /// Overlay the schedule onto a base configuration. ReSim is forced:
    /// the schedule knobs act on the bitstream path, which only the
    /// ReSim backend models.
    pub fn apply(&self, base: &SystemConfig) -> SystemConfig {
        let s = self.sanitized();
        let regions = match s.topology {
            FuzzTopology::Single if base.regions.len() < 2 => base.regions.clone(),
            FuzzTopology::Single => vec![RegionSpec::time_shared()],
            FuzzTopology::Split => SystemConfig::split_regions(),
        };
        let faults = if s.topology == FuzzTopology::Split {
            FaultSet::none()
        } else {
            base.faults.clone()
        };
        SystemConfig {
            method: SimMethod::Resim,
            regions,
            faults,
            isr_pad_loops: s.isr_pad_loops,
            cfg_divider: s.cfg_divider,
            mem_wait_states: s.mem_wait_states,
            fixed_wait_loops: s.fixed_wait_loops,
            arbitration: if s.round_robin {
                autovision::ArbMode::RoundRobin
            } else {
                autovision::ArbMode::FixedPriority
            },
            recovery: RecoveryPolicy {
                enabled: s.recovery_on,
                ..Default::default()
            },
            exec_mode: s.exec_mode,
            ..base.clone()
        }
    }

    /// How many knobs deviate from `baseline` — the mutation distance
    /// the shrinker minimises.
    pub fn mutation_count(&self, baseline: &FuzzSchedule) -> usize {
        (0..KNOBS)
            .filter(|&k| knob_differs(self, baseline, k))
            .count()
    }
}

fn knob_differs(s: &FuzzSchedule, b: &FuzzSchedule, k: usize) -> bool {
    match k {
        0 => s.warmup_cycles != b.warmup_cycles,
        1 => s.isr_pad_loops != b.isr_pad_loops,
        2 => s.cfg_divider != b.cfg_divider,
        3 => s.mem_wait_states != b.mem_wait_states,
        4 => s.fixed_wait_loops != b.fixed_wait_loops,
        5 => s.round_robin != b.round_robin,
        6 => s.topology != b.topology,
        7 => s.recovery_on != b.recovery_on,
        8 => s.flip != b.flip,
        9 => s.stall != b.stall,
        10 => s.bus_errors != b.bus_errors,
        11 => s.ready_drop != b.ready_drop,
        12 => s.exec_mode != b.exec_mode,
        _ => unreachable!("knob index out of range"),
    }
}

fn revert_knob(s: &mut FuzzSchedule, b: &FuzzSchedule, k: usize) {
    match k {
        0 => s.warmup_cycles = b.warmup_cycles,
        1 => s.isr_pad_loops = b.isr_pad_loops,
        2 => s.cfg_divider = b.cfg_divider,
        3 => s.mem_wait_states = b.mem_wait_states,
        4 => s.fixed_wait_loops = b.fixed_wait_loops,
        5 => s.round_robin = b.round_robin,
        6 => s.topology = b.topology,
        7 => s.recovery_on = b.recovery_on,
        8 => s.flip = b.flip,
        9 => s.stall = b.stall,
        10 => s.bus_errors = b.bus_errors,
        11 => s.ready_drop = b.ready_drop,
        12 => s.exec_mode = b.exec_mode,
        _ => unreachable!("knob index out of range"),
    }
}

/// Numeric knobs the shrinker bisects toward the baseline (the others
/// are revert-whole-or-keep).
const NUMERIC_KNOBS: [usize; 6] = [0, 1, 2, 3, 4, 10];

fn numeric_get(s: &FuzzSchedule, k: usize) -> u32 {
    match k {
        0 => s.warmup_cycles,
        1 => s.isr_pad_loops,
        2 => s.cfg_divider,
        3 => s.mem_wait_states,
        4 => s.fixed_wait_loops,
        10 => s.bus_errors,
        _ => unreachable!("not a numeric knob"),
    }
}

fn numeric_set(s: &mut FuzzSchedule, k: usize, v: u32) {
    match k {
        0 => s.warmup_cycles = v,
        1 => s.isr_pad_loops = v,
        2 => s.cfg_divider = v,
        3 => s.mem_wait_states = v,
        4 => s.fixed_wait_loops = v,
        10 => s.bus_errors = v,
        _ => unreachable!("not a numeric knob"),
    }
}

/// One planned fuzz scenario: a schedule plus its global iteration id
/// (purely a report label — execution depends only on the schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuzzSpec {
    /// Global iteration index within the fuzz session.
    pub id: u32,
    /// The schedule to run.
    pub schedule: FuzzSchedule,
}

/// What one fuzzed schedule did.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzRow {
    /// The scenario that ran (schedule sanitized).
    pub spec: FuzzSpec,
    /// Any detection oracle fired.
    pub detected: bool,
    /// Stable failure signature (`None` for passing runs).
    pub signature: Option<String>,
    /// Kernel-error text, when the kernel itself failed.
    pub kernel_error: Option<String>,
    /// The oracle evidence (truncated like every verdict).
    pub evidence: Vec<Evidence>,
    /// Frames the display captured.
    pub frames: usize,
    /// Clock cycles the run consumed (excluding warmup).
    pub cycles: u64,
    /// Sorted coverage keys the run exhibited.
    pub coverage: Vec<u64>,
}

/// Execute one fuzzed schedule within an executor context: build the
/// overlaid system, arm the schedule's word-stream faults, shift the
/// start phase, run under the trace plane, classify and extract
/// coverage.
pub fn run_one(ctx: &ScenarioCtx<'_>, spec: FuzzSpec) -> FuzzRow {
    let sch = spec.schedule.sanitized();
    let cfg = sch.apply(ctx.base);
    let n_frames = cfg.n_frames;
    let mut sys = AvSystem::build_with(cfg, ctx.artifacts);
    sys.sim.enable_trace_with_capacity(FUZZ_TRACE_CAPACITY);
    if sch.injects_fault() {
        // Restrict injection to the SimB storage window, exactly like
        // the recovery campaign: only bitstream fetches are eligible.
        let lo = sys.layout.simb_me.0;
        let hi = sys.layout.simb_cie.0 + 4 * sys.layout.simb_cie.1;
        {
            let mut mem = sys.mem_faults.borrow_mut();
            mem.window = Some((lo, hi));
            mem.flip_next_read = sch.flip;
            mem.stall_next_read = sch.stall;
            mem.error_next_reads = sch.bus_errors;
        }
        if let (Some(d), Some(icap)) = (sch.ready_drop, &sys.icap_faults) {
            icap.borrow_mut().drop_ready_for = d;
        }
    }
    let _ = sys.sim.run_for(sch.warmup_cycles as u64 * CLK_PERIOD_PS);
    let outcome = sys.run_with_deadline(ctx.budget_cycles, ctx.deadline);
    if outcome.deadline_hit {
        std::panic::panic_any(ScenarioTimeout);
    }
    detect::tally_compiled(&sys);
    let verdict = detect::classify(&sys, &outcome, n_frames);
    let coverage = coverage_of(&sys.sim.trace_events(), &verdict);
    FuzzRow {
        spec: FuzzSpec {
            id: spec.id,
            schedule: sch,
        },
        detected: verdict.detected,
        signature: failure_signature(&verdict),
        kernel_error: verdict.kernel_error.clone(),
        evidence: verdict.evidence.clone(),
        frames: verdict.frames,
        cycles: verdict.cycles,
        coverage,
    }
}

fn evidence_tag(e: &Evidence) -> String {
    match e {
        Evidence::CheckerError { component, .. } => format!("checker:{component}"),
        Evidence::OutputMismatch { .. } => "mismatch".to_string(),
        Evidence::PoisonedOutput { .. } => "poison".to_string(),
        Evidence::Hang { .. } => "hang".to_string(),
        Evidence::CpuError { .. } => "cpu".to_string(),
        Evidence::KernelError { .. } => "kernel".to_string(),
    }
}

/// The stable failure signature of a verdict: the evidence kinds (and
/// reporting components) in first-occurrence order, deduplicated. Two
/// schedules that fail the same way share a signature, so each distinct
/// failure mode is shrunk and reported once.
pub fn failure_signature(verdict: &Verdict) -> Option<String> {
    if !verdict.detected {
        return None;
    }
    let mut tags: Vec<String> = Vec::new();
    for e in &verdict.evidence {
        let t = evidence_tag(e);
        if !tags.contains(&t) {
            tags.push(t);
        }
    }
    Some(tags.join("+"))
}

fn spans_overlap(a: &Span, b: &Span) -> bool {
    a.start_ps < b.end_ps && b.start_ps < a.end_ps
}

/// Reduce a trace event stream plus its verdict to the run's coverage
/// keys (sorted, deduplicated).
pub fn coverage_of(events: &[TraceEvent], verdict: &Verdict) -> Vec<u64> {
    let b = log2_bucket;
    let mut set: BTreeSet<u64> = BTreeSet::new();
    let tl = ReconfigTimeline::from_events(events);
    for r in &tl.regions {
        let rr = r.rr_id as u64;
        set.insert(coverage_key(
            "region.transfers",
            &[rr, b(r.transfers.len() as u64)],
        ));
        set.insert(coverage_key(
            "region.isolation",
            &[rr, b(r.isolation.len() as u64)],
        ));
        set.insert(coverage_key("region.swaps", &[rr, b(r.swaps.len() as u64)]));
        set.insert(coverage_key(
            "region.transfers_isolated",
            &[rr, r.transfers_isolated() as u64],
        ));
        for &s in &r.swaps {
            let inside = r.isolation.iter().any(|w| w.start_ps <= s && s <= w.end_ps);
            set.insert(coverage_key("swap.in_isolation", &[rr, inside as u64]));
        }
        // Isolation-window *edge margins*: how close each transfer runs
        // to the window's assert/release edges, in cycle buckets — the
        // race surface the paper's DPR bugs live on.
        for t in &r.transfers {
            if let Some(w) = r
                .isolation
                .iter()
                .find(|w| w.start_ps <= t.start_ps && t.end_ps <= w.end_ps)
            {
                let lead = (t.start_ps - w.start_ps) / CLK_PERIOD_PS;
                let tail = (w.end_ps - t.end_ps) / CLK_PERIOD_PS;
                set.insert(coverage_key("iso.lead", &[rr, b(lead)]));
                set.insert(coverage_key("iso.tail", &[rr, b(tail)]));
            }
        }
    }
    set.insert(coverage_key("retries", &[b(tl.retries)]));

    // ISR placement against the reconfiguration plane.
    let isrs = span_durations(events, TraceCat::Isr, "isr");
    set.insert(coverage_key("isr.count", &[b(isrs.len() as u64)]));
    for r in &tl.regions {
        let rr = r.rr_id as u64;
        let x_transfer = isrs
            .iter()
            .filter(|i| r.transfers.iter().any(|t| spans_overlap(i, t)))
            .count() as u64;
        let x_isolation = isrs
            .iter()
            .filter(|i| r.isolation.iter().any(|w| spans_overlap(i, w)))
            .count() as u64;
        set.insert(coverage_key("isr.x_transfer", &[rr, b(x_transfer)]));
        set.insert(coverage_key("isr.x_isolation", &[rr, b(x_isolation)]));
    }

    // ICAP parse phases and retry-path instants, per (name, track).
    let mut instants: BTreeMap<(&'static str, &'static str, u32), u64> = BTreeMap::new();
    for e in events {
        if e.kind == TraceKind::Instant && matches!(e.cat, TraceCat::Icap | TraceCat::Retry) {
            *instants
                .entry((e.cat.label(), e.name, e.track))
                .or_default() += 1;
        }
    }
    for ((cat, name, track), n) in instants {
        set.insert(coverage_key(
            &format!("instant.{cat}.{name}"),
            &[track as u64, b(n)],
        ));
    }
    let backoffs = span_durations(events, TraceCat::Retry, "backoff");
    set.insert(coverage_key("backoffs", &[b(backoffs.len() as u64)]));

    // Bus/engine pressure: DMA bursts and engine runs per track, plus
    // engine computation overlapping a bitstream transfer (the split
    // pipeline's raison d'être).
    let dmas = span_durations(events, TraceCat::Dma, "burst");
    let mut per_track: BTreeMap<u32, u64> = BTreeMap::new();
    for d in &dmas {
        *per_track.entry(d.track).or_default() += 1;
    }
    for (track, n) in per_track {
        set.insert(coverage_key("dma.bursts", &[track as u64, b(n)]));
    }
    let engine_runs = span_durations(events, TraceCat::Engine, "run");
    set.insert(coverage_key("engine.runs", &[b(engine_runs.len() as u64)]));
    for r in &tl.regions {
        let overlapped = engine_runs
            .iter()
            .any(|e| r.transfers.iter().any(|t| spans_overlap(e, t)));
        set.insert(coverage_key(
            "engine.x_transfer",
            &[r.rr_id as u64, overlapped as u64],
        ));
    }

    // Outcome shape.
    set.insert(coverage_key(
        "outcome",
        &[verdict.detected as u64, b(verdict.frames as u64)],
    ));
    for e in &verdict.evidence {
        set.insert(coverage_key(&format!("evidence.{}", evidence_tag(e)), &[]));
    }
    set.into_iter().collect()
}

// ---------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------

/// Fuzz session options.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Master seed: same seed, same schedules, corpus and reproducers.
    pub seed: u64,
    /// Mutation rounds.
    pub rounds: usize,
    /// Schedules per round (one campaign batch).
    pub batch: usize,
    /// Worker threads for the campaign pool.
    pub threads: usize,
    /// Hang budget per run, in cycles.
    pub budget_cycles: u64,
    /// Allow SimB word-stream corruption ops (flip/stall/bus
    /// error/ready drop). Off for the "clean design must survive every
    /// legal schedule" gate, where injected upsets would trivially —
    /// and correctly — be detected.
    pub corrupt_stream: bool,
    /// Allow toggling the recovery policy.
    pub mutate_recovery: bool,
    /// Allow toggling the region topology (only effective when the base
    /// config carries no seeded bug — the split software rejects them).
    pub mutate_topology: bool,
    /// Per-scenario wall-clock watchdog handed to the campaign pool.
    /// `None` keeps the session bit-deterministic.
    pub scenario_timeout: Option<Duration>,
    /// Corpus size cap (oldest non-baseline entries evicted first).
    pub max_corpus: usize,
    /// Maximum re-runs the shrinker may spend per failure signature.
    pub shrink_budget: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0xF0CC_A11E,
            rounds: 4,
            batch: 8,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            budget_cycles: 400_000,
            corrupt_stream: true,
            mutate_recovery: false,
            mutate_topology: true,
            scenario_timeout: None,
            max_corpus: 64,
            shrink_budget: 64,
        }
    }
}

fn apply_op(s: &mut FuzzSchedule, rng: &mut StdRng, opts: &FuzzOptions, base_has_faults: bool) {
    // The op table is the *legal schedule envelope*: ranges are clamped
    // to what the golden design tolerates, so a clean base failing under
    // any schedule drawn from here is a real robustness finding.
    let mut ops: Vec<u32> = (0..=5).collect();
    // The execution mode is always in the op table: compiled dispatch
    // is contractually bit-identical, so it is legal under every
    // session policy — including the clean robustness gate, which
    // thereby also fuzzes mode-switch coverage.
    ops.push(12);
    if opts.mutate_topology && !base_has_faults {
        ops.push(6);
    }
    if opts.mutate_recovery {
        ops.push(7);
    }
    if opts.corrupt_stream {
        ops.extend([8, 9, 10, 11]);
    }
    let op = ops[rng.random_range(0u64..ops.len() as u64) as usize];
    match op {
        // isr_pad and cfg_divider ranges are the *discovered* legal
        // envelope: fuzzing a wider range found that the golden
        // design's isolation calibration only holds for isr_pad ≥ 4
        // and cfg_divider ≤ 4 — outside it the reconfiguration X
        // escapes onto the engine's bus-control signals
        // (`plb_monitor: X/Z on bus control signal`).
        0 => s.warmup_cycles = rng.random_range(0u32..8192),
        1 => s.isr_pad_loops = rng.random_range(4u32..=64),
        2 => s.cfg_divider = rng.random_range(1u32..=4),
        3 => s.mem_wait_states = rng.random_range(0u32..=4),
        4 => s.fixed_wait_loops = rng.random_range(1u32..=512),
        5 => s.round_robin = !s.round_robin,
        6 => {
            s.topology = match s.topology {
                FuzzTopology::Single => FuzzTopology::Split,
                FuzzTopology::Split => FuzzTopology::Single,
            }
        }
        7 => s.recovery_on = !s.recovery_on,
        8 => {
            s.flip = if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some((rng.random_range(0u32..64), rng.random_range(0u32..32)))
            }
        }
        9 => {
            s.stall = if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(rng.random_range(256u32..4096))
            }
        }
        10 => s.bus_errors = rng.random_range(0u32..=2),
        11 => {
            s.ready_drop = if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(rng.random_range(64u32..2048))
            }
        }
        12 => {
            s.exec_mode = match s.exec_mode {
                ExecMode::EventDriven => ExecMode::Compiled,
                ExecMode::Compiled => ExecMode::Auto,
                ExecMode::Auto => ExecMode::EventDriven,
            }
        }
        _ => unreachable!("op index out of table"),
    }
}

/// Derive one child schedule: 1–3 ops applied to a corpus parent.
fn mutate(
    parent: FuzzSchedule,
    rng: &mut StdRng,
    opts: &FuzzOptions,
    base_has_faults: bool,
) -> FuzzSchedule {
    let mut s = parent;
    let n = rng.random_range(1u32..=3);
    for _ in 0..n {
        apply_op(&mut s, rng, opts, base_has_faults);
    }
    s.sanitized()
}

// ---------------------------------------------------------------------
// Reproducers
// ---------------------------------------------------------------------

/// A minimal replayable reproducer of one failure signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzRepro {
    /// The shrunk schedule.
    pub schedule: FuzzSchedule,
    /// The failure signature it reproduces.
    pub signature: String,
    /// Knobs still deviating from the baseline schedule.
    pub mutations: usize,
    /// Hang budget the failure was observed under.
    pub budget_cycles: u64,
}

impl FuzzRepro {
    /// Serialize as a flat JSON document (`fuzz_repro/v2`; v2 added the
    /// `exec_mode` knob).
    pub fn to_json(&self) -> String {
        let s = &self.schedule;
        let opt = |v: Option<u32>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
        let (beat, bit) = match s.flip {
            Some((beat, bit)) => (Some(beat), Some(bit)),
            None => (None, None),
        };
        format!(
            "{{\n  \"schema\": \"fuzz_repro/v2\",\n  \"signature\": \"{}\",\n  \"mutations\": {},\n  \"budget_cycles\": {},\n  \"warmup_cycles\": {},\n  \"isr_pad_loops\": {},\n  \"cfg_divider\": {},\n  \"mem_wait_states\": {},\n  \"fixed_wait_loops\": {},\n  \"round_robin\": {},\n  \"split_topology\": {},\n  \"recovery_on\": {},\n  \"flip_beat\": {},\n  \"flip_bit\": {},\n  \"stall\": {},\n  \"bus_errors\": {},\n  \"ready_drop\": {},\n  \"exec_mode\": \"{}\"\n}}\n",
            obs::json::escape(&self.signature),
            self.mutations,
            self.budget_cycles,
            s.warmup_cycles,
            s.isr_pad_loops,
            s.cfg_divider,
            s.mem_wait_states,
            s.fixed_wait_loops,
            s.round_robin,
            s.topology == FuzzTopology::Split,
            s.recovery_on,
            opt(beat),
            opt(bit),
            opt(s.stall),
            s.bus_errors,
            opt(s.ready_drop),
            s.exec_mode.as_str(),
        )
    }

    /// Parse a `fuzz_repro/v1` or `/v2` document produced by
    /// [`FuzzRepro::to_json`] (v1 documents predate the `exec_mode`
    /// knob and replay event-driven).
    pub fn from_json(doc: &str) -> Result<FuzzRepro, String> {
        let schema = json_str(doc, "schema")?;
        let exec_mode = match schema.as_str() {
            "fuzz_repro/v1" => ExecMode::EventDriven,
            "fuzz_repro/v2" => json_str(doc, "exec_mode")?
                .parse::<ExecMode>()
                .map_err(|e| format!("key exec_mode: {e}"))?,
            _ => return Err("unsupported schema".to_string()),
        };
        let flip = match (
            json_opt_u32(doc, "flip_beat")?,
            json_opt_u32(doc, "flip_bit")?,
        ) {
            (Some(beat), Some(bit)) => Some((beat, bit)),
            (None, None) => None,
            _ => return Err("flip_beat/flip_bit must both be set or both null".to_string()),
        };
        Ok(FuzzRepro {
            schedule: FuzzSchedule {
                warmup_cycles: json_u64(doc, "warmup_cycles")? as u32,
                isr_pad_loops: json_u64(doc, "isr_pad_loops")? as u32,
                cfg_divider: json_u64(doc, "cfg_divider")? as u32,
                mem_wait_states: json_u64(doc, "mem_wait_states")? as u32,
                fixed_wait_loops: json_u64(doc, "fixed_wait_loops")? as u32,
                round_robin: json_bool(doc, "round_robin")?,
                topology: if json_bool(doc, "split_topology")? {
                    FuzzTopology::Split
                } else {
                    FuzzTopology::Single
                },
                recovery_on: json_bool(doc, "recovery_on")?,
                flip,
                stall: json_opt_u32(doc, "stall")?,
                bus_errors: json_u64(doc, "bus_errors")? as u32,
                ready_drop: json_opt_u32(doc, "ready_drop")?,
                exec_mode,
            },
            signature: json_str(doc, "signature")?,
            mutations: json_u64(doc, "mutations")? as usize,
            budget_cycles: json_u64(doc, "budget_cycles")?,
        })
    }
}

fn json_raw(doc: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat).ok_or_else(|| format!("missing key {key}"))?;
    let rest = doc[at + pat.len()..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim().to_string())
}

fn json_u64(doc: &str, key: &str) -> Result<u64, String> {
    json_raw(doc, key)?
        .parse::<u64>()
        .map_err(|e| format!("key {key}: {e}"))
}

fn json_opt_u32(doc: &str, key: &str) -> Result<Option<u32>, String> {
    let raw = json_raw(doc, key)?;
    if raw == "null" {
        Ok(None)
    } else {
        raw.parse::<u32>()
            .map(Some)
            .map_err(|e| format!("key {key}: {e}"))
    }
}

fn json_bool(doc: &str, key: &str) -> Result<bool, String> {
    match json_raw(doc, key)?.as_str() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("key {key}: expected bool, got {other}")),
    }
}

fn json_str(doc: &str, key: &str) -> Result<String, String> {
    let raw = json_raw(doc, key)?;
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("key {key}: expected string, got {raw}"))?;
    // Minimal unescape — signatures only ever contain the escapes the
    // writer emits.
    Ok(inner
        .replace("\\\"", "\"")
        .replace("\\n", "\n")
        .replace("\\\\", "\\"))
}

/// Re-run a reproducer against a base configuration.
pub fn replay(base: &SystemConfig, repro: &FuzzRepro) -> FuzzRow {
    let artifacts = ArtifactCache::new();
    let ctx = ScenarioCtx::new(base, repro.budget_cycles, &artifacts);
    run_one(
        &ctx,
        FuzzSpec {
            id: 0,
            schedule: repro.schedule,
        },
    )
}

// ---------------------------------------------------------------------
// The fuzz session driver
// ---------------------------------------------------------------------

/// One deduplicated failure mode found by a fuzz session.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// The stable failure signature.
    pub signature: String,
    /// Schedules that hit this signature.
    pub hits: usize,
    /// The first witnessing schedule, unshrunk.
    pub first: FuzzSchedule,
    /// The shrunk minimal reproducer.
    pub repro: FuzzRepro,
}

/// Aggregated result of a fuzz session.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The master seed the session ran under.
    pub seed: u64,
    /// Schedules executed (rounds × batch).
    pub iterations: usize,
    /// Distinct coverage keys observed.
    pub coverage_keys: usize,
    /// Coverage-novel schedules retained (baseline first).
    pub corpus: Vec<FuzzSchedule>,
    /// Deduplicated failures, in discovery order, each with a shrunk
    /// reproducer.
    pub failures: Vec<FuzzFailure>,
    /// Scenarios the wall-clock watchdog killed (excluded from the
    /// failure set: whether a run beats a wall clock is not
    /// deterministic).
    pub timed_out: usize,
    /// Re-runs the shrinker spent.
    pub shrink_runs: usize,
}

impl FuzzReport {
    /// A deterministic line rendering — what the determinism suite
    /// compares byte-for-byte across worker counts (timed-out counts are
    /// excluded; they are wall-clock-dependent and zero without a
    /// watchdog).
    pub fn digest(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fuzz seed {:#x}: {} iterations, {} coverage keys\n",
            self.seed, self.iterations, self.coverage_keys
        ));
        for (i, s) in self.corpus.iter().enumerate() {
            out.push_str(&format!("corpus {i:03}: {s:?}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!(
                "failure [{}] hits {} first {:?} repro({} mut) {:?}\n",
                f.signature, f.hits, f.first, f.repro.mutations, f.repro.schedule
            ));
        }
        out
    }

    /// Human-readable session summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fuzz session (seed {:#x}): {} schedules, {} coverage keys, corpus {}, {} failure signature(s), {} timed out\n",
            self.seed,
            self.iterations,
            self.coverage_keys,
            self.corpus.len(),
            self.failures.len(),
            self.timed_out,
        ));
        for f in &self.failures {
            out.push_str(&format!(
                "  [{}] ×{} — shrunk to {} mutation(s): {:?}\n",
                f.signature, f.hits, f.repro.mutations, f.repro.schedule
            ));
        }
        out
    }
}

/// Run a schedule and report its failure signature (panics included,
/// as `panic:<message>`), or `None` when it passes. The shrinker's
/// probe.
fn run_signature(
    base: &SystemConfig,
    artifacts: &ArtifactCache,
    schedule: &FuzzSchedule,
    budget_cycles: u64,
) -> Option<String> {
    let ctx = ScenarioCtx::new(base, budget_cycles, artifacts);
    let spec = FuzzSpec {
        id: 0,
        schedule: *schedule,
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(&ctx, spec))) {
        Ok(row) => row.signature,
        Err(payload) => Some(format!(
            "panic:{}",
            crate::executor::panic_message(payload.as_ref())
        )),
    }
}

/// Shrink a failing schedule to a minimal reproducer of `signature`:
/// first revert whole knobs to the baseline, then bisect numeric knobs
/// toward their baseline values, keeping every candidate that still
/// fails the same way. Deterministic (fixed knob order, no RNG) and
/// bounded by `max_runs` probe re-runs.
pub fn shrink(
    base: &SystemConfig,
    artifacts: &ArtifactCache,
    baseline: &FuzzSchedule,
    failing: FuzzSchedule,
    signature: &str,
    budget_cycles: u64,
    max_runs: usize,
) -> (FuzzRepro, usize) {
    let mut cur = failing;
    let mut runs = 0usize;
    let check = |cand: &FuzzSchedule, runs: &mut usize| -> bool {
        *runs += 1;
        run_signature(base, artifacts, cand, budget_cycles).as_deref() == Some(signature)
    };
    // Pass 1: whole-knob reverts until fixpoint.
    loop {
        let mut changed = false;
        for k in 0..KNOBS {
            if runs >= max_runs {
                break;
            }
            if !knob_differs(&cur, baseline, k) {
                continue;
            }
            let mut cand = cur;
            revert_knob(&mut cand, baseline, k);
            let cand = cand.sanitized();
            if cand != cur && check(&cand, &mut runs) {
                cur = cand;
                changed = true;
            }
        }
        if !changed || runs >= max_runs {
            break;
        }
    }
    // Pass 2: bisect remaining numeric deviations toward the baseline
    // (smallest warmup offset = earliest divergence).
    for k in NUMERIC_KNOBS {
        loop {
            if runs >= max_runs {
                break;
            }
            let cv = numeric_get(&cur, k);
            let bv = numeric_get(baseline, k);
            if cv == bv {
                break;
            }
            let mid = if cv > bv {
                bv + (cv - bv) / 2
            } else {
                bv - (bv - cv) / 2
            };
            if mid == cv {
                break;
            }
            let mut cand = cur;
            numeric_set(&mut cand, k, mid);
            let cand = cand.sanitized();
            if check(&cand, &mut runs) {
                cur = cand;
            } else {
                break;
            }
        }
    }
    (
        FuzzRepro {
            schedule: cur,
            signature: signature.to_string(),
            mutations: cur.mutation_count(baseline),
            budget_cycles,
        },
        runs,
    )
}

/// Run a full coverage-guided fuzz session over `base`.
///
/// Each round derives a batch of schedules from the corpus, runs it
/// through the [`Campaign`] pool as [`Scenario::Fuzz`] rows, then folds
/// the index-ordered results into the coverage map / corpus / failure
/// set. New failure signatures are shrunk immediately (sequentially, on
/// the driver thread). The whole session is a pure function of
/// `(base, opts)` as long as no `scenario_timeout` is set.
pub fn run_fuzz(base: &SystemConfig, opts: &FuzzOptions) -> FuzzReport {
    let baseline = FuzzSchedule::baseline(base);
    let base_has_faults = !base.faults.is_empty();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut corpus: Vec<FuzzSchedule> = vec![baseline];
    let mut coverage: BTreeSet<u64> = BTreeSet::new();
    let mut failures: Vec<FuzzFailure> = Vec::new();
    let artifacts = ArtifactCache::new();
    let mut next_id = 0u32;
    let mut iterations = 0usize;
    let mut timed_out = 0usize;
    let mut shrink_runs = 0usize;
    for _round in 0..opts.rounds {
        // Derive the whole batch before anything runs: mutation
        // randomness must not interleave with execution order.
        let batch: Vec<FuzzSpec> = (0..opts.batch)
            .map(|_| {
                let parent = corpus[rng.random_range(0u64..corpus.len() as u64) as usize];
                let schedule = mutate(parent, &mut rng, opts, base_has_faults);
                let spec = FuzzSpec {
                    id: next_id,
                    schedule,
                };
                next_id += 1;
                spec
            })
            .collect();
        let report = Campaign::builder()
            .base(base.clone())
            .threads(opts.threads)
            .budget_cycles(opts.budget_cycles)
            .scenario_timeout(opts.scenario_timeout)
            .scenarios(batch.iter().map(|s| Scenario::Fuzz(*s)))
            .build()
            .run();
        for row in &report.rows {
            iterations += 1;
            let (schedule, signature) = match &row.outcome {
                ScenarioOutcome::Fuzz(fr) => {
                    let novel = fr.coverage.iter().any(|k| !coverage.contains(k));
                    coverage.extend(fr.coverage.iter().copied());
                    if novel {
                        corpus.push(fr.spec.schedule);
                        if corpus.len() > opts.max_corpus.max(2) {
                            // Keep the baseline; evict the oldest child.
                            corpus.remove(1);
                        }
                    }
                    (fr.spec.schedule, fr.signature.clone())
                }
                ScenarioOutcome::Failed { panic } => {
                    let Scenario::Fuzz(spec) = row.scenario else {
                        continue;
                    };
                    (spec.schedule, Some(format!("panic:{panic}")))
                }
                ScenarioOutcome::TimedOut => {
                    timed_out += 1;
                    continue;
                }
                _ => continue,
            };
            let Some(sig) = signature else { continue };
            if let Some(f) = failures.iter_mut().find(|f| f.signature == sig) {
                f.hits += 1;
            } else {
                let (repro, spent) = shrink(
                    base,
                    &artifacts,
                    &baseline,
                    schedule,
                    &sig,
                    opts.budget_cycles,
                    opts.shrink_budget,
                );
                shrink_runs += spent;
                failures.push(FuzzFailure {
                    signature: sig,
                    hits: 1,
                    first: schedule,
                    repro,
                });
            }
        }
    }
    FuzzReport {
        seed: opts.seed,
        iterations,
        coverage_keys: coverage.len(),
        corpus,
        failures,
        timed_out,
        shrink_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_schedule_round_trips_the_base_config() {
        let base = SystemConfig {
            width: 32,
            height: 24,
            n_frames: 2,
            payload_words: 256,
            ..Default::default()
        };
        let sch = FuzzSchedule::baseline(&base);
        let cfg = sch.apply(&base);
        assert_eq!(cfg.isr_pad_loops, base.isr_pad_loops);
        assert_eq!(cfg.cfg_divider, base.cfg_divider);
        assert_eq!(cfg.mem_wait_states, base.mem_wait_states);
        assert_eq!(cfg.arbitration, base.arbitration);
        assert_eq!(cfg.regions.len(), 1);
        assert_eq!(sch.mutation_count(&sch), 0);
        assert!(!sch.injects_fault());
    }

    #[test]
    fn split_schedules_drop_faults_and_recovery() {
        let base = SystemConfig::default();
        let mut sch = FuzzSchedule::baseline(&base);
        sch.topology = FuzzTopology::Split;
        sch.flip = Some((3, 7));
        sch.recovery_on = true;
        let s = sch.sanitized();
        assert!(!s.injects_fault());
        assert!(!s.recovery_on);
        let cfg = s.apply(&base);
        assert_eq!(cfg.regions.len(), 2);
        assert!(cfg.faults.is_empty());
    }

    #[test]
    fn mutation_stream_is_seed_deterministic() {
        let opts = FuzzOptions::default();
        let base = SystemConfig::default();
        let baseline = FuzzSchedule::baseline(&base);
        let gen = |seed: u64| -> Vec<FuzzSchedule> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| mutate(baseline, &mut rng, &opts, false))
                .collect()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn repro_json_round_trips() {
        let repro = FuzzRepro {
            schedule: FuzzSchedule {
                warmup_cycles: 1234,
                isr_pad_loops: 3,
                cfg_divider: 2,
                mem_wait_states: 0,
                fixed_wait_loops: 250,
                round_robin: true,
                topology: FuzzTopology::Single,
                recovery_on: false,
                flip: Some((5, 17)),
                stall: None,
                bus_errors: 1,
                ready_drop: Some(96),
                exec_mode: ExecMode::Compiled,
            },
            signature: "checker:plb_monitor+hang".to_string(),
            mutations: 4,
            budget_cycles: 400_000,
        };
        let doc = repro.to_json();
        let parsed = FuzzRepro::from_json(&doc).expect("parse back");
        assert_eq!(parsed, repro);
        assert!(FuzzRepro::from_json("{}").is_err());
        // Pre-exec-mode documents still parse and replay event-driven.
        let v1 = doc.replace("fuzz_repro/v2", "fuzz_repro/v1").replace(
            "  \"exec_mode\": \"compiled\"\n",
            "  \"exec_mode_ignored\": 0\n",
        );
        let legacy = FuzzRepro::from_json(&v1).expect("v1 parses");
        assert_eq!(legacy.schedule.exec_mode, ExecMode::EventDriven);
    }

    #[test]
    fn failure_signature_dedups_evidence_kinds_in_order() {
        let v = Verdict {
            detected: true,
            evidence: vec![
                Evidence::CheckerError {
                    component: "plb_monitor".into(),
                    text: "x".into(),
                },
                Evidence::CheckerError {
                    component: "plb_monitor".into(),
                    text: "y".into(),
                },
                Evidence::Hang {
                    frames_captured: 1,
                    frames_expected: 2,
                },
            ],
            cycles: 0,
            frames: 1,
            simulated_ns: 0,
            kernel_error: None,
        };
        assert_eq!(
            failure_signature(&v).as_deref(),
            Some("checker:plb_monitor+hang")
        );
        let clean = Verdict {
            detected: false,
            evidence: vec![],
            cycles: 0,
            frames: 2,
            simulated_ns: 0,
            kernel_error: None,
        };
        assert_eq!(failure_signature(&clean), None);
    }

    #[test]
    fn coverage_of_is_deterministic_and_sensitive_to_structure() {
        use rtlsim::TraceKind::*;
        let ev = |time_ps, seq, kind, cat, name: &'static str, track, arg| TraceEvent {
            time_ps,
            seq,
            kind,
            cat,
            name,
            track,
            arg,
        };
        let verdict = Verdict {
            detected: false,
            evidence: vec![],
            cycles: 100,
            frames: 2,
            simulated_ns: 1,
            kernel_error: None,
        };
        let stream_a = vec![
            ev(100, 0, Begin, TraceCat::Isolation, "window", 1, 0),
            ev(150, 1, Begin, TraceCat::Simb, "transfer", 1, 2),
            ev(300, 2, Instant, TraceCat::Portal, "swap", 1, 2),
            ev(310, 3, End, TraceCat::Simb, "transfer", 1, 2),
            ev(400, 4, End, TraceCat::Isolation, "window", 1, 0),
        ];
        // Same shape, but the transfer escapes the isolation window.
        let stream_b = vec![
            ev(100, 0, Begin, TraceCat::Isolation, "window", 1, 0),
            ev(150, 1, Begin, TraceCat::Simb, "transfer", 1, 2),
            ev(300, 2, Instant, TraceCat::Portal, "swap", 1, 2),
            ev(400, 3, End, TraceCat::Isolation, "window", 1, 0),
            ev(410, 4, End, TraceCat::Simb, "transfer", 1, 2),
        ];
        let a1 = coverage_of(&stream_a, &verdict);
        let a2 = coverage_of(&stream_a, &verdict);
        let b = coverage_of(&stream_b, &verdict);
        assert_eq!(a1, a2);
        assert_ne!(a1, b, "isolation escape must change coverage");
        assert!(a1.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
    }
}
