//! Functional coverage for the reconfiguration machinery.
//!
//! The paper argues that ReSim "covers all aspects of DPR"; this module
//! makes that claim checkable. A [`DprCoverage`] collector attaches
//! probes to one built system and, after the run, reports which DPR
//! coverage points were exercised:
//!
//! * module swaps in both directions (CIE→ME and ME→CIE);
//! * complete bitstreams (SYNC..DESYNC) for every transfer started;
//! * error-injection windows opening and closing;
//! * isolation asserted around each injection window;
//! * ICAP backpressure actually exercised (`ready` deasserted);
//! * interrupts taken for each pipeline step.
//!
//! Virtual Multiplexing structurally cannot hit the bitstream-related
//! points — the coverage *holes* it leaves are the quantified version of
//! "VMUX does not simulate an integrated design".

use crate::probe::{probe_high_time, HighTime, Probe};
use autovision::AvSystem;
use rtlsim::Lv;
use std::cell::RefCell;
use std::rc::Rc;

/// Handles installed before the run; finalise with
/// [`CoverageProbes::collect`] after it.
pub struct CoverageProbes {
    isolation: Rc<RefCell<HighTime>>,
    /// One isolation probe per reconfigurable region, in region order.
    region_isolation: Vec<Rc<RefCell<HighTime>>>,
    injection: Option<Rc<RefCell<HighTime>>>,
    reconfiguring: Option<Rc<RefCell<HighTime>>>,
}

/// The collected coverage record.
#[derive(Debug, Clone)]
pub struct DprCoverage {
    /// Module swaps observed.
    pub swaps: u64,
    /// Complete bitstreams (DESYNC seen).
    pub desyncs: u64,
    /// Error-injection windows.
    pub injection_windows: u64,
    /// Isolation assertion pulses.
    pub isolation_pulses: u64,
    /// Picoseconds spent under isolation.
    pub isolation_ps: u64,
    /// Picoseconds spent reconfiguring.
    pub reconfiguring_ps: u64,
    /// ICAP backpressure events.
    pub backpressure_events: u64,
    /// External interrupts the CPU took.
    pub interrupts: u64,
    /// Frames displayed.
    pub frames: usize,
    /// Per-region swap counts (portal statistics), in region order.
    /// All zero when the backend models no portals (VMUX).
    pub region_swaps: Vec<u64>,
    /// Per-region isolation pulses, in region order.
    pub region_isolation_pulses: Vec<u64>,
}

impl CoverageProbes {
    /// Install probes on a freshly built system (before running it).
    pub fn install(sys: &mut AvSystem) -> CoverageProbes {
        let isolation = probe_high_time(
            &mut sys.sim,
            "cov.isolate",
            Probe::<Lv>::new(sys.probes.isolate),
        );
        let injection = sys
            .probes
            .inject
            .map(|s| probe_high_time(&mut sys.sim, "cov.inject", Probe::<Lv>::new(s)));
        let reconfiguring = sys
            .probes
            .reconfiguring
            .map(|s| probe_high_time(&mut sys.sim, "cov.reconf", Probe::<Lv>::new(s)));
        let regions = sys.probes.regions.clone();
        let region_isolation = regions
            .iter()
            .enumerate()
            .map(|(i, r)| {
                probe_high_time(
                    &mut sys.sim,
                    &format!("cov.isolate{i}"),
                    Probe::<Lv>::new(r.isolate),
                )
            })
            .collect();
        CoverageProbes {
            isolation,
            region_isolation,
            injection,
            reconfiguring,
        }
    }

    /// Gather the record after the run.
    pub fn collect(&self, sys: &AvSystem) -> DprCoverage {
        let stats = sys.backend_stats();
        let icap = stats.icap.as_ref();
        DprCoverage {
            swaps: icap.map(|i| i.swaps).unwrap_or(0),
            desyncs: icap.map(|i| i.desyncs).unwrap_or(0),
            injection_windows: self
                .injection
                .as_ref()
                .map(|p| p.borrow().pulses)
                .unwrap_or(0),
            isolation_pulses: self.isolation.borrow().pulses,
            isolation_ps: self.isolation.borrow().total_ps,
            reconfiguring_ps: self
                .reconfiguring
                .as_ref()
                .map(|p| p.borrow().total_ps)
                .unwrap_or(0),
            backpressure_events: icap.map(|i| i.backpressure_events).unwrap_or(0),
            interrupts: sys.cpu.borrow().interrupts,
            frames: sys.captured.borrow().len(),
            region_swaps: stats.regions.iter().map(|r| r.swaps).collect(),
            region_isolation_pulses: self
                .region_isolation
                .iter()
                .map(|p| p.borrow().pulses)
                .collect(),
        }
    }
}

impl DprCoverage {
    /// Coverage points expected of a clean multi-frame run, with which
    /// ones this record leaves unexercised.
    pub fn holes(&self) -> Vec<&'static str> {
        let mut holes = Vec::new();
        if self.swaps < 2 {
            holes.push("module swapped in both directions");
        }
        if self.desyncs == 0 || self.desyncs != self.swaps {
            holes.push("every transfer completed (SYNC..DESYNC)");
        }
        if self.injection_windows == 0 {
            holes.push("error injection exercised");
        }
        if self.isolation_pulses == 0 {
            holes.push("isolation control exercised");
        }
        if self.isolation_ps < self.reconfiguring_ps / 2 {
            holes.push("isolation covering reconfiguration");
        }
        if self.backpressure_events == 0 {
            holes.push("ICAP backpressure exercised");
        }
        if self.interrupts == 0 {
            holes.push("interrupt-driven sequencing exercised");
        }
        if self.frames == 0 {
            holes.push("end-to-end frame delivery");
        }
        holes
    }

    /// Fraction of the DPR coverage points hit (0..=1).
    pub fn score(&self) -> f64 {
        let total = 8.0;
        (total - self.holes().len() as f64) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autovision::{SimMethod, SystemConfig};

    fn run(method: SimMethod) -> DprCoverage {
        let mut sys = AvSystem::build(SystemConfig {
            method,
            width: 32,
            height: 24,
            n_frames: 2,
            payload_words: 256,
            ..Default::default()
        });
        let probes = CoverageProbes::install(&mut sys);
        let out = sys.run(1_000_000);
        assert!(!out.hung);
        probes.collect(&sys)
    }

    #[test]
    fn resim_covers_every_dpr_point() {
        let cov = run(SimMethod::Resim);
        assert!(
            cov.holes().is_empty(),
            "holes: {:?} in {:?}",
            cov.holes(),
            cov
        );
        assert_eq!(cov.score(), 1.0);
        assert_eq!(cov.swaps, 4);
        assert_eq!(cov.desyncs, 4);
        assert_eq!(cov.injection_windows, 4);
    }

    #[test]
    fn split_pipeline_covers_every_region() {
        let mut sys = AvSystem::build(SystemConfig {
            method: SimMethod::Resim,
            width: 32,
            height: 24,
            n_frames: 2,
            payload_words: 256,
            regions: SystemConfig::split_regions(),
            ..Default::default()
        });
        let probes = CoverageProbes::install(&mut sys);
        let out = sys.run(2_000_000);
        assert!(!out.hung);
        let cov = probes.collect(&sys);
        // One reload per region per frame, each behind that region's own
        // isolation window.
        assert_eq!(cov.region_swaps, vec![2, 2], "{cov:?}");
        assert_eq!(cov.region_isolation_pulses, vec![2, 2], "{cov:?}");
        assert_eq!(cov.swaps, 4);
        assert_eq!(cov.desyncs, 4);
        assert_eq!(cov.frames, 2);
    }

    #[test]
    fn vmux_leaves_the_bitstream_coverage_holes() {
        let cov = run(SimMethod::Vmux);
        let holes = cov.holes();
        // The quantified version of the paper's critique: no bitstream
        // traffic, no injection, no isolation test, no ICAP exercise.
        for expected in [
            "module swapped in both directions",
            "error injection exercised",
            "isolation control exercised",
            "ICAP backpressure exercised",
        ] {
            assert!(
                holes.contains(&expected),
                "missing hole '{expected}': {holes:?}"
            );
        }
        // But the functional pipeline itself still runs.
        assert_eq!(cov.frames, 2);
        assert!(cov.interrupts > 0);
        assert!(cov.score() < 0.7);
    }
}
