//! The campaign wire schemas — the one place `campaign_submit/v1`
//! documents and `campaign_report/v1` rows are defined.
//!
//! The in-process [`Campaign`] API, the `verifd` daemon and the
//! `verifctl` client all serialize through this module, so a row
//! streamed over a socket is byte-identical to the same row rendered
//! from an in-process run — the determinism contract the service
//! inherits from the executor. Submissions reuse the shapes the repo
//! already ships: scenarios mirror [`Scenario`]'s variants, and fuzz
//! scenarios carry their schedule in the `fuzz_repro/v2` knob encoding
//! (`warmup_cycles`, `flip_beat`/`flip_bit`, `exec_mode`, ...).
//!
//! Both directions are schema-checked: [`CampaignSubmission::from_json`]
//! and [`report_from_json`] reject any document whose `schema` member is
//! not the version this build speaks.
//!
//! # Examples
//!
//! A submission round-trips through its JSON document:
//!
//! ```
//! use verif::wire::CampaignSubmission;
//! use verif::Scenario;
//!
//! let sub = CampaignSubmission {
//!     scenarios: vec![Scenario::Clean, Scenario::SplitClean],
//!     budget_cycles: 200_000,
//!     ..Default::default()
//! };
//! let doc = sub.to_json();
//! assert!(doc.contains("\"schema\": \"campaign_submit/v1\""));
//! assert_eq!(CampaignSubmission::from_json(&doc).unwrap(), sub);
//! assert_eq!(sub.to_campaign().scenarios().len(), 2);
//! ```
//!
//! Unknown schema versions are rejected, not guessed at:
//!
//! ```
//! use verif::wire::CampaignSubmission;
//!
//! let err = CampaignSubmission::from_json(
//!     "{\"schema\": \"campaign_submit/v99\", \"scenarios\": []}",
//! )
//! .unwrap_err();
//! assert!(err.contains("campaign_submit/v1"), "{err}");
//! ```
//!
//! A report document parses back into typed rows and re-renders
//! byte-identically:
//!
//! ```
//! use verif::wire::{report_from_json, report_to_json};
//! use verif::{Campaign, Scenario};
//!
//! let report = Campaign::builder()
//!     .threads(1)
//!     .scenario(Scenario::Clean)
//!     .build()
//!     .run();
//! let doc = report_to_json(&report);
//! let parsed = report_from_json(&doc).unwrap();
//! assert_eq!(parsed.rows.len(), 1);
//! assert_eq!(parsed.to_json(), doc);
//! ```

use crate::executor::{
    Campaign, CampaignReport, CampaignRow, RecoverySpec, Scenario, ScenarioOutcome,
};
use crate::fuzz::{FuzzSchedule, FuzzSpec, FuzzTopology};
use autovision::Bug;
use obs::json::{escape, Json};
use rtlsim::ExecMode;

/// Schema tag of a campaign submission document.
pub const CAMPAIGN_SUBMIT_SCHEMA: &str = "campaign_submit/v1";
/// Schema tag of a campaign report document (and, per row, the schema
/// the daemon stamps on streamed row frames).
pub const CAMPAIGN_REPORT_SCHEMA: &str = "campaign_report/v1";

fn schema_check(v: &Json, want: &str) -> Result<(), String> {
    match v.get("schema").and_then(Json::as_str) {
        Some(got) if got == want => Ok(()),
        Some(got) => Err(format!(
            "unsupported schema \"{got}\" (this build speaks {want})"
        )),
        None => Err(format!("document has no schema member (expected {want})")),
    }
}

fn str_of(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string key {key}"))
}

fn u64_of(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer key {key}"))
}

fn bool_of(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-bool key {key}"))
}

fn opt_u32_of(v: &Json, key: &str) -> Result<Option<u32>, String> {
    match v.get(key) {
        None => Err(format!("missing key {key}")),
        Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(|x| Some(x as u32))
            .ok_or_else(|| format!("non-integer key {key}")),
    }
}

fn opt_str_of(v: &Json, key: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Err(format!("missing key {key}")),
        Some(Json::Null) => Ok(None),
        Some(s) => s
            .as_str()
            .map(|x| Some(x.to_string()))
            .ok_or_else(|| format!("non-string key {key}")),
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// One scenario as a single-line JSON object (`{"kind": "clean"}`,
/// `{"kind": "bug", "bug": "bug.dpr.4"}`, ...). Fuzz scenarios carry
/// their schedule in the `fuzz_repro/v2` knob encoding.
pub fn scenario_to_json(s: &Scenario) -> String {
    let opt = |v: Option<u32>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
    match s {
        Scenario::Clean => "{\"kind\": \"clean\"}".to_string(),
        Scenario::Bug(b) => format!("{{\"kind\": \"bug\", \"bug\": \"{}\"}}", b.id()),
        Scenario::SplitClean => "{\"kind\": \"split_clean\"}".to_string(),
        Scenario::Recovery(spec) => format!(
            "{{\"kind\": \"recovery\", \"fault\": \"{}\", \"seed\": {}, \"recovery_on\": {}}}",
            spec.fault.id(),
            spec.seed,
            spec.recovery_on
        ),
        Scenario::Fuzz(spec) => {
            let s = &spec.schedule;
            let (beat, bit) = match s.flip {
                Some((beat, bit)) => (Some(beat), Some(bit)),
                None => (None, None),
            };
            format!(
                "{{\"kind\": \"fuzz\", \"id\": {}, \"warmup_cycles\": {}, \"isr_pad_loops\": {}, \
                 \"cfg_divider\": {}, \"mem_wait_states\": {}, \"fixed_wait_loops\": {}, \
                 \"round_robin\": {}, \"split_topology\": {}, \"recovery_on\": {}, \
                 \"flip_beat\": {}, \"flip_bit\": {}, \"stall\": {}, \"bus_errors\": {}, \
                 \"ready_drop\": {}, \"exec_mode\": \"{}\"}}",
                spec.id,
                s.warmup_cycles,
                s.isr_pad_loops,
                s.cfg_divider,
                s.mem_wait_states,
                s.fixed_wait_loops,
                s.round_robin,
                s.topology == FuzzTopology::Split,
                s.recovery_on,
                opt(beat),
                opt(bit),
                opt(s.stall),
                s.bus_errors,
                opt(s.ready_drop),
                s.exec_mode.as_str(),
            )
        }
    }
}

/// Parse one scenario object (the inverse of [`scenario_to_json`]).
pub fn scenario_from_json(v: &Json) -> Result<Scenario, String> {
    let kind = str_of(v, "kind")?;
    match kind.as_str() {
        "clean" => Ok(Scenario::Clean),
        "split_clean" => Ok(Scenario::SplitClean),
        "bug" => {
            let id = str_of(v, "bug")?;
            let bug = Bug::from_id(&id).ok_or_else(|| format!("unknown bug id \"{id}\""))?;
            Ok(Scenario::Bug(bug))
        }
        "recovery" => {
            let id = str_of(v, "fault")?;
            let fault = Bug::from_id(&id).ok_or_else(|| format!("unknown fault id \"{id}\""))?;
            if !Bug::TRANSIENTS.contains(&fault) {
                return Err(format!("\"{id}\" is not a transient fault"));
            }
            Ok(Scenario::Recovery(RecoverySpec {
                fault,
                seed: u64_of(v, "seed")?,
                recovery_on: bool_of(v, "recovery_on")?,
            }))
        }
        "fuzz" => {
            let flip = match (opt_u32_of(v, "flip_beat")?, opt_u32_of(v, "flip_bit")?) {
                (Some(beat), Some(bit)) => Some((beat, bit)),
                (None, None) => None,
                _ => return Err("flip_beat/flip_bit must both be set or both null".to_string()),
            };
            Ok(Scenario::Fuzz(FuzzSpec {
                id: u64_of(v, "id")? as u32,
                schedule: FuzzSchedule {
                    warmup_cycles: u64_of(v, "warmup_cycles")? as u32,
                    isr_pad_loops: u64_of(v, "isr_pad_loops")? as u32,
                    cfg_divider: u64_of(v, "cfg_divider")? as u32,
                    mem_wait_states: u64_of(v, "mem_wait_states")? as u32,
                    fixed_wait_loops: u64_of(v, "fixed_wait_loops")? as u32,
                    round_robin: bool_of(v, "round_robin")?,
                    topology: if bool_of(v, "split_topology")? {
                        FuzzTopology::Split
                    } else {
                        FuzzTopology::Single
                    },
                    recovery_on: bool_of(v, "recovery_on")?,
                    flip,
                    stall: opt_u32_of(v, "stall")?,
                    bus_errors: u64_of(v, "bus_errors")? as u32,
                    ready_drop: opt_u32_of(v, "ready_drop")?,
                    exec_mode: str_of(v, "exec_mode")?
                        .parse::<ExecMode>()
                        .map_err(|e| format!("key exec_mode: {e}"))?,
                },
            }))
        }
        other => Err(format!("unknown scenario kind \"{other}\"")),
    }
}

// ---------------------------------------------------------------------
// Submissions
// ---------------------------------------------------------------------

/// One `campaign_submit/v1` document: an explicit scenario list plus
/// the executor knobs a client may set. Runs over the standard matrix
/// base configuration (32×24, two frames, 256-word SimB) — the base the
/// committed baselines pin. Thread count and scenario budget are
/// *requests*: the daemon may cap or override both, and by the
/// executor's determinism contract neither changes a single row.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSubmission {
    /// Explicit scenarios, in submission order.
    pub scenarios: Vec<Scenario>,
    /// Prepend the full detection matrix (clean + every catalogued bug).
    pub matrix: bool,
    /// Append a seeded transient-recovery batch of this many runs.
    pub recovery_runs: usize,
    /// Recovery-batch policy (ignored when `recovery_runs` is 0).
    pub recovery_on: bool,
    /// Master seed for the recovery batch expansion.
    pub seed: u64,
    /// Hang budget per run, in cycles.
    pub budget_cycles: u64,
    /// Requested worker threads (0 = executor default / daemon policy).
    pub threads: usize,
    /// Requested scenario budget (0 = executor default / daemon policy).
    pub scenario_budget: usize,
    /// Kernel execution mode for every scenario in the campaign.
    pub exec_mode: ExecMode,
}

impl Default for CampaignSubmission {
    fn default() -> Self {
        CampaignSubmission {
            scenarios: Vec::new(),
            matrix: false,
            recovery_runs: 0,
            recovery_on: true,
            seed: 0xFA_17,
            budget_cycles: 400_000,
            threads: 0,
            scenario_budget: 0,
            exec_mode: ExecMode::EventDriven,
        }
    }
}

impl CampaignSubmission {
    /// Serialize as a `campaign_submit/v1` document.
    pub fn to_json(&self) -> String {
        let scenarios: Vec<String> = self
            .scenarios
            .iter()
            .map(|s| format!("    {}", scenario_to_json(s)))
            .collect();
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"seed\": {},\n  \"budget_cycles\": {},\n  \
             \"threads\": {},\n  \"scenario_budget\": {},\n  \"exec_mode\": \"{}\",\n  \
             \"matrix\": {},\n  \"recovery_runs\": {},\n  \"recovery_on\": {},\n  \
             \"scenarios\": [\n{}\n  ]\n}}\n",
            CAMPAIGN_SUBMIT_SCHEMA,
            self.seed,
            self.budget_cycles,
            self.threads,
            self.scenario_budget,
            self.exec_mode.as_str(),
            self.matrix,
            self.recovery_runs,
            self.recovery_on,
            scenarios.join(",\n"),
        )
    }

    /// Parse a `campaign_submit/v1` document, rejecting any other
    /// schema version. Every executor knob is optional and defaults as
    /// [`CampaignSubmission::default`]; `scenarios` is required (an
    /// empty array is legal when `matrix` or `recovery_runs` supplies
    /// the work).
    pub fn from_json(doc: &str) -> Result<CampaignSubmission, String> {
        let v = Json::parse(doc)?;
        schema_check(&v, CAMPAIGN_SUBMIT_SCHEMA)?;
        let d = CampaignSubmission::default();
        let opt_u64 = |key: &str, d: u64| match v.get(key) {
            None => Ok(d),
            Some(n) => n.as_u64().ok_or_else(|| format!("non-integer key {key}")),
        };
        let opt_bool = |key: &str, d: bool| match v.get(key) {
            None => Ok(d),
            Some(b) => b.as_bool().ok_or_else(|| format!("non-bool key {key}")),
        };
        let scenarios = v
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("missing or non-array key scenarios")?
            .iter()
            .map(scenario_from_json)
            .collect::<Result<Vec<Scenario>, String>>()?;
        Ok(CampaignSubmission {
            scenarios,
            matrix: opt_bool("matrix", d.matrix)?,
            recovery_runs: opt_u64("recovery_runs", d.recovery_runs as u64)? as usize,
            recovery_on: opt_bool("recovery_on", d.recovery_on)?,
            seed: opt_u64("seed", d.seed)?,
            budget_cycles: opt_u64("budget_cycles", d.budget_cycles)?,
            threads: opt_u64("threads", d.threads as u64)? as usize,
            scenario_budget: opt_u64("scenario_budget", d.scenario_budget as u64)? as usize,
            exec_mode: match v.get("exec_mode") {
                None => d.exec_mode,
                Some(m) => m
                    .as_str()
                    .ok_or("non-string key exec_mode")?
                    .parse::<ExecMode>()
                    .map_err(|e| format!("key exec_mode: {e}"))?,
            },
        })
    }

    /// The fully planned campaign this submission describes: the matrix
    /// (when requested), then the explicit scenarios, then the seeded
    /// recovery batch. A zero thread/budget request keeps the executor
    /// defaults; callers (the daemon) may override both afterwards via
    /// [`Campaign::builder`]-style re-planning without changing rows.
    pub fn to_campaign(&self) -> Campaign {
        self.plan(self.threads, self.scenario_budget)
    }

    /// [`CampaignSubmission::to_campaign`] with the executor knobs the
    /// serving side actually grants (0 keeps the executor default).
    pub fn plan(&self, threads: usize, scenario_budget: usize) -> Campaign {
        let mut b = Campaign::builder()
            .seed(self.seed)
            .budget_cycles(self.budget_cycles)
            .exec_mode(self.exec_mode)
            .scenario_budget(scenario_budget);
        if threads > 0 {
            b = b.threads(threads);
        }
        if self.matrix {
            b = b.matrix();
        }
        b = b.scenarios(self.scenarios.iter().copied());
        if self.recovery_runs > 0 {
            b = b.recovery_campaign(self.recovery_runs, self.recovery_on);
        }
        b.build()
    }
}

// ---------------------------------------------------------------------
// Report rows
// ---------------------------------------------------------------------

/// One parsed `campaign_report/v1` row — the wire-visible projection of
/// a [`CampaignRow`] (full in-process rows carry more: expectations,
/// frame counts, whole coverage maps).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// Submission index.
    pub index: usize,
    /// The scenario, `Debug`-rendered.
    pub scenario: String,
    /// The outcome fields the schema carries.
    pub outcome: WireOutcome,
}

/// The per-kind payload of a [`WireRow`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum WireOutcome {
    Matrix {
        bug: String,
        vmux_detected: bool,
        resim_detected: bool,
        evidence: String,
    },
    Recovery {
        fault: String,
        fired: bool,
        class: String,
        retries: u64,
    },
    Fuzz {
        detected: bool,
        signature: Option<String>,
        kernel_error: Option<String>,
        coverage_keys: usize,
        evidence: Vec<String>,
    },
    Failed {
        panic: String,
    },
    TimedOut,
    Cancelled,
}

/// Project an executor row onto its wire shape.
pub fn wire_row(row: &CampaignRow) -> WireRow {
    let outcome = match &row.outcome {
        ScenarioOutcome::Matrix(m) => WireOutcome::Matrix {
            bug: m.bug.clone(),
            vmux_detected: m.vmux_detected,
            resim_detected: m.resim_detected,
            evidence: m.evidence.clone(),
        },
        ScenarioOutcome::Recovery(rr) => WireOutcome::Recovery {
            fault: rr.fault.id().to_string(),
            fired: rr.fired,
            class: format!("{:?}", rr.class),
            retries: rr.retries,
        },
        ScenarioOutcome::Fuzz(f) => WireOutcome::Fuzz {
            detected: f.detected,
            signature: f.signature.clone(),
            kernel_error: f.kernel_error.clone(),
            coverage_keys: f.coverage.len(),
            evidence: f.evidence.iter().map(|e| format!("{e:?}")).collect(),
        },
        ScenarioOutcome::Failed { panic } => WireOutcome::Failed {
            panic: panic.clone(),
        },
        ScenarioOutcome::TimedOut => WireOutcome::TimedOut,
        ScenarioOutcome::Cancelled => WireOutcome::Cancelled,
    };
    WireRow {
        index: row.index,
        scenario: format!("{:?}", row.scenario),
        outcome,
    }
}

/// One executor row as its single-line wire JSON object — what the
/// daemon streams and what [`report_to_json`] embeds per row. The
/// byte-identity contract hangs off this function being the only
/// renderer.
pub fn row_to_json(row: &CampaignRow) -> String {
    wire_row(row).to_json()
}

impl WireRow {
    /// The row as its single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"index\": {}", self.index),
            format!("\"scenario\": \"{}\"", escape(&self.scenario)),
        ];
        let opt_str = |key: &str, v: &Option<String>| match v {
            Some(s) => format!("\"{key}\": \"{}\"", escape(s)),
            None => format!("\"{key}\": null"),
        };
        match &self.outcome {
            WireOutcome::Matrix {
                bug,
                vmux_detected,
                resim_detected,
                evidence,
            } => {
                fields.push("\"kind\": \"matrix\"".to_string());
                fields.push(format!("\"bug\": \"{}\"", escape(bug)));
                fields.push(format!("\"vmux_detected\": {vmux_detected}"));
                fields.push(format!("\"resim_detected\": {resim_detected}"));
                fields.push(format!("\"evidence\": \"{}\"", escape(evidence)));
            }
            WireOutcome::Recovery {
                fault,
                fired,
                class,
                retries,
            } => {
                fields.push("\"kind\": \"recovery\"".to_string());
                fields.push(format!("\"fault\": \"{}\"", escape(fault)));
                fields.push(format!("\"fired\": {fired}"));
                fields.push(format!("\"class\": \"{}\"", escape(class)));
                fields.push(format!("\"retries\": {retries}"));
            }
            WireOutcome::Fuzz {
                detected,
                signature,
                kernel_error,
                coverage_keys,
                evidence,
            } => {
                let items: Vec<String> = evidence
                    .iter()
                    .map(|e| format!("\"{}\"", escape(e)))
                    .collect();
                fields.push("\"kind\": \"fuzz\"".to_string());
                fields.push(format!("\"detected\": {detected}"));
                fields.push(opt_str("signature", signature));
                fields.push(opt_str("kernel_error", kernel_error));
                fields.push(format!("\"coverage_keys\": {coverage_keys}"));
                fields.push(format!("\"evidence\": [{}]", items.join(", ")));
            }
            WireOutcome::Failed { panic } => {
                fields.push("\"kind\": \"failed\"".to_string());
                fields.push(format!("\"panic\": \"{}\"", escape(panic)));
            }
            WireOutcome::TimedOut => {
                fields.push("\"kind\": \"timed_out\"".to_string());
            }
            WireOutcome::Cancelled => {
                fields.push("\"kind\": \"cancelled\"".to_string());
            }
        }
        format!("{{{}}}", fields.join(", "))
    }

    /// Parse one row from its parsed JSON object.
    pub fn from_value(v: &Json) -> Result<WireRow, String> {
        let kind = str_of(v, "kind")?;
        let outcome = match kind.as_str() {
            "matrix" => WireOutcome::Matrix {
                bug: str_of(v, "bug")?,
                vmux_detected: bool_of(v, "vmux_detected")?,
                resim_detected: bool_of(v, "resim_detected")?,
                evidence: str_of(v, "evidence")?,
            },
            "recovery" => WireOutcome::Recovery {
                fault: str_of(v, "fault")?,
                fired: bool_of(v, "fired")?,
                class: str_of(v, "class")?,
                retries: u64_of(v, "retries")?,
            },
            "fuzz" => WireOutcome::Fuzz {
                detected: bool_of(v, "detected")?,
                signature: opt_str_of(v, "signature")?,
                kernel_error: opt_str_of(v, "kernel_error")?,
                coverage_keys: u64_of(v, "coverage_keys")? as usize,
                evidence: v
                    .get("evidence")
                    .and_then(Json::as_array)
                    .ok_or("missing or non-array key evidence")?
                    .iter()
                    .map(|e| {
                        e.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "non-string evidence item".to_string())
                    })
                    .collect::<Result<Vec<String>, String>>()?,
            },
            "failed" => WireOutcome::Failed {
                panic: str_of(v, "panic")?,
            },
            "timed_out" => WireOutcome::TimedOut,
            "cancelled" => WireOutcome::Cancelled,
            other => return Err(format!("unknown row kind \"{other}\"")),
        };
        Ok(WireRow {
            index: u64_of(v, "index")? as usize,
            scenario: str_of(v, "scenario")?,
            outcome,
        })
    }

    /// Parse one row from its JSON text.
    pub fn from_json(doc: &str) -> Result<WireRow, String> {
        WireRow::from_value(&Json::parse(doc)?)
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// A parsed `campaign_report/v1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// The rows, in submission order.
    pub rows: Vec<WireRow>,
    /// `stats.scenarios` of the producing run.
    pub scenarios: usize,
    /// `stats.workers` of the producing run.
    pub workers: usize,
}

impl WireReport {
    /// Re-render the document — byte-identical to the [`report_to_json`]
    /// output it was parsed from.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"schema\": \"{CAMPAIGN_REPORT_SCHEMA}\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                r.to_json(),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"stats\": {{\"scenarios\": {}, \"workers\": {}}}\n}}\n",
            self.scenarios, self.workers
        ));
        out
    }
}

/// Render a full report as its `campaign_report/v1` document: one
/// object per row carrying the scenario, the outcome kind, and — so
/// failures are diagnosable without rerunning — the panic payload, the
/// kernel-error text and the evidence strings. Stats are
/// wall-clock-dependent and deliberately reduced to scenario/worker
/// counts.
pub fn report_to_json(report: &CampaignReport) -> String {
    WireReport {
        rows: report.rows.iter().map(wire_row).collect(),
        scenarios: report.stats.scenarios,
        workers: report.stats.workers.len(),
    }
    .to_json()
}

/// Parse a `campaign_report/v1` document, rejecting any other schema
/// version.
pub fn report_from_json(doc: &str) -> Result<WireReport, String> {
    let v = Json::parse(doc)?;
    schema_check(&v, CAMPAIGN_REPORT_SCHEMA)?;
    let rows = v
        .get("rows")
        .and_then(Json::as_array)
        .ok_or("missing or non-array key rows")?
        .iter()
        .map(WireRow::from_value)
        .collect::<Result<Vec<WireRow>, String>>()?;
    let stats = v.get("stats").ok_or("missing key stats")?;
    Ok(WireReport {
        rows,
        scenarios: u64_of(stats, "scenarios")? as usize,
        workers: u64_of(stats, "workers")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Schedule;

    fn mixed_submission() -> CampaignSubmission {
        CampaignSubmission {
            scenarios: vec![
                Scenario::Clean,
                Scenario::Bug(Bug::Dpr4P2pOnSharedBus),
                Scenario::SplitClean,
                Scenario::Recovery(RecoverySpec {
                    fault: Bug::TransientBusError,
                    seed: 77,
                    recovery_on: true,
                }),
                Scenario::Fuzz(FuzzSpec {
                    id: 9,
                    schedule: FuzzSchedule {
                        warmup_cycles: 128,
                        flip: Some((3, 17)),
                        stall: None,
                        exec_mode: ExecMode::Compiled,
                        ..FuzzSchedule::baseline(&autovision::SystemConfig::default())
                    },
                }),
            ],
            matrix: false,
            recovery_runs: 2,
            recovery_on: false,
            seed: 0xDEAD_BEEF_0000_0001,
            budget_cycles: 123_456,
            threads: 3,
            scenario_budget: 5,
            exec_mode: ExecMode::Auto,
        }
    }

    #[test]
    fn submission_roundtrips_every_scenario_kind() {
        let sub = mixed_submission();
        let doc = sub.to_json();
        let parsed = CampaignSubmission::from_json(&doc).expect("parse back");
        assert_eq!(parsed, sub);
        // And the second render is byte-identical.
        assert_eq!(parsed.to_json(), doc);
    }

    #[test]
    fn submission_defaults_fill_missing_members() {
        let parsed = CampaignSubmission::from_json(
            "{\"schema\": \"campaign_submit/v1\", \"scenarios\": [{\"kind\": \"clean\"}]}",
        )
        .expect("minimal doc parses");
        assert_eq!(parsed.scenarios, vec![Scenario::Clean]);
        assert_eq!(parsed.budget_cycles, 400_000);
        assert_eq!(parsed.exec_mode, ExecMode::EventDriven);
        assert_eq!(parsed.threads, 0);
    }

    #[test]
    fn submission_rejects_wrong_schema_and_bad_scenarios() {
        assert!(CampaignSubmission::from_json("{\"scenarios\": []}")
            .unwrap_err()
            .contains("no schema"));
        assert!(CampaignSubmission::from_json(
            "{\"schema\": \"campaign_submit/v2\", \"scenarios\": []}"
        )
        .unwrap_err()
        .contains("unsupported schema"));
        for bad in [
            "{\"kind\": \"bug\", \"bug\": \"bug.zz.1\"}",
            "{\"kind\": \"recovery\", \"fault\": \"bug.hw.1\", \"seed\": 1, \"recovery_on\": true}",
            "{\"kind\": \"wat\"}",
        ] {
            let doc = format!("{{\"schema\": \"campaign_submit/v1\", \"scenarios\": [{bad}]}}");
            assert!(
                CampaignSubmission::from_json(&doc).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn submission_expands_matrix_and_recovery_batches_like_the_builder() {
        let sub = CampaignSubmission {
            matrix: true,
            recovery_runs: 4,
            recovery_on: true,
            seed: 0xFA_17,
            ..Default::default()
        };
        let campaign = sub.to_campaign();
        let want = Campaign::builder()
            .seed(0xFA_17)
            .matrix()
            .recovery_campaign(4, true)
            .build();
        assert_eq!(campaign.scenarios(), want.scenarios());
    }

    #[test]
    fn report_roundtrip_is_byte_identical_including_failures() {
        let report = Campaign::builder()
            .threads(2)
            .schedule(Schedule::WorkStealing)
            .scenario(Scenario::Clean)
            .scenario(Scenario::Recovery(RecoverySpec {
                // A non-transient fault panics the runner: exercises the
                // failed-row JSON path with an escaped panic payload.
                fault: Bug::Hw1MemBurstWrap,
                seed: 1,
                recovery_on: true,
            }))
            .build()
            .run();
        let doc = report_to_json(&report);
        assert_eq!(doc, report.to_json(), "method must delegate to wire");
        let parsed = report_from_json(&doc).expect("parse back");
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.to_json(), doc, "re-render must be byte-identical");
        assert!(matches!(parsed.rows[1].outcome, WireOutcome::Failed { .. }));
    }

    #[test]
    fn report_rejects_wrong_schema() {
        let err =
            report_from_json("{\"schema\": \"campaign_report/v9\", \"rows\": []}").unwrap_err();
        assert!(err.contains("campaign_report/v1"), "{err}");
    }

    #[test]
    fn streamed_row_equals_embedded_report_row() {
        let report = Campaign::builder()
            .threads(1)
            .scenario(Scenario::Clean)
            .build()
            .run();
        let row_line = row_to_json(&report.rows[0]);
        assert!(report.to_json().contains(&format!("    {row_line}\n")));
    }
}
