//! Running one verification experiment and classifying the outcome.
//!
//! A run is *detected* when any automated oracle fires: a checker/monitor
//! error, a scoreboard mismatch against the golden pipeline model,
//! X-poisoned display output, a CPU fault, or a hang (the frame pipeline
//! failing to deliver within the cycle budget). These are exactly the
//! signals a verification engineer watches in a regression; the paper's
//! bugs were found the same way (wrong pixels, stuck pipelines, protocol
//! violations in the waveform).

use autovision::{ArtifactCache, AvSystem, RunOutcome, SystemConfig};

/// One piece of evidence that a run misbehaved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// A kernel error diagnostic (protocol monitor, ICAP artifact, DCR
    /// master, engine checker...).
    CheckerError {
        /// Reporting component.
        component: String,
        /// Message text.
        text: String,
    },
    /// A displayed frame differs from the golden prediction.
    OutputMismatch {
        /// Frame index.
        frame: usize,
        /// Number of differing pixels.
        pixels: usize,
    },
    /// Display output contained X-poisoned words.
    PoisonedOutput {
        /// Frame index.
        frame: usize,
        /// Poisoned 32-bit words.
        words: usize,
    },
    /// Fewer frames than expected within the cycle budget.
    Hang {
        /// Frames that did arrive.
        frames_captured: usize,
        /// Frames expected.
        frames_expected: usize,
    },
    /// The CPU stopped on an architectural error.
    CpuError {
        /// The error text.
        text: String,
    },
    /// The simulation kernel itself failed (delta-cycle oscillation and
    /// friends) before the run could finish. Appended *after* every
    /// other oracle so the first-evidence strings of existing reports
    /// are unchanged.
    KernelError {
        /// The kernel error, rendered.
        text: String,
    },
}

/// The classified outcome of one experiment.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Did any oracle fire?
    pub detected: bool,
    /// Everything that fired.
    pub evidence: Vec<Evidence>,
    /// Clock cycles the run consumed.
    pub cycles: u64,
    /// Frames the display captured.
    pub frames: usize,
    /// Simulated time in nanoseconds.
    pub simulated_ns: u64,
    /// The kernel error text, when the kernel itself failed — also
    /// present as the trailing [`Evidence::KernelError`], surfaced here
    /// separately so reports can show it without walking the evidence.
    pub kernel_error: Option<String>,
}

/// Build the configured system, run it to completion or budget, and
/// classify. `budget_cycles` bounds hang detection.
pub fn run_experiment(cfg: SystemConfig, budget_cycles: u64) -> Verdict {
    run_inner(cfg, budget_cycles, None, None)
}

/// [`run_experiment`] sourcing pure setup artifacts (SimB streams,
/// software image, golden scene) from a shared cache. The verdict is
/// bit-identical to the uncached path; campaigns use this so N
/// scenarios stop re-deriving the same data.
pub fn run_experiment_with(
    cfg: SystemConfig,
    budget_cycles: u64,
    artifacts: &ArtifactCache,
) -> Verdict {
    run_inner(cfg, budget_cycles, Some(artifacts), None)
}

/// [`run_experiment_with`] under a wall-clock deadline. When the
/// deadline expires mid-run the function panics with the executor's
/// [`crate::executor::ScenarioTimeout`] marker, which the campaign
/// pool's panic isolation turns into a typed `TimedOut` row — callers
/// outside a `catch_unwind` should pass `None`.
pub fn run_experiment_deadline(
    cfg: SystemConfig,
    budget_cycles: u64,
    artifacts: Option<&ArtifactCache>,
    deadline: Option<std::time::Instant>,
) -> Verdict {
    run_inner(cfg, budget_cycles, artifacts, deadline)
}

/// Classify a finished run against every oracle. Shared by the one-shot
/// experiment paths and the schedule fuzzer (which builds and runs its
/// own system so it can arm faults and collect the trace).
pub fn classify(sys: &AvSystem, outcome: &RunOutcome, n_frames: usize) -> Verdict {
    let mut evidence = Vec::new();

    for m in sys.sim.messages() {
        if m.severity == rtlsim::Severity::Error {
            evidence.push(Evidence::CheckerError {
                component: m.component.to_string(),
                text: m.text.clone(),
            });
        }
    }
    if let Some(err) = &sys.cpu.borrow().error {
        evidence.push(Evidence::CpuError { text: err.clone() });
    }
    if outcome.frames_captured < n_frames {
        evidence.push(Evidence::Hang {
            frames_captured: outcome.frames_captured,
            frames_expected: n_frames,
        });
    }
    let golden = sys.golden_output();
    for (i, (got, want)) in sys.captured.borrow().iter().zip(&golden).enumerate() {
        let pixels = got.differing_pixels(want);
        if pixels > 0 {
            evidence.push(Evidence::OutputMismatch { frame: i, pixels });
        }
    }
    for (i, words) in sys.captured_poison.borrow().iter().enumerate() {
        if *words > 0 {
            evidence.push(Evidence::PoisonedOutput {
                frame: i,
                words: *words,
            });
        }
    }
    let kernel_error = outcome.kernel_error.as_ref().map(|e| format!("{e:?}"));
    if let Some(text) = &kernel_error {
        evidence.push(Evidence::KernelError { text: text.clone() });
    }

    // Keep evidence lists readable: checker errors can number in the
    // hundreds for an X storm.
    const MAX_EVIDENCE: usize = 16;
    let detected = !evidence.is_empty();
    evidence.truncate(MAX_EVIDENCE);
    Verdict {
        detected,
        evidence,
        cycles: outcome.cycles,
        frames: outcome.frames_captured,
        simulated_ns: sys.sim.now() / 1_000,
        kernel_error,
    }
}

fn run_inner(
    cfg: SystemConfig,
    budget_cycles: u64,
    artifacts: Option<&ArtifactCache>,
    deadline: Option<std::time::Instant>,
) -> Verdict {
    let n_frames = cfg.n_frames;
    let mut sys = match artifacts {
        Some(a) => AvSystem::build_with(cfg, a),
        None => AvSystem::build(cfg),
    };
    let outcome = sys.run_with_deadline(budget_cycles, deadline);
    if outcome.deadline_hit {
        std::panic::panic_any(crate::executor::ScenarioTimeout);
    }
    tally_compiled(&sys);
    classify(&sys, &outcome, n_frames)
}

/// Process-wide tally of compiled-plane activity, accumulated by every
/// experiment whose simulator built a compiled plan. Long-lived servers
/// (`verifd`) scrape this into their metrics snapshot; per-run
/// [`rtlsim::CompiledStats`] die with the simulator, so an aggregate is
/// the only way a service can report compiled-mode behaviour across
/// submissions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompiledTally {
    /// Experiments that ran with a compiled plan.
    pub plans: u64,
    /// Wall-clock nanoseconds spent building plans.
    pub compile_nanos: u64,
    /// Time points executed with filtered steady-state dispatch.
    pub steady_points: u64,
    /// Time points executed in the dirty-window fallback.
    pub fallback_points: u64,
    /// Parked components woken by a watched-signal change.
    pub signal_wakes: u64,
    /// Dispatches skipped because the component was parked.
    pub skipped_parked: u64,
}

static TALLY_PLANS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TALLY_COMPILE_NANOS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TALLY_STEADY: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TALLY_FALLBACK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TALLY_WAKES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static TALLY_PARKED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Fold a finished system's compiled-plane statistics into the
/// process-wide tally (no-op for event-driven runs). Called by the
/// experiment paths here and by the fuzzer's self-built runs.
pub(crate) fn tally_compiled(sys: &AvSystem) {
    use std::sync::atomic::Ordering::Relaxed;
    if let Some(cs) = sys.sim.compiled_stats() {
        TALLY_PLANS.fetch_add(1, Relaxed);
        TALLY_COMPILE_NANOS.fetch_add(cs.compile_nanos, Relaxed);
        TALLY_STEADY.fetch_add(cs.steady_points, Relaxed);
        TALLY_FALLBACK.fetch_add(cs.fallback_points, Relaxed);
        TALLY_WAKES.fetch_add(cs.signal_wakes, Relaxed);
        TALLY_PARKED.fetch_add(cs.skipped_parked, Relaxed);
    }
}

/// The current process-wide compiled-plane tally.
pub fn compiled_tally() -> CompiledTally {
    use std::sync::atomic::Ordering::Relaxed;
    CompiledTally {
        plans: TALLY_PLANS.load(Relaxed),
        compile_nanos: TALLY_COMPILE_NANOS.load(Relaxed),
        steady_points: TALLY_STEADY.load(Relaxed),
        fallback_points: TALLY_FALLBACK.load(Relaxed),
        signal_wakes: TALLY_WAKES.load(Relaxed),
        skipped_parked: TALLY_PARKED.load(Relaxed),
    }
}
