//! The campaign execution plane: a work-stealing scenario pool behind
//! one unified [`Scenario`] / [`Campaign`] API.
//!
//! The matrix (`Table III`) and the recovery campaign used to hand-roll
//! their own `i % threads` round-robin fan-outs, so one slow scenario —
//! a watchdog-timeout run burning its whole cycle budget — stalled its
//! shard while other workers sat idle. This module replaces both with a
//! single executor:
//!
//! * **per-worker deques + a global injector** — workers drain their own
//!   deque front-to-back, refill from the injector in chunks, and when
//!   both run dry steal a chunk from the front of the fullest peer;
//! * **deterministic aggregation** — results are keyed by scenario
//!   index and delivered in submission order, so the report is
//!   byte-identical for any thread count or steal schedule (each
//!   scenario builds its own single-threaded simulator; nothing leaks
//!   between runs);
//! * **bounded in-flight memory** — a scenario *budget* caps how far
//!   past the oldest incomplete scenario the pool may run, which bounds
//!   the reorder buffer a streaming consumer needs to `O(budget)` rows;
//! * **shared setup artifacts** — one [`ArtifactCache`] serves every
//!   worker, so N scenarios stop re-deriving identical SimB word
//!   streams, software images and golden predictions;
//! * **panic isolation** — a scenario that panics becomes a
//!   [`ScenarioOutcome::Failed`] row; the pool keeps draining instead of
//!   aborting the whole campaign;
//! * **observability** — per-worker counters (steals, refills, idle
//!   waits, busy/idle time, a log₂ run-time histogram) plus optional
//!   per-scenario spans, foldable into an [`obs::MetricsRegistry`].
//!
//! [`Campaign::builder`] assembles a scenario list (matrix rows,
//! split-pipeline rows, recovery-injection batches) over one base
//! [`SystemConfig`] and typed [`CampaignOptions`], and returns a
//! [`CampaignReport`] whose rows unify the old `MatrixRow` /
//! recovery-report shapes.

use crate::detect::run_experiment_deadline;
use crate::fuzz::{self, FuzzRow, FuzzSpec};
use crate::matrix::{self, MatrixConfig, MatrixRow};
use crate::recovery::{self, RunClass};
use autovision::{ArtifactCache, Bug, RecoveryPolicy, SystemConfig};
use obs::{Histogram, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Scenario and per-run context
// ---------------------------------------------------------------------

/// Parameters of one seeded transient-fault injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpec {
    /// Injected transient fault (must be one of [`Bug::TRANSIENTS`]).
    pub fault: Bug,
    /// Seed for the run's fault parameters and arrival phase.
    pub seed: u64,
    /// Run with the recovery policy enabled.
    pub recovery_on: bool,
}

/// One schedulable unit of verification work. Every run family the
/// harness knows — clean baselines, catalogued bugs under both methods,
/// the split-pipeline topology, seeded transient injections — is a
/// `Scenario`, so one executor serves them all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// The clean (no-bug) configuration under both methods.
    Clean,
    /// One catalogued bug under both methods (a Table III row).
    Bug(Bug),
    /// The clean two-region split pipeline under both methods.
    SplitClean,
    /// One transient-fault injection run under ReSim.
    Recovery(RecoverySpec),
    /// One fuzzed reconfiguration schedule under ReSim (see
    /// [`crate::fuzz`]).
    Fuzz(FuzzSpec),
}

impl Scenario {
    /// The system configurations this scenario will build — used to
    /// pre-warm the artifact cache. A stale list only costs a cache
    /// miss, never correctness; the runners derive their own configs.
    fn configs(&self, base: &SystemConfig) -> Vec<SystemConfig> {
        use autovision::{FaultSet, SimMethod};
        let with =
            |method, faults: FaultSet, regions: Option<Vec<autovision::RegionSpec>>| SystemConfig {
                method,
                faults,
                regions: regions.unwrap_or_else(|| base.regions.clone()),
                ..base.clone()
            };
        match *self {
            Scenario::Clean => vec![
                with(SimMethod::Vmux, FaultSet::none(), None),
                with(SimMethod::Resim, FaultSet::none(), None),
            ],
            Scenario::Bug(bug) => vec![
                with(SimMethod::Vmux, FaultSet::one(bug), None),
                with(SimMethod::Resim, FaultSet::one(bug), None),
            ],
            Scenario::SplitClean => {
                let r = SystemConfig::split_regions();
                vec![
                    with(SimMethod::Vmux, FaultSet::none(), Some(r.clone())),
                    with(SimMethod::Resim, FaultSet::none(), Some(r)),
                ]
            }
            Scenario::Recovery(spec) => vec![SystemConfig {
                method: SimMethod::Resim,
                recovery: RecoveryPolicy {
                    enabled: spec.recovery_on,
                    ..Default::default()
                },
                ..base.clone()
            }],
            Scenario::Fuzz(spec) => vec![spec.schedule.apply(base)],
        }
    }
}

/// Everything a scenario runner needs beyond the scenario itself: the
/// base configuration, the hang budget, and the shared artifact cache.
/// Runners derive their concrete [`SystemConfig`]s from `base`.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCtx<'a> {
    /// Base system configuration (method/faults/recovery overridden per
    /// scenario).
    pub base: &'a SystemConfig,
    /// Hang budget per run, in cycles.
    pub budget_cycles: u64,
    /// Shared pure-artifact cache (SimBs, software images, scenes).
    pub artifacts: &'a ArtifactCache,
    /// Wall-clock watchdog deadline for the scenario. Runners check it
    /// between simulation chunks and bail out through the
    /// [`ScenarioTimeout`] panic marker, which the pool degrades into a
    /// [`ScenarioOutcome::TimedOut`] row. `None` (the default) never
    /// times out.
    pub deadline: Option<Instant>,
}

impl<'a> ScenarioCtx<'a> {
    /// A context over `base` with budget `budget_cycles`, using
    /// `artifacts` for setup sharing.
    pub fn new(
        base: &'a SystemConfig,
        budget_cycles: u64,
        artifacts: &'a ArtifactCache,
    ) -> ScenarioCtx<'a> {
        ScenarioCtx {
            base,
            budget_cycles,
            artifacts,
            deadline: None,
        }
    }

    /// The same context with a wall-clock watchdog deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> ScenarioCtx<'a> {
        self.deadline = deadline;
        self
    }

    /// Run one experiment: `base` with the given method/fault overlay.
    pub(crate) fn experiment(
        &self,
        method: autovision::SimMethod,
        faults: autovision::FaultSet,
        regions: Option<Vec<autovision::RegionSpec>>,
    ) -> crate::detect::Verdict {
        let cfg = SystemConfig {
            method,
            faults,
            regions: regions.unwrap_or_else(|| self.base.regions.clone()),
            ..self.base.clone()
        };
        run_experiment_deadline(cfg, self.budget_cycles, Some(self.artifacts), self.deadline)
    }
}

/// Panic marker a scenario runner throws when its wall-clock deadline
/// expires. [`run_scenario`]'s panic isolation downcasts it into a
/// [`ScenarioOutcome::TimedOut`] row, so a runaway scenario degrades
/// into a typed result instead of stalling the campaign drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioTimeout;

// ---------------------------------------------------------------------
// Unified report rows
// ---------------------------------------------------------------------

/// One recovery-campaign row: the classified outcome and retry/latency
/// cost of a single seeded injection run. (The recovery module's old
/// ad-hoc `RunReport` folded into the unified report row type.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRow {
    /// Injected transient fault.
    pub fault: Bug,
    /// Seed used for this run's fault parameters.
    pub seed: u64,
    /// Did the armed fault actually fire? (A fault armed after the last
    /// eligible transfer never triggers; such runs prove nothing and
    /// are excluded from the recovery rate.)
    pub fired: bool,
    /// Classified outcome.
    pub class: RunClass,
    /// Frames that matched the golden model.
    pub frames_ok: usize,
    /// Frames that differed (or were poisoned).
    pub frames_bad: usize,
    /// Retry attempts the controller made.
    pub retries: u64,
    /// Transfers completed successfully after at least one retry.
    pub recovered: u64,
    /// Transfers that exhausted the retry budget.
    pub exhausted: u64,
    /// Worst recovery latency observed, in cycles.
    pub recovery_cycles_max: u64,
    /// Sum of recovery latencies, in cycles.
    pub recovery_cycles_total: u64,
}

/// What one scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// A detection-matrix row (clean, bug, or split scenarios).
    Matrix(MatrixRow),
    /// A recovery-campaign row.
    Recovery(RecoveryRow),
    /// A fuzzed-schedule row.
    Fuzz(FuzzRow),
    /// The scenario panicked; the pool captured it and kept draining.
    Failed {
        /// The panic payload, stringified.
        panic: String,
    },
    /// The scenario's wall-clock watchdog expired; the pool degraded it
    /// into this typed row and kept draining. Carries no wall-clock
    /// fields so report digests stay deterministic.
    TimedOut,
    /// The campaign was cancelled before this scenario ran (see
    /// [`Campaign::run_streaming_with`]); the row is a typed placeholder
    /// so delivery stays index-complete.
    Cancelled,
}

/// One row of a campaign report: the scenario, its submission index,
/// and what it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Submission index (rows are always delivered in this order).
    pub index: usize,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// What it produced.
    pub outcome: ScenarioOutcome,
}

/// The aggregated result of a campaign: deterministic rows in
/// submission order plus (non-deterministic) executor statistics.
#[derive(Debug)]
pub struct CampaignReport {
    /// One row per scenario, in submission order. Byte-identical for
    /// any thread count or steal schedule.
    pub rows: Vec<CampaignRow>,
    /// Wall-clock/scheduling statistics of the run that produced the
    /// rows. Excluded from [`CampaignReport::digest`].
    pub stats: ExecutorStats,
}

impl CampaignReport {
    /// A deterministic, line-per-row rendering of the report's rows —
    /// the thing the determinism suite compares byte-for-byte across
    /// thread counts and steal schedules.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("campaign rows: {}\n", self.rows.len()));
        for r in &self.rows {
            out.push_str(&format!(
                "{:04} {:?} => {:?}\n",
                r.index, r.scenario, r.outcome
            ));
        }
        out
    }

    /// The matrix rows, in submission order.
    pub fn matrix_rows(&self) -> Vec<MatrixRow> {
        self.rows
            .iter()
            .filter_map(|r| match &r.outcome {
                ScenarioOutcome::Matrix(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    /// The recovery rows, in submission order.
    pub fn recovery_rows(&self) -> Vec<RecoveryRow> {
        self.rows
            .iter()
            .filter_map(|r| match &r.outcome {
                ScenarioOutcome::Recovery(rr) => Some(rr.clone()),
                _ => None,
            })
            .collect()
    }

    /// The fuzz rows, in submission order.
    pub fn fuzz_rows(&self) -> Vec<FuzzRow> {
        self.rows
            .iter()
            .filter_map(|r| match &r.outcome {
                ScenarioOutcome::Fuzz(f) => Some(f.clone()),
                _ => None,
            })
            .collect()
    }

    /// Rows whose scenario panicked, timed out, or was cancelled — the
    /// rows that carry no verification result.
    pub fn failures(&self) -> Vec<&CampaignRow> {
        self.rows
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    ScenarioOutcome::Failed { .. }
                        | ScenarioOutcome::TimedOut
                        | ScenarioOutcome::Cancelled
                )
            })
            .collect()
    }

    /// The report as a `campaign_report/v1` JSON document — see
    /// [`crate::wire::report_to_json`], the one schema definition the
    /// in-process API, the `verifd` daemon and `verifctl` all share.
    pub fn to_json(&self) -> String {
        crate::wire::report_to_json(self)
    }
}

// ---------------------------------------------------------------------
// Pool options and statistics
// ---------------------------------------------------------------------

/// How scenarios are placed and balanced across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// The default: scenarios enter a global injector; workers refill
    /// their deque in chunks and steal from peers when idle.
    WorkStealing,
    /// Every scenario is preloaded onto worker 0's deque, so all other
    /// workers must steal everything they run. A pathological schedule
    /// kept for the determinism suite.
    ForceSteal,
    /// The legacy static `i % threads` round-robin sharding with
    /// stealing disabled — the pre-executor behaviour, kept as the
    /// throughput-bench baseline.
    StaticShard,
}

/// Executor tuning knobs (the scenario list and base configuration live
/// on [`Campaign`]).
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// Worker threads (minimum 1).
    pub threads: usize,
    /// Scenario budget: the pool never runs a scenario more than this
    /// many positions past the oldest incomplete one, bounding the
    /// reorder buffer. `0` means `4 × threads`.
    pub scenario_budget: usize,
    /// Scenarios moved per injector refill or steal. `0` picks a chunk
    /// from the source's length (half, capped at 8).
    pub steal_chunk: usize,
    /// Placement/balancing policy.
    pub schedule: Schedule,
    /// Record one span per scenario into [`ExecutorStats::spans`].
    pub spans: bool,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            threads: 1,
            scenario_budget: 0,
            steal_chunk: 0,
            schedule: Schedule::WorkStealing,
            spans: false,
        }
    }
}

/// One worker's counters.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Scenarios this worker executed.
    pub executed: u64,
    /// Successful steal operations (chunks taken from a peer).
    pub steals: u64,
    /// Scenarios acquired by stealing (including rescue singles).
    pub stolen: u64,
    /// Injector refills.
    pub refills: u64,
    /// Idle waits (no admissible work anywhere at that moment).
    pub idle_waits: u64,
    /// Nanoseconds spent executing scenarios.
    pub busy_ns: u64,
    /// Nanoseconds spent idle-waiting.
    pub idle_ns: u64,
    /// log₂ histogram of per-scenario run times, in nanoseconds.
    pub run_ns: Histogram,
}

/// One executed scenario's span (offsets from pool start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpan {
    /// Scenario index.
    pub index: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// Start offset, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
}

/// Scheduling/throughput statistics of one pool run. Everything here is
/// wall-clock-dependent and therefore excluded from determinism
/// comparisons.
#[derive(Debug, Clone, Default)]
pub struct ExecutorStats {
    /// Pool wall-clock seconds.
    pub wall_s: f64,
    /// Scenarios executed.
    pub scenarios: usize,
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Largest number of completed-but-undelivered rows ever buffered
    /// (bounded by the scenario budget).
    pub max_reorder_depth: usize,
    /// Per-scenario spans (only when [`PoolOptions::spans`] is set),
    /// sorted by scenario index.
    pub spans: Vec<ScenarioSpan>,
    /// Artifact-cache hits of the campaign that produced this run
    /// (zero for raw pool runs).
    pub artifact_hits: u64,
    /// Artifact-cache misses of the campaign that produced this run.
    pub artifact_misses: u64,
}

impl ExecutorStats {
    /// Total successful steals across workers.
    pub fn steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total injector refills across workers.
    pub fn refills(&self) -> u64 {
        self.workers.iter().map(|w| w.refills).sum()
    }

    /// Total idle nanoseconds across workers.
    pub fn idle_ns(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_ns).sum()
    }

    /// Scenarios per wall-clock second.
    pub fn scenarios_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.scenarios as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// The campaign-wide run-time distribution (all workers merged).
    pub fn run_ns_histogram(&self) -> Histogram {
        let mut h = Histogram::default();
        for w in &self.workers {
            h.merge(&w.run_ns);
        }
        h
    }

    /// Fold the statistics into a metrics registry under `campaign.*`.
    pub fn record(&self, reg: &mut MetricsRegistry) {
        reg.counter("campaign.scenarios", self.scenarios as u64);
        reg.counter("campaign.steals", self.steals());
        reg.counter("campaign.refills", self.refills());
        reg.counter("campaign.max_reorder_depth", self.max_reorder_depth as u64);
        reg.counter("campaign.artifact_cache.hits", self.artifact_hits);
        reg.counter("campaign.artifact_cache.misses", self.artifact_misses);
        reg.gauge("campaign.wall_s", self.wall_s);
        reg.gauge("campaign.scenarios_per_sec", self.scenarios_per_sec());
        for (i, w) in self.workers.iter().enumerate() {
            reg.counter(&format!("campaign.worker{i}.executed"), w.executed);
            reg.counter(&format!("campaign.worker{i}.steals"), w.steals);
            reg.counter(&format!("campaign.worker{i}.stolen"), w.stolen);
            reg.counter(&format!("campaign.worker{i}.idle_waits"), w.idle_waits);
            reg.counter(&format!("campaign.worker{i}.busy_ns"), w.busy_ns);
            reg.counter(&format!("campaign.worker{i}.idle_ns"), w.idle_ns);
        }
        reg.merge_histogram("campaign.run_ns", &self.run_ns_histogram());
    }
}

// ---------------------------------------------------------------------
// The work-stealing pool
// ---------------------------------------------------------------------

struct Reorder<R, S: FnMut(usize, R)> {
    slots: Vec<Option<R>>,
    next: usize,
    buffered: usize,
    max_depth: usize,
    sink: S,
}

struct Shared<R, S: FnMut(usize, R)> {
    injector: Mutex<VecDeque<usize>>,
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Mirrors `Reorder::next` for lock-free admission checks.
    prefix: AtomicUsize,
    completed: AtomicUsize,
    reorder: Mutex<Reorder<R, S>>,
    /// Workers with no admissible work park here instead of spin-
    /// yielding (spinning would starve the busy workers of CPU on
    /// oversubscribed hosts). Notified on every completion.
    park: Mutex<()>,
    wake: Condvar,
    jobs: usize,
    budget: usize,
    chunk: usize,
    schedule: Schedule,
}

impl<R, S: FnMut(usize, R)> Shared<R, S> {
    fn window_end(&self) -> usize {
        self.prefix
            .load(Ordering::Acquire)
            .saturating_add(self.budget)
    }

    fn complete(&self, index: usize, result: R) {
        let mut ro = self.reorder.lock().expect("reorder lock poisoned");
        ro.slots[index] = Some(result);
        ro.buffered += 1;
        if ro.buffered > ro.max_depth {
            ro.max_depth = ro.buffered;
        }
        while ro.next < self.jobs {
            let i = ro.next;
            let Some(v) = ro.slots[i].take() else {
                break;
            };
            (ro.sink)(i, v);
            ro.next += 1;
            ro.buffered -= 1;
        }
        self.prefix.store(ro.next, Ordering::Release);
        drop(ro);
        self.completed.fetch_add(1, Ordering::AcqRel);
        // Lock-then-notify so a worker that checked the counters and is
        // about to wait cannot miss this wakeup.
        drop(self.park.lock().expect("park lock poisoned"));
        self.wake.notify_all();
    }

    /// Pop this worker's own front job if it is inside the admission
    /// window.
    fn pop_local(&self, w: usize) -> Option<usize> {
        let mut d = self.deques[w].lock().expect("deque lock poisoned");
        match d.front() {
            Some(&f) if f < self.window_end() => d.pop_front(),
            _ => None,
        }
    }

    fn local_is_empty(&self, w: usize) -> bool {
        self.deques[w]
            .lock()
            .expect("deque lock poisoned")
            .is_empty()
    }

    fn chunk_of(&self, len: usize) -> usize {
        if self.chunk > 0 {
            self.chunk.min(len).max(1)
        } else {
            (len.div_ceil(2)).clamp(1, 8)
        }
    }

    /// Move a chunk from the injector onto worker `w`'s (empty) deque.
    fn refill(&self, w: usize) -> bool {
        let grabbed: Vec<usize> = {
            let mut inj = self.injector.lock().expect("injector lock poisoned");
            if inj.is_empty() {
                return false;
            }
            let n = self.chunk_of(inj.len());
            inj.drain(..n).collect()
        };
        let mut d = self.deques[w].lock().expect("deque lock poisoned");
        d.extend(grabbed);
        true
    }

    /// Steal a chunk from the front of the fullest peer onto worker
    /// `w`'s (empty) deque. Returns how many jobs moved.
    fn steal(&self, w: usize) -> usize {
        // Pick the fullest victim without holding two locks at once.
        let mut victim = None;
        let mut best = 0usize;
        for (v, dq) in self.deques.iter().enumerate() {
            if v == w {
                continue;
            }
            let len = dq.lock().expect("deque lock poisoned").len();
            if len > best {
                best = len;
                victim = Some(v);
            }
        }
        let Some(v) = victim else { return 0 };
        let grabbed: Vec<usize> = {
            let mut dq = self.deques[v].lock().expect("deque lock poisoned");
            if dq.is_empty() {
                return 0;
            }
            let n = self.chunk_of(dq.len());
            dq.drain(..n).collect()
        };
        let n = grabbed.len();
        let mut d = self.deques[w].lock().expect("deque lock poisoned");
        d.extend(grabbed);
        n
    }

    /// Pop the globally smallest queued job if admissible — the rescue
    /// path that keeps the admission window live when every worker's
    /// own front is blocked. Deques only ever grow while empty, so each
    /// front is that deque's minimum.
    fn rescue(&self) -> Option<usize> {
        let window = self.window_end();
        // Injector front first (it holds the globally un-dealt tail).
        {
            let mut inj = self.injector.lock().expect("injector lock poisoned");
            if let Some(&f) = inj.front() {
                if f < window {
                    return inj.pop_front();
                }
            }
        }
        let mut best: Option<(usize, usize)> = None; // (front, deque)
        for (v, dq) in self.deques.iter().enumerate() {
            if let Some(&f) = dq.lock().expect("deque lock poisoned").front() {
                if best.map(|(b, _)| f < b).unwrap_or(true) {
                    best = Some((f, v));
                }
            }
        }
        let (f, v) = best?;
        if f >= window {
            return None;
        }
        let mut dq = self.deques[v].lock().expect("deque lock poisoned");
        // Re-check under the lock; the front may have moved.
        match dq.front() {
            Some(&g) if g == f => dq.pop_front(),
            _ => None,
        }
    }
}

fn worker_loop<R, S, F>(
    shared: &Shared<R, S>,
    w: usize,
    run: &F,
    record_spans: bool,
    t0: Instant,
) -> (WorkerStats, Vec<ScenarioSpan>)
where
    S: FnMut(usize, R),
    F: Fn(usize) -> R + Sync,
{
    let mut stats = WorkerStats::default();
    let mut spans = Vec::new();
    let stealing = shared.schedule != Schedule::StaticShard;
    loop {
        let mut acquired = shared.pop_local(w);
        if acquired.is_none() && stealing && shared.local_is_empty(w) {
            if shared.refill(w) {
                stats.refills += 1;
                acquired = shared.pop_local(w);
            } else {
                let n = shared.steal(w);
                if n > 0 {
                    stats.steals += 1;
                    stats.stolen += n as u64;
                    acquired = shared.pop_local(w);
                }
            }
        }
        if acquired.is_none() && stealing {
            // Own front blocked by the admission window (or someone
            // stole the refill): run the globally smallest queued job.
            if let Some(j) = shared.rescue() {
                stats.stolen += 1;
                acquired = Some(j);
            }
        }
        match acquired {
            Some(j) => {
                let start = Instant::now();
                let r = run(j);
                let dur = start.elapsed();
                stats.executed += 1;
                stats.busy_ns += dur.as_nanos() as u64;
                stats.run_ns.observe(dur.as_nanos() as u64);
                if record_spans {
                    spans.push(ScenarioSpan {
                        index: j,
                        worker: w,
                        start_ns: start.duration_since(t0).as_nanos() as u64,
                        dur_ns: dur.as_nanos() as u64,
                    });
                }
                shared.complete(j, r);
            }
            None => {
                stats.idle_waits += 1;
                let t = Instant::now();
                let guard = shared.park.lock().expect("park lock poisoned");
                if shared.completed.load(Ordering::Acquire) >= shared.jobs {
                    break;
                }
                // Admissibility only changes when a job completes, so a
                // completion notify is the wake signal; the timeout
                // bounds the cost of any lost race with a steal.
                let _ = shared
                    .wake
                    .wait_timeout(guard, Duration::from_millis(2))
                    .expect("park lock poisoned");
                stats.idle_ns += t.elapsed().as_nanos() as u64;
                if shared.completed.load(Ordering::Acquire) >= shared.jobs {
                    break;
                }
            }
        }
    }
    (stats, spans)
}

/// Run `jobs` indexed jobs through the pool, delivering `(index,
/// result)` pairs to `sink` in strict submission order, and return the
/// run's statistics. The scheduling layer under [`Campaign`]; exposed
/// so schedule-independence can be property-tested with synthetic
/// workloads.
pub fn execute_streaming<R, F, S>(jobs: usize, opts: &PoolOptions, run: F, sink: S) -> ExecutorStats
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R) + Send,
{
    let threads = opts.threads.max(1);
    let budget = if opts.scenario_budget == 0 {
        4 * threads
    } else {
        opts.scenario_budget
    };
    let mut injector = VecDeque::new();
    let mut deques: Vec<VecDeque<usize>> = (0..threads).map(|_| VecDeque::new()).collect();
    match opts.schedule {
        Schedule::WorkStealing => injector.extend(0..jobs),
        Schedule::ForceSteal => deques[0].extend(0..jobs),
        Schedule::StaticShard => {
            for i in 0..jobs {
                deques[i % threads].push_back(i);
            }
        }
    }
    let shared = Shared {
        injector: Mutex::new(injector),
        deques: deques.into_iter().map(Mutex::new).collect(),
        prefix: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        reorder: Mutex::new(Reorder {
            slots: (0..jobs).map(|_| None).collect(),
            next: 0,
            buffered: 0,
            max_depth: 0,
            sink,
        }),
        park: Mutex::new(()),
        wake: Condvar::new(),
        jobs,
        budget,
        chunk: opts.steal_chunk,
        schedule: opts.schedule,
    };
    let t0 = Instant::now();
    let per_worker: Vec<(WorkerStats, Vec<ScenarioSpan>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let shared = &shared;
                let run = &run;
                s.spawn(move || worker_loop(shared, w, run, opts.spans, t0))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker thread panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let ro = shared.reorder.into_inner().expect("reorder lock poisoned");
    debug_assert_eq!(ro.next, jobs, "pool finished with undelivered rows");
    let mut workers = Vec::with_capacity(threads);
    let mut spans = Vec::new();
    for (ws, sp) in per_worker {
        workers.push(ws);
        spans.extend(sp);
    }
    spans.sort_by_key(|s| s.index);
    ExecutorStats {
        wall_s,
        scenarios: jobs,
        workers,
        max_reorder_depth: ro.max_depth,
        spans,
        artifact_hits: 0,
        artifact_misses: 0,
    }
}

/// [`execute_streaming`], collecting the results into a `Vec` in
/// submission order.
pub fn execute<R, F>(jobs: usize, opts: &PoolOptions, run: F) -> (Vec<R>, ExecutorStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out = Vec::with_capacity(jobs);
    let stats = execute_streaming(jobs, opts, run, |_, r| out.push(r));
    (out, stats)
}

// ---------------------------------------------------------------------
// Campaign: the unified front door
// ---------------------------------------------------------------------

/// Typed executor options for a [`Campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads (minimum 1).
    pub threads: usize,
    /// Master seed for derived recovery batches.
    pub seed: u64,
    /// Hang budget per run, in cycles.
    pub budget_cycles: u64,
    /// Scenario budget; see [`PoolOptions::scenario_budget`].
    pub scenario_budget: usize,
    /// Steal/refill chunk; see [`PoolOptions::steal_chunk`].
    pub steal_chunk: usize,
    /// Placement/balancing policy.
    pub schedule: Schedule,
    /// Record per-scenario spans into the report's stats.
    pub spans: bool,
    /// Per-scenario wall-clock watchdog. A scenario still running past
    /// this degrades into a [`ScenarioOutcome::TimedOut`] row instead of
    /// stalling the campaign drain. `None` (the default) never fires —
    /// and is required for bit-deterministic reports, since whether a
    /// scenario beats a wall clock is not.
    pub scenario_timeout: Option<Duration>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0xFA_17,
            budget_cycles: 400_000,
            scenario_budget: 0,
            steal_chunk: 0,
            schedule: Schedule::WorkStealing,
            spans: false,
            scenario_timeout: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Planned {
    One(Scenario),
    RecoveryBatch { runs: usize, recovery_on: bool },
}

/// Builder for a [`Campaign`]; see [`Campaign::builder`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    base: SystemConfig,
    opts: CampaignOptions,
    planned: Vec<Planned>,
}

impl CampaignBuilder {
    /// Base system configuration the scenarios overlay.
    pub fn base(mut self, base: SystemConfig) -> Self {
        self.base = base;
        self
    }

    /// Kernel execution mode of the base configuration. Every scenario
    /// overlay clones the base, so the mode threads through the whole
    /// campaign (verdicts are bit-identical either way — this is how
    /// the campaign harnesses honour a bench bin's `--exec-mode`).
    pub fn exec_mode(mut self, mode: rtlsim::ExecMode) -> Self {
        self.base.exec_mode = mode;
        self
    }

    /// Replace all executor options at once.
    pub fn options(mut self, opts: CampaignOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Worker threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Master seed for derived recovery batches.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Hang budget per run, in cycles.
    pub fn budget_cycles(mut self, budget_cycles: u64) -> Self {
        self.opts.budget_cycles = budget_cycles;
        self
    }

    /// Scenario budget (bounded in-flight window).
    pub fn scenario_budget(mut self, scenario_budget: usize) -> Self {
        self.opts.scenario_budget = scenario_budget;
        self
    }

    /// Placement/balancing policy.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.opts.schedule = schedule;
        self
    }

    /// Record per-scenario spans.
    pub fn spans(mut self, spans: bool) -> Self {
        self.opts.spans = spans;
        self
    }

    /// Per-scenario wall-clock watchdog (see
    /// [`CampaignOptions::scenario_timeout`]).
    pub fn scenario_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.opts.scenario_timeout = timeout;
        self
    }

    /// Append one scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.planned.push(Planned::One(scenario));
        self
    }

    /// Append many scenarios.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = Scenario>) -> Self {
        self.planned.extend(scenarios.into_iter().map(Planned::One));
        self
    }

    /// Append the full detection matrix: the clean baseline plus every
    /// catalogued bug (the Table III workload).
    pub fn matrix(mut self) -> Self {
        self.planned.push(Planned::One(Scenario::Clean));
        self.planned
            .extend(Bug::ALL.into_iter().map(|b| Planned::One(Scenario::Bug(b))));
        self
    }

    /// Append the clean two-region split-pipeline scenario.
    pub fn split_clean(mut self) -> Self {
        self.planned.push(Planned::One(Scenario::SplitClean));
        self
    }

    /// Append a seeded transient-fault campaign of `runs` injections
    /// (cycled over [`Bug::TRANSIENTS`]); per-run seeds derive from the
    /// builder's master seed at [`CampaignBuilder::build`] time, so the
    /// batch is bit-equal to the legacy `run_campaign` for the same
    /// seed.
    pub fn recovery_campaign(mut self, runs: usize, recovery_on: bool) -> Self {
        self.planned
            .push(Planned::RecoveryBatch { runs, recovery_on });
        self
    }

    /// Materialise the campaign (expanding recovery batches with the
    /// final master seed).
    pub fn build(self) -> Campaign {
        let mut scenarios = Vec::new();
        for p in self.planned {
            match p {
                Planned::One(s) => scenarios.push(s),
                Planned::RecoveryBatch { runs, recovery_on } => {
                    for i in 0..runs {
                        scenarios.push(Scenario::Recovery(RecoverySpec {
                            fault: Bug::TRANSIENTS[i % Bug::TRANSIENTS.len()],
                            seed: self.opts.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            recovery_on,
                        }));
                    }
                }
            }
        }
        Campaign {
            base: self.base,
            opts: self.opts,
            scenarios,
        }
    }
}

/// A fully planned scenario campaign: a scenario list over one base
/// configuration, executed by the work-stealing pool.
#[derive(Debug, Clone)]
pub struct Campaign {
    base: SystemConfig,
    opts: CampaignOptions,
    scenarios: Vec<Scenario>,
}

impl Campaign {
    /// Start building a campaign. The default base configuration is the
    /// matrix base (32×24, two frames, 256-word SimB payload).
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder {
            base: MatrixConfig::default().base,
            opts: CampaignOptions::default(),
            planned: Vec::new(),
        }
    }

    /// The planned scenarios, in submission order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The options the campaign will run with.
    pub fn options(&self) -> &CampaignOptions {
        &self.opts
    }

    /// Execute every scenario and aggregate the report (rows in
    /// submission order regardless of scheduling).
    pub fn run(&self) -> CampaignReport {
        self.run_streaming(|_| {})
    }

    /// [`Campaign::run`], additionally delivering each finished row to
    /// `sink` in submission order as soon as it is complete. The
    /// scenario budget bounds how many rows are ever buffered waiting
    /// for an earlier scenario.
    pub fn run_streaming(&self, sink: impl FnMut(&CampaignRow) + Send) -> CampaignReport {
        self.run_streaming_with(&ArtifactCache::new(), None, sink)
    }

    /// [`Campaign::run_streaming`] over a caller-owned artifact cache
    /// and an optional cancellation flag — the entry point the `verifd`
    /// daemon drives, keeping one cache hot across submissions.
    ///
    /// Cached artifacts are pure functions of their keys (and those
    /// keys deliberately exclude the execution mode — see the identity
    /// contract pinned by `lockstep_equivalence`), so sharing a cache
    /// across campaigns, methods and exec modes cannot change any row.
    /// Once `cancel` reads `true`, scenarios that have not started yet
    /// complete immediately as [`ScenarioOutcome::Cancelled`] rows;
    /// scenarios already running finish normally, so delivery stays
    /// index-complete and in order.
    pub fn run_streaming_with(
        &self,
        artifacts: &ArtifactCache,
        cancel: Option<&AtomicBool>,
        mut sink: impl FnMut(&CampaignRow) + Send,
    ) -> CampaignReport {
        let cancelled = || cancel.map(|c| c.load(Ordering::Acquire)).unwrap_or(false);
        for s in &self.scenarios {
            if cancelled() {
                break;
            }
            for cfg in s.configs(&self.base) {
                artifacts.warm(&cfg);
            }
        }
        let (hits0, misses0) = artifacts.stats();
        let pool = PoolOptions {
            threads: self.opts.threads,
            scenario_budget: self.opts.scenario_budget,
            steal_chunk: self.opts.steal_chunk,
            schedule: self.opts.schedule,
            spans: self.opts.spans,
        };
        let ctx = ScenarioCtx::new(&self.base, self.opts.budget_cycles, artifacts);
        let scenarios = &self.scenarios;
        let timeout = self.opts.scenario_timeout;
        let mut rows: Vec<CampaignRow> = Vec::with_capacity(scenarios.len());
        let mut stats = {
            let rows = &mut rows;
            execute_streaming(
                scenarios.len(),
                &pool,
                |i| {
                    if cancelled() {
                        return ScenarioOutcome::Cancelled;
                    }
                    let ctx = ctx.with_deadline(timeout.map(|t| Instant::now() + t));
                    run_scenario(&ctx, scenarios[i])
                },
                move |i, outcome| {
                    let row = CampaignRow {
                        index: i,
                        scenario: scenarios[i],
                        outcome,
                    };
                    sink(&row);
                    rows.push(row);
                },
            )
        };
        // Report the *delta* this run contributed, so a long-lived
        // shared cache (the daemon's) attributes hits per campaign.
        let (hits, misses) = artifacts.stats();
        stats.artifact_hits = hits - hits0;
        stats.artifact_misses = misses - misses0;
        CampaignReport { rows, stats }
    }
}

/// Execute one scenario, capturing a panic as a failed row so the pool
/// keeps draining.
pub fn run_scenario(ctx: &ScenarioCtx<'_>, scenario: Scenario) -> ScenarioOutcome {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match scenario {
        Scenario::Clean => ScenarioOutcome::Matrix(matrix::run_clean_in(ctx)),
        Scenario::Bug(bug) => ScenarioOutcome::Matrix(matrix::run_bug_in(ctx, bug)),
        Scenario::SplitClean => ScenarioOutcome::Matrix(matrix::run_split_clean_in(ctx)),
        Scenario::Recovery(spec) => ScenarioOutcome::Recovery(recovery::run_one(ctx, spec)),
        Scenario::Fuzz(spec) => ScenarioOutcome::Fuzz(fuzz::run_one(ctx, spec)),
    }));
    match result {
        Ok(outcome) => outcome,
        // `as_ref` (not `&payload`): a plain reference would unsize the
        // Box itself into `dyn Any` and the downcasts would never match.
        Err(payload) if payload.downcast_ref::<ScenarioTimeout>().is_some() => {
            ScenarioOutcome::TimedOut
        }
        Err(payload) => ScenarioOutcome::Failed {
            panic: panic_message(payload.as_ref()),
        },
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize, schedule: Schedule) -> PoolOptions {
        PoolOptions {
            threads,
            schedule,
            ..Default::default()
        }
    }

    #[test]
    fn pool_delivers_results_in_submission_order() {
        for schedule in [
            Schedule::WorkStealing,
            Schedule::ForceSteal,
            Schedule::StaticShard,
        ] {
            for threads in [1, 2, 4] {
                let (out, stats) = execute(37, &opts(threads, schedule), |i| i * 10);
                assert_eq!(out, (0..37).map(|i| i * 10).collect::<Vec<_>>());
                assert_eq!(stats.scenarios, 37);
                assert_eq!(
                    stats.workers.iter().map(|w| w.executed).sum::<u64>(),
                    37,
                    "{schedule:?} @ {threads}"
                );
            }
        }
    }

    #[test]
    fn force_steal_makes_other_workers_steal() {
        let (out, stats) = execute(64, &opts(4, Schedule::ForceSteal), |i| i);
        assert_eq!(out.len(), 64);
        assert!(
            stats.steals() > 0 || stats.workers[0].executed == 64,
            "either someone stole or worker 0 ran everything: {stats:?}"
        );
        // With 64 jobs and any real interleaving the thieves get work.
        let others: u64 = stats.workers[1..].iter().map(|w| w.executed).sum();
        assert_eq!(stats.workers[0].executed + others, 64);
    }

    #[test]
    fn reorder_depth_respects_the_scenario_budget() {
        let o = PoolOptions {
            threads: 4,
            scenario_budget: 3,
            ..Default::default()
        };
        // Job 0 is slow, so later completions must queue behind it —
        // but never more than the budget allows.
        let (out, stats) = execute(40, &o, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        assert!(
            stats.max_reorder_depth <= 3,
            "reorder depth {} exceeded budget",
            stats.max_reorder_depth
        );
    }

    #[test]
    fn spans_cover_every_job_once() {
        let o = PoolOptions {
            threads: 3,
            spans: true,
            ..Default::default()
        };
        let (_, stats) = execute(11, &o, |i| i);
        let idx: Vec<usize> = stats.spans.iter().map(|s| s.index).collect();
        assert_eq!(idx, (0..11).collect::<Vec<_>>());
        assert!(stats.spans.iter().all(|s| s.worker < 3));
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let (out, stats) = execute(0, &opts(2, Schedule::WorkStealing), |i| i);
        assert!(out.is_empty());
        assert_eq!(stats.scenarios, 0);
    }

    #[test]
    fn recovery_batch_expansion_matches_the_legacy_seed_formula() {
        let c = Campaign::builder()
            .seed(0xFA_17)
            .recovery_campaign(6, true)
            .build();
        assert_eq!(c.scenarios().len(), 6);
        for (i, s) in c.scenarios().iter().enumerate() {
            let Scenario::Recovery(spec) = s else {
                panic!("expected recovery scenario, got {s:?}")
            };
            assert_eq!(spec.fault, Bug::TRANSIENTS[i % Bug::TRANSIENTS.len()]);
            assert_eq!(
                spec.seed,
                0xFA_17 ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            );
            assert!(spec.recovery_on);
        }
    }

    #[test]
    fn digest_is_stable_across_identical_reports() {
        let row = CampaignRow {
            index: 0,
            scenario: Scenario::Clean,
            outcome: ScenarioOutcome::Failed { panic: "x".into() },
        };
        let a = CampaignReport {
            rows: vec![row.clone()],
            stats: ExecutorStats::default(),
        };
        let b = CampaignReport {
            rows: vec![row],
            stats: ExecutorStats {
                wall_s: 99.0,
                ..Default::default()
            },
        };
        assert_eq!(
            a.digest(),
            b.digest(),
            "stats must not leak into the digest"
        );
    }
}
