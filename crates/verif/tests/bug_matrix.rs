//! The heart of the reproduction: every catalogued bug must be detected
//! (or missed) by each simulation method exactly as the paper's
//! analysis predicts. One test per bug keeps failures localised.

use autovision::Bug;
use verif::{run_clean, MatrixConfig};

fn check(bug: Bug) {
    let mc = MatrixConfig::default();
    let row = verif::run_bug(&mc, bug);
    assert!(
        row.as_expected(),
        "{}: vmux={} (expected {}), resim={} (expected {}); evidence: {}",
        row.bug,
        row.vmux_detected,
        row.vmux_expected,
        row.resim_detected,
        row.resim_expected,
        row.evidence
    );
}

#[test]
fn clean_design_is_silent_under_both_methods() {
    let row = run_clean(&MatrixConfig::default());
    assert!(!row.vmux_detected, "VMUX false positive: {}", row.evidence);
    assert!(
        !row.resim_detected,
        "ReSim false positive: {}",
        row.evidence
    );
}

#[test]
fn hw1_mem_burst_wrap_found_by_both() {
    check(Bug::Hw1MemBurstWrap);
}

#[test]
fn hw2_signature_uninit_is_a_vmux_only_false_alarm() {
    check(Bug::Hw2SignatureUninit);
}

#[test]
fn hw3_videoin_short_dma_found_by_both() {
    check(Bug::Hw3VideoInShortDma);
}

#[test]
fn hw4_irq_pulse_found_by_both() {
    check(Bug::Hw4IrqPulse);
}

#[test]
fn sw1_wrong_draw_buffer_found_by_both() {
    check(Bug::Sw1DrawWrongBuffer);
}

#[test]
fn sw2_cached_flag_found_by_both() {
    check(Bug::Sw2FlagCached);
}

#[test]
fn dpr1_missing_isolation_found_only_by_resim() {
    check(Bug::Dpr1NoIsolation);
}

#[test]
fn dpr2_dcr_in_rr_found_only_by_resim() {
    check(Bug::Dpr2DcrInRr);
}

#[test]
fn dpr3_icap_backpressure_found_only_by_resim() {
    check(Bug::Dpr3IgnoreIcapReady);
}

#[test]
fn dpr4_p2p_on_shared_bus_found_only_by_resim() {
    check(Bug::Dpr4P2pOnSharedBus);
}

#[test]
fn dpr5_stale_size_calc_found_only_by_resim() {
    check(Bug::Dpr5StaleSizeCalc);
}

#[test]
fn dpr6a_short_fixed_wait_found_only_by_resim() {
    check(Bug::Dpr6aShortFixedWait);
}

#[test]
fn dpr6b_no_wait_found_only_by_resim() {
    check(Bug::Dpr6bNoWaitTransfer);
}

/// The aggregate claims the paper makes about the two methods.
#[test]
fn resim_strictly_dominates_on_real_bugs() {
    let rows = verif::Campaign::builder()
        .threads(2)
        .matrix()
        .build()
        .run()
        .matrix_rows();
    let real: Vec<_> = rows
        .iter()
        .filter(|r| r.bug.starts_with("bug.") && r.bug != "bug.hw.2")
        .collect();
    // Every real bug is found by ReSim...
    assert!(
        real.iter().all(|r| r.resim_detected),
        "{}",
        verif::render_matrix(&rows)
    );
    // ...while VMUX misses every DPR bug...
    let dpr: Vec<_> = real
        .iter()
        .filter(|r| r.bug.starts_with("bug.dpr"))
        .collect();
    assert!(!dpr.is_empty());
    assert!(
        dpr.iter().all(|r| !r.vmux_detected),
        "{}",
        verif::render_matrix(&rows)
    );
    // ...and raises the false alarm ReSim cannot raise.
    let fa = rows.iter().find(|r| r.bug == "bug.hw.2").unwrap();
    assert!(fa.vmux_detected && !fa.resim_detected);
}
