//! Thread-count equivalence for the detection matrix.
//!
//! `run_matrix` fans independent (bug, method) runs out over OS threads;
//! each thread builds its own single-threaded simulator. The rows it
//! returns must therefore be completely independent of the thread count
//! — any difference would mean the kernel leaks state across simulator
//! instances or the fan-out reorders results.

use verif::{run_matrix, MatrixConfig};

#[test]
fn matrix_rows_are_identical_across_thread_counts() {
    let mc = MatrixConfig::default();
    let one = run_matrix(&mc, 1);
    let four = run_matrix(&mc, 4);
    let eight = run_matrix(&mc, 8);
    assert!(!one.is_empty());
    assert_eq!(one, four, "4-thread matrix differs from serial run");
    assert_eq!(one, eight, "8-thread matrix differs from serial run");
}
