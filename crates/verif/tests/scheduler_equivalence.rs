//! Thread-count equivalence for the detection matrix.
//!
//! The executor fans independent (bug, method) runs out over OS worker
//! threads; each scenario builds its own single-threaded simulator. The
//! rows must therefore be completely independent of the thread count —
//! any difference would mean the kernel leaks state across simulator
//! instances or the pool reorders results.

use verif::{Campaign, MatrixConfig};

fn matrix_rows(threads: usize) -> Vec<verif::MatrixRow> {
    let mc = MatrixConfig::default();
    Campaign::builder()
        .base(mc.base.clone())
        .budget_cycles(mc.budget_cycles)
        .threads(threads)
        .matrix()
        .build()
        .run()
        .matrix_rows()
}

#[test]
fn matrix_rows_are_identical_across_thread_counts() {
    let one = matrix_rows(1);
    let four = matrix_rows(4);
    let eight = matrix_rows(8);
    assert!(!one.is_empty());
    assert_eq!(one, four, "4-thread matrix differs from serial run");
    assert_eq!(one, eight, "8-thread matrix differs from serial run");
}
