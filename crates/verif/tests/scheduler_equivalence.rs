//! Thread-count equivalence for the detection matrix, plus bit-equality
//! of the deprecated `run_matrix` shim against the campaign executor.
//!
//! The executor fans independent (bug, method) runs out over OS worker
//! threads; each scenario builds its own single-threaded simulator. The
//! rows must therefore be completely independent of the thread count —
//! any difference would mean the kernel leaks state across simulator
//! instances or the pool reorders results.

#![allow(deprecated)]

use verif::{run_matrix, Campaign, MatrixConfig};

#[test]
fn matrix_rows_are_identical_across_thread_counts() {
    let mc = MatrixConfig::default();
    let one = run_matrix(&mc, 1);
    let four = run_matrix(&mc, 4);
    let eight = run_matrix(&mc, 8);
    assert!(!one.is_empty());
    assert_eq!(one, four, "4-thread matrix differs from serial run");
    assert_eq!(one, eight, "8-thread matrix differs from serial run");
}

#[test]
fn deprecated_shim_is_bit_equal_to_the_campaign_api() {
    let mc = MatrixConfig::default();
    let shim = run_matrix(&mc, 2);
    let campaign = Campaign::builder()
        .base(mc.base.clone())
        .budget_cycles(mc.budget_cycles)
        .threads(2)
        .matrix()
        .build()
        .run()
        .matrix_rows();
    assert_eq!(shim, campaign);
}
