//! Regression: [`autovision::ArtifactCache`] keys deliberately exclude
//! the kernel execution mode. That is only sound because cached
//! artifacts (SimB word streams, software images, golden scenes) are
//! pure functions of the system configuration and the identity contract
//! pins event-driven and compiled execution to bit-identical behaviour.
//! This suite pins both halves: a campaign submitted in `Compiled` mode
//! against a cache warmed by an `EventDriven` campaign must hit for
//! every artifact — and still produce byte-identical rows.

use autovision::ArtifactCache;
use rtlsim::ExecMode;
use verif::wire::report_to_json;
use verif::{Campaign, Scenario};

fn campaign(mode: ExecMode) -> Campaign {
    Campaign::builder()
        .threads(2)
        .exec_mode(mode)
        .scenario(Scenario::Clean)
        .scenario(Scenario::Bug(autovision::Bug::Dpr1NoIsolation))
        .build()
}

#[test]
fn compiled_submissions_hit_the_cache_warmed_by_event_driven_runs() {
    let cache = ArtifactCache::new();

    let event = campaign(ExecMode::EventDriven).run_streaming_with(&cache, None, |_| {});
    assert!(
        event.stats.artifact_misses > 0,
        "cold run should derive artifacts"
    );

    let compiled = campaign(ExecMode::Compiled).run_streaming_with(&cache, None, |_| {});
    assert_eq!(
        compiled.stats.artifact_misses, 0,
        "cache keys must be exec-mode-independent: a compiled campaign \
         over the same configs should re-derive nothing"
    );
    assert!(compiled.stats.artifact_hits > 0);

    // And mode independence is not just a key property — the rows the
    // two modes produce are byte-identical (the PR 9 identity contract
    // seen from the campaign plane).
    assert_eq!(report_to_json(&event), report_to_json(&compiled));
}

#[test]
fn pre_cancelled_campaigns_yield_typed_cancelled_rows_for_every_scenario() {
    use std::sync::atomic::AtomicBool;
    let cache = ArtifactCache::new();
    let cancel = AtomicBool::new(true);
    let mut streamed = Vec::new();
    let report = campaign(ExecMode::EventDriven)
        .run_streaming_with(&cache, Some(&cancel), |row| streamed.push(row.index));
    assert_eq!(report.rows.len(), 2, "delivery must stay index-complete");
    assert_eq!(streamed, vec![0, 1]);
    assert!(report
        .rows
        .iter()
        .all(|r| r.outcome == verif::ScenarioOutcome::Cancelled));
    assert_eq!(report.failures().len(), 2);
    assert_eq!(
        report.stats.artifact_misses, 0,
        "a cancelled campaign must not warm the cache"
    );
    let json = report_to_json(&report);
    assert!(json.contains("\"kind\": \"cancelled\""), "{json}");
}
