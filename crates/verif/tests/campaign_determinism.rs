//! Determinism suite for the campaign executor.
//!
//! The contract under test: a [`verif::CampaignReport`]'s rows are a
//! pure function of the scenario list — byte-identical for any worker
//! count and any steal schedule, with the reorder buffer never growing
//! past the scenario budget, and a panicking scenario degrading into a
//! typed failed row instead of aborting the pool.

use autovision::Bug;
use proptest::prelude::*;
use verif::{
    execute, Campaign, CampaignReport, PoolOptions, RecoverySpec, Scenario, ScenarioOutcome,
    Schedule,
};

/// A small mixed workload touching every scenario family: clean and
/// bugged matrix rows, the split pipeline, and seeded recovery runs.
fn mixed_campaign(threads: usize, schedule: Schedule) -> CampaignReport {
    Campaign::builder()
        .threads(threads)
        .schedule(schedule)
        .scenario_budget(3)
        .scenario(Scenario::Clean)
        .scenario(Scenario::Bug(Bug::Hw1MemBurstWrap))
        .scenario(Scenario::SplitClean)
        .recovery_campaign(4, true)
        .build()
        .run()
}

#[test]
fn report_is_byte_identical_for_any_worker_count() {
    let baseline = mixed_campaign(1, Schedule::WorkStealing);
    assert_eq!(baseline.rows.len(), 7);
    assert!(baseline.failures().is_empty(), "{}", baseline.digest());
    for threads in [2, 4, 8] {
        let got = mixed_campaign(threads, Schedule::WorkStealing);
        assert_eq!(
            baseline.digest(),
            got.digest(),
            "{threads}-worker report differs from the serial run"
        );
        assert!(
            got.stats.max_reorder_depth <= 3,
            "reorder depth {} exceeded the scenario budget",
            got.stats.max_reorder_depth
        );
    }
}

#[test]
fn report_is_byte_identical_under_a_forced_steal_schedule() {
    // Every scenario starts on worker 0's deque; workers 1..3 must
    // steal everything they execute.
    let baseline = mixed_campaign(1, Schedule::WorkStealing);
    let forced = mixed_campaign(4, Schedule::ForceSteal);
    assert_eq!(
        baseline.digest(),
        forced.digest(),
        "forced-steal schedule changed the report"
    );
}

#[test]
fn scenario_panic_becomes_a_failed_row_and_the_pool_keeps_draining() {
    // A non-transient fault in a recovery spec makes the injection
    // runner panic ("... is not a transient fault"); the executor must
    // convert that into a Failed row and still deliver every other row.
    let report = Campaign::builder()
        .threads(2)
        .scenario(Scenario::Recovery(RecoverySpec {
            fault: Bug::Hw1MemBurstWrap,
            seed: 1,
            recovery_on: true,
        }))
        .scenario(Scenario::Clean)
        .scenario(Scenario::Recovery(RecoverySpec {
            fault: Bug::TransientBusError,
            seed: 2,
            recovery_on: true,
        }))
        .build()
        .run();
    assert_eq!(report.rows.len(), 3);
    let failures = report.failures();
    assert_eq!(failures.len(), 1, "{}", report.digest());
    assert_eq!(failures[0].index, 0);
    match &failures[0].outcome {
        ScenarioOutcome::Failed { panic } => {
            assert!(
                panic.contains("is not a transient fault"),
                "unexpected panic payload: {panic}"
            );
        }
        other => panic!("expected a failed row, got {other:?}"),
    }
    assert!(matches!(report.rows[1].outcome, ScenarioOutcome::Matrix(_)));
    assert!(matches!(
        report.rows[2].outcome,
        ScenarioOutcome::Recovery(_)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Aggregation order equals submission order for any per-scenario
    /// delay pattern, worker count, schedule and admission budget — and
    /// the reorder buffer honours the budget throughout.
    #[test]
    fn aggregation_order_is_submission_order_under_random_delays(
        delays in prop::collection::vec(0u64..3, 1..40),
        threads in 1usize..6,
        budget in 1usize..6,
        schedule in prop::sample::select(vec![
            Schedule::WorkStealing,
            Schedule::ForceSteal,
            Schedule::StaticShard,
        ]),
    ) {
        let opts = PoolOptions {
            threads,
            scenario_budget: budget,
            schedule,
            ..Default::default()
        };
        let n = delays.len();
        let (out, stats) = execute(n, &opts, |i| {
            if delays[i] > 0 {
                std::thread::sleep(std::time::Duration::from_millis(delays[i]));
            }
            i
        });
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
        prop_assert!(
            stats.max_reorder_depth <= budget,
            "depth {} > budget {}",
            stats.max_reorder_depth,
            budget
        );
        prop_assert_eq!(stats.workers.iter().map(|w| w.executed).sum::<u64>(), n as u64);
    }
}

#[test]
fn watchdog_turns_a_budget_burning_scenario_into_a_timed_out_row() {
    // bug.hw.4 burns its entire cycle budget; with an effectively
    // unbounded budget and a tiny wall-clock watchdog the pool must
    // degrade the scenario into a typed TimedOut row — and still
    // deliver every other row.
    // A small base keeps the clean row comfortably inside the watchdog
    // window even in a debug build; the bugged row still burns cycles
    // until the wall clock expires.
    let base = autovision::SystemConfig::builder()
        .method(autovision::SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(1)
        .payload_words(128)
        .build()
        .expect("valid base");
    let report = Campaign::builder()
        .base(base)
        .threads(2)
        .budget_cycles(4_000_000_000)
        .scenario_timeout(Some(std::time::Duration::from_millis(500)))
        .scenario(Scenario::Bug(Bug::Hw4IrqPulse))
        .scenario(Scenario::Clean)
        .build()
        .run();
    assert_eq!(report.rows.len(), 2);
    assert!(
        matches!(report.rows[0].outcome, ScenarioOutcome::TimedOut),
        "expected a timed-out row, got {:?}",
        report.rows[0].outcome
    );
    assert!(matches!(report.rows[1].outcome, ScenarioOutcome::Matrix(_)));
    // Timeouts are failures: a campaign that timed out must not read
    // as clean.
    assert_eq!(report.failures().len(), 1);
    let json = report.to_json();
    assert!(json.contains("\"kind\": \"timed_out\""), "{json}");
}

#[test]
fn panic_payload_is_surfaced_in_the_failed_row_and_report_json() {
    let report = Campaign::builder()
        .threads(1)
        .scenario(Scenario::Recovery(RecoverySpec {
            fault: Bug::Hw1MemBurstWrap,
            seed: 1,
            recovery_on: true,
        }))
        .build()
        .run();
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    let ScenarioOutcome::Failed { panic } = &failures[0].outcome else {
        panic!("expected a failed row, got {:?}", failures[0].outcome);
    };
    assert!(panic.contains("is not a transient fault"));
    let json = report.to_json();
    assert!(json.contains("\"kind\": \"failed\""), "{json}");
    assert!(json.contains("is not a transient fault"), "{json}");
}
