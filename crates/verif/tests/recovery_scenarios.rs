//! Targeted resilient-reconfiguration scenarios: each test arms one
//! hand-picked fault against a full system build and checks the exact
//! recovery mechanism that must handle it, plus the regression that the
//! recovery machinery is inert when disabled.

use autovision::{AvSystem, MemLayout, RecoveryPolicy, SimMethod, SystemConfig};

const BUDGET: u64 = 400_000;

fn recovery_cfg() -> SystemConfig {
    SystemConfig {
        method: SimMethod::Resim,
        width: 32,
        height: 24,
        n_frames: 2,
        payload_words: 256,
        recovery: RecoveryPolicy {
            enabled: true,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn simb_window(sys: &AvSystem) -> (u32, u32) {
    (
        sys.layout.simb_me.0,
        sys.layout.simb_cie.0 + 4 * sys.layout.simb_cie.1,
    )
}

fn frames_match_golden(sys: &AvSystem) -> bool {
    let golden = sys.golden_output();
    sys.captured
        .borrow()
        .iter()
        .zip(&golden)
        .all(|(got, want)| got.differing_pixels(want) == 0)
}

#[test]
fn crc_mismatch_is_detected_and_retried() {
    let cfg = recovery_cfg();
    let n = cfg.n_frames;
    let mut sys = AvSystem::build(cfg);
    {
        let mut mem = sys.mem_faults.borrow_mut();
        mem.window = Some(simb_window(&sys));
        // Beat 30 of the first burst lands mid-payload: framing stays
        // intact, so only the CRC check can catch the upset.
        mem.flip_next_read = Some((30, 7));
    }
    let outcome = sys.run(BUDGET);
    assert!(!outcome.hung && outcome.kernel_error.is_none());
    assert_eq!(outcome.frames_captured, n);
    assert_eq!(sys.mem_faults.borrow().flips_fired, 1);
    let r = sys.recovery.borrow();
    assert!(r.integrity_errors > 0, "CRC mismatch not detected: {r:?}");
    assert!(r.recovered > 0, "corrupted transfer not recovered: {r:?}");
    assert_eq!(r.exhausted, 0);
    drop(r);
    assert!(
        frames_match_golden(&sys),
        "recovered run must match golden output"
    );
}

#[test]
fn exhausted_retries_engage_degraded_fallback() {
    let cfg = recovery_cfg();
    let n = cfg.n_frames;
    let mut sys = AvSystem::build(cfg);
    {
        // A *persistent* fault: every SimB read bus-errors, so every
        // retry fails too and the budget runs out.
        let mut mem = sys.mem_faults.borrow_mut();
        mem.window = Some(simb_window(&sys));
        mem.error_next_reads = u32::MAX;
    }
    let outcome = sys.run(BUDGET);
    let r = sys.recovery.borrow();
    assert!(r.exhausted > 0, "retry budget never exhausted: {r:?}");
    assert!(r.retries >= u64::from(RecoveryPolicy::default().max_retries));
    // The whole point of graceful degradation: the frame pipeline keeps
    // delivering (stale vectors) instead of hanging.
    assert!(!outcome.hung, "pipeline hung instead of degrading");
    assert_eq!(
        outcome.frames_captured, n,
        "degraded pipeline dropped frames"
    );
}

#[test]
fn watchdog_fires_on_stalled_dma() {
    let cfg = recovery_cfg();
    let wd = cfg.recovery.watchdog_cycles;
    let n = cfg.n_frames;
    let mut sys = AvSystem::build(cfg);
    {
        let mut mem = sys.mem_faults.borrow_mut();
        mem.window = Some(simb_window(&sys));
        mem.stall_next_read = Some(2 * wd);
    }
    let outcome = sys.run(BUDGET);
    assert!(!outcome.hung && outcome.kernel_error.is_none());
    assert_eq!(outcome.frames_captured, n);
    assert_eq!(sys.mem_faults.borrow().stalls_fired, 1);
    let r = sys.recovery.borrow();
    assert!(
        r.watchdog_fires > 0,
        "stalled DMA never tripped the watchdog: {r:?}"
    );
    assert!(r.recovered > 0);
    drop(r);
    assert!(frames_match_golden(&sys));
}

#[test]
fn recovery_disabled_is_inert_and_preserves_seed_behaviour() {
    // The default configuration must be bit-for-bit the paper setup:
    // plain SimB framing (payload + 10 words, no integrity packet), no
    // degraded-mode software, and all recovery counters dead zero.
    let cfg = SystemConfig {
        width: 32,
        height: 24,
        n_frames: 2,
        payload_words: 256,
        ..Default::default()
    };
    assert!(!cfg.recovery.enabled, "recovery must be off by default");
    let layout = MemLayout::for_config(&cfg);
    assert_eq!(layout.simb_me.1, cfg.payload_words as u32 + 10);
    assert_eq!(layout.simb_cie.1, cfg.payload_words as u32 + 10);

    let n = cfg.n_frames;
    let mut sys = AvSystem::build(cfg);
    let outcome = sys.run(BUDGET);
    assert!(!outcome.hung && outcome.kernel_error.is_none());
    assert_eq!(outcome.frames_captured, n);
    assert!(frames_match_golden(&sys));
    let r = sys.recovery.borrow();
    assert_eq!((r.retries, r.recovered, r.exhausted), (0, 0, 0), "{r:?}");
    assert_eq!(r.bus_errors + r.watchdog_fires + r.integrity_errors, 0);
    // No integrity machinery in the ICAP stream either.
    let icap = sys.backend_stats().icap.expect("ReSim build");
    assert_eq!(icap.crc_ok + icap.crc_mismatches, 0);
}
