//! Determinism suite for the schedule fuzzer.
//!
//! The contract under test: a [`verif::FuzzReport`] — generated
//! schedules, corpus evolution, coverage map, deduplicated failure
//! signatures and shrunk reproducers — is a pure function of
//! `(base config, options)`: bit-identical for any worker count, and a
//! reproducer emitted by one session replays to the same failure
//! signature after a JSON round-trip.

use autovision::{Bug, FaultSet, SimMethod, SystemConfig};
use proptest::prelude::*;
use verif::fuzz::{self, FuzzOptions, FuzzReport};

fn clean_base() -> SystemConfig {
    SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(1)
        .payload_words(128)
        .build()
        .expect("valid base")
}

fn seeded_base() -> SystemConfig {
    SystemConfig {
        faults: FaultSet::one(Bug::Dpr6aShortFixedWait),
        ..SystemConfig::builder()
            .method(SimMethod::Resim)
            .width(32)
            .height(24)
            .n_frames(2)
            .payload_words(256)
            .build()
            .expect("valid base")
    }
}

fn session(base: &SystemConfig, seed: u64, threads: usize, budget_cycles: u64) -> FuzzReport {
    fuzz::run_fuzz(
        base,
        &FuzzOptions {
            seed,
            rounds: 2,
            batch: 3,
            threads,
            budget_cycles,
            corrupt_stream: false,
            mutate_recovery: false,
            mutate_topology: true,
            scenario_timeout: None,
            // Small shrink budget keeps the debug-build suite fast; the
            // shrinker is deterministic at any budget.
            shrink_budget: 8,
            ..Default::default()
        },
    )
}

#[test]
fn clean_session_digest_is_identical_across_worker_counts() {
    let baseline = session(&clean_base(), 0xD5, 1, 120_000);
    assert_eq!(baseline.iterations, 6);
    assert!(
        baseline.failures.is_empty(),
        "legal schedules broke the golden design:\n{}",
        baseline.digest()
    );
    for threads in [2, 4, 8] {
        let got = session(&clean_base(), 0xD5, threads, 120_000);
        assert_eq!(
            baseline.digest(),
            got.digest(),
            "{threads}-worker fuzz session diverged from the serial run"
        );
    }
}

#[test]
fn failing_session_shrinks_identically_across_worker_counts() {
    // bug.dpr.6a races the fixed-loop wait against the transfer, which
    // the oracles catch on every schedule — so this session exercises
    // the failure path: signature dedup plus the shrinker, whose
    // reproducer must also be worker-count-invariant.
    let baseline = session(&seeded_base(), 0xD6, 1, 30_000);
    assert_eq!(
        baseline.failures.len(),
        1,
        "expected exactly one deduplicated signature:\n{}",
        baseline.digest()
    );
    let f = &baseline.failures[0];
    assert_eq!(f.signature, "checker:plb_monitor+hang");
    assert_eq!(
        f.repro.mutations, 0,
        "the baseline schedule already fails, so the shrunk reproducer \
         must carry zero mutations: {:?}",
        f.repro.schedule
    );
    for threads in [4, 8] {
        let got = session(&seeded_base(), 0xD6, threads, 30_000);
        assert_eq!(baseline.digest(), got.digest());
    }
}

#[test]
fn emitted_reproducer_replays_to_the_same_signature() {
    let report = session(&seeded_base(), 0xD7, 2, 30_000);
    let f = &report.failures[0];
    let doc = f.repro.to_json();
    let parsed = fuzz::FuzzRepro::from_json(&doc).expect("reproducer round-trips");
    assert_eq!(parsed, f.repro);
    let row = fuzz::replay(&seeded_base(), &parsed);
    assert_eq!(row.signature.as_deref(), Some(f.signature.as_str()));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// For any master seed, corpus evolution and coverage are
    /// bit-identical between a serial and a maximally-parallel session
    /// — mutation randomness never interleaves with execution.
    #[test]
    fn any_seed_is_worker_count_invariant(seed in 0u64..1u64 << 48) {
        let serial = session(&clean_base(), seed, 1, 120_000);
        let parallel = session(&clean_base(), seed, 8, 120_000);
        prop_assert_eq!(serial.digest(), parallel.digest());
    }
}
