//! Lockstep equivalence suite: compiled vs event-driven dispatch.
//!
//! The compiled plane's contract is *bit-identical observable
//! behaviour* — not just matching end states. This suite enforces the
//! strong form metasim-style: two copies of the same system, one per
//! execution mode, advance one clock period at a time, and after every
//! edge the full architectural signal state (order-sensitive FNV digest
//! over every signal's value/X planes) and the named probe signals must
//! agree. A divergence is reported at the first cycle it appears, with
//! the first differing signal named.
//!
//! Coverage:
//! * the Table II demonstrator shape (single time-shared region, ReSim
//!   method) at matrix scale,
//! * the split two-region pipeline,
//! * a proptest sweep over the fuzzer's *legal schedule envelope*
//!   (`cfg_divider` ≤ 4, `isr_pad_loops` ≥ 4, wait states, grant
//!   ordering — the ranges the golden design is calibrated for).
//!
//! Every test is a pure function of its config, so the suite is green
//! at any `--test-threads` (1/4/8 — tests share no state).

use autovision::{AvSystem, SimMethod, SystemConfig, CLK_PERIOD_PS};
use proptest::prelude::*;
use rtlsim::{ExecMode, SignalId};
use verif::fuzz::FuzzSchedule;

/// Cycles both systems may drain after completion (matches the run
/// loop's let-DMA-finish chunk).
const DRAIN_CYCLES: u64 = 512;

fn probe_list(sys: &AvSystem) -> Vec<SignalId> {
    let p = &sys.probes;
    let mut v = vec![p.cie_busy, p.me_busy, p.isolate];
    v.extend(p.reconfiguring);
    v.extend(p.inject);
    for r in &p.regions {
        v.extend([r.isolate, r.busy, r.done]);
    }
    v
}

/// Name the first signal whose value differs — the digest says *that*
/// state diverged, this says *where*.
fn first_divergence(ev: &AvSystem, co: &AvSystem) -> String {
    for s in ev.sim.signals_with_prefix("") {
        let (a, b) = (ev.sim.peek(s), co.sim.peek(s));
        if a != b {
            return format!("{}: event={a:?} compiled={b:?}", ev.sim.signal_name(s));
        }
    }
    "digest differs but no named signal does (width/arena mismatch)".to_string()
}

/// Build one system per mode from `cfg` and advance them in lockstep,
/// comparing registered state and probe values at every clock edge.
/// Returns the frames both runs captured.
fn lockstep(cfg: &SystemConfig, max_cycles: u64) -> usize {
    let mut cfg_ev = cfg.clone();
    cfg_ev.exec_mode = ExecMode::EventDriven;
    let mut cfg_co = cfg.clone();
    cfg_co.exec_mode = ExecMode::Compiled;
    let mut ev = AvSystem::build(cfg_ev);
    let mut co = AvSystem::build(cfg_co);
    let probes = probe_list(&ev);
    assert_eq!(
        probes,
        probe_list(&co),
        "probe signal ids differ between identically-built systems"
    );

    let mut cycles = 0u64;
    let mut drain = None::<u64>;
    loop {
        ev.sim
            .run_for(CLK_PERIOD_PS)
            .expect("event-driven kernel error");
        co.sim
            .run_for(CLK_PERIOD_PS)
            .expect("compiled kernel error");
        cycles += 1;
        for &p in &probes {
            let (a, b) = (ev.sim.peek(p), co.sim.peek(p));
            assert_eq!(
                a,
                b,
                "cycle {cycles}: probe {} diverged (event={a:?} compiled={b:?})",
                ev.sim.signal_name(p)
            );
        }
        if ev.sim.state_digest() != co.sim.state_digest() {
            panic!(
                "cycle {cycles}: architectural state diverged — {}",
                first_divergence(&ev, &co)
            );
        }
        let finished =
            |s: &AvSystem| s.cpu.borrow().halted || s.captured.borrow().len() >= s.config.n_frames;
        match drain {
            None if finished(&ev) && finished(&co) => drain = Some(DRAIN_CYCLES),
            Some(0) => break,
            Some(ref mut left) => *left -= 1,
            None => assert!(
                cycles < max_cycles,
                "lockstep hit the {max_cycles}-cycle budget before completion"
            ),
        }
    }

    let (fe, fc) = (ev.captured.borrow(), co.captured.borrow());
    assert_eq!(fe.len(), fc.len(), "captured frame counts differ");
    for (i, (a, b)) in fe.iter().zip(fc.iter()).enumerate() {
        assert_eq!(a, b, "captured frame {i} differs between modes");
    }
    // The work-avoidance counters are the *allowed* per-mode difference;
    // everything compared above was not. Sanity: the compiled run
    // actually filtered something.
    let cs = co.sim.compiled_stats().expect("compiled plan was built");
    assert!(
        cs.skipped_edge + cs.skipped_parked > 0,
        "compiled run never skipped a dispatch — filtering was inert"
    );
    fe.len()
}

fn table2_shape() -> SystemConfig {
    SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(2)
        .payload_words(256)
        .build()
        .expect("valid config")
}

#[test]
fn table2_shape_runs_in_lockstep() {
    let frames = lockstep(&table2_shape(), 400_000);
    assert_eq!(frames, 2);
}

#[test]
fn split_pipeline_runs_in_lockstep() {
    let cfg = SystemConfig {
        regions: SystemConfig::split_regions(),
        ..table2_shape()
    };
    let frames = lockstep(&cfg, 400_000);
    assert_eq!(frames, 2);
}

#[test]
fn vmux_method_runs_in_lockstep() {
    let cfg = SystemConfig {
        method: SimMethod::Vmux,
        ..table2_shape()
    };
    let frames = lockstep(&cfg, 400_000);
    assert_eq!(frames, 2);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Any schedule from the fuzzer's legal envelope runs in lockstep:
    /// the timing knobs move every reconfiguration window against the
    /// frame phase, and the compiled run must track the event-driven
    /// one through all of them, edge by edge.
    #[test]
    fn legal_envelope_schedules_run_in_lockstep(
        isr_pad_loops in 4u32..=64,
        cfg_divider in 1u32..=4,
        mem_wait_states in 0u32..=4,
        round_robin in any::<bool>(),
    ) {
        let base = SystemConfig::builder()
            .method(SimMethod::Resim)
            .width(32)
            .height(24)
            .n_frames(1)
            .payload_words(128)
            .build()
            .expect("valid config");
        let sch = FuzzSchedule {
            isr_pad_loops,
            cfg_divider,
            mem_wait_states,
            round_robin,
            ..FuzzSchedule::baseline(&base)
        };
        let frames = lockstep(&sch.apply(&base), 400_000);
        prop_assert_eq!(frames, 1);
    }
}
