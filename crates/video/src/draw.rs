//! Motion-vector overlay drawing — the job the PowerPC software performs
//! on each output frame (Figure 2: "CPU draws motion vectors").

use crate::frame::{Frame, MotionVector};

/// Draw a line from (x0, y0) to (x1, y1) with Bresenham's algorithm.
pub fn line(f: &mut Frame, x0: isize, y0: isize, x1: isize, y1: isize, v: u8) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        f.put(x, y, v);
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Overlay motion vectors: a bright ray from each anchor along its
/// displacement (scaled ×`scale`), with a marker dot at the anchor.
/// No-match vectors (cost = `u16::MAX`) are skipped.
pub fn draw_vectors(f: &mut Frame, vectors: &[MotionVector], scale: isize) {
    for v in vectors {
        if v.cost == u16::MAX || (v.dx == 0 && v.dy == 0) {
            continue;
        }
        let x0 = v.x as isize;
        let y0 = v.y as isize;
        line(
            f,
            x0,
            y0,
            x0 + v.dx as isize * scale,
            y0 + v.dy as isize * scale,
            255,
        );
        f.put(x0, y0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_and_diagonal_lines() {
        let mut f = Frame::new(16, 16);
        line(&mut f, 2, 3, 9, 3, 200);
        for x in 2..=9 {
            assert_eq!(f.get(x, 3), 200);
        }
        let mut g = Frame::new(16, 16);
        line(&mut g, 0, 0, 7, 7, 100);
        for i in 0..=7 {
            assert_eq!(g.get(i, i), 100);
        }
    }

    #[test]
    fn lines_clip_safely() {
        let mut f = Frame::new(8, 8);
        line(&mut f, -5, -5, 20, 20, 1); // must not panic
        assert_eq!(f.get(3, 3), 1);
    }

    #[test]
    fn vectors_draw_rays_and_skip_nomatch() {
        let mut f = Frame::new(32, 32);
        let vs = [
            MotionVector {
                x: 10,
                y: 10,
                dx: 3,
                dy: 0,
                cost: 1,
            },
            MotionVector {
                x: 20,
                y: 20,
                dx: 3,
                dy: 0,
                cost: u16::MAX,
            },
        ];
        draw_vectors(&mut f, &vs, 2);
        assert_eq!(f.get(10, 10), 0, "anchor dot");
        assert_eq!(f.get(13, 10), 255, "ray pixel");
        assert_eq!(f.get(16, 10), 255, "ray end (scaled)");
        assert_eq!(f.get(20, 20), 0, "no-match untouched");
        assert_eq!(f.get(23, 20), 0);
    }
}
