//! Motion-field analysis — the driver-assistance layer on top of the
//! optical flow.
//!
//! The AutoVision system computes motion vectors "to determine the speed
//! and distance of moving objects (e.g. cars) on the road so as to
//! identify potentially dangerous driving conditions". This module is
//! that application logic: cluster coherent motion vectors into detected
//! objects and classify the hazard each poses.

use crate::frame::MotionVector;

/// A cluster of coherent motion vectors — one detected moving object.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedObject {
    /// Bounding box (min x, min y, max x, max y) over the anchors.
    pub bbox: (u16, u16, u16, u16),
    /// Mean displacement in pixels/frame.
    pub velocity: (f64, f64),
    /// Number of anchors supporting the detection.
    pub support: usize,
}

impl DetectedObject {
    /// Speed in pixels/frame.
    pub fn speed(&self) -> f64 {
        (self.velocity.0 * self.velocity.0 + self.velocity.1 * self.velocity.1).sqrt()
    }
}

/// Hazard level of the overall scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Hazard {
    /// No coherent motion.
    Clear,
    /// Moving objects present, all slow.
    Monitor,
    /// A fast-moving object is in the scene.
    Warning,
}

/// Parameters for the clustering pass.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisParams {
    /// Anchors closer than this (Chebyshev distance, pixels) can join
    /// the same cluster.
    pub link_distance: u16,
    /// Max velocity difference (per axis) between linked anchors.
    pub velocity_tolerance: i8,
    /// Minimum anchors for a cluster to count as an object.
    pub min_support: usize,
    /// Speed (px/frame) above which an object raises [`Hazard::Warning`].
    pub warning_speed: f64,
}

impl Default for AnalysisParams {
    fn default() -> Self {
        AnalysisParams {
            link_distance: 12,
            velocity_tolerance: 1,
            min_support: 2,
            warning_speed: 2.0,
        }
    }
}

/// Cluster the motion field into detected objects (single-link
/// clustering over position + velocity coherence). No-match vectors and
/// zero vectors are background and ignored.
pub fn detect_objects(vectors: &[MotionVector], p: &AnalysisParams) -> Vec<DetectedObject> {
    let moving: Vec<&MotionVector> = vectors
        .iter()
        .filter(|v| v.cost != u16::MAX && (v.dx != 0 || v.dy != 0))
        .collect();
    let n = moving.len();
    // Union-find over the moving anchors.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            let (a, b) = (moving[i], moving[j]);
            let close = (a.x as i32 - b.x as i32).unsigned_abs() <= p.link_distance as u32
                && (a.y as i32 - b.y as i32).unsigned_abs() <= p.link_distance as u32;
            let coherent = (a.dx - b.dx).abs() <= p.velocity_tolerance
                && (a.dy - b.dy).abs() <= p.velocity_tolerance;
            if close && coherent {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    // Gather clusters.
    let mut clusters: std::collections::HashMap<usize, Vec<&MotionVector>> =
        std::collections::HashMap::new();
    for (i, mv) in moving.iter().enumerate() {
        let r = find(&mut parent, i);
        clusters.entry(r).or_default().push(*mv);
    }
    let mut objects: Vec<DetectedObject> = clusters
        .into_values()
        .filter(|c| c.len() >= p.min_support)
        .map(|c| {
            let (min_x, min_y, max_x, max_y) = c
                .iter()
                .fold((u16::MAX, u16::MAX, 0u16, 0u16), |(lx, ly, hx, hy), v| {
                    (lx.min(v.x), ly.min(v.y), hx.max(v.x), hy.max(v.y))
                });
            let vx = c.iter().map(|v| v.dx as f64).sum::<f64>() / c.len() as f64;
            let vy = c.iter().map(|v| v.dy as f64).sum::<f64>() / c.len() as f64;
            DetectedObject {
                bbox: (min_x, min_y, max_x, max_y),
                velocity: (vx, vy),
                support: c.len(),
            }
        })
        .collect();
    objects.sort_by(|a, b| b.support.cmp(&a.support).then(a.bbox.cmp(&b.bbox)));
    objects
}

/// Classify the scene's hazard from the detections.
pub fn classify(objects: &[DetectedObject], p: &AnalysisParams) -> Hazard {
    if objects.is_empty() {
        Hazard::Clear
    } else if objects.iter().any(|o| o.speed() >= p.warning_speed) {
        Hazard::Warning
    } else {
        Hazard::Monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u16, y: u16, dx: i8, dy: i8) -> MotionVector {
        MotionVector {
            x,
            y,
            dx,
            dy,
            cost: 3,
        }
    }

    #[test]
    fn empty_field_is_clear() {
        let objs = detect_objects(&[], &AnalysisParams::default());
        assert!(objs.is_empty());
        assert_eq!(classify(&objs, &AnalysisParams::default()), Hazard::Clear);
    }

    #[test]
    fn zero_and_nomatch_vectors_are_background() {
        let field = [
            v(10, 10, 0, 0),
            MotionVector {
                x: 20,
                y: 20,
                dx: 3,
                dy: 0,
                cost: u16::MAX,
            },
        ];
        assert!(detect_objects(&field, &AnalysisParams::default()).is_empty());
    }

    #[test]
    fn coherent_neighbours_form_one_object() {
        let field = [
            v(10, 10, 3, 0),
            v(18, 10, 3, 0),
            v(10, 18, 3, 1),
            v(18, 18, 3, 0),
        ];
        let objs = detect_objects(&field, &AnalysisParams::default());
        assert_eq!(objs.len(), 1);
        let o = &objs[0];
        assert_eq!(o.support, 4);
        assert_eq!(o.bbox, (10, 10, 18, 18));
        assert!((o.velocity.0 - 3.0).abs() < 1e-9);
        assert_eq!(classify(&objs, &AnalysisParams::default()), Hazard::Warning);
    }

    #[test]
    fn distant_or_incoherent_vectors_split() {
        // Two groups far apart, plus one anchor moving the other way in
        // the middle (incoherent with both).
        let field = [
            v(10, 10, 3, 0),
            v(18, 10, 3, 0),
            v(60, 10, -3, 0),
            v(68, 10, -3, 0),
            v(40, 10, 3, -3),
        ];
        let objs = detect_objects(&field, &AnalysisParams::default());
        assert_eq!(objs.len(), 2, "{objs:?}");
        assert!(objs.iter().all(|o| o.support == 2));
    }

    #[test]
    fn slow_objects_only_monitor() {
        let field = [v(10, 10, 1, 0), v(18, 10, 1, 0), v(14, 18, 1, 0)];
        let objs = detect_objects(&field, &AnalysisParams::default());
        assert_eq!(objs.len(), 1);
        assert_eq!(classify(&objs, &AnalysisParams::default()), Hazard::Monitor);
    }

    #[test]
    fn min_support_filters_speckle() {
        let field = [v(10, 10, 3, 0)]; // a single noisy anchor
        let p = AnalysisParams::default();
        assert!(detect_objects(&field, &p).is_empty());
        let p1 = AnalysisParams {
            min_support: 1,
            ..p
        };
        assert_eq!(detect_objects(&field, &p1).len(), 1);
    }

    #[test]
    fn speed_is_euclidean() {
        let o = DetectedObject {
            bbox: (0, 0, 1, 1),
            velocity: (3.0, 4.0),
            support: 2,
        };
        assert!((o.speed() - 5.0).abs() < 1e-9);
    }
}
