//! Golden (software) model of the Matching Engine.
//!
//! The ME compares two consecutive census (feature) images and computes
//! motion vectors: for each anchor on a regular grid it searches a
//! ±[`MatchParams::search_radius`] window in the *previous* census image
//! for the displacement minimising the summed Hamming distance over a
//! patch. The displacement with minimal cost becomes the motion vector —
//! the speed/direction estimate the driver-assistance software draws and
//! analyses.

use crate::census::hamming;
use crate::frame::{Frame, MotionVector};

/// Matching engine parameters (DCR-programmable in the RTL engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchParams {
    /// Grid stride between anchors, in pixels.
    pub grid_step: usize,
    /// Patch half-size: the cost sums over a `(2h+1)²` patch.
    pub patch_half: usize,
    /// Search radius in pixels (displacements in `-r..=r`).
    pub search_radius: usize,
    /// Vectors with best cost above this are reported as no-match.
    pub max_cost: u16,
}

impl Default for MatchParams {
    fn default() -> Self {
        MatchParams {
            grid_step: 8,
            patch_half: 2,
            search_radius: 4,
            max_cost: 60,
        }
    }
}

/// Patch cost of displacement (dx, dy) for the anchor (x, y):
/// `sum over patch of hamming(curr[p], prev[p - d])`.
pub fn match_cost(
    prev: &Frame,
    curr: &Frame,
    x: usize,
    y: usize,
    dx: isize,
    dy: isize,
    patch_half: usize,
) -> u32 {
    let h = patch_half as isize;
    let mut cost = 0u32;
    for py in -h..=h {
        for px in -h..=h {
            let cx = x as isize + px;
            let cy = y as isize + py;
            let c = curr.get_clamped(cx, cy);
            let p = prev.get_clamped(cx - dx, cy - dy);
            cost += hamming(c, p);
        }
    }
    cost
}

/// Compute the motion field between two census images. Anchors run over
/// the interior grid only (a full search window must fit in the frame).
pub fn match_frames(prev: &Frame, curr: &Frame, p: &MatchParams) -> Vec<MotionVector> {
    assert_eq!(prev.width(), curr.width());
    assert_eq!(prev.height(), curr.height());
    let margin = p.search_radius + p.patch_half;
    let mut out = Vec::new();
    let mut y = margin;
    while y + margin < curr.height() {
        let mut x = margin;
        while x + margin < curr.width() {
            let r = p.search_radius as isize;
            let mut best = (0isize, 0isize, u32::MAX);
            for dy in -r..=r {
                for dx in -r..=r {
                    let c = match_cost(prev, curr, x, y, dx, dy, p.patch_half);
                    // Ties break towards the smaller displacement so a
                    // static scene yields (0,0) — the RTL engine scans
                    // in the same order for bit-exact agreement.
                    let better = c < best.2
                        || (c == best.2
                            && (dx * dx + dy * dy) < (best.0 * best.0 + best.1 * best.1));
                    if better {
                        best = (dx, dy, c);
                    }
                }
            }
            let cost = best.2.min(u16::MAX as u32) as u16;
            out.push(MotionVector {
                x: x as u16,
                y: y as u16,
                dx: best.0 as i8,
                dy: best.1 as i8,
                cost: if cost > p.max_cost { u16::MAX } else { cost },
            });
            x += p.grid_step;
        }
        y += p.grid_step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census_transform;

    fn textured(width: usize, height: usize, shift: (isize, isize)) -> Frame {
        // A pseudo-random texture translated by `shift`.
        let mut f = Frame::new(width, height);
        for y in 0..height as isize {
            for x in 0..width as isize {
                let sx = x - shift.0;
                let sy = y - shift.1;
                let v = ((sx * 31 + sy * 17) ^ (sx * sy + 7)) as u32;
                f.put(x, y, (v % 251) as u8);
            }
        }
        f
    }

    #[test]
    fn static_scene_yields_zero_vectors() {
        let f = textured(64, 48, (0, 0));
        let c = census_transform(&f);
        let vs = match_frames(&c, &c, &MatchParams::default());
        assert!(!vs.is_empty());
        for v in &vs {
            assert_eq!((v.dx, v.dy), (0, 0), "at ({},{})", v.x, v.y);
            assert_eq!(v.cost, 0);
        }
    }

    #[test]
    fn global_translation_is_recovered() {
        for shift in [(2isize, 0isize), (0, 3), (-1, 2), (3, -3)] {
            let prev = census_transform(&textured(64, 48, (0, 0)));
            let curr = census_transform(&textured(64, 48, shift));
            let vs = match_frames(&prev, &curr, &MatchParams::default());
            let good = vs
                .iter()
                .filter(|v| (v.dx as isize, v.dy as isize) == shift)
                .count();
            assert!(
                good * 10 >= vs.len() * 8,
                "shift {shift:?}: only {good}/{} vectors correct",
                vs.len()
            );
        }
    }

    #[test]
    fn cost_threshold_marks_garbage_matches() {
        // Uncorrelated frames: best costs are high, so vectors are
        // flagged as no-match.
        let prev = census_transform(&textured(64, 48, (0, 0)));
        let mut junk = Frame::new(64, 48);
        for (i, p) in junk.pixels_mut().iter_mut().enumerate() {
            *p = ((i * 2654435761) >> 7) as u8;
        }
        let curr = census_transform(&junk);
        let strict = MatchParams {
            max_cost: 5,
            ..Default::default()
        };
        let vs = match_frames(&prev, &curr, &strict);
        let rejected = vs.iter().filter(|v| v.cost == u16::MAX).count();
        assert!(rejected * 10 >= vs.len() * 5, "{rejected}/{}", vs.len());
    }

    #[test]
    fn grid_geometry() {
        let f = census_transform(&textured(64, 48, (0, 0)));
        let p = MatchParams::default();
        let vs = match_frames(&f, &f, &p);
        let margin = p.search_radius + p.patch_half;
        for v in &vs {
            assert!(v.x as usize >= margin && (v.x as usize) + margin < 64);
            assert!(v.y as usize >= margin && (v.y as usize) + margin < 48);
            assert_eq!((v.x as usize - margin) % p.grid_step, 0);
        }
    }
}
