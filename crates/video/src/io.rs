//! Binary PGM (P5) frame files — the on-disk format the Video VIPs read
//! and write, standing in for the paper's "video files on disk".

use crate::frame::Frame;
use std::io::{self, Read, Write};
use std::path::Path;

/// Write a frame as binary PGM.
pub fn write_pgm(f: &Frame, w: &mut impl Write) -> io::Result<()> {
    write!(w, "P5\n{} {}\n255\n", f.width(), f.height())?;
    w.write_all(f.pixels())
}

/// Write a frame to a PGM file.
pub fn save_pgm(f: &Frame, path: impl AsRef<Path>) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    write_pgm(f, &mut file)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read a binary PGM frame.
pub fn read_pgm(r: &mut impl Read) -> io::Result<Frame> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    // Parse header tokens: magic, width, height, maxval, then raster.
    let mut pos = 0usize;
    let mut tokens = Vec::new();
    while tokens.len() < 4 {
        // Skip whitespace and comments.
        while pos < bytes.len() {
            if bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else if bytes[pos].is_ascii_whitespace() {
                pos += 1;
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(bad("truncated PGM header"));
        }
        tokens.push(
            std::str::from_utf8(&bytes[start..pos])
                .map_err(|_| bad("bad header"))?
                .to_string(),
        );
    }
    if tokens[0] != "P5" {
        return Err(bad("not a binary PGM (P5) file"));
    }
    let width: usize = tokens[1].parse().map_err(|_| bad("bad width"))?;
    let height: usize = tokens[2].parse().map_err(|_| bad("bad height"))?;
    let maxval: usize = tokens[3].parse().map_err(|_| bad("bad maxval"))?;
    if maxval != 255 {
        return Err(bad("only maxval 255 supported"));
    }
    pos += 1; // single whitespace after maxval
    if bytes.len() < pos + width * height {
        return Err(bad("truncated PGM raster"));
    }
    Ok(Frame::from_data(
        width,
        height,
        bytes[pos..pos + width * height].to_vec(),
    ))
}

/// Read a frame from a PGM file.
pub fn load_pgm(path: impl AsRef<Path>) -> io::Result<Frame> {
    let mut file = std::fs::File::open(path)?;
    read_pgm(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Scene;

    #[test]
    fn round_trip_through_memory() {
        let f = Scene::new(32, 24, 2, 9).frame(3);
        let mut buf = Vec::new();
        write_pgm(&f, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n32 24\n255\n"));
        let g = read_pgm(&mut buf.as_slice()).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn round_trip_through_file() {
        let dir = std::env::temp_dir().join("video_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.pgm");
        let f = Scene::new(16, 8, 1, 1).frame(0);
        save_pgm(&f, &path).unwrap();
        assert_eq!(load_pgm(&path).unwrap(), f);
    }

    #[test]
    fn comments_in_header_are_skipped() {
        let mut data = b"P5\n# created by a tool\n4 2\n255\n".to_vec();
        data.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let f = read_pgm(&mut data.as_slice()).unwrap();
        assert_eq!(f.width(), 4);
        assert_eq!(f.get(3, 1), 8);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_pgm(&mut &b"P6\n1 1\n255\nX"[..]).is_err());
        assert!(read_pgm(&mut &b"P5\n4 4\n255\nxx"[..]).is_err());
        assert!(read_pgm(&mut &b""[..]).is_err());
    }
}
