//! Deterministic synthetic road scenes.
//!
//! The paper's testbench replaces the camera with a Video VIP that reads
//! frames from files on disk. We additionally provide a generator of
//! synthetic traffic scenes — textured background with rectangular
//! "vehicles" moving at constant velocities — so every experiment has a
//! known ground-truth motion field to score the optical-flow output
//! against, without shipping video data.

use crate::frame::Frame;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A moving object (vehicle) in the scene.
#[derive(Debug, Clone, Copy)]
pub struct Object {
    /// Top-left x at t=0, in pixels.
    pub x0: f64,
    /// Top-left y at t=0.
    pub y0: f64,
    /// Width.
    pub w: usize,
    /// Height.
    pub h: usize,
    /// Horizontal velocity in pixels/frame.
    pub vx: f64,
    /// Vertical velocity in pixels/frame.
    pub vy: f64,
    /// Base brightness.
    pub shade: u8,
}

impl Object {
    /// Top-left position at frame `t`.
    pub fn position(&self, t: usize) -> (isize, isize) {
        (
            (self.x0 + self.vx * t as f64).round() as isize,
            (self.y0 + self.vy * t as f64).round() as isize,
        )
    }
}

/// A deterministic scene: static textured background plus moving objects.
#[derive(Debug, Clone)]
pub struct Scene {
    width: usize,
    height: usize,
    background: Frame,
    objects: Vec<Object>,
}

impl Scene {
    /// Build a scene with `n_objects` vehicles, deterministically from
    /// `seed`.
    pub fn new(width: usize, height: usize, n_objects: usize, seed: u64) -> Scene {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut background = Frame::new(width, height);
        // Textured road-like background: horizontal bands + noise.
        for y in 0..height {
            for x in 0..width {
                let band = ((y / 8) % 2) as u8 * 20 + 60;
                let noise: u8 = rng.random_range(0..25);
                background.put(x as isize, y as isize, band + noise);
            }
        }
        let mut objects = Vec::with_capacity(n_objects);
        for _ in 0..n_objects {
            objects.push(Object {
                x0: rng.random_range(0.0..width as f64 * 0.8),
                y0: rng.random_range(0.0..height as f64 * 0.8),
                w: rng.random_range(8..(width / 4).max(9)),
                h: rng.random_range(6..(height / 4).max(7)),
                vx: rng.random_range(-3.0..3.0),
                vy: rng.random_range(-1.5..1.5),
                shade: rng.random_range(140..240),
            });
        }
        Scene {
            width,
            height,
            background,
            objects,
        }
    }

    /// Scene width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Scene height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The moving objects (ground truth for scoring).
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// Render frame `t`.
    pub fn frame(&self, t: usize) -> Frame {
        let mut f = self.background.clone();
        for obj in &self.objects {
            let (ox, oy) = obj.position(t);
            for dy in 0..obj.h as isize {
                for dx in 0..obj.w as isize {
                    // Aperiodic internal texture (integer hash) so census
                    // matching cannot alias at small displacements.
                    let h = (dx as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((dy as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
                    let tex = ((h >> 32) % 60) as u8;
                    f.put(ox + dx, oy + dy, obj.shade.saturating_sub(tex));
                }
            }
        }
        f
    }

    /// Ground-truth displacement of the object covering (x, y) between
    /// frames `t-1` and `t`, or (0,0) for background.
    pub fn true_motion(&self, x: usize, y: usize, t: usize) -> (i32, i32) {
        // Objects later in the list draw on top.
        for obj in self.objects.iter().rev() {
            let (ox, oy) = obj.position(t);
            let inside = x as isize >= ox
                && (x as isize) < ox + obj.w as isize
                && y as isize >= oy
                && (y as isize) < oy + obj.h as isize;
            if inside {
                let (px, py) = obj.position(t - 1);
                return ((ox - px) as i32, (oy - py) as i32);
            }
        }
        (0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census_transform;
    use crate::matching::{match_frames, MatchParams};

    #[test]
    fn deterministic_per_seed() {
        let a = Scene::new(64, 48, 3, 42);
        let b = Scene::new(64, 48, 3, 42);
        assert_eq!(a.frame(5), b.frame(5));
        let c = Scene::new(64, 48, 3, 43);
        assert_ne!(a.frame(5), c.frame(5));
    }

    #[test]
    fn objects_move_at_their_velocity() {
        let s = Scene::new(128, 96, 1, 7);
        let o = s.objects()[0];
        let (x1, y1) = o.position(1);
        let (x0, y0) = o.position(0);
        assert!(((x1 - x0) as f64 - o.vx).abs() <= 1.0);
        assert!(((y1 - y0) as f64 - o.vy).abs() <= 1.0);
    }

    #[test]
    fn optical_flow_detects_a_fast_object() {
        // One big object moving right at ~3 px/frame on a static
        // background: the matcher must report rightward motion inside
        // the object and ~zero outside.
        let mut s = Scene::new(96, 64, 0, 1);
        s.objects.push(Object {
            x0: 20.0,
            y0: 20.0,
            w: 30,
            h: 20,
            vx: 3.0,
            vy: 0.0,
            shade: 220,
        });
        let c0 = census_transform(&s.frame(0));
        let c1 = census_transform(&s.frame(1));
        let vs = match_frames(&c0, &c1, &MatchParams::default());
        let moving: Vec<_> = vs
            .iter()
            .filter(|v| s.true_motion(v.x as usize, v.y as usize, 1) != (0, 0))
            .collect();
        assert!(!moving.is_empty());
        let correct = moving.iter().filter(|v| v.dx >= 2).count();
        assert!(
            correct * 10 >= moving.len() * 6,
            "{correct}/{} anchors saw the motion",
            moving.len()
        );
    }

    #[test]
    fn background_motion_is_zero() {
        let s = Scene::new(64, 48, 0, 5);
        assert_eq!(s.true_motion(10, 10, 3), (0, 0));
    }
}
