//! Golden (software) model of the Census Image Engine.
//!
//! The census transform maps each pixel to an 8-bit signature encoding
//! which of its eight 3×3 neighbours are darker than it. It is the
//! feature extractor of the AutoVision optical-flow pipeline: invariant
//! to monotone illumination changes (headlights, tunnel entry — the very
//! driving conditions the system reconfigures for), and cheap to match
//! with Hamming distance.
//!
//! Neighbour bit order (bit 7 first):
//!
//! ```text
//!   7 6 5
//!   4 . 3
//!   2 1 0
//! ```
//!
//! Out-of-frame neighbours read as 0 and therefore can never be darker
//! than a non-zero centre only if the centre is 0 too; the RTL engine
//! implements the identical border policy so outputs match bit-exactly.

use crate::frame::Frame;

/// Offsets matching the bit order documented above.
pub const NEIGHBOURS: [(isize, isize); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Census signature of the pixel at (x, y).
#[inline]
pub fn census_pixel(f: &Frame, x: usize, y: usize) -> u8 {
    let c = f.get(x, y);
    let mut sig = 0u8;
    for (i, (dx, dy)) in NEIGHBOURS.iter().enumerate() {
        let n = f.get_clamped(x as isize + dx, y as isize + dy);
        if n < c {
            sig |= 0x80 >> i;
        }
    }
    sig
}

/// Full-frame census transform (the CIE's golden output).
pub fn census_transform(f: &Frame) -> Frame {
    let mut out = Frame::new(f.width(), f.height());
    for y in 0..f.height() {
        for x in 0..f.width() {
            let sig = census_pixel(f, x, y);
            out.put(x as isize, y as isize, sig);
        }
    }
    out
}

/// Hamming distance between two census signatures.
#[inline]
pub fn hamming(a: u8, b: u8) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_has_zero_signatures() {
        let f = Frame::from_data(4, 4, vec![100; 16]);
        let c = census_transform(&f);
        // Interior pixels: no neighbour darker. Border pixels see
        // outside-zero neighbours, which ARE darker than 100.
        assert_eq!(c.get(1, 1), 0);
        assert_eq!(c.get(2, 2), 0);
        assert_ne!(c.get(0, 0), 0, "border sees darker outside-zeros");
    }

    #[test]
    fn single_bright_pixel_pattern() {
        let mut f = Frame::new(8, 8);
        for p in f.pixels_mut() {
            *p = 50;
        }
        f.put(4, 4, 200);
        let c = census_transform(&f);
        // The bright centre sees all 8 neighbours darker.
        assert_eq!(c.get(4, 4), 0xFF);
        // Its neighbours see exactly zero darker pixels... except none,
        // since all their neighbours are 50 or 200 (not darker than 50).
        assert_eq!(c.get(3, 3), 0);
    }

    #[test]
    fn signature_bit_positions() {
        // Gradient left->right: each pixel's left neighbours are darker.
        let f = Frame::from_data(4, 3, vec![0, 10, 20, 30, 0, 10, 20, 30, 0, 10, 20, 30]);
        let c = census_transform(&f);
        // Pixel (2,1)=20: darker neighbours are the x=1 column (10) and
        // x=... bits: 7(-1,-1) 4(-1,0) 2(-1,1) set.
        assert_eq!(c.get(2, 1), 0b1001_0100);
    }

    #[test]
    fn illumination_invariance_interior() {
        // Adding a constant (without saturation) leaves interior
        // signatures unchanged — the property that makes census robust
        // for driver assistance.
        let base: Vec<u8> = (0..64).map(|i| (i * 3 % 97) as u8).collect();
        let f1 = Frame::from_data(8, 8, base.clone());
        let f2 = Frame::from_data(8, 8, base.iter().map(|p| p + 100).collect());
        let c1 = census_transform(&f1);
        let c2 = census_transform(&f2);
        for y in 1..7 {
            for x in 1..7 {
                assert_eq!(c1.get(x, y), c2.get(x, y), "at ({x},{y})");
            }
        }
    }

    #[test]
    fn hamming_distance() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0xFF, 0), 8);
        assert_eq!(hamming(0b1010, 0b0110), 2);
    }
}
