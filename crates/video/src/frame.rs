//! 8-bit grayscale frames and their packed DMA representation.

/// An 8-bit grayscale video frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Frame {
    /// A black frame. Width must be a multiple of 4 so frames pack
    /// exactly into 32-bit bus words.
    pub fn new(width: usize, height: usize) -> Frame {
        assert!(width > 0 && height > 0, "empty frame");
        assert!(
            width.is_multiple_of(4),
            "width must be a multiple of 4 (bus packing)"
        );
        Frame {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Build from raw row-major pixels.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Frame {
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        assert!(
            width.is_multiple_of(4),
            "width must be a multiple of 4 (bus packing)"
        );
        Frame {
            width,
            height,
            data,
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-pixel frame (cannot actually occur).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pixel at (x, y). Panics out of range.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Pixel at (x, y), 0 outside the frame (border policy used by the
    /// golden models).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            0
        } else {
            self.data[y as usize * self.width + x as usize]
        }
    }

    /// Set pixel at (x, y); silently ignores out-of-frame coordinates
    /// (convenient for drawing).
    #[inline]
    pub fn put(&mut self, x: isize, y: isize, v: u8) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.data[y as usize * self.width + x as usize] = v;
        }
    }

    /// Raw pixels, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixels.
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Pack into 32-bit words, 4 pixels per word, little-endian (pixel x
    /// in byte x%4) — the layout video DMA uses in main memory.
    pub fn to_words(&self) -> Vec<u32> {
        self.data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Unpack from the DMA word layout.
    pub fn from_words(width: usize, height: usize, words: &[u32]) -> Frame {
        assert_eq!(words.len() * 4, width * height, "word count mismatch");
        let mut data = Vec::with_capacity(width * height);
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        Frame::from_data(width, height, data)
    }

    /// Mean absolute pixel difference against another frame of the same
    /// geometry (scoreboard metric).
    pub fn mean_abs_diff(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a as i32 - *b as i32).unsigned_abs() as u64)
            .sum();
        sum as f64 / self.data.len() as f64
    }

    /// Count of exactly differing pixels.
    pub fn differing_pixels(&self, other: &Frame) -> usize {
        self.data
            .iter()
            .zip(&other.data)
            .filter(|(a, b)| a != b)
            .count()
    }
}

/// A motion vector anchored at (x, y) pointing (dx, dy), i.e. the content
/// at this position moved by (dx, dy) since the previous frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionVector {
    /// Anchor x.
    pub x: u16,
    /// Anchor y.
    pub y: u16,
    /// Horizontal displacement.
    pub dx: i8,
    /// Vertical displacement.
    pub dy: i8,
    /// Match cost (lower = better); `u16::MAX` means "no valid match".
    pub cost: u16,
}

impl MotionVector {
    /// Pack as a 32-bit word for memory transport:
    /// `[x:12 | y:12 | dx:4 | dy:4]`, displacements biased by +8.
    pub fn pack(&self) -> u32 {
        debug_assert!((-8..8).contains(&self.dx) && (-8..8).contains(&self.dy));
        ((self.x as u32 & 0xFFF) << 20)
            | ((self.y as u32 & 0xFFF) << 8)
            | (((self.dx + 8) as u32 & 0xF) << 4)
            | ((self.dy + 8) as u32 & 0xF)
    }

    /// Unpack from the 32-bit transport word (cost is not transported).
    pub fn unpack(w: u32) -> MotionVector {
        MotionVector {
            x: ((w >> 20) & 0xFFF) as u16,
            y: ((w >> 8) & 0xFFF) as u16,
            dx: (((w >> 4) & 0xF) as i8) - 8,
            dy: ((w & 0xF) as i8) - 8,
            cost: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_packing_round_trips() {
        let mut f = Frame::new(8, 2);
        for (i, p) in f.pixels_mut().iter_mut().enumerate() {
            *p = i as u8;
        }
        let words = f.to_words();
        assert_eq!(words.len(), 4);
        assert_eq!(words[0], 0x03020100);
        let g = Frame::from_words(8, 2, &words);
        assert_eq!(f, g);
    }

    #[test]
    fn clamped_reads_are_zero_outside() {
        let mut f = Frame::new(4, 4);
        f.put(0, 0, 9);
        assert_eq!(f.get_clamped(0, 0), 9);
        assert_eq!(f.get_clamped(-1, 0), 0);
        assert_eq!(f.get_clamped(0, 4), 0);
        assert_eq!(f.get_clamped(4, 3), 0);
    }

    #[test]
    fn put_ignores_out_of_range() {
        let mut f = Frame::new(4, 4);
        f.put(-1, -1, 200);
        f.put(100, 100, 200);
        assert!(f.pixels().iter().all(|p| *p == 0));
    }

    #[test]
    fn diff_metrics() {
        let a = Frame::from_data(4, 1, vec![0, 10, 20, 30]);
        let b = Frame::from_data(4, 1, vec![0, 14, 20, 26]);
        assert_eq!(a.differing_pixels(&b), 2);
        assert!((a.mean_abs_diff(&b) - 2.0).abs() < 1e-9);
        assert_eq!(a.mean_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn odd_width_rejected() {
        Frame::new(5, 5);
    }

    #[test]
    fn motion_vector_pack_round_trip() {
        for (x, y, dx, dy) in [(0u16, 0u16, 0i8, 0i8), (319, 239, -8, 7), (100, 50, 3, -4)] {
            let v = MotionVector {
                x,
                y,
                dx,
                dy,
                cost: 0,
            };
            let u = MotionVector::unpack(v.pack());
            assert_eq!((u.x, u.y, u.dx, u.dy), (x, y, dx, dy));
        }
    }
}
