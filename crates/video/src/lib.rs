//! # video — frames, golden models and synthetic scenes
//!
//! The software-reference half of the AutoVision video pipeline:
//!
//! * [`frame`] — 8-bit grayscale [`Frame`]s, DMA word packing, and the
//!   [`MotionVector`] transport format;
//! * [`census`] — the golden census transform (what the Census Image
//!   Engine must produce, bit-exactly);
//! * [`matching`] — the golden optical-flow matcher (what the Matching
//!   Engine must produce);
//! * [`scene`] — deterministic synthetic traffic scenes with ground-truth
//!   motion, standing in for the project's camera footage;
//! * [`draw`] — the motion-vector overlay the PowerPC software renders;
//! * [`io`] — binary PGM files for the Video VIPs;
//! * [`analysis`] — the driver-assistance layer: cluster the motion
//!   field into detected objects and classify scene hazard.
//!
//! The golden models double as the scoreboard reference in the
//! verification environment: any corruption introduced by a DPR bug (lost
//! bitstream words, missing isolation, stale engine state) shows up as a
//! pixel or vector mismatch against these functions.

pub mod analysis;
pub mod census;
pub mod draw;
pub mod frame;
pub mod io;
pub mod matching;
pub mod scene;

pub use analysis::{classify, detect_objects, AnalysisParams, DetectedObject, Hazard};
pub use census::{census_pixel, census_transform, hamming};
pub use draw::{draw_vectors, line};
pub use frame::{Frame, MotionVector};
pub use io::{load_pgm, read_pgm, save_pgm, write_pgm};
pub use matching::{match_cost, match_frames, MatchParams};
pub use scene::{Object, Scene};
