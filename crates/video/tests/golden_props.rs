//! Property-based tests for the golden video models.

use proptest::prelude::*;
use video::{census_transform, match_frames, Frame, MatchParams, MotionVector};

fn arb_frame(max_w: usize, max_h: usize) -> impl Strategy<Value = Frame> {
    (1..=max_w / 4, 1..=max_h).prop_flat_map(|(wq, h)| {
        let w = wq * 4;
        prop::collection::vec(any::<u8>(), w * h).prop_map(move |data| Frame::from_data(w, h, data))
    })
}

proptest! {
    /// Word packing is a lossless bijection.
    #[test]
    fn frame_word_packing_round_trips(f in arb_frame(64, 32)) {
        let words = f.to_words();
        let g = Frame::from_words(f.width(), f.height(), &words);
        prop_assert_eq!(f, g);
    }

    /// PGM serialisation round-trips.
    #[test]
    fn pgm_round_trips(f in arb_frame(64, 32)) {
        let mut buf = Vec::new();
        video::write_pgm(&f, &mut buf).unwrap();
        let g = video::read_pgm(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(f, g);
    }

    /// Census is deterministic and bounded: flat regions give 0
    /// signatures in the strict interior.
    #[test]
    fn census_flat_interior_is_zero(w in 1usize..=12, h in 3usize..=12, v in 1u8..255) {
        let w = w * 4;
        let f = Frame::from_data(w, h, vec![v; w * h]);
        let c = census_transform(&f);
        for y in 1..h - 1 {
            for x in 1..w.max(2) - 1 {
                if x >= 1 && x < w - 1 {
                    prop_assert_eq!(c.get(x, y), 0);
                }
            }
        }
    }

    /// Census interior signatures are invariant under a constant
    /// brightness offset that does not saturate. Pixels are generated in
    /// 0..=200 so any offset up to 55 is saturation-free.
    #[test]
    fn census_illumination_invariance(
        (f, offset) in (1usize..=8, 3usize..=16, 1u8..=55).prop_flat_map(|(wq, h, off)| {
            let w = wq * 4;
            (
                prop::collection::vec(0u8..=200, w * h)
                    .prop_map(move |data| Frame::from_data(w, h, data)),
                Just(off),
            )
        })
    ) {
        let g = Frame::from_data(
            f.width(),
            f.height(),
            f.pixels().iter().map(|p| p + offset).collect(),
        );
        let cf = census_transform(&f);
        let cg = census_transform(&g);
        for y in 1..f.height().saturating_sub(1) {
            for x in 1..f.width() - 1 {
                prop_assert_eq!(cf.get(x, y), cg.get(x, y));
            }
        }
    }

    /// Matching a census image against itself yields all-zero vectors
    /// with zero cost.
    #[test]
    fn self_match_is_identity(f in arb_frame(48, 32)) {
        prop_assume!(f.height() >= 16);
        let c = census_transform(&f);
        let vs = match_frames(&c, &c, &MatchParams::default());
        for v in vs {
            prop_assert_eq!((v.dx, v.dy), (0, 0));
            prop_assert!(v.cost == 0 || v.cost == u16::MAX);
        }
    }

    /// Motion vector transport packing round-trips over its full domain.
    #[test]
    fn motion_vector_packing(x in 0u16..4096, y in 0u16..4096, dx in -8i8..8, dy in -8i8..8) {
        let v = MotionVector { x, y, dx, dy, cost: 0 };
        let u = MotionVector::unpack(v.pack());
        prop_assert_eq!((u.x, u.y, u.dx, u.dy), (x, y, dx, dy));
    }
}
