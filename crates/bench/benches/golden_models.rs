//! Criterion: golden-model throughput (census transform and optical-flow
//! matching) — the software reference the scoreboard runs on every
//! experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use video::{census_transform, match_frames, MatchParams, Scene};

fn bench_census(c: &mut Criterion) {
    let mut g = c.benchmark_group("census_transform");
    for (w, h) in [(64usize, 48usize), (320, 240)] {
        let f = Scene::new(w, h, 3, 1).frame(0);
        g.throughput(Throughput::Elements((w * h) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &f,
            |b, f| b.iter(|| census_transform(black_box(f))),
        );
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("optical_flow_match");
    g.sample_size(10);
    for (w, h) in [(64usize, 48usize), (320, 240)] {
        let s = Scene::new(w, h, 3, 1);
        let c0 = census_transform(&s.frame(0));
        let c1 = census_transform(&s.frame(1));
        g.throughput(Throughput::Elements((w * h) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}")),
            &(c0, c1),
            |b, (c0, c1)| {
                b.iter(|| match_frames(black_box(c0), black_box(c1), &MatchParams::default()))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_census, bench_matching);
criterion_main!(benches);
