//! Criterion: end-to-end cost of simulating one video frame through the
//! complete system (small geometry), under both methods — the per-frame
//! figure the Table II harness scales up, and the direct comparison of
//! ReSim's overhead against the Virtual-Multiplexing baseline.

use autovision::{AvSystem, SimMethod, SystemConfig};
use bench::small_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_frame(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_system_frame");
    g.sample_size(10);
    for method in [SimMethod::Vmux, SimMethod::Resim] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &method,
            |b, &method| {
                b.iter_with_setup(
                    || {
                        let cfg = SystemConfig {
                            method,
                            ..small_config()
                        };
                        AvSystem::build(cfg)
                    },
                    |mut sys| {
                        let out = sys.run(2_000_000);
                        assert!(!out.hung);
                        black_box(out.cycles)
                    },
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_frame);
criterion_main!(benches);
