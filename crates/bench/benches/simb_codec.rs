//! Criterion: SimB generation and parsing throughput (the bitstream
//! substitute must be cheap — its cost is part of the "trivial
//! simulation overhead" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use resim::{build_simb, SimbKind, SimbParser};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("simb_build");
    for payload in [100usize, 4096, 131072] {
        g.throughput(Throughput::Elements(payload as u64));
        g.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |b, &p| {
            b.iter(|| build_simb(SimbKind::Config { module: 2 }, 1, black_box(p), 7))
        });
    }
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("simb_parse");
    for payload in [100usize, 4096, 131072] {
        let simb = build_simb(SimbKind::Config { module: 2 }, 1, payload, 7);
        g.throughput(Throughput::Elements(simb.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(payload), &simb, |b, simb| {
            b.iter(|| {
                let mut p = SimbParser::new();
                let mut events = 0usize;
                for w in simb {
                    events += p.push(black_box(*w)).len();
                }
                events
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_parse);
criterion_main!(benches);
