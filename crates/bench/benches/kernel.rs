//! Criterion: simulation-kernel throughput — clocked evals/second on a
//! synthetic design (a bank of counters), and 4-value vector operation
//! cost. These bound how fast any full-system simulation can go.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtlsim::{Clock, CompKind, Ctx, Lv, Simulator};
use std::hint::black_box;

fn bench_clocked_evals(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_counters");
    for n_counters in [4usize, 32, 128] {
        g.throughput(Throughput::Elements(1000 * n_counters as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(n_counters),
            &n_counters,
            |b, &n| {
                b.iter_with_setup(
                    || {
                        let mut sim = Simulator::new();
                        sim.set_profiling(false);
                        let clk = sim.signal("clk", 1);
                        sim.add_component(
                            "clk",
                            CompKind::Vip,
                            Box::new(Clock::new(clk, 10_000)),
                            &[],
                        );
                        for i in 0..n {
                            let q = sim.signal_init(format!("q{i}"), 32, 0);
                            sim.add_component(
                                format!("cnt{i}"),
                                CompKind::UserStatic,
                                Box::new(move |ctx: &mut Ctx<'_>| {
                                    if ctx.rose(clk) {
                                        let v = ctx.get(q) + Lv::from_u64(32, 1);
                                        ctx.set(q, v);
                                    }
                                }),
                                &[clk],
                            );
                        }
                        sim
                    },
                    |mut sim| {
                        sim.run_for(1_000 * 10_000).unwrap(); // 1000 cycles
                        black_box(sim.stats().evals)
                    },
                )
            },
        );
    }
    g.finish();
}

fn bench_lv_ops(c: &mut Criterion) {
    let a = Lv::from_planes(64, 0xDEAD_BEEF_CAFE_F00D, 0x0000_FFFF_0000_0000);
    let b = Lv::from_planes(64, 0x1234_5678_9ABC_DEF0, 0);
    c.bench_function("lv_and_or_xor_add", |bench| {
        bench.iter(|| {
            let x = black_box(a) & black_box(b);
            let y = black_box(a) | black_box(b);
            let z = black_box(a) ^ black_box(b);
            let w = black_box(b) + black_box(b);
            (x, y, z, w)
        })
    });
}

criterion_group!(benches, bench_clocked_evals, bench_lv_ops);
criterion_main!(benches);
