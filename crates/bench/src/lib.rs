//! # bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md §3):
//!
//! | target | artifact |
//! |---|---|
//! | `table1_simb` | Table I — the annotated SimB word stream |
//! | `table2_frame_time` | Table II — time to simulate one video frame |
//! | `overhead_profile` | §V — simulation-time share of the ReSim artifacts |
//! | `table3_bugs` | Table III — the detection matrix |
//! | `figure5_progress` | Figure 5 — development timeline |
//! | `turnaround` | §V-B — debug-turnaround comparison |
//! | `ablation_simb_len` | §IV-B — SimB length accuracy/turnaround trade-off |
//! | `ablation_error_source` | error-injection policy ablation |
//! | `two_region_pipeline` | two-region split pipeline, per-region DPR statistics |
//!
//! plus Criterion micro-benchmarks (`cargo bench`) for the SimB codec,
//! the simulation kernel, the golden video models and a full-system
//! frame. The boilerplate the bins share (thread counts, argv, the
//! small experiment configuration, timing, evidence formatting) lives
//! in [`harness`].

pub mod harness;

use autovision::{SimMethod, SystemConfig};

/// The paper-scale Table II configuration: 320×240 frames, SimB with a
/// 4 K-word payload, fast configuration clock, ISR workload calibrated
/// to the published 0.5 ms/frame.
pub fn paper_scale_config() -> SystemConfig {
    SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(320)
        .height(240)
        .n_frames(2)
        .payload_words(4096)
        .cfg_divider(1)
        .isr_pad_loops(4400)
        .build()
        .expect("paper-scale config is valid")
}

/// A small, fast configuration for smoke benches.
pub fn small_config() -> SystemConfig {
    SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(1)
        .payload_words(128)
        .build()
        .expect("smoke config is valid")
}
