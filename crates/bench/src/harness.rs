//! Shared plumbing for the experiment binaries.
//!
//! Every bin in `src/bin/` used to open with the same boilerplate: an
//! `available_parallelism` lookup, a hand-rolled argv scan, the
//! 32×24/two-frame experiment configuration spelled out field by field,
//! `Instant` bracketing, and the first-evidence `Debug` formatting.
//! This module is that boilerplate, written once. The helpers are
//! deliberately thin — the point is that the bins stay small enough to
//! read as experiment descriptions, not that this becomes a framework.

use autovision::{AvSystem, RunOutcome, SimMethod, SystemConfig, SystemConfigBuilder};
use obs::MetricsRegistry;
use rtlsim::{ExecMode, Simulator};
use std::path::PathBuf;
use std::time::Instant;
use verif::Verdict;

/// Worker threads for the fan-out harnesses: one per hardware thread,
/// falling back to serial when the host will not say.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The base configuration the ablations and matrices start from: the
/// small 32×24 two-frame ReSim system with a `payload_words`-word SimB.
/// Callers chain further knobs onto the returned builder. The shared
/// [`exec_mode`] flag is pre-applied, so every bin built on this base
/// honours `--exec-mode` without further plumbing.
pub fn experiment(payload_words: usize) -> SystemConfigBuilder {
    SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(2)
        .payload_words(payload_words)
        .exec_mode(exec_mode())
}

/// The kernel execution mode every bench bin shares, from
/// `--exec-mode {event|compiled|auto}`. Absent flag means
/// [`ExecMode::EventDriven`] — the committed baselines' mode.
/// Exits with a usage message on an unknown spelling.
pub fn exec_mode() -> ExecMode {
    match flag_value("--exec-mode") {
        None => ExecMode::EventDriven,
        Some(v) => v.parse().unwrap_or_else(|e: String| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
    }
}

/// Overlay the shared `--exec-mode` flag onto an already-built
/// configuration — the migration shim for bins that assemble a
/// [`SystemConfig`] outside the builder (struct literals,
/// [`crate::paper_scale_config`]...). With the flag absent this is the
/// identity, so existing invocations stay bit-identical.
pub fn with_exec_mode(mut cfg: SystemConfig) -> SystemConfig {
    if flag_value("--exec-mode").is_some() {
        cfg.exec_mode = exec_mode();
    }
    cfg
}

/// `true` when `flag` appears among the command-line arguments.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Positional command-line argument `n` (1-based, as in `args().nth`),
/// parsed; `None` when absent or unparsable.
pub fn parse_arg<T: std::str::FromStr>(n: usize) -> Option<T> {
    std::env::args().nth(n).and_then(|a| a.parse().ok())
}

/// Value of `--flag <value>` (or `--flag=<value>`) among the
/// command-line arguments; `None` when the flag is absent.
pub fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(rest) = a.strip_prefix(flag) {
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Observability artifact destinations every bench bin understands:
/// `--trace-out <path>` requests a Chrome-trace/Perfetto JSON span dump
/// and `--metrics-out <path>` the stable-schema metrics snapshot
/// (`obs::METRICS_SCHEMA`). With neither flag present tracing stays
/// disabled and the bin's stdout is byte-identical to a build without
/// this machinery.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Destination of the Perfetto trace, when requested.
    pub trace_out: Option<PathBuf>,
    /// Destination of the metrics snapshot, when requested.
    pub metrics_out: Option<PathBuf>,
}

impl ObsArgs {
    /// Parse both flags from the process arguments.
    pub fn from_env() -> ObsArgs {
        ObsArgs {
            trace_out: flag_value("--trace-out").map(PathBuf::from),
            metrics_out: flag_value("--metrics-out").map(PathBuf::from),
        }
    }

    /// True when any artifact was requested.
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Enable structured tracing on a freshly built simulator when a
    /// trace artifact was requested. Call before running.
    pub fn arm(&self, sim: &mut Simulator) {
        if self.trace_out.is_some() {
            sim.enable_trace();
        }
    }

    /// Write the requested artifacts: the simulator's event buffer as
    /// Perfetto JSON and `metrics` as the schema-versioned snapshot.
    /// Prints one confirmation line per file written.
    pub fn export(&self, sim: &Simulator, metrics: &MetricsRegistry) {
        if let Some(path) = &self.trace_out {
            let events = sim.trace_events();
            let trace = obs::perfetto::export_with_fallback(&events, sim.fallback_windows());
            std::fs::write(path, trace).expect("write trace artifact");
            println!(
                "wrote {} trace events ({} dropped) to {}",
                events.len(),
                sim.trace_dropped(),
                path.display()
            );
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, metrics.snapshot_json()).expect("write metrics artifact");
            println!("wrote metrics snapshot to {}", path.display());
        }
    }
}

/// Fold a finished run's kernel, backend, and recovery statistics into
/// a metrics registry — the standard contents of a bench bin's
/// `--metrics-out` snapshot. Bins layer experiment-specific series on
/// top of the returned registry before exporting.
pub fn system_metrics(sys: &AvSystem, outcome: &RunOutcome) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    obs::record_sim_stats(&mut reg, &sys.sim.stats());
    if let Some(cs) = sys.sim.compiled_stats() {
        obs::record_compiled_stats(&mut reg, &cs);
    }
    let stats = sys.backend_stats();
    reg.counter("backend.swaps", stats.total_swaps());
    for r in &stats.regions {
        reg.counter(&format!("backend.rr{}.swaps", r.rr_id), r.swaps);
        reg.counter(&format!("backend.rr{}.captures", r.rr_id), r.captures);
        reg.counter(&format!("backend.rr{}.restores", r.rr_id), r.restores);
    }
    if let Some(icap) = &stats.icap {
        reg.counter("backend.icap.swaps", icap.swaps);
        reg.counter("backend.icap.desyncs", icap.desyncs);
        reg.counter("backend.icap.words_accepted", icap.words_accepted);
        reg.counter("backend.icap.words_dropped", icap.words_dropped);
        reg.counter("backend.icap.backpressure_events", icap.backpressure_events);
        reg.counter("backend.icap.crc_ok", icap.crc_ok);
        reg.counter("backend.icap.crc_mismatches", icap.crc_mismatches);
        reg.counter("backend.icap.aborts", icap.aborts);
    }
    let rec = sys.recovery.borrow();
    reg.counter("recovery.retries", rec.retries);
    reg.counter("recovery.recovered", rec.recovered);
    reg.counter("recovery.exhausted", rec.exhausted);
    reg.counter("recovery.bus_errors", rec.bus_errors);
    reg.counter("recovery.watchdog_fires", rec.watchdog_fires);
    reg.counter("recovery.integrity_errors", rec.integrity_errors);
    reg.counter("run.frames", outcome.frames_captured as u64);
    reg.counter("run.cycles", outcome.cycles);
    if outcome.frames_captured > 0 {
        reg.gauge(
            "run.cycles_per_frame",
            outcome.cycles as f64 / outcome.frames_captured as f64,
        );
    }
    reg
}

/// Run a closure, returning its result and the wall-clock seconds it
/// took.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Build a system and run it to completion, panicking on a hang or a
/// kernel error; returns the system (for post-run statistics), the
/// outcome, and the run's wall-clock seconds (build time excluded).
pub fn run_built(cfg: SystemConfig, budget_cycles: u64) -> (AvSystem, RunOutcome, f64) {
    let mut sys = AvSystem::build(cfg);
    let (outcome, wall_s) = timed(|| sys.run(budget_cycles));
    assert!(
        !outcome.hung,
        "run hung after {} cycles: {:?}",
        outcome.cycles,
        sys.sim.messages()
    );
    assert!(
        outcome.kernel_error.is_none(),
        "kernel error during run: {:?}",
        outcome.kernel_error
    );
    (sys, outcome, wall_s)
}

/// The first piece of evidence a verdict carries, `Debug`-formatted;
/// `fallback` when the run was silent.
pub fn evidence(v: &Verdict, fallback: &str) -> String {
    v.evidence
        .first()
        .map(|e| format!("{e:?}"))
        .unwrap_or_else(|| fallback.to_string())
}

/// A horizontal table rule, `width` columns wide.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Median of an f64 sample (upper median for even lengths — matches a
/// `len/2` index into the sorted sample).
pub fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_builder_produces_the_matrix_base() {
        let cfg = experiment(256).build().unwrap();
        assert_eq!(
            (cfg.width, cfg.height, cfg.n_frames, cfg.payload_words),
            (32, 24, 2, 256)
        );
        assert_eq!(cfg.method, SimMethod::Resim);
    }

    #[test]
    fn median_takes_the_middle_sample() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0]), 4.0);
    }

    #[test]
    fn rule_is_a_dash_run() {
        assert_eq!(rule(4), "----");
    }
}
