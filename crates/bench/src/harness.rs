//! Shared plumbing for the experiment binaries.
//!
//! Every bin in `src/bin/` used to open with the same boilerplate: an
//! `available_parallelism` lookup, a hand-rolled argv scan, the
//! 32×24/two-frame experiment configuration spelled out field by field,
//! `Instant` bracketing, and the first-evidence `Debug` formatting.
//! This module is that boilerplate, written once. The helpers are
//! deliberately thin — the point is that the bins stay small enough to
//! read as experiment descriptions, not that this becomes a framework.

use autovision::{AvSystem, RunOutcome, SimMethod, SystemConfig, SystemConfigBuilder};
use std::time::Instant;
use verif::Verdict;

/// Worker threads for the fan-out harnesses: one per hardware thread,
/// falling back to serial when the host will not say.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The base configuration the ablations and matrices start from: the
/// small 32×24 two-frame ReSim system with a `payload_words`-word SimB.
/// Callers chain further knobs onto the returned builder.
pub fn experiment(payload_words: usize) -> SystemConfigBuilder {
    SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(2)
        .payload_words(payload_words)
}

/// `true` when `flag` appears among the command-line arguments.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag)
}

/// Positional command-line argument `n` (1-based, as in `args().nth`),
/// parsed; `None` when absent or unparsable.
pub fn parse_arg<T: std::str::FromStr>(n: usize) -> Option<T> {
    std::env::args().nth(n).and_then(|a| a.parse().ok())
}

/// Run a closure, returning its result and the wall-clock seconds it
/// took.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Build a system and run it to completion, panicking on a hang or a
/// kernel error; returns the system (for post-run statistics), the
/// outcome, and the run's wall-clock seconds (build time excluded).
pub fn run_built(cfg: SystemConfig, budget_cycles: u64) -> (AvSystem, RunOutcome, f64) {
    let mut sys = AvSystem::build(cfg);
    let (outcome, wall_s) = timed(|| sys.run(budget_cycles));
    assert!(
        !outcome.hung,
        "run hung after {} cycles: {:?}",
        outcome.cycles,
        sys.sim.messages()
    );
    assert!(
        outcome.kernel_error.is_none(),
        "kernel error during run: {:?}",
        outcome.kernel_error
    );
    (sys, outcome, wall_s)
}

/// The first piece of evidence a verdict carries, `Debug`-formatted;
/// `fallback` when the run was silent.
pub fn evidence(v: &Verdict, fallback: &str) -> String {
    v.evidence
        .first()
        .map(|e| format!("{e:?}"))
        .unwrap_or_else(|| fallback.to_string())
}

/// A horizontal table rule, `width` columns wide.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Median of an f64 sample (upper median for even lengths — matches a
/// `len/2` index into the sorted sample).
pub fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_builder_produces_the_matrix_base() {
        let cfg = experiment(256).build().unwrap();
        assert_eq!(
            (cfg.width, cfg.height, cfg.n_frames, cfg.payload_words),
            (32, 24, 2, 256)
        );
        assert_eq!(cfg.method, SimMethod::Resim);
    }

    #[test]
    fn median_takes_the_middle_sample() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![4.0, 1.0]), 4.0);
    }

    #[test]
    fn rule_is_a_dash_run() {
        assert_eq!(rule(4), "----");
    }
}
