//! §V-B — debug turnaround: full-system simulation vs on-chip debugging.
//!
//! Measures this host's wall-clock cost to simulate one paper-scale
//! frame, then compares a debug iteration (all the paper's bugs surfaced
//! within 2-4 simulated frames) against the paper's 52-minute
//! implementation+bitstream iteration for ChipScope on-chip debugging.

use bench::{harness, paper_scale_config};
use verif::{compare, FRAMES_TO_DETECT, ONCHIP_ITERATION_MIN};

fn main() {
    println!("Debug-turnaround comparison (paper §V-B)\n");
    let mut cfg = harness::with_exec_mode(paper_scale_config());
    cfg.n_frames = 2;
    let frames = cfg.n_frames as f64;
    let (_sys, _outcome, wall_s) = harness::run_built(cfg, 40_000_000);
    let sec_per_frame = wall_s / frames;

    let t = compare(sec_per_frame, FRAMES_TO_DETECT);
    println!(
        "simulation cost          : {:.2} s per 320x240 frame on this host",
        t.sim_sec_per_frame
    );
    println!(
        "frames to expose a bug   : {} (paper: all bugs within 2-4 frames)",
        t.frames_to_detect
    );
    println!("simulation debug iter    : {:.2} min", t.sim_iteration_min);
    println!(
        "on-chip debug iter       : {:.0} min (paper: implementation + bitstream)",
        ONCHIP_ITERATION_MIN
    );
    println!("advantage per iteration  : {:.0}x", t.advantage);
    println!();
    println!("paper scale: 11 min/frame -> 44 min/iteration vs 52 min on-chip;");
    println!("on-chip debugging additionally needs several iterations per bug");
    println!("because probe logic sees only a few signals at a time.");
}
