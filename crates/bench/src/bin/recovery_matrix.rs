//! Recovery matrix — transient-fault injection with and without the
//! resilient-reconfiguration machinery.
//!
//! Runs the randomized campaign (`verif::recovery`) twice over the same
//! seeded fault list: once with the recovery policy disabled (the plain
//! paper configuration) and once enabled (CRC-checked SimBs, bus-error
//! detection, DMA-progress watchdog, bounded retry-with-backoff,
//! degraded-mode software). The comparison shows which upsets the plain
//! design shrugs off, which corrupt frames or hang the pipeline, and
//! the retry/latency cost of recovering all of them.

use bench::harness;
use verif::{render_campaign, summarize, Campaign, CampaignConfig};

fn main() {
    let threads = harness::threads();
    let mut cc = CampaignConfig::default();
    if let Some(runs) = harness::parse_arg::<usize>(1) {
        cc.runs = runs;
    }
    println!(
        "Recovery matrix — {} seeded transient-fault runs per mode ({}x{}, {} frames, SimB payload {} words, {} threads)\n",
        cc.runs, cc.base.width, cc.base.height, cc.base.n_frames, cc.base.payload_words, threads
    );

    // One campaign, both modes: the executor interleaves the OFF and ON
    // batches across the worker pool and the shared artifact cache
    // serves both.
    let report = Campaign::builder()
        .base(cc.base.clone())
        .exec_mode(harness::exec_mode())
        .seed(cc.seed)
        .budget_cycles(cc.budget_cycles)
        .threads(threads)
        .recovery_campaign(cc.runs, false)
        .recovery_campaign(cc.runs, true)
        .build()
        .run();
    let rows = report.recovery_rows();
    let (off, on) = rows.split_at(cc.runs);

    println!(
        "{}",
        render_campaign("recovery OFF (plain paper configuration)", off)
    );
    println!(
        "{}",
        render_campaign("recovery ON (CRC + watchdog + retry-with-backoff)", on)
    );

    let s_off = summarize(off);
    let s_on = summarize(on);
    println!(
        "acceptance: recovery rate {:.0}% (want >= 90%): {}; hangs with recovery on: {} (want 0): {}",
        100.0 * s_on.recovery_rate(),
        s_on.recovery_rate() >= 0.9,
        s_on.hung,
        s_on.hung == 0
    );
    println!(
        "without recovery the same faults left {} corrupted and {} hung run(s); with recovery: {} and {}",
        s_off.corrupted, s_off.hung, s_on.corrupted, s_on.hung
    );
    let st = &report.stats;
    println!(
        "executor: {} scenarios in {:.2} s ({:.1}/s), {} steals, artifact cache {}/{} hits",
        st.scenarios,
        st.wall_s,
        st.scenarios_per_sec(),
        st.steals(),
        st.artifact_hits,
        st.artifact_hits + st.artifact_misses
    );
}
