//! campaign_throughput — scenario-campaign scheduling throughput.
//!
//! Measures the campaign executor on a deliberately *skew-heavy*
//! workload — the full detection matrix, the split pipeline, and both
//! recovery campaigns, ordered so the long budget-burning scenarios
//! collide on one shard under the legacy static `i % threads` placement
//! — and compares the legacy schedule against the work-stealing pool at
//! the same thread count.
//!
//! Modes:
//!
//! * **default** — runs the workload serially, under `StaticShard`, and
//!   under `WorkStealing` (both at 8 threads), reports wall clock and
//!   scheduling counters, verifies the two parallel schedules produce
//!   byte-identical reports, and writes the `BENCH_campaign.json`
//!   baseline (committed at the repo root).
//! * **`--smoke`** — re-runs the workload once with work stealing and
//!   validates against the committed baseline: the `bench_campaign/v1`
//!   schema and the *exact* scenario counts (total rows, matrix rows,
//!   recovery rows, zero failures) must match. Exits nonzero on any
//!   mismatch, which is what CI gates on.
//! * **`--probe`** — per-scenario span durations at 1 thread, for
//!   inspecting the workload's skew.
//! * **`--service`** — boots an in-process `verifd` on a Unix socket,
//!   measures a cold in-process campaign against first and warm daemon
//!   submissions of the same `campaign_submit/v1` document, asserts
//!   the streamed rows are byte-identical to the in-process run and
//!   that the warm submission re-derives nothing, and writes the
//!   `BENCH_service.json` baseline.
//! * **`--service --smoke`** — re-runs the service measurement and
//!   gates against the committed baseline: schema, scenario counts,
//!   zero artifact misses on the warm submission, and the warm
//!   first-row latency ratio vs the cold in-process run (tolerance
//!   overridable via `SERVICE_SMOKE_MAX_RATIO`).
//!
//! Two times are reported per mode. **Wall** is elapsed process time,
//! which on an undersized CI host (this container exposes a single CPU
//! core) collapses to total work for *every* schedule — all workers
//! time-share one core, so wall cannot distinguish a good placement
//! from a bad one. **Makespan** is the busiest worker's load under the
//! schedule's *actual placement*, costed with the serially-calibrated
//! per-scenario durations (the 1-thread run's span times): for each
//! worker, sum the calibrated cost of every scenario it executed, and
//! take the max. That is exactly the wall clock the placement would
//! produce on an unloaded host with one core per worker, and unlike
//! raw wall it is a pure function of scheduling quality. The headline
//! `speedup_vs_static` is the makespan ratio; raw wall for both
//! schedules is kept alongside it. Ratios between the two schedules in
//! the same process are meaningful across machines even though
//! absolute times are not; the committed speedup is informational,
//! while the semantic gate is the count/schema check.

use bench::harness;
use verif::wire::CampaignSubmission;
use verif::{Campaign, CampaignReport, Scenario, Schedule};

const BASELINE_PATH: &str = "BENCH_campaign.json";
const BENCH_THREADS: usize = 8;

/// The measured workload: every scenario family the executor knows,
/// ordered so the budget-burning scenarios (hang-to-budget matrix rows
/// and the watchdog-less recovery runs) land on the *same* shard under
/// legacy `i % 8` round-robin placement. Work stealing redistributes
/// them; the static schedule serialises them on one worker.
fn skewed_campaign(threads: usize, schedule: Schedule) -> Campaign {
    Campaign::builder()
        .threads(threads)
        .exec_mode(harness::exec_mode())
        .schedule(schedule)
        // Wide admission window: this bench measures scheduling, not
        // the streaming-delivery bound.
        .scenario_budget(64)
        // Spans record which worker ran which scenario — the placement
        // the makespan metric is computed from.
        .spans(true)
        .scenarios(skewed_scenarios())
        .build()
}

fn skewed_scenarios() -> Vec<Scenario> {
    use autovision::Bug;
    // Matrix + split + both recovery campaigns, split into the
    // scenarios that burn their full cycle budget (hangs under at least
    // one method) and the ones that finish early.
    let matrix: Vec<Scenario> = std::iter::once(Scenario::Clean)
        .chain(Bug::ALL.into_iter().map(Scenario::Bug))
        .chain(std::iter::once(Scenario::SplitClean))
        .collect();
    let recovery: Vec<Scenario> = {
        // Reuse the builder's batch expansion (seeds derived from the
        // default master seed) so rows stay bit-equal to the production
        // campaigns.
        Campaign::builder()
            .recovery_campaign(16, false)
            .recovery_campaign(16, true)
            .build()
            .scenarios()
            .to_vec()
    };
    // Measured with `--probe`: these scenarios burn their full cycle
    // budget under at least one method (hangs and X storms) and cost
    // 350-800 ms each, ~90% of the whole workload; everything else
    // finishes in ~10-30 ms.
    let is_heavy = |s: &Scenario| match s {
        Scenario::Bug(b) => matches!(
            b,
            Bug::Hw2SignatureUninit
                | Bug::Hw4IrqPulse
                | Bug::Sw2FlagCached
                | Bug::Dpr2DcrInRr
                | Bug::Dpr3IgnoreIcapReady
                | Bug::Dpr5StaleSizeCalc
                | Bug::Dpr6aShortFixedWait
                | Bug::Dpr6bNoWaitTransfer
        ),
        Scenario::Recovery(spec) => !spec.recovery_on && spec.fault == Bug::TransientBusError,
        _ => false,
    };
    let (heavy, light): (Vec<Scenario>, Vec<Scenario>) = matrix
        .into_iter()
        .chain(recovery)
        .partition(|s| is_heavy(s));
    // Place heavy scenario k at index (k/2)*threads + (k%2): residues 0
    // and 1, so static `i % threads` placement serialises the heavy 90%
    // of the work on two of the eight shards while the rest sit idle.
    let n = heavy.len() + light.len();
    let mut slots: Vec<Option<Scenario>> = vec![None; n];
    for (k, h) in heavy.into_iter().enumerate() {
        slots[(k / 2) * BENCH_THREADS + (k % 2)] = Some(h);
    }
    let mut light = light.into_iter();
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| light.next().expect("slot/light count mismatch")))
        .collect()
}

struct Measurement {
    label: &'static str,
    wall_s: f64,
    /// Busiest worker's placement load under serially-calibrated
    /// per-scenario costs — the wall clock this placement would produce
    /// on an unloaded host with one core per worker. Filled in by
    /// [`calibrate_makespan`] once the serial costs are known.
    makespan_s: f64,
    steals: u64,
    idle_s: f64,
    report: CampaignReport,
}

fn measure(label: &'static str, threads: usize, schedule: Schedule) -> Measurement {
    let report = skewed_campaign(threads, schedule).run();
    Measurement {
        label,
        wall_s: report.stats.wall_s,
        makespan_s: 0.0,
        steals: report.stats.steals(),
        idle_s: report.stats.idle_ns() as f64 / 1e9,
        report,
    }
}

/// Per-scenario cost vector from the serial run's spans: `cost[i]` is
/// what scenario `i` took with the whole host to itself.
fn serial_costs(serial: &Measurement) -> Vec<u64> {
    let mut cost = vec![0u64; serial.report.rows.len()];
    for span in &serial.report.stats.spans {
        cost[span.index] = span.dur_ns;
    }
    cost
}

/// Max over workers of the summed calibrated cost of the scenarios that
/// worker actually executed.
fn calibrate_makespan(m: &mut Measurement, cost: &[u64]) {
    let workers = m.report.stats.workers.len();
    let mut load = vec![0u64; workers.max(1)];
    for span in &m.report.stats.spans {
        load[span.worker] += cost[span.index];
    }
    m.makespan_s = load.iter().copied().max().unwrap_or(0) as f64 / 1e9;
}

fn print_measurement(m: &Measurement) {
    let s = &m.report.stats;
    println!("{}:", m.label);
    println!(
        "  wall           : {:.3} s ({} scenarios, {:.2}/s)",
        m.wall_s,
        s.scenarios,
        s.scenarios_per_sec()
    );
    if m.makespan_s > 0.0 {
        println!(
            "  makespan       : {:.3} s (busiest worker, serially-calibrated costs)",
            m.makespan_s
        );
    }
    println!(
        "  scheduling     : {} steals, {} refills, {:.3} s worker idle",
        m.steals,
        s.refills(),
        m.idle_s
    );
    println!(
        "  artifact cache : {} hits / {} misses",
        s.artifact_hits, s.artifact_misses
    );
    let h = s.run_ns_histogram();
    println!(
        "  scenario time  : mean {:.0} ms, max {:.0} ms",
        h.mean() / 1e6,
        h.max as f64 / 1e6
    );
}

fn counts(report: &CampaignReport) -> (usize, usize, usize, usize) {
    (
        report.rows.len(),
        report.matrix_rows().len(),
        report.recovery_rows().len(),
        report.failures().len(),
    )
}

fn render_mode(m: &Measurement) -> String {
    let s = &m.report.stats;
    format!(
        concat!(
            "{{\n",
            "    \"wall_seconds\": {:.6},\n",
            "    \"makespan_seconds\": {:.6},\n",
            "    \"scenarios_per_sec\": {:.3},\n",
            "    \"steals\": {},\n",
            "    \"refills\": {},\n",
            "    \"worker_idle_seconds\": {:.6},\n",
            "    \"max_reorder_depth\": {}\n",
            "  }}"
        ),
        m.wall_s,
        m.makespan_s,
        s.scenarios_per_sec(),
        m.steals,
        s.refills(),
        m.idle_s,
        s.max_reorder_depth,
    )
}

fn run_full() {
    println!(
        "campaign_throughput — skew-heavy scenario workload, static sharding vs work stealing \
         ({BENCH_THREADS} threads)\n"
    );
    let mut serial = measure("serial (1 thread)", 1, Schedule::WorkStealing);
    let mut stat = measure(
        "static shard (legacy i % threads)",
        BENCH_THREADS,
        Schedule::StaticShard,
    );
    let mut ws = measure("work stealing", BENCH_THREADS, Schedule::WorkStealing);
    let cost = serial_costs(&serial);
    calibrate_makespan(&mut serial, &cost);
    calibrate_makespan(&mut stat, &cost);
    calibrate_makespan(&mut ws, &cost);
    print_measurement(&serial);
    println!();
    print_measurement(&stat);
    println!();
    print_measurement(&ws);

    assert_eq!(
        stat.report.digest(),
        ws.report.digest(),
        "schedules disagree on campaign rows"
    );
    assert_eq!(serial.report.digest(), ws.report.digest());

    let (rows, matrix, recovery, failed) = counts(&ws.report);
    assert_eq!(
        failed,
        0,
        "workload must run clean:\n{}",
        ws.report.digest()
    );
    let speedup = stat.makespan_s / ws.makespan_s;
    println!(
        "\nwork stealing vs static sharding: {speedup:.2}x makespan at {BENCH_THREADS} threads \
         (wall ratio {:.2}x on this host; serial makespan / ws makespan {:.2}x)",
        stat.wall_s / ws.wall_s,
        serial.makespan_s / ws.makespan_s
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"bench_campaign/v1\",\n",
            "  \"workload\": {{\n",
            "    \"threads\": {},\n",
            "    \"scenarios\": {},\n",
            "    \"matrix_rows\": {},\n",
            "    \"recovery_rows\": {},\n",
            "    \"failed_rows\": {}\n",
            "  }},\n",
            "  \"serial\": {},\n",
            "  \"static_shard\": {},\n",
            "  \"work_stealing\": {},\n",
            "  \"speedup_metric\": \"makespan_seconds\",\n",
            "  \"speedup_vs_static\": {:.3}\n",
            "}}\n"
        ),
        BENCH_THREADS,
        rows,
        matrix,
        recovery,
        failed,
        render_mode(&serial),
        render_mode(&stat),
        render_mode(&ws),
        speedup,
    );
    std::fs::write(BASELINE_PATH, &json).expect("write BENCH_campaign.json");
    println!("wrote {BASELINE_PATH}");
}

/// Pull the number after `"key":` inside the flat object following
/// `"section":` — enough of a JSON reader for the file this bin writes.
fn json_number(doc: &str, section: &str, key: &str) -> Option<f64> {
    let sec = doc.find(&format!("\"{section}\""))?;
    let rest = &doc[sec..];
    let open = rest.find('{')?;
    let close = open + rest[open..].find('}')?;
    let obj = &rest[open..close];
    let k = obj.find(&format!("\"{key}\""))?;
    let after = &obj[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn run_smoke() -> i32 {
    println!("campaign_throughput --smoke — schema and scenario-count gate vs {BASELINE_PATH}\n");
    let doc = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: cannot read {BASELINE_PATH}: {e}");
            eprintln!("run `campaign_throughput` (no args) once to produce it");
            return 2;
        }
    };
    if !doc.contains("\"schema\": \"bench_campaign/v1\"") {
        eprintln!("FAIL: baseline is not bench_campaign/v1");
        return 2;
    }
    let threads = harness::threads().min(BENCH_THREADS);
    let m = measure("work stealing (smoke)", threads, Schedule::WorkStealing);
    print_measurement(&m);
    println!();

    let (rows, matrix, recovery, failed) = counts(&m.report);
    let mut ok = true;
    for (key, got) in [
        ("scenarios", rows),
        ("matrix_rows", matrix),
        ("recovery_rows", recovery),
        ("failed_rows", failed),
    ] {
        match json_number(&doc, "workload", key) {
            Some(want) if want == got as f64 => {
                println!("  {key:<14} {got} == baseline");
            }
            Some(want) => {
                eprintln!("FAIL: {key} = {got}, baseline {want} — campaign semantics changed");
                ok = false;
            }
            None => {
                eprintln!("FAIL: baseline is missing workload.{key}");
                ok = false;
            }
        }
    }
    if !ok {
        return 2;
    }
    println!("PASS");
    0
}

fn run_probe() {
    println!("campaign_throughput --probe — per-scenario durations (1 thread)\n");
    let report = Campaign::builder()
        .threads(1)
        .exec_mode(harness::exec_mode())
        .scenario_budget(64)
        .spans(true)
        .scenarios(skewed_scenarios())
        .build()
        .run();
    for span in &report.stats.spans {
        println!(
            "  {:>3}  {:>8.1} ms  {:?}",
            span.index,
            span.dur_ns as f64 / 1e6,
            report.rows[span.index].scenario
        );
    }
    println!("\ntotal {:.3} s", report.stats.wall_s);
}

// ------------------------------------------------------------- service

const SERVICE_BASELINE_PATH: &str = "BENCH_service.json";
const SERVICE_THREADS: usize = 2;
/// Ceiling on the warm-daemon vs cold-in-process first-row latency
/// ratio. End-to-end latency is simulation-dominated (and simulation is
/// never cached), so this is a gross-regression guard — it catches a
/// stalled socket or a cache gone cold, not single-digit-percent noise.
/// Override with `SERVICE_SMOKE_MAX_RATIO`.
const DEFAULT_SERVICE_MAX_RATIO: f64 = 1.5;
/// Floor on the warm-cache system-build speedup — the startup latency a
/// long-running daemon actually amortizes. Building against the warm
/// shared cache skips every SimB/program/scene derivation, so the
/// speedup is decisive; the floor only needs to clear measurement
/// jitter. Override with `SERVICE_SMOKE_MIN_SETUP_SPEEDUP`.
const DEFAULT_SERVICE_MIN_SETUP_SPEEDUP: f64 = 1.1;
/// Build-timing repetitions for the setup-latency measurement.
const SETUP_ITERS: u32 = 5;

/// The service workload: matrix-style scenario rows plus a recovery
/// batch — every row family the wire schema knows, small enough that
/// the artifact-derivation share of a cold run is visible next to the
/// simulation time.
fn service_submission() -> CampaignSubmission {
    CampaignSubmission {
        scenarios: vec![
            Scenario::Clean,
            Scenario::Bug(autovision::Bug::Dpr4P2pOnSharedBus),
            Scenario::SplitClean,
        ],
        recovery_runs: 4,
        recovery_on: true,
        seed: 0xFA_17,
        ..CampaignSubmission::default()
    }
}

struct ServiceRun {
    label: &'static str,
    wall_s: f64,
    /// Submit-to-first-row latency: the headline metric. The first row
    /// of a cold run pays for artifact derivation; a warm run pays only
    /// for simulation, so the ratio isolates what the shared cache buys.
    first_row_s: f64,
    rows: Vec<String>,
    hits: u64,
    misses: u64,
    failures: u64,
}

fn measure_cold_in_process(sub: &CampaignSubmission) -> ServiceRun {
    let t0 = std::time::Instant::now();
    let campaign = sub.plan(SERVICE_THREADS, 0);
    let mut first = None;
    let report = campaign.run_streaming(|_| {
        first.get_or_insert_with(|| t0.elapsed());
    });
    ServiceRun {
        label: "cold in-process (fresh cache, pool built per run)",
        wall_s: t0.elapsed().as_secs_f64(),
        first_row_s: first.unwrap_or_default().as_secs_f64(),
        rows: report.rows.iter().map(verif::wire::row_to_json).collect(),
        hits: report.stats.artifact_hits,
        misses: report.stats.artifact_misses,
        failures: report.failures().len() as u64,
    }
}

fn measure_submission(
    label: &'static str,
    client: &mut verifd::client::Client,
    sub: &CampaignSubmission,
) -> ServiceRun {
    let t0 = std::time::Instant::now();
    let mut first = None;
    let served = client
        .submit_streaming(sub, |_| {
            first.get_or_insert_with(|| t0.elapsed());
        })
        .expect("daemon submission failed");
    ServiceRun {
        label,
        wall_s: t0.elapsed().as_secs_f64(),
        first_row_s: first.unwrap_or_default().as_secs_f64(),
        rows: served.rows,
        hits: served.done.artifact_hits,
        misses: served.done.artifact_misses,
        failures: served.done.failures,
    }
}

/// What the warm daemon actually amortizes: the setup latency of
/// building a campaign's [`autovision::AvSystem`] before a single cycle
/// simulates. Cold builds (fresh cache, as every in-process run pays)
/// re-derive the SimB streams, the software image and the golden scene;
/// builds against the daemon's hot cache skip all of it.
struct SetupLatency {
    cold_build_s: f64,
    warm_build_s: f64,
    /// Artifacts a single cold build derives (the warm build's hits).
    derivations: u64,
}

fn measure_setup_latency(warm_cache: &autovision::ArtifactCache) -> SetupLatency {
    let base = verif::MatrixConfig::default().base;
    let mut cold_total = std::time::Duration::ZERO;
    let mut derivations = 0;
    for _ in 0..SETUP_ITERS {
        let fresh = autovision::ArtifactCache::new();
        let t = std::time::Instant::now();
        let sys = autovision::AvSystem::build_with(base.clone(), &fresh);
        cold_total += t.elapsed();
        drop(sys);
        derivations = fresh.stats().1;
    }
    let mut warm_total = std::time::Duration::ZERO;
    for _ in 0..SETUP_ITERS {
        let t = std::time::Instant::now();
        let sys = autovision::AvSystem::build_with(base.clone(), warm_cache);
        warm_total += t.elapsed();
        drop(sys);
    }
    SetupLatency {
        cold_build_s: cold_total.as_secs_f64() / f64::from(SETUP_ITERS),
        warm_build_s: warm_total.as_secs_f64() / f64::from(SETUP_ITERS),
        derivations,
    }
}

fn print_service_run(r: &ServiceRun) {
    println!("{}:", r.label);
    println!(
        "  submit → done      : {:.3} s ({} rows, {} failures)",
        r.wall_s,
        r.rows.len(),
        r.failures
    );
    println!("  submit → first row : {:.3} s", r.first_row_s);
    println!(
        "  artifact cache     : {} hits / {} misses",
        r.hits, r.misses
    );
}

fn render_service_run(r: &ServiceRun) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"wall_seconds\": {:.6},\n",
            "    \"first_row_seconds\": {:.6},\n",
            "    \"artifact_hits\": {},\n",
            "    \"artifact_misses\": {}\n",
            "  }}"
        ),
        r.wall_s, r.first_row_s, r.hits, r.misses,
    )
}

fn run_service(smoke: bool) -> i32 {
    use verifd::client::Client;
    use verifd::server::{Endpoint, RunningServer, ServerConfig};

    println!(
        "campaign_throughput --service — warm-cache daemon submission vs cold in-process \
         startup ({SERVICE_THREADS} threads)\n"
    );
    let sub = service_submission();
    let cold = measure_cold_in_process(&sub);

    let socket = std::env::temp_dir().join(format!("verifd-bench-{}.sock", std::process::id()));
    let server = RunningServer::start(
        ServerConfig {
            threads: SERVICE_THREADS,
            ..ServerConfig::default()
        },
        &[Endpoint::Unix(socket.clone())],
    )
    .expect("boot verifd");
    let mut client =
        Client::connect(&format!("unix:{}", socket.display())).expect("connect to verifd");
    let first = measure_submission(
        "first daemon submission (shared cache cold)",
        &mut client,
        &sub,
    );
    let warm = measure_submission(
        "warm daemon submission (shared cache hot)",
        &mut client,
        &sub,
    );
    let setup = measure_setup_latency(server.server().artifacts());
    drop(client);
    server.shutdown();

    print_service_run(&cold);
    println!();
    print_service_run(&first);
    println!();
    print_service_run(&warm);
    println!();
    println!(
        "system build (startup latency, mean of {SETUP_ITERS}): cold {:.2} ms ({} derivations) \
         vs warm {:.2} ms",
        setup.cold_build_s * 1e3,
        setup.derivations,
        setup.warm_build_s * 1e3
    );

    // Determinism gates, independent of the baseline file: the daemon
    // must stream rows byte-identical to the in-process run, and a warm
    // submission must re-derive nothing.
    assert_eq!(
        first.rows, cold.rows,
        "daemon rows differ from in-process rows"
    );
    assert_eq!(
        warm.rows, cold.rows,
        "warm daemon rows differ from in-process rows"
    );
    if cold.failures != 0 {
        eprintln!(
            "FAIL: service workload must run clean ({} failures)",
            cold.failures
        );
        return 2;
    }
    if warm.misses != 0 {
        eprintln!(
            "FAIL: warm submission re-derived {} artifacts — the shared cache went cold",
            warm.misses
        );
        return 1;
    }

    let setup_speedup = setup.cold_build_s / setup.warm_build_s;
    println!(
        "\nwarm daemon vs cold in-process: {setup_speedup:.2}x system-build (startup) latency; \
         end-to-end first-row ratio {:.2}x, wall ratio {:.2}x (simulation-dominated)",
        warm.first_row_s / cold.first_row_s,
        warm.wall_s / cold.wall_s
    );

    if !smoke {
        let json = format!(
            concat!(
                "{{\n",
                "  \"schema\": \"bench_service/v1\",\n",
                "  \"workload\": {{\n",
                "    \"threads\": {},\n",
                "    \"scenarios\": {},\n",
                "    \"failed_rows\": {}\n",
                "  }},\n",
                "  \"cold_in_process\": {},\n",
                "  \"first_submission\": {},\n",
                "  \"warm_submission\": {},\n",
                "  \"setup\": {{\n",
                "    \"cold_build_seconds\": {:.6},\n",
                "    \"warm_build_seconds\": {:.6},\n",
                "    \"artifacts_derived_cold\": {}\n",
                "  }},\n",
                "  \"speedup_metric\": \"setup build seconds, cold cache / warm daemon cache\",\n",
                "  \"warm_speedup_vs_cold\": {:.3}\n",
                "}}\n"
            ),
            SERVICE_THREADS,
            cold.rows.len(),
            cold.failures,
            render_service_run(&cold),
            render_service_run(&first),
            render_service_run(&warm),
            setup.cold_build_s,
            setup.warm_build_s,
            setup.derivations,
            setup_speedup,
        );
        std::fs::write(SERVICE_BASELINE_PATH, &json).expect("write BENCH_service.json");
        println!("wrote {SERVICE_BASELINE_PATH}");
        return 0;
    }

    // Smoke: the committed baseline pins the workload shape; the
    // latency-ratio gate runs on this host's fresh measurements, so it
    // is meaningful even though absolute baseline times are not.
    let doc = match std::fs::read_to_string(SERVICE_BASELINE_PATH) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: cannot read {SERVICE_BASELINE_PATH}: {e}");
            eprintln!("run `campaign_throughput --service` once to produce it");
            return 2;
        }
    };
    if !doc.contains("\"schema\": \"bench_service/v1\"") {
        eprintln!("FAIL: baseline is not bench_service/v1");
        return 2;
    }
    let mut ok = true;
    for (key, got) in [
        ("scenarios", cold.rows.len()),
        ("failed_rows", cold.failures as usize),
    ] {
        match json_number(&doc, "workload", key) {
            Some(want) if want == got as f64 => {
                println!("  {key:<12} {got} == baseline");
            }
            Some(want) => {
                eprintln!("FAIL: {key} = {got}, baseline {want} — service semantics changed");
                ok = false;
            }
            None => {
                eprintln!("FAIL: baseline is missing workload.{key}");
                ok = false;
            }
        }
    }
    if !ok {
        return 2;
    }
    let max_ratio = std::env::var("SERVICE_SMOKE_MAX_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SERVICE_MAX_RATIO);
    let ratio = warm.first_row_s / cold.first_row_s;
    println!("  warm/cold first-row latency ratio {ratio:.3} (ceiling {max_ratio:.3})");
    if ratio > max_ratio {
        eprintln!(
            "FAIL: warm submission first-row latency {:.3}s exceeds {max_ratio:.2}x the cold \
             in-process run's {:.3}s — the daemon is adding latency, not amortizing it",
            warm.first_row_s, cold.first_row_s
        );
        return 1;
    }
    let min_setup = std::env::var("SERVICE_SMOKE_MIN_SETUP_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SERVICE_MIN_SETUP_SPEEDUP);
    println!("  warm-cache system-build speedup {setup_speedup:.2}x (floor {min_setup:.2}x)");
    if setup_speedup < min_setup {
        eprintln!(
            "FAIL: building against the warm daemon cache is only {setup_speedup:.2}x faster \
             than a cold build (floor {min_setup:.2}x) — the shared cache is not paying for \
             itself"
        );
        return 1;
    }
    println!("PASS");
    0
}

fn main() {
    if harness::has_flag("--service") {
        std::process::exit(run_service(harness::has_flag("--smoke")));
    }
    if harness::has_flag("--smoke") {
        std::process::exit(run_smoke());
    }
    if harness::has_flag("--probe") {
        run_probe();
        return;
    }
    run_full();
}
