//! Table I — "An example of SimB for configuring a new module".
//!
//! Regenerates the paper's table: the SimB that swaps module id=0x02
//! into reconfigurable region id=0x01 with a 4-word random payload,
//! with the per-word interpretation produced by the actual ICAP parser.

use bench::harness;
use resim::{annotate_simb, build_simb, SimbKind};

fn main() {
    println!("Table I — An example SimB for configuring a new module");
    println!("(module id=0x02 into region id=0x01, 4 payload words)\n");
    println!("{:<12} Explanation / actions taken", "SimB");
    println!("{}", harness::rule(76));
    let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 4, 2013);
    for (word, label) in annotate_simb(&simb) {
        println!("{word:#010X}   {label}");
    }
    println!();
    println!("Paper reference: SYNC 0xAA995566, FAR write 0x30002001/0x01020000,");
    println!("CMD WCFG, Type-2 FDRI size=4, 4 random words (word 0 starts error");
    println!("injection, word 3 ends it and triggers the swap), CMD DESYNC.");
}
