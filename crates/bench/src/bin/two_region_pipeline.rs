//! Two-region split-pipeline demonstrator — CIE and ME in separate
//! reconfigurable regions, reconfigured on alternating half-frames
//! through one shared ICAP.
//!
//! Runs the split topology under both simulation methods and reports
//! the per-region reconfiguration-plane statistics only the multi-region
//! build exposes: each region's portal swap count, its own isolation
//! window, and the shared ICAP word traffic. A final clean matrix row
//! (the campaign executor's `Scenario::SplitClean`) confirms both
//! methods run the topology silently — the multi-region analogue of
//! Table III's golden baseline.
//!
//! Usage: `two_region_pipeline [payload_words] [--trace-out <path>]
//! [--metrics-out <path>]` (default payload 256). With `--trace-out`
//! the ReSim run is traced and exported as Perfetto JSON, and the
//! per-region reconfiguration timeline is reconstructed from the trace
//! events instead of bespoke probes.

use autovision::{AvSystem, SimMethod, SystemConfig};
use bench::harness;
use verif::{Campaign, CoverageProbes, ReconfigTimeline, Scenario};

fn main() {
    let payload: usize = harness::parse_arg(1).unwrap_or(256);
    let obs_args = harness::ObsArgs::from_env();
    println!(
        "Two-region pipeline — CIE and ME in separate regions (32x24, 2 frames, SimB payload {payload} words)\n"
    );

    for method in [SimMethod::Vmux, SimMethod::Resim] {
        let cfg = harness::experiment(payload)
            .method(method)
            .regions(SystemConfig::split_regions())
            .build()
            .expect("split config is valid");
        let mut sys = AvSystem::build(cfg);
        if method == SimMethod::Resim {
            obs_args.arm(&mut sys.sim);
        }
        let probes = CoverageProbes::install(&mut sys);
        let (outcome, wall_s) = harness::timed(|| sys.run(4_000_000));
        assert!(
            !outcome.hung,
            "{method:?} split run hung: {:?}",
            sys.sim.messages()
        );
        let cov = probes.collect(&sys);
        let stats = sys.backend_stats();

        println!("{method:?}:");
        println!(
            "  frames         : {} in {} cycles ({:.2} s wall)",
            outcome.frames_captured, outcome.cycles, wall_s
        );
        match stats.icap.as_ref() {
            Some(icap) => {
                println!(
                    "  shared ICAP    : {} swaps, {} complete bitstreams, {} words accepted, {} dropped",
                    icap.swaps, icap.desyncs, icap.words_accepted, icap.words_dropped
                );
            }
            None => println!("  shared ICAP    : none (both engines permanently resident)"),
        }
        for (i, name) in ["A (CIE)", "B (ME)"].iter().enumerate() {
            let swaps = stats.regions.get(i).map(|r| r.swaps).unwrap_or(0);
            let pulses = cov.region_isolation_pulses.get(i).copied().unwrap_or(0);
            println!("  region {name:<8}: {swaps} swaps behind {pulses} isolation windows");
        }
        println!();

        if method == SimMethod::Resim && obs_args.active() {
            if sys.sim.trace_enabled() {
                let timeline = ReconfigTimeline::from_events(&sys.sim.trace_events());
                println!("trace-reconstructed reconfiguration timeline:");
                print!("{}", timeline.render());
                println!();
            }
            let metrics = harness::system_metrics(&sys, &outcome);
            obs_args.export(&sys.sim, &metrics);
            println!();
        }
    }

    println!("clean-run matrix row (both methods must stay silent):");
    let row = Campaign::builder()
        .scenario(Scenario::SplitClean)
        .threads(1)
        .build()
        .run()
        .matrix_rows()
        .remove(0);
    println!(
        "  {:<8} {:<28} vmux={:<5} resim={:<5} {}",
        row.bug,
        row.description,
        row.vmux_detected,
        row.resim_detected,
        if row.as_expected() {
            "as expected"
        } else {
            "UNEXPECTED"
        }
    );
    println!();
    println!("shape: under ReSim each region reloads once per frame behind its own");
    println!("isolation window while the other region computes; the shared ICAP");
    println!("carries both regions' images, routed by the rr_id in each SimB's FAR.");
    println!("Under VMUX the same software runs but no bitstream traffic exists.");
}
