//! fuzz_campaign — coverage-guided reconfiguration-schedule fuzzing.
//!
//! Runs three fixed-seed fuzz sessions over the small matrix-scale
//! system and reports coverage, corpus growth and deduplicated,
//! shrunk failure signatures:
//!
//! * **clean** — golden design, timing/arbitration/topology mutations
//!   only (no word-stream corruption). The robustness gate: *no legal
//!   schedule may break the golden design*, so this session must end
//!   with zero failure signatures.
//! * **corrupt** — golden design with SimB word-stream corruption ops
//!   enabled (bit flips, stalls, spurious bus errors, ICAP ready
//!   drops) and the recovery protocol off. The detection gate: the
//!   oracles must catch corrupted bitstreams, so this session must
//!   find at least one failure signature.
//! * **seeded** — the bug.dpr.6a race (fixed-loop wait instead of
//!   polling transfer done) seeded into the base design. The
//!   find-and-shrink gate: the fuzzer must find the race, dedup it to
//!   one signature, and shrink the witness to a minimal reproducer.
//!
//! Modes:
//!
//! * **default** — full-size sessions; prints each report, exercises
//!   the reproducer replay loop, and writes the `BENCH_fuzz.json`
//!   baseline (committed at the repo root).
//! * **`--smoke`** — bounded sessions (fewer rounds, smaller batches)
//!   plus validation of the committed baseline: the `bench_fuzz/v1`
//!   schema, zero clean failures and nonzero corrupt/seeded failures
//!   must hold both in the file and in the re-run. Every failure's
//!   reproducer is serialized to JSON, parsed back and replayed, and
//!   must reproduce its signature. Exits nonzero on any mismatch;
//!   this is what CI gates on.
//! * **`--replay <file> [bug-id]`** — parse a `fuzz_repro/v2` document
//!   and replay it against the base design (optionally with a seeded
//!   bug from the catalog, e.g. `bug.dpr.6a`); prints the verdict.

use autovision::{Bug, FaultSet, SimMethod, SystemConfig};
use bench::harness;
use verif::fuzz::{self, FuzzOptions, FuzzReport, FuzzRepro};

const BASELINE_PATH: &str = "BENCH_fuzz.json";
const BUDGET_CYCLES: u64 = 400_000;
const SEED: u64 = 0x5EED_F022;

/// The fuzzed base: the detection matrix's small configuration, under
/// the shared `--exec-mode` flag (the fuzzer also mutates the mode as
/// its own schedule knob; this sets the *baseline* schedule's mode).
fn fuzz_base() -> SystemConfig {
    SystemConfig::builder()
        .method(SimMethod::Resim)
        .width(32)
        .height(24)
        .n_frames(2)
        .payload_words(256)
        .exec_mode(harness::exec_mode())
        .build()
        .expect("fuzz base config is valid")
}

fn seeded_base() -> SystemConfig {
    SystemConfig {
        faults: FaultSet::one(Bug::Dpr6aShortFixedWait),
        ..fuzz_base()
    }
}

struct Session {
    label: &'static str,
    report: FuzzReport,
    wall_s: f64,
}

fn run_session(
    label: &'static str,
    base: &SystemConfig,
    rounds: usize,
    batch: usize,
    corrupt_stream: bool,
) -> Session {
    let opts = FuzzOptions {
        seed: SEED,
        rounds,
        batch,
        threads: harness::threads(),
        budget_cycles: BUDGET_CYCLES,
        corrupt_stream,
        mutate_recovery: corrupt_stream,
        mutate_topology: true,
        scenario_timeout: None,
        ..Default::default()
    };
    let (report, wall_s) = harness::timed(|| fuzz::run_fuzz(base, &opts));
    Session {
        label,
        report,
        wall_s,
    }
}

/// Serialize every reproducer, parse it back, replay it, and check the
/// replay reproduces the recorded signature. Returns the number of
/// verified reproducers.
fn verify_repros(base: &SystemConfig, report: &FuzzReport) -> usize {
    let mut verified = 0;
    for f in &report.failures {
        let doc = f.repro.to_json();
        let parsed = FuzzRepro::from_json(&doc).expect("reproducer JSON round-trips");
        assert_eq!(parsed, f.repro, "parse-back changed the reproducer");
        let row = fuzz::replay(base, &parsed);
        assert_eq!(
            row.signature.as_deref(),
            Some(f.signature.as_str()),
            "replay of [{}] diverged: got {:?}",
            f.signature,
            row.signature
        );
        verified += 1;
    }
    verified
}

fn print_session(s: &Session) {
    println!("{} ({:.2} s):", s.label, s.wall_s);
    print!("{}", textwrap(&s.report.render()));
}

fn textwrap(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}

fn render_session(s: &Session) -> String {
    let r = &s.report;
    format!(
        concat!(
            "{{\n",
            "    \"iterations\": {},\n",
            "    \"coverage_keys\": {},\n",
            "    \"corpus\": {},\n",
            "    \"failure_signatures\": {},\n",
            "    \"shrink_runs\": {},\n",
            "    \"timed_out\": {},\n",
            "    \"wall_seconds\": {:.6}\n",
            "  }}"
        ),
        r.iterations,
        r.coverage_keys,
        r.corpus.len(),
        r.failures.len(),
        r.shrink_runs,
        r.timed_out,
        s.wall_s,
    )
}

fn gate(sessions: &[&Session]) {
    let by = |label: &str| {
        &sessions
            .iter()
            .find(|s| s.label == label)
            .expect("session present")
            .report
    };
    assert_eq!(
        by("clean").failures.len(),
        0,
        "golden design failed under a legal schedule:\n{}",
        by("clean").digest()
    );
    assert!(
        !by("corrupt").failures.is_empty(),
        "word-stream corruption went undetected"
    );
    assert!(
        !by("seeded").failures.is_empty(),
        "seeded bug.dpr.6a race not found"
    );
    for s in sessions {
        for f in &s.report.failures {
            assert!(
                f.repro.mutations <= f.first.mutation_count(&s.report.corpus[0]),
                "shrinker increased mutation distance for [{}]",
                f.signature
            );
        }
    }
}

fn run_full() {
    println!("fuzz_campaign — coverage-guided reconfiguration-schedule fuzzing\n");
    let clean = run_session("clean", &fuzz_base(), 6, 8, false);
    let corrupt = run_session("corrupt", &fuzz_base(), 6, 8, true);
    let seeded = run_session("seeded", &seeded_base(), 4, 8, false);
    for s in [&clean, &corrupt, &seeded] {
        print_session(s);
        println!();
    }
    gate(&[&clean, &corrupt, &seeded]);
    let verified = verify_repros(&fuzz_base(), &corrupt.report)
        + verify_repros(&seeded_base(), &seeded.report);
    println!("replay loop: {verified} reproducer(s) serialized, parsed back and re-reproduced");

    // Emit each reproducer as a standalone replayable document:
    //   fuzz_campaign --replay target/fuzz/seeded_0.json bug.dpr.6a
    std::fs::create_dir_all("target/fuzz").expect("create target/fuzz");
    for (s, bug) in [(&corrupt, ""), (&seeded, " bug.dpr.6a")] {
        for (i, f) in s.report.failures.iter().enumerate() {
            let path = format!("target/fuzz/{}_{i}.json", s.label);
            std::fs::write(&path, f.repro.to_json()).expect("write reproducer");
            println!("wrote {path} — replay with: fuzz_campaign --replay {path}{bug}");
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"bench_fuzz/v1\",\n",
            "  \"seed\": {},\n",
            "  \"budget_cycles\": {},\n",
            "  \"clean\": {},\n",
            "  \"corrupt\": {},\n",
            "  \"seeded\": {},\n",
            "  \"replayed_repros\": {}\n",
            "}}\n"
        ),
        SEED,
        BUDGET_CYCLES,
        render_session(&clean),
        render_session(&corrupt),
        render_session(&seeded),
        verified,
    );
    std::fs::write(BASELINE_PATH, &json).expect("write BENCH_fuzz.json");
    println!("wrote {BASELINE_PATH}");
}

/// Pull the number after `"key":` inside the flat object following
/// `"section":` — enough of a JSON reader for the file this bin writes.
fn json_number(doc: &str, section: &str, key: &str) -> Option<f64> {
    let sec = doc.find(&format!("\"{section}\""))?;
    let rest = &doc[sec..];
    let open = rest.find('{')?;
    let close = open + rest[open..].find('}')?;
    let obj = &rest[open..close];
    let k = obj.find(&format!("\"{key}\""))?;
    let after = &obj[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn run_smoke() {
    println!("fuzz_campaign --smoke\n");

    // Gate 1: the committed baseline parses and already satisfies the
    // robustness/detection invariants.
    let doc = std::fs::read_to_string(BASELINE_PATH).expect("read committed BENCH_fuzz.json");
    assert!(
        doc.contains("\"schema\": \"bench_fuzz/v1\""),
        "baseline schema mismatch"
    );
    let sig = |section: &str| {
        json_number(&doc, section, "failure_signatures")
            .unwrap_or_else(|| panic!("baseline missing {section}.failure_signatures"))
    };
    assert_eq!(sig("clean"), 0.0, "baseline records clean-design failures");
    assert!(
        sig("corrupt") >= 1.0,
        "baseline corrupt session found nothing"
    );
    assert!(
        sig("seeded") >= 1.0,
        "baseline seeded session found nothing"
    );
    println!("committed baseline: schema + failure gates ok");

    // Gate 2: bounded re-run of all three sessions under the same fixed
    // seed, same invariants.
    let clean = run_session("clean", &fuzz_base(), 2, 6, false);
    let corrupt = run_session("corrupt", &fuzz_base(), 3, 6, true);
    let seeded = run_session("seeded", &seeded_base(), 2, 6, false);
    for s in [&clean, &corrupt, &seeded] {
        print_session(s);
    }
    gate(&[&clean, &corrupt, &seeded]);

    // Gate 3: every reproducer survives the full serialize → parse →
    // replay loop with its signature intact.
    let verified = verify_repros(&fuzz_base(), &corrupt.report)
        + verify_repros(&seeded_base(), &seeded.report);
    assert!(verified >= 2, "expected at least two verified reproducers");
    println!("\nsmoke ok: clean 0 failures, {verified} reproducer(s) replayed bit-faithfully");
}

fn run_replay(path: &str, bug_id: Option<&str>) {
    let doc = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let repro = FuzzRepro::from_json(&doc).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let base = match bug_id {
        None => fuzz_base(),
        Some(id) => {
            let bug = Bug::ALL
                .into_iter()
                .find(|b| b.id() == id)
                .unwrap_or_else(|| panic!("unknown bug id {id}"));
            SystemConfig {
                faults: FaultSet::one(bug),
                ..fuzz_base()
            }
        }
    };
    println!(
        "replaying {path} (signature [{}], {} mutation(s))",
        repro.signature, repro.mutations
    );
    let row = fuzz::replay(&base, &repro);
    println!(
        "replay: detected={} signature={:?} frames={} cycles={}",
        row.detected, row.signature, row.frames, row.cycles
    );
    for e in &row.evidence {
        println!("  evidence: {e:?}");
    }
    if row.signature.as_deref() == Some(repro.signature.as_str()) {
        println!("signature reproduced");
    } else {
        eprintln!("signature NOT reproduced");
        std::process::exit(1);
    }
}

fn main() {
    if harness::has_flag("--smoke") {
        run_smoke();
    } else if let Some(path) = harness::flag_value("--replay") {
        let bug = std::env::args().nth(3);
        run_replay(&path, bug.as_deref());
    } else {
        run_full();
    }
}
