//! §V — the simulation overhead of the ReSim artifacts.
//!
//! The paper profiles its ModelSim run and finds 1.4% of simulation time
//! in the `Engine_wrapper` multiplexer (triggered whenever the engine
//! IOs toggle) and 0.3% in the other simulation-only artifacts
//! (extended portal, error injectors) — 1.7% total. This harness runs
//! the same workload under the kernel profiler and reports the same
//! breakdown for our artifacts.

use autovision::AvSystem;
use bench::{harness, paper_scale_config};
use rtlsim::CompKind;

/// One measured repetition: (mux fraction, other-artifact fraction,
/// user fraction, vip fraction, report rows).
fn measure() -> (f64, f64, f64, f64, Vec<rtlsim::profile::ProfileRow>) {
    let cfg = harness::with_exec_mode(paper_scale_config());
    let mut sys = AvSystem::build(cfg);
    sys.sim.set_profiling(true);
    let outcome = sys.run(40_000_000);
    assert!(!outcome.hung);
    let names = sys.sim.eval_counts();
    let rows = sys.sim.profiler().report(&names);
    let total: f64 = rows.iter().map(|r| r.time.as_secs_f64()).sum();
    let frac_of = |pred: &dyn Fn(&str) -> bool| -> f64 {
        rows.iter()
            .filter(|r| r.kind == CompKind::Artifact && pred(&r.name))
            .map(|r| r.time.as_secs_f64())
            .sum::<f64>()
            / total
    };
    let mux = frac_of(&|n| n.ends_with(".mux"));
    let other = frac_of(&|n| !n.ends_with(".mux"));
    let user = sys.sim.profiler().fraction_of_kind(CompKind::UserStatic)
        + sys.sim.profiler().fraction_of_kind(CompKind::UserReconf);
    let vip = sys.sim.profiler().fraction_of_kind(CompKind::Vip);
    (mux, other, user, vip, rows)
}

use harness::median;

fn main() {
    let cfg = paper_scale_config();
    println!(
        "ReSim simulation overhead profile ({}x{}, {} frames; median of 3 sampled runs)\n",
        cfg.width, cfg.height, cfg.n_frames
    );
    let runs: Vec<_> = (0..3).map(|_| measure()).collect();
    let mux = median(runs.iter().map(|r| r.0).collect());
    let other = median(runs.iter().map(|r| r.1).collect());
    let user_frac = median(runs.iter().map(|r| r.2).collect());
    let vip_frac = median(runs.iter().map(|r| r.3).collect());
    let rows = runs.into_iter().last().unwrap().4;

    println!("{:<44} {:>10} {:>12}", "component class", "here", "paper");
    println!("{}", harness::rule(70));
    println!(
        "{:<44} {:>9.2}% {:>12}",
        "Engine_wrapper multiplexer (region mux)",
        100.0 * mux,
        "1.4%"
    );
    println!(
        "{:<44} {:>9.2}% {:>12}",
        "other artifacts (portal, ICAP, injector)",
        100.0 * other,
        "0.3%"
    );
    println!(
        "{:<44} {:>9.2}% {:>12}",
        "total simulation-only overhead",
        100.0 * (mux + other),
        "1.7%"
    );
    println!(
        "{:<44} {:>9.2}%",
        "user design (static + reconfigurable)",
        100.0 * user_frac
    );
    println!(
        "{:<44} {:>9.2}%",
        "verification IP (ISS, VIPs, clocks, monitors)",
        100.0 * vip_frac
    );
    println!("\ntop components by eval time:");
    for r in rows.iter().take(10) {
        println!(
            "  {:<28} {:?}  {:>8.3} s  ({:>5.2}%)  {} evals",
            r.name,
            r.kind,
            r.time.as_secs_f64(),
            100.0 * r.fraction,
            r.evals
        );
    }
    println!(
        "\nshape check: artifacts small ({}%), mux dominates artifacts ({})",
        100.0 * (mux + other) < 20.0,
        mux > other
    );

    // The profiler doubles as a metrics-registry producer: fold the
    // per-kind breakdown into the standard snapshot when requested.
    if let Some(path) = harness::ObsArgs::from_env().metrics_out {
        let mut reg = obs::MetricsRegistry::new();
        obs::record_profile(&mut reg, &rows);
        reg.gauge("profile.artifact.mux_fraction", mux);
        reg.gauge("profile.artifact.other_fraction", other);
        std::fs::write(&path, reg.snapshot_json()).expect("write metrics artifact");
        println!("wrote metrics snapshot to {}", path.display());
    }
}
