//! Ablation — the error-injection policy.
//!
//! ReSim injects `X` by default (like DCS), and the paper notes the
//! error sources "can also be overridden for design-/test-specific
//! purposes". This harness runs the isolation bug (bug.dpr.1) under
//! three policies and shows that the optimistic "silent" policy — which
//! is effectively what Virtual Multiplexing does — cannot detect it.

use autovision::{Bug, ErrorSourceKind, FaultSet};
use bench::harness;
use verif::run_experiment;

fn main() {
    println!("Error-source ablation on bug.dpr.1 (isolation never asserted)\n");
    println!("{:<10} {:>10}  evidence", "policy", "detected");
    println!("{}", harness::rule(72));
    for (name, kind) in [
        ("X", ErrorSourceKind::X),
        ("random", ErrorSourceKind::Random),
        ("silent", ErrorSourceKind::Silent),
    ] {
        let cfg = harness::experiment(256)
            .faults(FaultSet::one(Bug::Dpr1NoIsolation))
            .error_source(kind)
            .build()
            .expect("ablation config is valid");
        let v = run_experiment(cfg, 1_000_000);
        println!(
            "{name:<10} {:>10}  {}",
            if v.detected { "FOUND" } else { "missed" },
            harness::evidence(&v, "-")
        );
    }
    println!();
    println!("shape: X injection (ReSim default) flags the missing isolation via");
    println!("4-state propagation; a silent source behaves like VMUX and misses it.");
    println!("A random known-value source may corrupt data without tripping the");
    println!("X-monitors — detection then depends on scoreboard coverage alone.");
}
