//! Table III — detected bugs under Virtual Multiplexing vs ReSim.
//!
//! Replays the entire bug catalog: each bug is injected into the system
//! and simulated under both methods; detection is classified by the
//! automated oracles. The "status" column compares against the paper's
//! expectation (DPR bugs ReSim-only, the signature false alarm
//! VMUX-only, static/software bugs found by both).

use bench::harness;
use verif::{render_matrix, Campaign, MatrixConfig};

fn main() {
    let threads = harness::threads();
    let mc = MatrixConfig::default();
    println!(
        "Table III — bug detection matrix ({}x{}, {} frames, SimB payload {} words, {} threads)\n",
        mc.base.width, mc.base.height, mc.base.n_frames, mc.base.payload_words, threads
    );
    let report = Campaign::builder()
        .threads(threads)
        .exec_mode(harness::exec_mode())
        .matrix()
        .build()
        .run();
    let rows = report.matrix_rows();
    println!("{}", render_matrix(&rows));
    let ok = rows.iter().filter(|r| r.as_expected()).count();
    println!("{}/{} rows match the paper's analysis", ok, rows.len());
    let dpr_missed_by_vmux = rows
        .iter()
        .filter(|r| r.bug.starts_with("bug.dpr") && !r.vmux_detected && r.resim_detected)
        .count();
    println!("ReSim-only detections (bugs Virtual Multiplexing cannot see): {dpr_missed_by_vmux}");
    println!("\nkey paper rows:");
    for id in ["bug.hw.2", "bug.dpr.4", "bug.dpr.5", "bug.dpr.6b"] {
        if let Some(r) = rows.iter().find(|r| r.bug == id) {
            println!(
                "  {:<11} vmux={:<5} resim={:<5}  {}",
                r.bug, r.vmux_detected, r.resim_detected, r.evidence
            );
        }
    }
    let s = &report.stats;
    println!(
        "\nexecutor: {} scenarios in {:.2} s ({:.1}/s), {} steals, artifact cache {}/{} hits",
        s.scenarios,
        s.wall_s,
        s.scenarios_per_sec(),
        s.steals(),
        s.artifact_hits,
        s.artifact_hits + s.artifact_misses
    );
}
