//! Figure 5 — development workload and bugs detected over 11 weeks.
//!
//! The LoC series is the paper's version-control history (reference
//! data, dominated by the week-3 import of the reused design and legacy
//! VIPs). The bug series is *regenerated*: each development phase
//! replays the bug catalog under the simulation method in use during
//! that phase, so the detections plotted per week come from real
//! simulations of this repository.

use bench::harness;
use verif::{build_timeline, render_timeline, Campaign};

fn main() {
    let threads = harness::threads();
    println!("Figure 5 — development workload and bugs detected\n");
    let rows = Campaign::builder()
        .threads(threads)
        .exec_mode(harness::exec_mode())
        .matrix()
        .build()
        .run()
        .matrix_rows();
    let weeks = build_timeline(&rows);
    println!("{}", render_timeline(&weeks));

    // ASCII rendition of the two series.
    println!("LoC (cumulative, paper VCS data):");
    let max = weeks.iter().map(|w| w.loc).max().unwrap() as f64;
    for w in &weeks {
        let bar = "#".repeat((w.loc as f64 / max * 56.0) as usize);
        println!("  wk{:<3} {:>7} |{}", w.week, w.loc, bar);
    }
    println!("\nbugs detected per week (regenerated):");
    for w in &weeks {
        let marks = "*".repeat(w.bugs_detected.len()) + &"!".repeat(w.false_alarms.len());
        println!("  wk{:<3} |{}", w.week, marks);
    }
    println!("  (* = real bug, ! = false alarm)");

    let total_bugs: usize = weeks.iter().map(|w| w.bugs_detected.len()).sum();
    let vmux_phase: usize = weeks
        .iter()
        .filter(|w| w.week <= 9)
        .map(|w| w.bugs_detected.len())
        .sum();
    println!(
        "\nshape: {total_bugs} real bugs total; {vmux_phase} found in the VMUX phase (weeks 4-9), \
         {} in the ReSim phase (weeks 10-11); paper: 3 static then 2 SW + 6 DPR",
        total_bugs - vmux_phase
    );
}
