//! kernel_throughput — raw simulation-kernel throughput on the full
//! AutoVision system.
//!
//! Two modes:
//!
//! * **default** — runs the paper-scale Table II system plus the small
//!   smoke system, reports cycles/sec and events/sec, and writes the
//!   `BENCH_kernel.json` baseline (committed at the repo root).
//! * **`--smoke`** — re-runs only the small system and compares against
//!   the committed baseline: the deterministic kernel counters (evals,
//!   deltas, toggles, events) must match *exactly*, and host-normalized
//!   throughput must not regress by more than 10% (override with the
//!   `KERNEL_SMOKE_MAX_REGRESSION` env var, a fraction). Exits nonzero
//!   on either failure, which is what CI gates on.
//!
//! Wall-clock numbers are host-dependent, so throughput is normalized
//! by a fixed-work calibration loop measured on the same host in the
//! same process; only the *ratio* kernel-throughput / calibration-speed
//! is compared across runs.

use autovision::SystemConfig;
use bench::{harness, paper_scale_config, small_config};
use std::time::Instant;

const BASELINE_PATH: &str = "BENCH_kernel.json";
const DEFAULT_MAX_REGRESSION: f64 = 0.10;

/// One measured run of a configuration.
struct Measurement {
    wall_s: f64,
    cycles: u64,
    evals: u64,
    deltas: u64,
    toggles: u64,
    events: u64,
    frames: usize,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s
    }
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

fn measure(cfg: SystemConfig, budget_cycles: u64) -> Measurement {
    let (sys, outcome, wall_s) = harness::run_built(cfg, budget_cycles);
    let stats = sys.sim.stats();
    Measurement {
        wall_s,
        cycles: outcome.cycles,
        evals: stats.evals,
        deltas: stats.deltas,
        toggles: stats.toggles,
        events: stats.events,
        frames: outcome.frames_captured,
    }
}

/// Best-of-n smoke measurement (the run is short; take the fastest to
/// cut scheduler noise).
fn measure_smoke() -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..5 {
        let m = measure(small_config(), 10_000_000);
        if best.as_ref().map(|b| m.wall_s < b.wall_s).unwrap_or(true) {
            best = Some(m);
        }
    }
    best.unwrap()
}

/// Fixed-work integer loop, in M ops/sec — a host speed yardstick that
/// cancels out of cross-host throughput comparisons.
fn calibrate_mops() -> f64 {
    let iters = 200_000_000u64;
    let t0 = Instant::now();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..iters {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x);
    iters as f64 / t0.elapsed().as_secs_f64() / 1e6
}

fn render_section(m: &Measurement, calib_mops: f64) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"wall_seconds\": {:.6},\n",
            "    \"cycles\": {},\n",
            "    \"cycles_per_sec\": {:.1},\n",
            "    \"events\": {},\n",
            "    \"events_per_sec\": {:.1},\n",
            "    \"evals\": {},\n",
            "    \"deltas\": {},\n",
            "    \"toggles\": {},\n",
            "    \"frames\": {},\n",
            "    \"calibration_mops\": {:.1},\n",
            "    \"normalized_score\": {:.6}\n",
            "  }}"
        ),
        m.wall_s,
        m.cycles,
        m.cycles_per_sec(),
        m.events,
        m.events_per_sec(),
        m.evals,
        m.deltas,
        m.toggles,
        m.frames,
        calib_mops,
        m.cycles_per_sec() / (calib_mops * 1e6),
    )
}

/// Pull the number after `"key":` inside the flat object following
/// `"section":` — enough of a JSON reader for the file this bin writes.
fn json_number(doc: &str, section: &str, key: &str) -> Option<f64> {
    let sec = doc.find(&format!("\"{section}\""))?;
    let rest = &doc[sec..];
    let open = rest.find('{')?;
    let close = open + rest[open..].find('}')?;
    let obj = &rest[open..close];
    let k = obj.find(&format!("\"{key}\""))?;
    let after = &obj[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn print_measurement(label: &str, m: &Measurement, calib: f64) {
    println!("{label}:");
    println!("  wall           : {:.3} s ({} frames)", m.wall_s, m.frames);
    println!(
        "  cycles         : {} ({:.2} M cycles/sec)",
        m.cycles,
        m.cycles_per_sec() / 1e6
    );
    println!(
        "  events         : {} ({:.2} M events/sec)",
        m.events,
        m.events_per_sec() / 1e6
    );
    println!(
        "  evals/deltas   : {} / {} ({:.2} M evals/sec)",
        m.evals,
        m.deltas,
        m.evals as f64 / m.wall_s / 1e6
    );
    println!("  toggles        : {}", m.toggles);
    println!(
        "  normalized     : {:.4} cycles per calibration op (host {:.0} Mops)",
        m.cycles_per_sec() / (calib * 1e6),
        calib
    );
}

fn run_full() {
    println!("kernel_throughput — full AutoVision system (paper scale + smoke)\n");
    let calib = calibrate_mops();
    let full = measure(paper_scale_config(), 40_000_000);
    let smoke = measure_smoke();
    print_measurement("paper-scale (320x240, SimB 4096)", &full, calib);
    println!();
    print_measurement("smoke (32x24, SimB 128)", &smoke, calib);

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"bench_kernel/v1\",\n",
            "  \"full\": {},\n",
            "  \"smoke\": {}\n",
            "}}\n"
        ),
        render_section(&full, calib),
        render_section(&smoke, calib),
    );
    std::fs::write(BASELINE_PATH, &json).expect("write BENCH_kernel.json");
    println!("\nwrote {BASELINE_PATH}");
}

fn run_smoke() -> i32 {
    println!("kernel_throughput --smoke — regression gate vs {BASELINE_PATH}\n");
    let doc = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: cannot read {BASELINE_PATH}: {e}");
            eprintln!("run `kernel_throughput` (no args) once to produce it");
            return 2;
        }
    };
    let calib = calibrate_mops();
    let m = measure_smoke();
    print_measurement("smoke (32x24, SimB 128)", &m, calib);
    println!();

    // 1) Deterministic counters must match the baseline exactly: any
    //    drift means the kernel's scheduling semantics changed.
    let mut semantic_ok = true;
    for (key, got) in [
        ("evals", m.evals),
        ("deltas", m.deltas),
        ("toggles", m.toggles),
        ("events", m.events),
        ("cycles", m.cycles),
    ] {
        match json_number(&doc, "smoke", key) {
            Some(want) if want == got as f64 => {
                println!("  {key:<8} {got} == baseline");
            }
            Some(want) => {
                eprintln!("FAIL: {key} = {got}, baseline {want} — kernel semantics changed");
                semantic_ok = false;
            }
            None => {
                eprintln!("FAIL: baseline is missing smoke.{key}");
                semantic_ok = false;
            }
        }
    }
    if !semantic_ok {
        return 2;
    }

    // 2) Host-normalized throughput must not regress beyond tolerance.
    let max_regression = std::env::var("KERNEL_SMOKE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION);
    let baseline_norm = match json_number(&doc, "smoke", "normalized_score") {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("FAIL: baseline is missing smoke.normalized_score");
            return 2;
        }
    };
    let norm = m.cycles_per_sec() / (calib * 1e6);
    let ratio = norm / baseline_norm;
    println!(
        "\n  normalized throughput: {norm:.4} vs baseline {baseline_norm:.4} (ratio {ratio:.3}, \
         tolerance -{:.0}%)",
        max_regression * 100.0
    );
    if ratio < 1.0 - max_regression {
        eprintln!(
            "FAIL: kernel throughput regressed {:.1}% vs committed baseline",
            (1.0 - ratio) * 100.0
        );
        return 1;
    }
    println!("PASS");
    0
}

fn main() {
    if harness::has_flag("--smoke") {
        std::process::exit(run_smoke());
    }
    run_full();
}
