//! kernel_throughput — raw simulation-kernel throughput on the full
//! AutoVision system, per execution mode.
//!
//! Two modes:
//!
//! * **default** — runs the paper-scale Table II system plus the small
//!   smoke system under *both* kernel execution modes (event-driven and
//!   compiled), measures the quiescent steady-state tail, and writes
//!   the `BENCH_kernel.json` baseline (schema `bench_kernel/v2`,
//!   committed at the repo root).
//! * **`--smoke`** — re-runs the small system under both modes and
//!   gates against the committed baseline:
//!   1. event-driven kernel counters (evals, deltas, toggles, events,
//!      cycles) must match the baseline *exactly*;
//!   2. the compiled run must agree with the event-driven run on every
//!      mode-independent counter (cycles, toggles, events, frames) —
//!      the bit-identity contract, checked in-process;
//!   3. host-normalized event-driven throughput must not regress by
//!      more than 10% (`KERNEL_SMOKE_MAX_REGRESSION` env override);
//!   4. compiled steady-state throughput must be at least 5× the
//!      event-driven steady-state throughput
//!      (`KERNEL_STEADY_MIN_RATIO` env override).
//!   Exits nonzero on any failure, which is what CI gates on.
//!
//! **Steady state** is the quiescent tail: the system is run to
//! software halt, then throughput is timed over a further fixed window
//! in which nothing but the clock generator has work. Event-driven
//! dispatch still evaluates every clocked component twice per cycle
//! there; compiled dispatch parks everything and the window collapses
//! to the clock generator alone. This isolates the dispatch overhead
//! the compiled plane exists to remove — full-run wall clock also
//! improves, but is dominated by eval-body work both modes must do.
//!
//! Wall-clock numbers are host-dependent, so throughput is normalized
//! by a fixed-work calibration loop measured on the same host in the
//! same process; only the *ratio* kernel-throughput / calibration-speed
//! is compared across runs.

use autovision::{AvSystem, SystemConfig, CLK_PERIOD_PS};
use bench::{harness, paper_scale_config, small_config};
use rtlsim::ExecMode;
use std::time::Instant;

const BASELINE_PATH: &str = "BENCH_kernel.json";
const DEFAULT_MAX_REGRESSION: f64 = 0.10;
/// Acceptance floor on compiled/event steady-state throughput.
const DEFAULT_STEADY_MIN_RATIO: f64 = 5.0;
/// Clock cycles the steady-state window times.
const STEADY_CYCLES: u64 = 100_000;

/// One measured run of a configuration.
struct Measurement {
    wall_s: f64,
    cycles: u64,
    evals: u64,
    deltas: u64,
    toggles: u64,
    events: u64,
    frames: usize,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s
    }
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }
}

/// The quiescent-tail measurement of one mode.
struct Steady {
    wall_s: f64,
    cycles: u64,
    evals: u64,
}

impl Steady {
    fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall_s
    }
    fn evals_per_cycle(&self) -> f64 {
        self.evals as f64 / self.cycles as f64
    }
}

fn with_mode(mut cfg: SystemConfig, mode: ExecMode) -> SystemConfig {
    cfg.exec_mode = mode;
    cfg
}

fn measure(cfg: SystemConfig, budget_cycles: u64) -> Measurement {
    let (sys, outcome, wall_s) = harness::run_built(cfg, budget_cycles);
    let stats = sys.sim.stats();
    Measurement {
        wall_s,
        cycles: outcome.cycles,
        evals: stats.evals,
        deltas: stats.deltas,
        toggles: stats.toggles,
        events: stats.events,
        frames: outcome.frames_captured,
    }
}

/// Best-of-n smoke measurement (the run is short; take the fastest to
/// cut scheduler noise).
fn measure_smoke(mode: ExecMode) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..5 {
        let m = measure(with_mode(small_config(), mode), 10_000_000);
        if best.as_ref().map(|b| m.wall_s < b.wall_s).unwrap_or(true) {
            best = Some(m);
        }
    }
    best.unwrap()
}

/// Run the small system to software halt, then time a further
/// `STEADY_CYCLES`-cycle window — the steady-state throughput of the
/// given mode on the *same* netlist and architectural state.
fn measure_steady(mode: ExecMode) -> Steady {
    let mut sys = AvSystem::build(with_mode(small_config(), mode));
    let outcome = sys.run(10_000_000);
    assert!(
        outcome.halted,
        "steady-state measurement needs a halted system (mode {mode})"
    );
    let evals_before = sys.sim.stats().evals;
    let t0 = Instant::now();
    sys.sim
        .run_for(STEADY_CYCLES * CLK_PERIOD_PS)
        .expect("steady window kernel error");
    let wall_s = t0.elapsed().as_secs_f64();
    Steady {
        wall_s,
        cycles: STEADY_CYCLES,
        evals: sys.sim.stats().evals - evals_before,
    }
}

/// Fixed-work integer loop, in M ops/sec — a host speed yardstick that
/// cancels out of cross-host throughput comparisons.
fn calibrate_mops() -> f64 {
    let iters = 200_000_000u64;
    let t0 = Instant::now();
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..iters {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(x);
    iters as f64 / t0.elapsed().as_secs_f64() / 1e6
}

fn render_section(m: &Measurement, calib_mops: f64) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"wall_seconds\": {:.6},\n",
            "    \"cycles\": {},\n",
            "    \"cycles_per_sec\": {:.1},\n",
            "    \"events\": {},\n",
            "    \"events_per_sec\": {:.1},\n",
            "    \"evals\": {},\n",
            "    \"deltas\": {},\n",
            "    \"toggles\": {},\n",
            "    \"frames\": {},\n",
            "    \"calibration_mops\": {:.1},\n",
            "    \"normalized_score\": {:.6}\n",
            "  }}"
        ),
        m.wall_s,
        m.cycles,
        m.cycles_per_sec(),
        m.events,
        m.events_per_sec(),
        m.evals,
        m.deltas,
        m.toggles,
        m.frames,
        calib_mops,
        m.cycles_per_sec() / (calib_mops * 1e6),
    )
}

fn render_steady(s: &Steady) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"wall_seconds\": {:.6},\n",
            "    \"cycles\": {},\n",
            "    \"kcycles_per_sec\": {:.1},\n",
            "    \"evals\": {},\n",
            "    \"evals_per_cycle\": {:.2}\n",
            "  }}"
        ),
        s.wall_s,
        s.cycles,
        s.cycles_per_sec() / 1e3,
        s.evals,
        s.evals_per_cycle(),
    )
}

/// Pull the number after `"key":` inside the flat object following
/// `"section":` — enough of a JSON reader for the file this bin writes
/// (every section is a flat object with a mode-qualified name).
fn json_number(doc: &str, section: &str, key: &str) -> Option<f64> {
    let sec = doc.find(&format!("\"{section}\""))?;
    let rest = &doc[sec..];
    let open = rest.find('{')?;
    let close = open + rest[open..].find('}')?;
    let obj = &rest[open..close];
    let k = obj.find(&format!("\"{key}\""))?;
    let after = &obj[k..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn print_measurement(label: &str, m: &Measurement, calib: f64) {
    println!("{label}:");
    println!("  wall           : {:.3} s ({} frames)", m.wall_s, m.frames);
    println!(
        "  cycles         : {} ({:.2} M cycles/sec)",
        m.cycles,
        m.cycles_per_sec() / 1e6
    );
    println!(
        "  events         : {} ({:.2} M events/sec)",
        m.events,
        m.events_per_sec() / 1e6
    );
    println!(
        "  evals/deltas   : {} / {} ({:.2} M evals/sec)",
        m.evals,
        m.deltas,
        m.evals as f64 / m.wall_s / 1e6
    );
    println!("  toggles        : {}", m.toggles);
    println!(
        "  normalized     : {:.4} cycles per calibration op (host {:.0} Mops)",
        m.cycles_per_sec() / (calib * 1e6),
        calib
    );
}

fn print_steady(label: &str, s: &Steady) {
    println!(
        "{label}: {:.0} kcycles/sec, {:.2} evals/cycle over {} cycles",
        s.cycles_per_sec() / 1e3,
        s.evals_per_cycle(),
        s.cycles
    );
}

/// The per-mode counters that must be identical across execution modes
/// (evals/deltas are the modes' *allowed* difference — the whole point).
fn assert_mode_identity(event: &Measurement, compiled: &Measurement) -> bool {
    let mut ok = true;
    for (key, e, c) in [
        ("cycles", event.cycles, compiled.cycles),
        ("toggles", event.toggles, compiled.toggles),
        ("events", event.events, compiled.events),
        ("frames", event.frames as u64, compiled.frames as u64),
    ] {
        if e == c {
            println!("  {key:<8} {e} == compiled");
        } else {
            eprintln!("FAIL: {key} differs across modes: event {e}, compiled {c}");
            ok = false;
        }
    }
    ok
}

fn run_full() {
    println!("kernel_throughput — full AutoVision system, both execution modes\n");
    let calib = calibrate_mops();
    let full_ev = measure(paper_scale_config(), 40_000_000);
    let full_co = measure(
        with_mode(paper_scale_config(), ExecMode::Compiled),
        40_000_000,
    );
    let smoke_ev = measure_smoke(ExecMode::EventDriven);
    let smoke_co = measure_smoke(ExecMode::Compiled);
    let steady_ev = measure_steady(ExecMode::EventDriven);
    let steady_co = measure_steady(ExecMode::Compiled);
    print_measurement(
        "paper-scale event-driven (320x240, SimB 4096)",
        &full_ev,
        calib,
    );
    println!();
    print_measurement("paper-scale compiled", &full_co, calib);
    println!();
    print_measurement("smoke event-driven (32x24, SimB 128)", &smoke_ev, calib);
    println!();
    print_measurement("smoke compiled", &smoke_co, calib);
    println!();
    print_steady("steady event-driven", &steady_ev);
    print_steady("steady compiled", &steady_co);
    let ratio = steady_co.cycles_per_sec() / steady_ev.cycles_per_sec();
    println!("steady-state speedup: {ratio:.1}x");
    println!();
    assert!(
        assert_mode_identity(&full_ev, &full_co) && assert_mode_identity(&smoke_ev, &smoke_co),
        "execution modes disagree on mode-independent counters"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"bench_kernel/v2\",\n",
            "  \"full_event\": {},\n",
            "  \"full_compiled\": {},\n",
            "  \"smoke_event\": {},\n",
            "  \"smoke_compiled\": {},\n",
            "  \"steady_event\": {},\n",
            "  \"steady_compiled\": {},\n",
            "  \"steady_ratio\": {:.2}\n",
            "}}\n"
        ),
        render_section(&full_ev, calib),
        render_section(&full_co, calib),
        render_section(&smoke_ev, calib),
        render_section(&smoke_co, calib),
        render_steady(&steady_ev),
        render_steady(&steady_co),
        ratio,
    );
    std::fs::write(BASELINE_PATH, &json).expect("write BENCH_kernel.json");
    println!("\nwrote {BASELINE_PATH}");
}

fn run_smoke() -> i32 {
    println!("kernel_throughput --smoke — regression gate vs {BASELINE_PATH}\n");
    let doc = match std::fs::read_to_string(BASELINE_PATH) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: cannot read {BASELINE_PATH}: {e}");
            eprintln!("run `kernel_throughput` (no args) once to produce it");
            return 2;
        }
    };
    if !doc.contains("\"schema\": \"bench_kernel/v2\"") {
        eprintln!("FAIL: baseline is not bench_kernel/v2 — regenerate it");
        return 2;
    }
    let calib = calibrate_mops();
    let m = measure_smoke(ExecMode::EventDriven);
    let mc = measure_smoke(ExecMode::Compiled);
    print_measurement("smoke event-driven (32x24, SimB 128)", &m, calib);
    println!();
    print_measurement("smoke compiled", &mc, calib);
    println!();

    // 1) Deterministic event-driven counters must match the baseline
    //    exactly: any drift means the kernel's scheduling semantics
    //    changed.
    let mut semantic_ok = true;
    for (key, got) in [
        ("evals", m.evals),
        ("deltas", m.deltas),
        ("toggles", m.toggles),
        ("events", m.events),
        ("cycles", m.cycles),
    ] {
        match json_number(&doc, "smoke_event", key) {
            Some(want) if want == got as f64 => {
                println!("  {key:<8} {got} == baseline");
            }
            Some(want) => {
                eprintln!("FAIL: {key} = {got}, baseline {want} — kernel semantics changed");
                semantic_ok = false;
            }
            None => {
                eprintln!("FAIL: baseline is missing smoke_event.{key}");
                semantic_ok = false;
            }
        }
    }
    if !semantic_ok {
        return 2;
    }

    // 2) The compiled run must agree with the event-driven run on
    //    every mode-independent counter: the bit-identity contract.
    println!();
    if !assert_mode_identity(&m, &mc) {
        return 2;
    }

    // 3) Host-normalized event-driven throughput must not regress
    //    beyond tolerance.
    let max_regression = std::env::var("KERNEL_SMOKE_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION);
    let baseline_norm = match json_number(&doc, "smoke_event", "normalized_score") {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("FAIL: baseline is missing smoke_event.normalized_score");
            return 2;
        }
    };
    let norm = m.cycles_per_sec() / (calib * 1e6);
    let ratio = norm / baseline_norm;
    println!(
        "\n  normalized throughput: {norm:.6} vs baseline {baseline_norm:.6} (ratio {ratio:.3}, \
         tolerance -{:.0}%)",
        max_regression * 100.0
    );
    if ratio < 1.0 - max_regression {
        eprintln!(
            "FAIL: kernel throughput regressed {:.1}% vs committed baseline",
            (1.0 - ratio) * 100.0
        );
        return 1;
    }

    // 4) Compiled steady-state throughput must clear the acceptance
    //    floor over event-driven, measured fresh on this host.
    let min_ratio = std::env::var("KERNEL_STEADY_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_STEADY_MIN_RATIO);
    let steady_ev = measure_steady(ExecMode::EventDriven);
    let steady_co = measure_steady(ExecMode::Compiled);
    print_steady("\n  steady event-driven", &steady_ev);
    print_steady("  steady compiled", &steady_co);
    let sratio = steady_co.cycles_per_sec() / steady_ev.cycles_per_sec();
    println!("  steady-state speedup: {sratio:.1}x (floor {min_ratio:.1}x)");
    if sratio < min_ratio {
        eprintln!(
            "FAIL: compiled steady-state speedup {sratio:.1}x below the {min_ratio:.1}x floor"
        );
        return 1;
    }
    println!("\nPASS");
    0
}

fn main() {
    if harness::has_flag("--smoke") {
        std::process::exit(run_smoke());
    }
    run_full();
}
