//! Ablation — SimB length (§IV-B).
//!
//! "The designer can use a short (e.g. ~100 words) SimB to reduce the
//! simulation-debug turnaround time, can adjust the length to test
//! various scenarios of the bitstream transfer mechanism, and can set
//! the length of a SimB to be the same as a real bitstream to achieve
//! the maximum level of accuracy."
//!
//! This harness sweeps the payload length and reports (a) the simulated
//! reconfiguration delay, (b) the wall-clock cost, and (c) whether the
//! timing-sensitive bug.dpr.6a is exposed — short SimBs finish before
//! the buggy fixed wait elapses and *mask* the bug, exactly the
//! accuracy-for-speed trade the paper describes.

use autovision::{AvSystem, Bug, FaultSet, SystemConfig};
use bench::harness;
use verif::run_experiment;

fn main() {
    println!("SimB length ablation (32x24 frames, cfg divider 4, fixed wait = 250 loops)\n");
    println!(
        "{:>10} {:>16} {:>12} {:>14}",
        "payload", "DPR delay (us)", "wall (s)", "dpr.6a found?"
    );
    println!("{}", harness::rule(58));
    for payload in [64usize, 128, 256, 1024, 4096, 16384] {
        let base = harness::experiment(payload)
            .build()
            .expect("ablation config is valid");
        // Measure reconfiguration delay on the clean design.
        let mut sys = AvSystem::build(base.clone());
        let dpr =
            verif::probe_high_time(&mut sys.sim, "probe.dpr", sys.probes.reconfiguring.unwrap());
        let (out, wall) = harness::timed(|| sys.run(30_000_000));
        assert!(!out.hung, "clean run hung at payload {payload}");
        let pulses = dpr.borrow().pulses.max(1);
        let us_per_dpr = dpr.borrow().total_ps as f64 / pulses as f64 / 1e6;

        // Does this length expose the fixed-wait bug?
        let buggy = SystemConfig {
            faults: FaultSet::one(Bug::Dpr6aShortFixedWait),
            ..base
        };
        let verdict = run_experiment(buggy, 1_500_000);
        println!(
            "{payload:>10} {us_per_dpr:>16.1} {wall:>12.2} {:>14}",
            if verdict.detected { "FOUND" } else { "masked" }
        );
    }
    println!();
    println!("shape: longer SimBs cost wall-clock but model the reconfiguration");
    println!("window accurately enough to expose timing bugs that short SimBs mask");
    println!("(the paper used 4K-word SimBs against a 129K-word real bitstream).");
}
