//! Ablation — module-swap trigger point.
//!
//! The paper credits ReSim's detection of the engine-reset bug to its
//! swap timing: "This bug was identified because ReSim did not activate
//! the newly configured module until all words of the SimB were
//! successfully written to the ICAP." This harness re-runs bug.dpr.6b
//! with the swap moved to the *first* payload word (the optimistic model
//! of earlier DPR simulators) and shows the detection evidence weaken.

use autovision::{Bug, FaultSet};
use bench::harness;
use resim::SwapTrigger;
use verif::run_experiment;

fn run(trigger: SwapTrigger, optimistic: bool, bug: Option<Bug>) -> verif::Verdict {
    let cfg = harness::experiment(1024)
        .faults(bug.map(FaultSet::one).unwrap_or_default())
        .swap_trigger(trigger)
        .optimistic_region(optimistic)
        .error_source(if optimistic {
            autovision::ErrorSourceKind::Silent
        } else {
            autovision::ErrorSourceKind::X
        })
        .build()
        .expect("ablation config is valid");
    run_experiment(cfg, 1_500_000)
}

fn main() {
    println!("Swap-trigger ablation on bug.dpr.6b (no wait for transfer completion)\n");
    for (name, trig, optimistic) in [
        (
            "ReSim: swap at last word, deselect+inject",
            SwapTrigger::LastPayloadWord,
            false,
        ),
        (
            "ablation: swap at first word, deselect+inject",
            SwapTrigger::FirstPayloadWord,
            false,
        ),
        (
            "optimistic: swap at first word, module stays live, silent",
            SwapTrigger::FirstPayloadWord,
            true,
        ),
    ] {
        let clean = run(trig, optimistic, None);
        let buggy = run(trig, optimistic, Some(Bug::Dpr6bNoWaitTransfer));
        println!("model = {name}");
        println!(
            "  clean design : frames={} detected={}",
            clean.frames, clean.detected
        );
        println!(
            "  bug.dpr.6b   : frames={} detected={} evidence={}",
            buggy.frames,
            buggy.detected,
            harness::evidence(&buggy, "")
        );
        println!();
    }
    println!("shape: under ReSim's faithful timing the premature reset falls inside");
    println!("the reconfiguration window and is lost — a loud failure (hang, X on");
    println!("the bus). The fully optimistic model — instant activation, no");
    println!("deselection, no garbage — runs the broken software to completion and");
    println!("the only remaining evidence is a handful of wrong pixels: the early");
    println!("engine start now races the CPU's vector drawing for the shared");
    println!("buffer. Without a golden-model scoreboard that residue is exactly the");
    println!("kind of bug that survives simulation, which is the paper's critique");
    println!("of optimistic pre-ReSim approaches.");
}
