//! Table II — "Time to simulate one video frame".
//!
//! Runs the full Optical Flow Demonstrator at the paper's scale
//! (320×240, SimB 4 K words, two reconfigurations per frame) under
//! ReSim, attributes *simulated* time to each pipeline stage with
//! waveform probes, and attributes *elapsed* (wall-clock) time with the
//! kernel profiler. The absolute wall numbers are host-dependent; the
//! shape to compare with the paper:
//!
//! * CIE simulated < ME simulated (1.1 vs 1.4 ms in the paper),
//! * but CIE *elapsed* > ME *elapsed* (6 vs 4.5 min) because the CIE
//!   toggles more signals per simulated millisecond,
//! * DPR ≪ everything else (SimB ≪ real bitstream),
//! * overall ≈ 3 ms of simulated time per frame.

use autovision::AvSystem;
use bench::{harness, paper_scale_config};
use std::time::Instant;
use verif::{probe_high_time, Probe};

fn main() {
    let cfg = harness::with_exec_mode(paper_scale_config());
    let n_frames = cfg.n_frames as u64;
    println!(
        "Table II — time to simulate one video frame ({}x{}, SimB payload {} words, {} frames)\n",
        cfg.width, cfg.height, cfg.payload_words, cfg.n_frames
    );
    let mut sys = AvSystem::build(cfg);
    let obs_args = harness::ObsArgs::from_env();
    obs_args.arm(&mut sys.sim);
    // Typed views over the system's busy/window signals, and the two
    // engines' signal sets, all resolved once at build time.
    let cie_signals = sys.sim.signals_with_prefix("cie.");
    let me_signals = sys.sim.signals_with_prefix("me.");
    let cie_probe = Probe::<u64>::new(sys.probes.cie_busy);
    let me_probe = Probe::<u64>::new(sys.probes.me_busy);
    let dpr_probe = sys.probes.reconfiguring.map(Probe::<u64>::new);
    let cie_busy = probe_high_time(&mut sys.sim, "probe.cie", sys.probes.cie_busy);
    let me_busy = probe_high_time(&mut sys.sim, "probe.me", sys.probes.me_busy);
    let dpr = probe_high_time(
        &mut sys.sim,
        "probe.dpr",
        dpr_probe.expect("ReSim build").as_view(),
    );

    // Run in short slices, attributing each slice's wall time to the
    // pipeline stage active during it — the same attribution ModelSim's
    // profiler gives per simulated interval.
    let wall0 = Instant::now();
    let mut wall_cie = 0.0f64;
    let mut wall_me = 0.0f64;
    let mut wall_dpr = 0.0f64;
    let mut wall_other = 0.0f64;
    let slice = 64 * autovision::CLK_PERIOD_PS;
    let n_target = sys.config.n_frames;
    let budget = 40_000_000u64;
    let outcome = loop {
        let t0 = Instant::now();
        sys.sim.run_for(slice).expect("kernel error");
        let dt = t0.elapsed().as_secs_f64();
        if cie_probe.read(&sys.sim) == Some(1) {
            wall_cie += dt;
        } else if me_probe.read(&sys.sim) == Some(1) {
            wall_me += dt;
        } else if dpr_probe
            .map(|p| p.read(&sys.sim) == Some(1))
            .unwrap_or(false)
        {
            wall_dpr += dt;
        } else {
            wall_other += dt;
        }
        let cycles = sys.sim.now() / autovision::CLK_PERIOD_PS;
        let frames = sys.captured.borrow().len();
        if frames >= n_target || sys.cpu.borrow().halted {
            break autovision::RunOutcome {
                frames_captured: frames,
                halted: sys.cpu.borrow().halted,
                hung: false,
                cycles,
                kernel_error: None,
                deadline_hit: false,
            };
        }
        assert!(cycles < budget, "run hung: {:?}", sys.sim.messages());
    };
    let wall = wall0.elapsed();
    assert!(!outcome.hung, "run hung: {:?}", sys.sim.messages());

    let per_frame_ms = |ps: u64| ps as f64 / n_frames as f64 / 1e9;
    let cie_ms = per_frame_ms(cie_busy.borrow().total_ps);
    let me_ms = per_frame_ms(me_busy.borrow().total_ps);
    let dpr_ms = per_frame_ms(dpr.borrow().total_ps);
    let isr_ms = sys.cpu.borrow().isr_cycles as f64 * 10.0 / n_frames as f64 / 1e6;
    let total_ms = outcome.cycles as f64 * 10.0 / n_frames as f64 / 1e6;

    let cie_wall = wall_cie;
    let me_wall = wall_me;

    println!(
        "{:<34} {:>14} {:>16} {:>18}",
        "", "Simulated (ms)", "paper (ms)", "Elapsed here (s)"
    );
    let row = |name: &str, sim_ms: f64, paper: &str, wall_s: Option<f64>| {
        let w = wall_s
            .map(|w| format!("{w:>18.2}"))
            .unwrap_or_else(|| format!("{:>18}", "-"));
        println!("{name:<34} {sim_ms:>14.3} {paper:>16} {w}");
    };
    row(
        "CensusImg Engine",
        cie_ms,
        "1.1",
        Some(cie_wall / n_frames as f64),
    );
    row(
        "Matching Engine",
        me_ms,
        "1.4",
        Some(me_wall / n_frames as f64),
    );
    row("PowerPC Interrupt Handler", isr_ms, "0.5", None);
    row(
        "Dynamic Partial Reconfiguration",
        dpr_ms,
        "< 0.1",
        Some(wall_dpr / n_frames as f64),
    );
    // The paper's "Overall" row is the sum of the stages above.
    row(
        "Overall",
        cie_ms + me_ms + isr_ms + dpr_ms,
        "3.0",
        Some(wall.as_secs_f64() / n_frames as f64),
    );
    println!(
        "{:<34} {:>14.3} {:>16} {:>18.2}",
        "(end-to-end incl. draw + video I/O)",
        total_ms,
        "-",
        wall_other / n_frames as f64
    );

    println!();
    let cie_rate = sys.sim.toggle_count_set(&cie_signals) as f64 / cie_ms.max(1e-9);
    let me_rate = sys.sim.toggle_count_set(&me_signals) as f64 / me_ms.max(1e-9);
    println!(
        "signal activity  : CIE {cie_rate:.0} toggles/sim-ms vs ME {me_rate:.0} toggles/sim-ms"
    );
    println!(
        "shape checks     : CIE_sim < ME_sim: {}; CIE activity/ms > ME activity/ms: {}; DPR << engines: {}",
        cie_ms < me_ms,
        cie_rate > me_rate,
        dpr_ms < 0.1 * (cie_ms + me_ms)
    );
    println!(
        "elapsed/sim-ms   : CIE {:.2} s/ms vs ME {:.2} s/ms — the paper's 5.5 vs 3.2 min/ms",
        cie_wall / n_frames as f64 / cie_ms.max(1e-9),
        me_wall / n_frames as f64 / me_ms.max(1e-9)
    );
    println!("                   inversion was driven by per-toggle interpreter cost in ModelSim;");
    println!("                   this compiled kernel charges mostly per clocked eval, so elapsed");
    println!("                   tracks cycles while the activity asymmetry above is preserved.");
    println!(
        "paper comparison : ModelSim needed 11 min/frame on 2009-era hardware; this kernel: {:.2} s/frame",
        wall.as_secs_f64() / n_frames as f64
    );
    let stats = sys.sim.stats();
    println!(
        "kernel work      : {} evals, {} deltas, {} signal toggles",
        stats.evals, stats.deltas, stats.toggles
    );
    if obs_args.active() {
        println!();
        let metrics = harness::system_metrics(&sys, &outcome);
        obs_args.export(&sys.sim, &metrics);
    }
}
