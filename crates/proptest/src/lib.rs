//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the subset of the proptest API its property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`Just`](strategy::Just),
//! [`prop_oneof!`], [`collection::vec`], [`sample::select`] /
//! [`sample::Index`], [`any`], and the [`proptest!`] /
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream proptest, deliberately accepted:
//! * no shrinking — a failing case reports the case number and message
//!   only;
//! * generation is deterministic per test body (fixed seed mixed with
//!   the case index), so failures reproduce exactly on re-run;
//! * `PROPTEST_CASES` overrides the default case count (256).

use std::marker::PhantomData;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn for_case(test_seed: u64, case: u64) -> TestRng {
            // Distinct, reproducible stream per (test, case).
            TestRng(StdRng::seed_from_u64(
                test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is falsified.
        Fail(String),
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration; only `cases` is meaningful in this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Drives one `proptest!`-generated test body. Called by the macro
    /// expansion; not public API of upstream proptest.
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let test_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        let mut executed = 0u32;
        let mut attempts = 0u64;
        let max_attempts = config.cases as u64 * 20 + 64;
        while executed < config.cases && attempts < max_attempts {
            let mut rng = TestRng::for_case(test_seed, attempts);
            attempts += 1;
            match body(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed at case {attempts}: {msg}")
                }
            }
        }
        assert!(
            executed > 0,
            "proptest '{name}': every generated case was rejected"
        );
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe adapter so heterogeneous strategies over one value
    /// type can share a vtable (used by `prop_oneof!`).
    pub trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Integer / float types usable directly as range strategies.
    pub trait RangeValue: Sized {
        fn in_range(rng: &mut TestRng, low: Self, high_excl: Self) -> Self;
        fn in_range_incl(rng: &mut TestRng, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn in_range(rng: &mut TestRng, low: Self, high_excl: Self) -> Self {
                    assert!(low < high_excl, "empty range strategy");
                    let span = (high_excl as i128 - low as i128) as u128;
                    (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn in_range_incl(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low <= high, "empty range strategy");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl RangeValue for f64 {
        fn in_range(rng: &mut TestRng, low: Self, high_excl: Self) -> Self {
            assert!(low < high_excl, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            low + unit * (high_excl - low)
        }
        fn in_range_incl(rng: &mut TestRng, low: Self, high: Self) -> Self {
            Self::in_range(rng, low, high + f64::EPSILON * high.abs().max(1.0))
        }
    }

    impl<T: RangeValue + Copy> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::in_range(rng, self.start, self.end)
        }
    }

    impl<T: RangeValue + Copy> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::in_range_incl(rng, *self.start(), *self.end())
        }
    }

    /// A `Vec` of strategies yields a `Vec` of one value from each —
    /// matches upstream proptest's element-wise `Vec<S>` strategy.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($s:ident $v:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (S1 a);
        (S1 a, S2 b);
        (S1 a, S2 b, S3 c);
        (S1 a, S2 b, S3 c, S4 d);
        (S1 a, S2 b, S3 c, S4 d, S5 e);
        (S1 a, S2 b, S3 c, S4 d, S5 e, S6 f);
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, via [`super::any`].
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<A>(pub(crate) PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }
}

/// The canonical strategy for `A`'s whole domain.
pub fn any<A: arbitrary::Arbitrary>() -> arbitrary::Any<A> {
    arbitrary::Any(PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        low: usize,
        high_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                low: n,
                high_incl: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                low: r.start,
                high_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                low: *r.start(),
                high_incl: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec` — a vector of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.high_incl - self.size.low + 1) as u64;
            let len = self.size.low + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An opaque index resolvable against any non-empty collection.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

pub mod prelude {
    pub use super::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::select`, …).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strat = ($($strat,)+);
            $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&strat, rng);
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i16..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(any::<u8>(), 2..5)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_selects_only_given_arms(
            v in prop_oneof![Just(1u32), Just(2u32), (10u32..12)]
        ) {
            prop_assert!(v == 1 || v == 2 || v == 10 || v == 11);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn sample_index_resolves(ix in any::<prop::sample::Index>()) {
            let i = ix.index(7);
            prop_assert!(i < 7);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n));
        let mut rng = TestRng::for_case(1, 1);
        for _ in 0..32 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
