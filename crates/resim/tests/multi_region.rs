//! Multiple reconfigurable regions sharing one configuration port —
//! ReSim's region addressing (the FAR's region ID) must route each SimB
//! to exactly the portal it names.

use engines::{EngineIf, EngineParamSignals};
use resim::{
    build_simb, instantiate_region, IcapArtifact, IcapConfig, RrBoundary, SimbKind, XSource,
};
use rtlsim::{Clock, CompKind, Ctx, ResetGen, Simulator};

const PERIOD: u64 = 10_000;

fn dummy(sim: &mut Simulator, name: &str, io: EngineIf, id: u64) {
    let clk = io.clk;
    sim.add_component(
        name,
        CompKind::UserReconf,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let sel = ctx.is_high(io.sel);
                ctx.set_u64(io.plb.wdata, if sel { id } else { 0 });
            }
        }),
        &[clk],
    );
}

#[test]
fn two_regions_swap_independently_through_one_icap() {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, PERIOD)), &[]);
    sim.add_component(
        "rst",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let go = sim.signal_init("go", 1, 0);
    let er = sim.signal_init("er", 1, 0);
    let params = EngineParamSignals::alloc(&mut sim, "p");

    let (icap, stats) =
        IcapArtifact::instantiate(&mut sim, "icap", clk, rst, IcapConfig::default());

    // Region 1 hosts modules 0x11/0x12; region 2 hosts 0x21/0x22.
    let mut boundaries = Vec::new();
    let mut portals = Vec::new();
    for (rr, ids) in [(1u8, [0x11u8, 0x12]), (2, [0x21, 0x22])] {
        let a = EngineIf::alloc(&mut sim, &format!("r{rr}a"), clk, rst, go, er, &params);
        let b = EngineIf::alloc(&mut sim, &format!("r{rr}b"), clk, rst, go, er, &params);
        dummy(&mut sim, &format!("r{rr}da"), a, ids[0] as u64);
        dummy(&mut sim, &format!("r{rr}db"), b, ids[1] as u64);
        let boundary = RrBoundary::alloc(&mut sim, &format!("rr{rr}"));
        let p = instantiate_region(
            &mut sim,
            &format!("region{rr}"),
            clk,
            rst,
            rr,
            icap,
            vec![(ids[0], a), (ids[1], b)],
            boundary,
            Some(ids[0]),
            Box::new(XSource),
        );
        boundaries.push(boundary);
        portals.push(p);
    }
    sim.run_for(5 * PERIOD).unwrap();
    assert_eq!(sim.peek_u64(boundaries[0].plb.wdata), Some(0x11));
    assert_eq!(sim.peek_u64(boundaries[1].plb.wdata), Some(0x21));

    // Reconfigure region 2 only.
    let simb = build_simb(SimbKind::Config { module: 0x22 }, 2, 32, 5);
    let feed = |words: &[u32], sim: &mut Simulator| {
        sim.poke_u64(icap.ce, 1);
        for w in words {
            let mut guard = 0;
            while sim.peek_u64(icap.ready) != Some(1) {
                sim.poke_u64(icap.cwrite, 0); // honour backpressure
                sim.run_for(PERIOD).unwrap();
                guard += 1;
                assert!(guard < 10_000);
            }
            sim.poke_u64(icap.cdata, *w as u64);
            sim.poke_u64(icap.cwrite, 1);
            sim.run_for(PERIOD).unwrap();
        }
        sim.poke_u64(icap.cwrite, 0);
        sim.poke_u64(icap.ce, 0);
        sim.run_for(300 * PERIOD).unwrap();
    };
    feed(&simb, &mut sim);
    assert_eq!(
        sim.peek_u64(boundaries[1].plb.wdata),
        Some(0x22),
        "region 2 swapped"
    );
    assert_eq!(
        sim.peek_u64(boundaries[0].plb.wdata),
        Some(0x11),
        "region 1 untouched"
    );
    assert_eq!(portals[0].borrow().swaps, 0);
    assert_eq!(portals[1].borrow().swaps, 1);

    // Now region 1, while region 2 keeps its new module.
    let simb = build_simb(SimbKind::Config { module: 0x12 }, 1, 32, 6);
    feed(&simb, &mut sim);
    assert_eq!(sim.peek_u64(boundaries[0].plb.wdata), Some(0x12));
    assert_eq!(sim.peek_u64(boundaries[1].plb.wdata), Some(0x22));
    assert_eq!(portals[0].borrow().swaps, 1);
    assert_eq!(stats.borrow().swaps, 2);
    assert!(!sim.has_errors(), "{:?}", sim.messages());
}
