//! State saving and restoration (the authors' FPGA'12 methodology,
//! carried by ReSim's GCAPTURE/GRESTORE SimBs): a module's state is
//! captured before it is swapped out and restored after it is swapped
//! back in, so it can resume without a fresh reset/parameter cycle.

use engines::{CensusEngine, EngineIf, EngineParamSignals};
use plb::{AddressWindow, MemorySlave, PlbBus, PlbBusConfig, SharedMem};
use resim::{
    build_simb, instantiate_region, IcapArtifact, IcapConfig, RrBoundary, SimbKind, XSource,
};
use rtlsim::{Clock, CompKind, Ctx, ResetGen, Simulator};
use video::{census_transform, Frame, Scene};

const PERIOD: u64 = 10_000;
const SRC: u32 = 0x1_0000;
const DST: u32 = 0x2_0000;

/// A trivial second module occupying the region while the CIE is out.
fn filler_module(sim: &mut Simulator, io: EngineIf) {
    let clk = io.clk;
    sim.add_component(
        "filler",
        CompKind::UserReconf,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                ctx.set_bit(io.busy, false);
            }
        }),
        &[clk],
    );
}

#[test]
fn gcapture_grestore_round_trip_preserves_module_state() {
    let (w, h) = (16usize, 8usize);
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, PERIOD)), &[]);
    sim.add_component(
        "rst",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let mem = SharedMem::new(256 * 1024);
    let sport = MemorySlave::instantiate(&mut sim, "mem", clk, rst, mem.clone(), 0);

    let go = sim.signal_init("go", 1, 0);
    let er = sim.signal_init("er", 1, 0);
    let params = EngineParamSignals::alloc(&mut sim, "p");
    let cie_if = EngineIf::alloc(&mut sim, "cie", clk, rst, go, er, &params);
    let other_if = EngineIf::alloc(&mut sim, "other", clk, rst, go, er, &params);
    CensusEngine::instantiate(&mut sim, "cie", cie_if, 2);
    filler_module(&mut sim, other_if);

    let (icap, _stats) =
        IcapArtifact::instantiate(&mut sim, "icap", clk, rst, IcapConfig::default());
    let boundary = RrBoundary::alloc(&mut sim, "rr");
    let portal = instantiate_region(
        &mut sim,
        "rr0",
        clk,
        rst,
        1,
        icap,
        vec![(1, cie_if), (2, other_if)],
        boundary,
        Some(1),
        Box::new(XSource),
    );
    PlbBus::new(
        &mut sim,
        "plb",
        clk,
        rst,
        PlbBusConfig::default(),
        vec![boundary.plb],
        vec![(
            sport,
            AddressWindow {
                base: 0,
                len: 256 * 1024,
            },
        )],
    );
    sim.run_for(5 * PERIOD).unwrap();

    // Program the CIE once: params latch on ereset.
    let frame = Scene::new(w, h, 1, 3).frame(0);
    mem.load_words(SRC, &frame.to_words());
    sim.poke_u64(params.width, w as u64);
    sim.poke_u64(params.height, h as u64);
    sim.poke_u64(params.src_addr, SRC as u64);
    sim.poke_u64(params.dst_addr, DST as u64);
    sim.poke_u64(er, 1);
    sim.run_for(PERIOD).unwrap();
    sim.poke_u64(er, 0);
    sim.run_for(PERIOD).unwrap();

    let feed = |sim: &mut Simulator, words: &[u32]| {
        sim.poke_u64(icap.ce, 1);
        for w in words {
            let mut guard = 0;
            while sim.peek_u64(icap.ready) != Some(1) {
                sim.poke_u64(icap.cwrite, 0);
                sim.run_for(PERIOD).unwrap();
                guard += 1;
                assert!(guard < 10_000);
            }
            sim.poke_u64(icap.cdata, *w as u64);
            sim.poke_u64(icap.cwrite, 1);
            sim.run_for(PERIOD).unwrap();
        }
        sim.poke_u64(icap.cwrite, 0);
        sim.poke_u64(icap.ce, 0);
        sim.run_for(300 * PERIOD).unwrap();
    };

    // Capture CIE state, swap it out, corrupt the parameter WIRES (the
    // static-region registers get reused by other software), swap the
    // CIE back, restore, and start WITHOUT a reset.
    feed(&mut sim, &build_simb(SimbKind::Capture, 1, 1, 0));
    feed(
        &mut sim,
        &build_simb(SimbKind::Config { module: 2 }, 1, 32, 1),
    );
    sim.poke_u64(params.src_addr, 0xDEAD0000u64);
    sim.poke_u64(params.dst_addr, 0xBEEF0000u64);
    sim.run_for(5 * PERIOD).unwrap();
    feed(
        &mut sim,
        &build_simb(SimbKind::Config { module: 1 }, 1, 32, 2),
    );
    feed(&mut sim, &build_simb(SimbKind::Restore, 1, 1, 0));

    sim.poke_u64(go, 1);
    sim.run_for(PERIOD).unwrap();
    sim.poke_u64(go, 0);
    // Wait for completion.
    let mut guard = 0;
    while sim.peek_u64(cie_if.busy) != Some(0) || guard < 5 {
        sim.run_for(PERIOD).unwrap();
        guard += 1;
        assert!(guard < 50_000, "CIE did not finish");
    }
    sim.run_for(10 * PERIOD).unwrap();

    let stats = portal.borrow();
    assert_eq!(stats.captures, 1);
    assert_eq!(stats.restores, 1);
    assert_eq!(stats.swaps, 2);
    drop(stats);

    // The CIE ran with its RESTORED parameters, not the corrupted wires.
    let words: Vec<u32> = mem
        .read_words(DST, w * h / 4)
        .into_iter()
        .map(|x| x.expect("clean output"))
        .collect();
    let got = Frame::from_words(w, h, &words);
    assert_eq!(
        got,
        census_transform(&frame),
        "state survived the swap round trip"
    );
    assert!(!sim.has_errors(), "{:?}", sim.messages());
}

#[test]
fn without_restore_the_swapped_back_module_uses_stale_wires_semantics() {
    // Control experiment: the same sequence minus GCAPTURE/GRESTORE
    // leaves the module with its ORIGINAL latch (params latch only on
    // ereset), demonstrating that restore is what would be needed if the
    // latch had been disturbed. Here we verify the baseline: state is
    // per-module and untouched by the swap itself.
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, PERIOD)), &[]);
    sim.add_component(
        "rst",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let go = sim.signal_init("go", 1, 0);
    let er = sim.signal_init("er", 1, 0);
    let params = EngineParamSignals::alloc(&mut sim, "p");
    let a = EngineIf::alloc(&mut sim, "a", clk, rst, go, er, &params);
    let b = EngineIf::alloc(&mut sim, "b", clk, rst, go, er, &params);
    filler_module(&mut sim, a);
    {
        let clk2 = clk;
        sim.add_component(
            "filler2",
            CompKind::UserReconf,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if ctx.rose(clk2) {
                    ctx.set_bit(b.busy, false);
                }
            }),
            &[clk2],
        );
    }
    let (icap, _s) = IcapArtifact::instantiate(&mut sim, "icap", clk, rst, IcapConfig::default());
    let boundary = RrBoundary::alloc(&mut sim, "rr");
    let portal = instantiate_region(
        &mut sim,
        "rr0",
        clk,
        rst,
        1,
        icap,
        vec![(1, a), (2, b)],
        boundary,
        Some(1),
        Box::new(XSource),
    );
    sim.run_for(5 * PERIOD).unwrap();
    // Capture strobes addressed to ANOTHER region do not reach us.
    let feed = |sim: &mut Simulator, words: &[u32]| {
        sim.poke_u64(icap.ce, 1);
        for w in words {
            while sim.peek_u64(icap.ready) != Some(1) {
                sim.poke_u64(icap.cwrite, 0);
                sim.run_for(PERIOD).unwrap();
            }
            sim.poke_u64(icap.cdata, *w as u64);
            sim.poke_u64(icap.cwrite, 1);
            sim.run_for(PERIOD).unwrap();
        }
        sim.poke_u64(icap.cwrite, 0);
        sim.poke_u64(icap.ce, 0);
        sim.run_for(200 * PERIOD).unwrap();
    };
    feed(&mut sim, &build_simb(SimbKind::Capture, 9, 1, 0));
    assert_eq!(
        portal.borrow().captures,
        0,
        "other region's capture ignored"
    );
}
