//! Integration tests of the ReSim simulation-only layer: bitstream
//! transfer through the ICAP artifact, error injection, swap timing,
//! FIFO backpressure, and the VMUX baseline's contrasting behaviour.

use dcr::RegFile;
use engines::{EngineIf, EngineParamSignals};
use resim::{
    build_simb, instantiate_region, instantiate_vmux, IcapArtifact, IcapConfig, RrBoundary,
    SimbKind, VmuxConfig, XSource,
};
use rtlsim::{Clock, CompKind, Ctx, ResetGen, SignalId, Simulator};

const PERIOD: u64 = 10_000;

/// A trivial stand-in module: while selected it drives its ID onto its
/// private port's `wdata` and holds `busy` high.
fn dummy_module(sim: &mut Simulator, name: &str, io: EngineIf, id: u64) {
    let clk = io.clk;
    sim.add_component(
        name,
        CompKind::UserReconf,
        Box::new(move |ctx: &mut Ctx<'_>| {
            if ctx.rose(clk) {
                let sel = ctx.is_high(io.sel);
                ctx.set_bit(io.busy, sel);
                ctx.set_u64(io.plb.wdata, if sel { id } else { 0 });
            }
        }),
        &[clk],
    );
}

struct Tb {
    sim: Simulator,
    icap: resim::IcapPort,
    icap_stats: std::rc::Rc<std::cell::RefCell<resim::IcapStats>>,
    portal_stats: std::rc::Rc<std::cell::RefCell<resim::PortalStats>>,
    boundary: RrBoundary,
}

fn tb(cfg: IcapConfig) -> Tb {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let go = sim.signal_init("go", 1, 0);
    let ereset = sim.signal_init("ereset", 1, 0);
    let params = EngineParamSignals::alloc(&mut sim, "p");
    let m1 = EngineIf::alloc(&mut sim, "mod1", clk, rst, go, ereset, &params);
    let m2 = EngineIf::alloc(&mut sim, "mod2", clk, rst, go, ereset, &params);
    dummy_module(&mut sim, "dummy1", m1, 0x11);
    dummy_module(&mut sim, "dummy2", m2, 0x22);
    let (icap, icap_stats) = IcapArtifact::instantiate(&mut sim, "icap", clk, rst, cfg);
    let boundary = RrBoundary::alloc(&mut sim, "rr");
    let portal_stats = instantiate_region(
        &mut sim,
        "rr0",
        clk,
        rst,
        0x01,
        icap,
        vec![(0x01, m1), (0x02, m2)],
        boundary,
        Some(0x01),
        Box::new(XSource),
    );
    let mut t = Tb {
        sim,
        icap,
        icap_stats,
        portal_stats,
        boundary,
    };
    t.sim.run_for(4 * PERIOD).unwrap();
    t
}

/// Feed SimB words to the ICAP at one word/cycle, honouring `ready`.
fn write_simb(t: &mut Tb, words: &[u32]) {
    t.sim.poke_u64(t.icap.ce, 1);
    let mut i = 0;
    let mut guard = 0;
    while i < words.len() {
        if t.sim.peek_u64(t.icap.ready) == Some(1) {
            t.sim.poke_u64(t.icap.cdata, words[i] as u64);
            t.sim.poke_u64(t.icap.cwrite, 1);
            i += 1;
        } else {
            t.sim.poke_u64(t.icap.cwrite, 0);
        }
        t.sim.run_for(PERIOD).unwrap();
        guard += 1;
        assert!(guard < 100_000, "SimB transfer stuck");
    }
    t.sim.poke_u64(t.icap.cwrite, 0);
    t.sim.poke_u64(t.icap.ce, 0);
    t.sim.run_for(PERIOD).unwrap();
}

fn drain(t: &mut Tb, cycles: u64) {
    t.sim.run_for(cycles * PERIOD).unwrap();
}

#[test]
fn simb_transfer_swaps_the_module() {
    let mut t = tb(IcapConfig::default());
    // Initially module 1 is configured and drives its ID.
    drain(&mut t, 5);
    assert_eq!(t.sim.peek_u64(t.boundary.plb.wdata), Some(0x11));
    // Configure module 2.
    let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 32, 1);
    write_simb(&mut t, &simb);
    drain(&mut t, 200);
    assert_eq!(
        t.sim.peek_u64(t.boundary.plb.wdata),
        Some(0x22),
        "module swapped"
    );
    assert_eq!(t.icap_stats.borrow().swaps, 1);
    assert_eq!(t.icap_stats.borrow().desyncs, 1);
    assert_eq!(t.portal_stats.borrow().swaps, 1);
    assert!(!t.sim.has_errors(), "{:?}", t.sim.messages());
}

#[test]
fn x_is_injected_while_payload_streams() {
    let mut t = tb(IcapConfig {
        cfg_divider: 8,
        fifo_depth: 16,
        ..Default::default()
    });
    let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 64, 2);
    // Write the header plus half the payload, then stop: the region is
    // mid-reconfiguration.
    write_simb(&mut t, &simb[..8 + 32]);
    drain(&mut t, 8 * 40); // let the slow config clock drain the FIFO
    assert_eq!(t.sim.peek_u64(t.icap.inject), Some(1), "injection active");
    assert!(
        t.sim.peek(t.boundary.plb.wdata).has_unknown(),
        "boundary outputs must be X during reconfiguration"
    );
    assert!(
        t.sim.peek(t.boundary.busy).has_unknown(),
        "control outputs corrupted too"
    );
    // Finish the bitstream: injection ends, module 2 appears.
    write_simb(&mut t, &simb[8 + 32..]);
    drain(&mut t, 8 * 40);
    assert_eq!(t.sim.peek_u64(t.icap.inject), Some(0));
    assert_eq!(t.sim.peek_u64(t.boundary.plb.wdata), Some(0x22));
}

#[test]
fn swap_triggers_only_after_the_last_payload_word() {
    // "ReSim did not activate the newly configured module until all
    // words of the SimB were successfully written to the ICAP."
    let mut t = tb(IcapConfig {
        cfg_divider: 1,
        fifo_depth: 16,
        ..Default::default()
    });
    let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 128, 3);
    write_simb(&mut t, &simb[..simb.len() - 4]); // all but last payload word + trailer
    drain(&mut t, 50);
    assert_eq!(
        t.icap_stats.borrow().swaps,
        0,
        "no swap until the stream completes"
    );
    assert_eq!(t.sim.peek_u64(t.icap.reconfiguring), Some(1));
    write_simb(&mut t, &simb[simb.len() - 4..]);
    drain(&mut t, 50);
    assert_eq!(t.icap_stats.borrow().swaps, 1);
    assert_eq!(t.sim.peek_u64(t.icap.reconfiguring), Some(0));
}

#[test]
fn ignoring_ready_overflows_the_fifo_and_is_detected() {
    // bug.dpr.3 in miniature: the controller blasts words without
    // checking `ready` while the config clock drains slowly.
    let mut t = tb(IcapConfig {
        cfg_divider: 16,
        fifo_depth: 4,
        ..Default::default()
    });
    let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 64, 4);
    t.sim.poke_u64(t.icap.ce, 1);
    for w in &simb {
        t.sim.poke_u64(t.icap.cdata, *w as u64);
        t.sim.poke_u64(t.icap.cwrite, 1);
        t.sim.run_for(PERIOD).unwrap();
    }
    t.sim.poke_u64(t.icap.cwrite, 0);
    drain(&mut t, 16 * 80);
    let stats = t.icap_stats.borrow();
    assert!(stats.words_dropped > 0, "FIFO must overflow");
    assert_eq!(stats.swaps, 0, "corrupted stream must not swap");
    assert!(t.sim.has_errors(), "overflow must be reported");
}

#[test]
fn capture_and_restore_strobes_reach_the_portal() {
    let mut t = tb(IcapConfig::default());
    write_simb(&mut t, &build_simb(SimbKind::Capture, 0x01, 1, 0));
    drain(&mut t, 100);
    write_simb(&mut t, &build_simb(SimbKind::Restore, 0x01, 1, 0));
    drain(&mut t, 100);
    let s = t.portal_stats.borrow();
    assert_eq!(s.captures, 1);
    assert_eq!(s.restores, 1);
    assert_eq!(s.swaps, 0);
}

#[test]
fn unknown_module_id_is_an_error() {
    let mut t = tb(IcapConfig::default());
    write_simb(
        &mut t,
        &build_simb(SimbKind::Config { module: 0x77 }, 0x01, 8, 5),
    );
    drain(&mut t, 200);
    assert!(t.sim.has_errors());
    assert_eq!(t.portal_stats.borrow().bad_module_ids, 1);
    // Region is left unconfigured.
    assert_eq!(t.sim.peek_u64(t.boundary.plb.wdata), Some(0));
}

#[test]
fn simb_for_other_region_is_ignored_by_this_portal() {
    let mut t = tb(IcapConfig::default());
    write_simb(
        &mut t,
        &build_simb(SimbKind::Config { module: 0x02 }, 0x05, 8, 6),
    );
    drain(&mut t, 200);
    assert_eq!(t.portal_stats.borrow().swaps, 0);
    // Module 1 still active.
    assert_eq!(t.sim.peek_u64(t.boundary.plb.wdata), Some(0x11));
}

#[test]
fn transfer_time_scales_with_simb_length_and_divider() {
    // The reconfiguration delay is the bitstream transfer time — the
    // property VMUX cannot model. Measure cycles to swap for two lengths.
    let time_to_swap = |payload: usize, divider: u32| -> u64 {
        let mut t = tb(IcapConfig {
            cfg_divider: divider,
            fifo_depth: 16,
            ..Default::default()
        });
        let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, payload, 9);
        let start = t.sim.now();
        write_simb(&mut t, &simb);
        let mut guard = 0;
        while t.icap_stats.borrow().swaps == 0 {
            t.sim.run_for(PERIOD).unwrap();
            guard += 1;
            assert!(guard < 1_000_000);
        }
        (t.sim.now() - start) / PERIOD
    };
    let short = time_to_swap(64, 4);
    let long = time_to_swap(512, 4);
    let slow = time_to_swap(64, 16);
    assert!(
        long > short * 4,
        "8x payload must take >4x: {short} vs {long}"
    );
    assert!(
        slow > short * 2,
        "slower config clock must stretch the transfer: {short} vs {slow}"
    );
}

#[test]
fn vmux_swaps_instantly_with_no_errors() {
    // The baseline: signature write swaps immediately; nothing ever goes X.
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let go = sim.signal_init("go", 1, 0);
    let ereset = sim.signal_init("ereset", 1, 0);
    let params = EngineParamSignals::alloc(&mut sim, "p");
    let m1 = EngineIf::alloc(&mut sim, "mod1", clk, rst, go, ereset, &params);
    let m2 = EngineIf::alloc(&mut sim, "mod2", clk, rst, go, ereset, &params);
    dummy_module(&mut sim, "dummy1", m1, 0x11);
    dummy_module(&mut sim, "dummy2", m2, 0x22);
    let boundary = RrBoundary::alloc(&mut sim, "rr");
    let sig_regs = RegFile::new(0x400, 1);
    instantiate_vmux(
        &mut sim,
        "vmux",
        clk,
        rst,
        sig_regs.clone(),
        vec![(1, m1), (2, m2)],
        boundary,
        VmuxConfig {
            reset_signature: Some(1),
        },
    );
    sim.run_for(10 * PERIOD).unwrap();
    assert_eq!(sim.peek_u64(boundary.plb.wdata), Some(0x11));
    // "Software" writes the signature: swap happens within a few cycles,
    // with no X anywhere — the un-tested optimism of VMUX.
    sig_regs.bus_write(0x400, 2);
    sim.run_for(5 * PERIOD).unwrap();
    assert_eq!(sim.peek_u64(boundary.plb.wdata), Some(0x22));
    assert!(!sim.has_errors());
}

#[test]
fn vmux_uninitialised_signature_selects_nothing() {
    // bug.hw.2, the false alarm: no reset value -> garbage signature ->
    // no engine selected at startup.
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let go = sim.signal_init("go", 1, 0);
    let ereset = sim.signal_init("ereset", 1, 0);
    let params = EngineParamSignals::alloc(&mut sim, "p");
    let m1 = EngineIf::alloc(&mut sim, "mod1", clk, rst, go, ereset, &params);
    dummy_module(&mut sim, "dummy1", m1, 0x11);
    let boundary = RrBoundary::alloc(&mut sim, "rr");
    instantiate_vmux(
        &mut sim,
        "vmux",
        clk,
        rst,
        RegFile::new(0x400, 1),
        vec![(1, m1)],
        boundary,
        VmuxConfig {
            reset_signature: None,
        },
    );
    sim.run_for(20 * PERIOD).unwrap();
    assert_eq!(sim.peek_u64(m1.sel), Some(0), "no module selected");
    assert_eq!(sim.peek_u64(boundary.plb.wdata), Some(0));
}

fn _unused(_: SignalId) {}
