//! Virtual Multiplexing — the traditional baseline for simulating DPR.
//!
//! Both engines live inside an `Engine_wrapper`; a multiplexer selects
//! the "active" one, and the selector is an `engine_signature` register
//! written by (specially hacked) software over the DCR bus. Module swaps
//! are therefore instantaneous, the reconfiguration controller is never
//! exercised, nothing emits garbage during a swap, and the isolation
//! module is untested — the exact limitations the paper's Section IV-A
//! catalogues.
//!
//! The `engine_signature` register exists *only* in this simulation
//! configuration, which is how the case study's bug.hw.2 becomes a false
//! alarm: if the register is not reset at start-up
//! ([`VmuxConfig::reset_signature`] = `None`), no engine is ever
//! selected and the system hangs — in a way the real hardware never
//! would.

use crate::portal::RrBoundary;
use dcr::RegFile;
use engines::EngineIf;
use rtlsim::{CompKind, Component, Ctx, DoorbellId, SignalId, Simulator};

/// Virtual-multiplexing configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmuxConfig {
    /// Value loaded into `engine_signature` at reset; `None` models the
    /// designer forgetting to initialise it (bug.hw.2: the register
    /// powers up to garbage that selects no engine).
    pub reset_signature: Option<u32>,
}

impl Default for VmuxConfig {
    fn default() -> Self {
        VmuxConfig {
            reset_signature: Some(0),
        }
    }
}

/// Uninitialised power-up garbage for the signature register.
const GARBAGE: u32 = 0xFFFF_FFFF;

struct VmuxCtl {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    cfg: VmuxConfig,
    /// Signature value as a kernel signal (selector of the mux).
    signature: SignalId,
    /// Doorbell rung by DCR writes to the signature register.
    bell: Option<DoorbellId>,
}

impl Component for VmuxCtl {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            let v = self.cfg.reset_signature.unwrap_or(GARBAGE);
            self.regs.set(0, v);
            ctx.set_u64(self.signature, v as u64);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        for (off, v) in self.regs.take_writes() {
            if off == 0 {
                ctx.set_u64(self.signature, v as u64);
            }
        }
        // Purely software-driven: only a register write or reset can
        // change the signature output.
        if let Some(bell) = self.bell {
            ctx.park_until(&[self.rst], &[bell]);
        }
    }
}

struct VmuxMux {
    modules: Vec<(u32, EngineIf)>,
    boundary: RrBoundary,
    signature: SignalId,
}

impl Component for VmuxMux {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let sig = ctx.get(self.signature).to_u64_lossy() as u32;
        let b = self.boundary;
        let mut selected: Option<EngineIf> = None;
        for (id, m) in &self.modules {
            let sel = *id == sig;
            ctx.set_bit(m.sel, sel);
            if sel {
                selected = Some(*m);
            } else {
                ctx.set_bit(m.plb.gnt, false);
                ctx.set_bit(m.plb.addr_ack, false);
                ctx.set_bit(m.plb.wready, false);
                ctx.set_bit(m.plb.rvalid, false);
                ctx.set_u64(m.plb.rdata, 0);
                ctx.set_bit(m.plb.complete, false);
                ctx.set_bit(m.plb.err, false);
            }
        }
        match selected {
            Some(m) => {
                ctx.set(b.busy, ctx.get(m.busy));
                ctx.set(b.done, ctx.get(m.done));
                for (f, t) in m.plb.master_driven().iter().zip(b.plb.master_driven()) {
                    ctx.set(t, ctx.get(*f));
                }
                ctx.set(m.plb.gnt, ctx.get(b.plb.gnt));
                ctx.set(m.plb.addr_ack, ctx.get(b.plb.addr_ack));
                ctx.set(m.plb.wready, ctx.get(b.plb.wready));
                ctx.set(m.plb.rvalid, ctx.get(b.plb.rvalid));
                ctx.set(m.plb.rdata, ctx.get(b.plb.rdata));
                ctx.set(m.plb.complete, ctx.get(b.plb.complete));
                ctx.set(m.plb.err, ctx.get(b.plb.err));
            }
            None => {
                // Nothing selected: the wrapper outputs idle zeros —
                // note: NO erroneous values, unlike real reconfiguration.
                ctx.set_bit(b.busy, false);
                ctx.set_bit(b.done, false);
                for t in b.plb.master_driven() {
                    ctx.set_u64(t, 0);
                }
            }
        }
    }
}

/// Instantiate the Virtual-Multiplexing wrapper.
///
/// `modules` pairs each engine's signature value with its interface;
/// `regs` is the simulation-only `engine_signature` DCR register block
/// (1 register) the hacked software writes to swap engines.
#[allow(clippy::too_many_arguments)]
pub fn instantiate_vmux(
    sim: &mut Simulator,
    name: &str,
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    modules: Vec<(u32, EngineIf)>,
    boundary: RrBoundary,
    cfg: VmuxConfig,
) {
    assert!(!regs.is_empty(), "engine_signature needs one register");
    let init = cfg.reset_signature.unwrap_or(GARBAGE);
    let signature = sim.signal_init(format!("{name}.signature"), 32, init as u64);
    let bell = sim.add_doorbell(regs.dirty_flag());
    let ctl = VmuxCtl {
        clk,
        rst,
        regs,
        cfg,
        signature,
        bell: Some(bell),
    };
    let ctl_comp = sim.add_component(
        format!("{name}.ctl"),
        CompKind::Artifact,
        Box::new(ctl),
        &[clk, rst],
    );
    sim.declare_clocked(ctl_comp, clk);

    let mut sens: Vec<SignalId> = vec![signature];
    for (_, e) in &modules {
        sens.push(e.busy);
        sens.push(e.done);
        sens.extend_from_slice(&e.plb.master_driven());
    }
    sens.extend_from_slice(&[
        boundary.plb.gnt,
        boundary.plb.addr_ack,
        boundary.plb.wready,
        boundary.plb.rvalid,
        boundary.plb.rdata,
        boundary.plb.complete,
        boundary.plb.err,
    ]);
    let mut writes: Vec<SignalId> = vec![boundary.busy, boundary.done];
    writes.extend_from_slice(&boundary.plb.master_driven());
    for (_, m) in &modules {
        writes.push(m.sel);
        writes.extend_from_slice(&[
            m.plb.gnt,
            m.plb.addr_ack,
            m.plb.wready,
            m.plb.rvalid,
            m.plb.rdata,
            m.plb.complete,
            m.plb.err,
        ]);
    }
    let mux = VmuxMux {
        modules,
        boundary,
        signature,
    };
    let mux_comp = sim.add_component(
        format!("{name}.mux"),
        CompKind::Artifact,
        Box::new(mux),
        &sens,
    );
    sim.declare_comb(mux_comp, &sens, &writes);
}
