//! The ICAP artifact: the simulation-only stand-in for the FPGA's
//! internal configuration access port.
//!
//! The user design's reconfiguration controller writes SimB words to this
//! port exactly as it would write a real bitstream to the real ICAP. The
//! artifact models the two properties the case study's bugs hinge on:
//!
//! * **Backpressure** — a small input FIFO drained at the configuration
//!   clock rate (`cfg_divider` system cycles per word). A controller
//!   that ignores `ready` overflows the FIFO and loses words
//!   (bug.dpr.3); a slow divider stretches the transfer so software that
//!   does not wait for completion races ahead (bug.dpr.6b).
//! * **Interpretation** — drained words run through the [`SimbParser`];
//!   the resulting events drive the extended portal: error injection
//!   during the payload, module swap at the final payload word, and the
//!   DURING-reconfiguration window between SYNC and DESYNC.

use crate::simb::{SimbEvent, SimbParser};
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator, TraceCat};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// When the module swap fires relative to the FDRI payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapTrigger {
    /// ReSim's choice: only after the final payload word is written —
    /// the new module is not activated "until all words of the SimB
    /// were successfully written to the ICAP", which is what exposes
    /// the engine-reset timing bug (paper §V-A on bug.dpr.6b).
    LastPayloadWord,
    /// Ablation: activate as soon as the payload begins (an optimistic
    /// model some earlier DPR simulators effectively used).
    FirstPayloadWord,
}

/// ICAP artifact configuration.
#[derive(Debug, Clone, Copy)]
pub struct IcapConfig {
    /// Input FIFO depth in words.
    pub fifo_depth: usize,
    /// System-clock cycles per configuration word drained (models the
    /// configuration clock divider; the modified AutoVision design used
    /// a slower configuration clock than the original).
    pub cfg_divider: u32,
    /// When the module swap fires (ablation knob; keep the default for
    /// faithful ReSim behaviour).
    pub swap_trigger: SwapTrigger,
    /// Require a verified CRC32 integrity packet before swapping: the
    /// module swap strobe is deferred from the final payload word to the
    /// `CrcOk` event, a CRC mismatch raises a distinct integrity error
    /// (and latches `crc_error`) instead of silently activating a
    /// corrupted module, and a stream that DESYNCs without any integrity
    /// word is refused. Off by default — plain SimBs carry no CRC and
    /// every paper-reproduction number is unchanged.
    pub require_integrity: bool,
    /// Report recoverable transfer faults (CRC mismatch, missing
    /// integrity word, malformed words, FIFO overflow) at warning
    /// severity instead of error: a retrying reconfiguration controller
    /// owns escalation and raises the error itself once its retry
    /// budget is exhausted. Off by default.
    pub tolerant: bool,
}

impl Default for IcapConfig {
    fn default() -> Self {
        IcapConfig {
            fifo_depth: 16,
            cfg_divider: 4,
            swap_trigger: SwapTrigger::LastPayloadWord,
            require_integrity: false,
            tolerant: false,
        }
    }
}

/// Signals exposed by the ICAP artifact.
#[derive(Debug, Clone, Copy)]
pub struct IcapPort {
    /// In: write data.
    pub cdata: SignalId,
    /// In: write strobe.
    pub cwrite: SignalId,
    /// In: port enable.
    pub ce: SignalId,
    /// Out: FIFO can accept a word this cycle.
    pub ready: SignalId,
    /// Out: high between SYNC and DESYNC.
    pub reconfiguring: SignalId,
    /// Out: high while the FDRI payload is streaming (error injection
    /// window).
    pub inject: SignalId,
    /// Out: one-cycle strobe — swap the module now.
    pub swap_strobe: SignalId,
    /// Out: region addressed by the swap.
    pub swap_rr: SignalId,
    /// Out: module to activate.
    pub swap_module: SignalId,
    /// Out: one-cycle strobe — capture state (GCAPTURE).
    pub capture_strobe: SignalId,
    /// Out: one-cycle strobe — restore state (GRESTORE).
    pub restore_strobe: SignalId,
    /// Out: integrity failure latch — set on CRC mismatch (or a stream
    /// refused for lacking its integrity word), cleared by the next
    /// SYNC or reset. The reconfiguration controller polls this after a
    /// transfer to decide whether to retry.
    pub crc_error: SignalId,
    /// In: transfer-abort strobe (models the device's ICAP abort
    /// sequence). While high, the artifact discards its FIFO and resets
    /// the SimB parser so a retried bitstream starts from a clean SYNC
    /// search, and deasserts `inject`/`reconfiguring`.
    pub abort: SignalId,
}

impl IcapPort {
    /// Allocate the port's signals under `prefix`.
    pub fn alloc(sim: &mut Simulator, prefix: &str) -> IcapPort {
        IcapPort {
            cdata: sim.signal_init(format!("{prefix}.cdata"), 32, 0),
            cwrite: sim.signal_init(format!("{prefix}.cwrite"), 1, 0),
            ce: sim.signal_init(format!("{prefix}.ce"), 1, 0),
            ready: sim.signal_init(format!("{prefix}.ready"), 1, 0),
            reconfiguring: sim.signal_init(format!("{prefix}.reconfiguring"), 1, 0),
            inject: sim.signal_init(format!("{prefix}.inject"), 1, 0),
            swap_strobe: sim.signal_init(format!("{prefix}.swap_strobe"), 1, 0),
            swap_rr: sim.signal_init(format!("{prefix}.swap_rr"), 8, 0),
            swap_module: sim.signal_init(format!("{prefix}.swap_module"), 8, 0),
            capture_strobe: sim.signal_init(format!("{prefix}.capture_strobe"), 1, 0),
            restore_strobe: sim.signal_init(format!("{prefix}.restore_strobe"), 1, 0),
            crc_error: sim.signal_init(format!("{prefix}.crc_error"), 1, 0),
            abort: sim.signal_init(format!("{prefix}.abort"), 1, 0),
        }
    }
}

/// Counters shared with the testbench.
#[derive(Debug, Default, Clone)]
pub struct IcapStats {
    /// Words accepted into the FIFO.
    pub words_accepted: u64,
    /// Words dropped because the FIFO was full (controller ignored
    /// `ready`).
    pub words_dropped: u64,
    /// Module swaps triggered.
    pub swaps: u64,
    /// Malformed words flagged by the parser.
    pub malformed: u64,
    /// Completed reconfigurations (DESYNC seen).
    pub desyncs: u64,
    /// Times `ready` deasserted (backpressure actually exercised).
    pub backpressure_events: u64,
    /// Integrity packets that verified OK.
    pub crc_ok: u64,
    /// Integrity packets that failed verification.
    pub crc_mismatches: u64,
    /// Streams refused because `require_integrity` was set but the SimB
    /// carried no integrity word.
    pub integrity_missing: u64,
    /// Transfer aborts requested through the `abort` input.
    pub aborts: u64,
}

/// Transient faults injectable at the ICAP boundary (recovery
/// campaign). One-shot: counters decrement as the fault plays out.
#[derive(Debug, Default)]
pub struct IcapFaultPlan {
    /// Force `ready` low for this many active cycles — models a
    /// configuration-logic hiccup where the port stops accepting words.
    /// A controller honouring `ready` stops feeding; its DMA-progress
    /// watchdog is what recovers.
    pub drop_ready_for: u32,
    /// Cycles of dropped ready actually applied so far.
    pub drops_fired: u64,
}

/// Shared handle for arming [`IcapFaultPlan`] faults.
pub type IcapFaultHandle = Rc<RefCell<IcapFaultPlan>>;

/// The ICAP artifact component.
pub struct IcapArtifact {
    clk: SignalId,
    rst: SignalId,
    port: IcapPort,
    cfg: IcapConfig,
    fifo: VecDeque<u32>,
    parser: SimbParser,
    drain_count: u32,
    last_far: (u8, u8),
    /// A completed payload waiting for integrity verification before the
    /// swap strobe may fire (`require_integrity` mode only).
    swap_deferred: bool,
    /// A strobe output was set high last cycle and must be cleared.
    strobe_pending: bool,
    /// Last driven value of `ready` (avoid redundant writes on the idle
    /// fast path — the artifact must cost nothing while no bitstream
    /// flows).
    ready_driven: Option<bool>,
    stats: Rc<RefCell<IcapStats>>,
    /// Campaign-armed transient faults, if attached.
    faults: Option<IcapFaultHandle>,
    /// Edge-detect for the `abort` input.
    abort_seen: bool,
    /// Region id of the SimB-transfer trace span currently open (set at
    /// the stream's FAR, closed at DESYNC/abort). Trace bookkeeping
    /// only; never read by the simulation itself.
    transfer_rr: Option<u8>,
    /// Region id of the open error-injection trace span, likewise.
    inject_rr: Option<u8>,
}

impl IcapArtifact {
    /// Build and register the artifact; returns (port, stats).
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        cfg: IcapConfig,
    ) -> (IcapPort, Rc<RefCell<IcapStats>>) {
        let (port, stats, _) = Self::instantiate_faulty(sim, name, clk, rst, cfg);
        (port, stats)
    }

    /// As [`IcapArtifact::instantiate`], also returning the handle used
    /// by the recovery campaign to arm ICAP-side transient faults.
    pub fn instantiate_faulty(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        cfg: IcapConfig,
    ) -> (IcapPort, Rc<RefCell<IcapStats>>, IcapFaultHandle) {
        assert!(cfg.fifo_depth >= 4 && cfg.cfg_divider >= 1);
        let port = IcapPort::alloc(sim, name);
        let stats = Rc::new(RefCell::new(IcapStats::default()));
        let faults: IcapFaultHandle = Rc::new(RefCell::new(IcapFaultPlan::default()));
        let icap = IcapArtifact {
            clk,
            rst,
            port,
            cfg,
            fifo: VecDeque::with_capacity(cfg.fifo_depth),
            parser: SimbParser::new(),
            drain_count: 0,
            last_far: (0, 0),
            swap_deferred: false,
            strobe_pending: false,
            ready_driven: None,
            stats: stats.clone(),
            faults: Some(faults.clone()),
            abort_seen: false,
            transfer_rr: None,
            inject_rr: None,
        };
        let comp = sim.add_component(name, CompKind::Artifact, Box::new(icap), &[clk, rst]);
        sim.declare_clocked(comp, clk);
        (port, stats, faults)
    }

    /// Close any open trace spans (stream torn down by abort or reset).
    fn trace_close_spans(&mut self, ctx: &mut Ctx<'_>, arg: u64) {
        if let Some(rr) = self.inject_rr.take() {
            ctx.trace_end(TraceCat::Icap, "inject", rr as u32, arg);
        }
        if let Some(rr) = self.transfer_rr.take() {
            ctx.trace_end(TraceCat::Simb, "transfer", rr as u32, arg);
        }
    }

    /// Report a recoverable transfer fault: warning in `tolerant` mode
    /// (the retrying controller escalates on exhaustion), error
    /// otherwise.
    fn report(&self, ctx: &mut Ctx<'_>, msg: impl Into<String>) {
        if self.cfg.tolerant {
            ctx.warn(msg.into());
        } else {
            ctx.error(msg.into());
        }
    }
}

impl Component for IcapArtifact {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let p = self.port;
        if ctx.is_high(self.rst) {
            self.trace_close_spans(ctx, u64::MAX);
            self.fifo.clear();
            self.parser = SimbParser::new();
            self.drain_count = 0;
            self.swap_deferred = false;
            self.strobe_pending = false;
            self.abort_seen = false;
            self.ready_driven = Some(true);
            ctx.set_bit(p.ready, true);
            ctx.set_bit(p.reconfiguring, false);
            ctx.set_bit(p.inject, false);
            ctx.set_bit(p.swap_strobe, false);
            ctx.set_bit(p.capture_strobe, false);
            ctx.set_bit(p.restore_strobe, false);
            ctx.set_bit(p.crc_error, false);
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        // Fast idle path: no traffic, nothing buffered, nothing to clear
        // — the artifact costs (almost) nothing while no bitstream flows.
        let aborting = ctx.is_high(p.abort);
        let active = ctx.is_high(p.ce) || !self.fifo.is_empty() || self.strobe_pending || aborting;
        if !active {
            self.abort_seen = false;
            // No bitstream in flight and nothing buffered: sleep until
            // the controller raises ce/abort or reset changes.
            ctx.park_until(&[p.ce, p.abort, self.rst], &[]);
            return;
        }
        // Strobes are single-cycle.
        if self.strobe_pending {
            self.strobe_pending = false;
            ctx.set_bit(p.swap_strobe, false);
            ctx.set_bit(p.capture_strobe, false);
            ctx.set_bit(p.restore_strobe, false);
        }

        // Abort sequence: dump the FIFO and re-arm the parser so a
        // retried SimB starts from a clean SYNC search. `crc_error`
        // stays latched until the next SYNC (the controller has already
        // sampled it, but the testbench may still want to see it).
        if aborting {
            if !self.abort_seen {
                self.abort_seen = true;
                ctx.trace_instant(TraceCat::Icap, "abort", self.last_far.0 as u32, 0);
                self.trace_close_spans(ctx, u64::MAX);
                self.stats.borrow_mut().aborts += 1;
                self.fifo.clear();
                self.parser = SimbParser::new();
                self.drain_count = 0;
                self.swap_deferred = false;
                ctx.set_bit(p.reconfiguring, false);
                ctx.set_bit(p.inject, false);
            }
            // Restore ready (FIFO is now empty) and take no other action
            // while the abort strobe is held.
            if self.ready_driven != Some(true) {
                self.ready_driven = Some(true);
                ctx.set_bit(p.ready, true);
            }
            return;
        }
        self.abort_seen = false;

        // Accept a word if the controller writes.
        if ctx.is_high(p.ce) && ctx.is_high(p.cwrite) {
            let word = ctx.get(p.cdata);
            if self.fifo.len() < self.cfg.fifo_depth {
                match word.to_u64() {
                    Some(w) => {
                        self.fifo.push_back(w as u32);
                        self.stats.borrow_mut().words_accepted += 1;
                    }
                    None => {
                        ctx.error("X written to the ICAP data port");
                    }
                }
            } else {
                self.stats.borrow_mut().words_dropped += 1;
                self.report(ctx, "ICAP FIFO overflow: configuration word dropped");
            }
        }

        // Drain at the configuration clock rate.
        self.drain_count += 1;
        if self.drain_count >= self.cfg.cfg_divider {
            self.drain_count = 0;
            if let Some(w) = self.fifo.pop_front() {
                for ev in self.parser.push(w) {
                    match ev {
                        SimbEvent::Sync => {
                            ctx.trace_instant(TraceCat::Icap, "sync", 0, 0);
                            ctx.set_bit(p.reconfiguring, true);
                            ctx.set_bit(p.crc_error, false);
                            self.swap_deferred = false;
                        }
                        SimbEvent::Far { rr, module } => {
                            self.last_far = (rr, module);
                            if self.transfer_rr.is_none() {
                                self.transfer_rr = Some(rr);
                                ctx.trace_begin(
                                    TraceCat::Simb,
                                    "transfer",
                                    rr as u32,
                                    module as u64,
                                );
                            }
                            ctx.set_u64(p.swap_rr, rr as u64);
                            ctx.set_u64(p.swap_module, module as u64);
                        }
                        SimbEvent::Wcfg => {}
                        SimbEvent::PayloadStart { words } => {
                            if self.inject_rr.is_none() {
                                self.inject_rr = Some(self.last_far.0);
                                ctx.trace_begin(
                                    TraceCat::Icap,
                                    "inject",
                                    self.last_far.0 as u32,
                                    words as u64,
                                );
                            }
                            ctx.set_bit(p.inject, true);
                            if self.cfg.swap_trigger == SwapTrigger::FirstPayloadWord {
                                ctx.trace_instant(
                                    TraceCat::Icap,
                                    "swap",
                                    self.last_far.0 as u32,
                                    self.last_far.1 as u64,
                                );
                                ctx.set_bit(p.swap_strobe, true);
                                self.strobe_pending = true;
                                self.stats.borrow_mut().swaps += 1;
                            }
                        }
                        SimbEvent::PayloadEnd => {
                            if let Some(rr) = self.inject_rr.take() {
                                ctx.trace_end(TraceCat::Icap, "inject", rr as u32, 0);
                            }
                            ctx.set_bit(p.inject, false);
                            if self.cfg.swap_trigger == SwapTrigger::LastPayloadWord {
                                if self.cfg.require_integrity {
                                    // Hold the swap until the stream's
                                    // CRC packet verifies.
                                    self.swap_deferred = true;
                                } else {
                                    ctx.trace_instant(
                                        TraceCat::Icap,
                                        "swap",
                                        self.last_far.0 as u32,
                                        self.last_far.1 as u64,
                                    );
                                    ctx.set_bit(p.swap_strobe, true);
                                    self.strobe_pending = true;
                                    self.stats.borrow_mut().swaps += 1;
                                }
                            }
                        }
                        SimbEvent::Capture => {
                            ctx.set_bit(p.capture_strobe, true);
                            self.strobe_pending = true;
                        }
                        SimbEvent::Restore => {
                            ctx.set_bit(p.restore_strobe, true);
                            self.strobe_pending = true;
                        }
                        SimbEvent::Desync => {
                            if let Some(rr) = self.transfer_rr.take() {
                                ctx.trace_end(TraceCat::Simb, "transfer", rr as u32, 0);
                            }
                            ctx.set_bit(p.reconfiguring, false);
                            self.stats.borrow_mut().desyncs += 1;
                            if self.swap_deferred {
                                // require_integrity is set but the SimB
                                // carried no CRC packet: refuse the swap.
                                self.swap_deferred = false;
                                ctx.set_bit(p.crc_error, true);
                                self.stats.borrow_mut().integrity_missing += 1;
                                self.report(
                                    ctx,
                                    "SimB ended without its integrity word: module swap refused",
                                );
                            }
                        }
                        SimbEvent::Malformed { word } => {
                            ctx.trace_instant(TraceCat::Icap, "malformed", 0, word as u64);
                            self.stats.borrow_mut().malformed += 1;
                            self.report(ctx, format!("malformed SimB word {word:#010x}"));
                        }
                        SimbEvent::CrcOk => {
                            ctx.trace_instant(TraceCat::Icap, "crc_ok", self.last_far.0 as u32, 0);
                            self.stats.borrow_mut().crc_ok += 1;
                            if self.swap_deferred {
                                self.swap_deferred = false;
                                ctx.trace_instant(
                                    TraceCat::Icap,
                                    "swap",
                                    self.last_far.0 as u32,
                                    self.last_far.1 as u64,
                                );
                                ctx.set_bit(p.swap_strobe, true);
                                self.strobe_pending = true;
                                self.stats.borrow_mut().swaps += 1;
                            }
                        }
                        SimbEvent::CrcMismatch { expected, got } => {
                            ctx.trace_instant(
                                TraceCat::Icap,
                                "crc_mismatch",
                                self.last_far.0 as u32,
                                got as u64,
                            );
                            self.stats.borrow_mut().crc_mismatches += 1;
                            self.swap_deferred = false;
                            ctx.set_bit(p.crc_error, true);
                            self.report(
                                ctx,
                                format!(
                                    "SimB integrity error: CRC mismatch \
                                     (computed {expected:#010x}, received {got:#010x}) — \
                                     module swap refused"
                                ),
                            );
                        }
                    }
                }
            }
        }
        // Ready must account for the two-cycle observation skew of the
        // registered handshake: after `ready` drops, a well-behaved
        // controller can still land two more words, so reserve two
        // slots. (A controller that ignores `ready` altogether —
        // bug.dpr.3 — still overflows and is flagged above.)
        let mut ready = self.fifo.len() + 2 < self.cfg.fifo_depth;
        if let Some(faults) = &self.faults {
            let mut plan = faults.borrow_mut();
            if plan.drop_ready_for > 0 {
                plan.drop_ready_for -= 1;
                plan.drops_fired += 1;
                ready = false;
            }
        }
        if self.ready_driven != Some(ready) {
            self.ready_driven = Some(ready);
            ctx.set_bit(p.ready, ready);
            if !ready {
                self.stats.borrow_mut().backpressure_events += 1;
            }
        }
    }
}
