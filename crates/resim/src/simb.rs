//! Simulation-only bitstreams (SimB).
//!
//! A SimB substitutes for a real configuration bitstream: it follows the
//! same framing a Xilinx bitstream uses (SYNC word, type-1/type-2
//! configuration packets, command register writes, DESYNC), but instead
//! of bit-level configuration memory settings its FDRI payload is random
//! filler, and the frame address (FAR) carries numeric IDs naming the
//! reconfigurable region and the module to configure — exactly Table I
//! of the paper.
//!
//! The designer chooses the payload length: ~100 words for fast debug
//! turnaround, the real bitstream's length (129 K words for the
//! AutoVision region) for maximum timing accuracy, or anything between
//! to stress the transfer datapath (FIFO overflow/underflow).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The Xilinx SYNC word that opens configuration traffic.
pub const SYNC_WORD: u32 = 0xAA99_5566;
/// A configuration NOP.
pub const NOP: u32 = 0x2000_0000;
/// Type-1 packet: write 1 word to FAR.
pub const T1_WRITE_FAR: u32 = 0x3000_2001;
/// Type-1 packet: write 1 word to CMD.
pub const T1_WRITE_CMD: u32 = 0x3000_8001;
/// Type-1 packet: write 0 words to FDRI (precedes the type-2 packet).
pub const T1_WRITE_FDRI: u32 = 0x3000_4000;
/// Type-2 packet header template; OR in the payload word count.
pub const T2_HEADER: u32 = 0x5000_0000;
/// CMD register code: write configuration data.
pub const CMD_WCFG: u32 = 0x0000_0001;
/// CMD register code: desynchronise (end of bitstream).
pub const CMD_DESYNC: u32 = 0x0000_000D;
/// CMD register code: capture flip-flop state (state saving, per the
/// authors' FPGA'12 follow-up).
pub const CMD_GCAPTURE: u32 = 0x0000_000C;
/// CMD register code: restore flip-flop state.
pub const CMD_GRESTORE: u32 = 0x0000_000A;
/// Type-1 packet: write 1 word to the CRC register (integrity word).
/// Real bitstreams carry the same packet; a SimB built with
/// [`build_simb_integrity`] appends it just before DESYNC so the ICAP
/// artifact can verify the transfer end to end.
pub const T1_WRITE_CRC: u32 = 0x3000_0001;

/// CRC32 (IEEE 802.3, bit-reversed, init/final `0xFFFF_FFFF`) over a
/// word stream, each word contributing its 4 bytes big-endian — the
/// integrity function of SimB CRC packets.
pub fn crc32(words: &[u32]) -> u32 {
    let mut acc = CRC_INIT;
    for &w in words {
        acc = crc32_fold(acc, w);
    }
    acc ^ 0xFFFF_FFFF
}

const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Fold one word into a raw (not yet finalised) CRC32 accumulator.
fn crc32_fold(mut acc: u32, word: u32) -> u32 {
    for byte in word.to_be_bytes() {
        acc ^= byte as u32;
        for _ in 0..8 {
            let mask = (acc & 1).wrapping_neg();
            acc = (acc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    acc
}

/// Frame-address encoding: region ID in bits \[31:24\], module ID in
/// \[23:16\] (Table I: `FA=0x01020000` selects module 0x02 in region 0x01).
pub fn far_word(rr_id: u8, module_id: u8) -> u32 {
    ((rr_id as u32) << 24) | ((module_id as u32) << 16)
}

/// Decode a FAR word back to (region, module).
pub fn decode_far(fa: u32) -> (u8, u8) {
    ((fa >> 24) as u8, (fa >> 16) as u8)
}

/// Kinds of SimB a testbench can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimbKind {
    /// Configure `module` into the region (module swap).
    Config {
        /// Module to become active.
        module: u8,
    },
    /// Capture module state (GCAPTURE read-back marker).
    Capture,
    /// Restore module state (GRESTORE).
    Restore,
}

/// Build a SimB word stream.
///
/// `payload_words` is the designer-chosen FDRI payload length (≥1);
/// payload content is seeded-random filler, as in Table I.
pub fn build_simb(kind: SimbKind, rr_id: u8, payload_words: usize, seed: u64) -> Vec<u32> {
    build_simb_opts(kind, rr_id, payload_words, seed, false)
}

/// Build a SimB word stream with a trailing CRC32 integrity packet.
///
/// Identical to [`build_simb`] except that a `T1_WRITE_CRC` packet
/// carrying the CRC32 of every word after SYNC is inserted just before
/// the DESYNC command. The ICAP artifact verifies it and refuses the
/// module swap on mismatch (see `icap::IcapConfig::require_integrity`).
pub fn build_simb_integrity(
    kind: SimbKind,
    rr_id: u8,
    payload_words: usize,
    seed: u64,
) -> Vec<u32> {
    build_simb_opts(kind, rr_id, payload_words, seed, true)
}

fn build_simb_opts(
    kind: SimbKind,
    rr_id: u8,
    payload_words: usize,
    seed: u64,
    integrity: bool,
) -> Vec<u32> {
    assert!(payload_words >= 1, "SimB needs at least one payload word");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Vec::with_capacity(payload_words + 10);
    w.push(SYNC_WORD);
    w.push(NOP);
    match kind {
        SimbKind::Config { module } => {
            w.push(T1_WRITE_FAR);
            w.push(far_word(rr_id, module));
            w.push(T1_WRITE_CMD);
            w.push(CMD_WCFG);
            w.push(T1_WRITE_FDRI);
            w.push(T2_HEADER | payload_words as u32);
            for _ in 0..payload_words {
                w.push(rng.random());
            }
        }
        SimbKind::Capture => {
            w.push(T1_WRITE_FAR);
            w.push(far_word(rr_id, 0));
            w.push(T1_WRITE_CMD);
            w.push(CMD_GCAPTURE);
        }
        SimbKind::Restore => {
            w.push(T1_WRITE_FAR);
            w.push(far_word(rr_id, 0));
            w.push(T1_WRITE_CMD);
            w.push(CMD_GRESTORE);
        }
    }
    if integrity {
        // CRC covers every word after SYNC, excluding the CRC packet
        // itself — the same span the parser accumulates.
        let crc = crc32(&w[1..]);
        w.push(T1_WRITE_CRC);
        w.push(crc);
    }
    w.push(T1_WRITE_CMD);
    w.push(CMD_DESYNC);
    w
}

/// Events the parser reports as words stream in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimbEvent {
    /// SYNC seen: the "during reconfiguration" phase begins.
    Sync,
    /// FAR written: the region/module addressed by this bitstream.
    Far {
        /// Reconfigurable region ID.
        rr: u8,
        /// Module ID.
        module: u8,
    },
    /// WCFG command: configuration data follows.
    Wcfg,
    /// Type-2 FDRI header: `words` payload words follow. Error injection
    /// starts with the first payload word.
    PayloadStart {
        /// Payload length.
        words: u32,
    },
    /// The final payload word arrived: injection ends and the module
    /// swap triggers.
    PayloadEnd,
    /// GCAPTURE command (state saving).
    Capture,
    /// GRESTORE command (state restoration).
    Restore,
    /// DESYNC: the "during reconfiguration" phase ends.
    Desync,
    /// A word that does not fit the protocol at this point.
    Malformed {
        /// The offending word.
        word: u32,
    },
    /// A CRC packet verified: the stream so far is intact.
    CrcOk,
    /// A CRC packet FAILED verification: the transferred stream is
    /// corrupt and must not trigger a module swap.
    CrcMismatch {
        /// CRC the parser computed over the received words.
        expected: u32,
        /// CRC word carried by the stream.
        got: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ps {
    /// Before SYNC: words are ignored (bus noise / padding).
    Unsynced,
    Idle,
    ExpectFar,
    ExpectCmd,
    ExpectT2,
    ExpectCrc,
    Payload {
        left: u32,
    },
}

/// A streaming SimB parser — the protocol brain of the ICAP artifact.
#[derive(Debug)]
pub struct SimbParser {
    st: Ps,
    /// Words consumed since SYNC (diagnostic).
    pub words_seen: u64,
    /// Raw CRC32 accumulator over post-SYNC words (excluding any CRC
    /// packet); lets the parser verify `T1_WRITE_CRC` integrity words.
    crc_acc: u32,
    /// True once a CRC packet verified OK in the current synced stream.
    crc_verified: bool,
}

impl Default for SimbParser {
    fn default() -> Self {
        Self::new()
    }
}

impl SimbParser {
    /// A parser in the unsynchronised state.
    pub fn new() -> SimbParser {
        SimbParser {
            st: Ps::Unsynced,
            words_seen: 0,
            crc_acc: CRC_INIT,
            crc_verified: false,
        }
    }

    /// True between SYNC and DESYNC.
    pub fn synced(&self) -> bool {
        self.st != Ps::Unsynced
    }

    /// True if a CRC packet verified OK since the last SYNC.
    pub fn crc_verified(&self) -> bool {
        self.crc_verified
    }

    /// Consume one word; return the events it causes (0..=2).
    pub fn push(&mut self, word: u32) -> Vec<SimbEvent> {
        use SimbEvent::*;
        if self.st != Ps::Unsynced {
            self.words_seen += 1;
        }
        // Fold every post-SYNC word into the running CRC except the CRC
        // packet itself (header consumed in Idle, value in ExpectCrc) —
        // mirroring the span `build_simb_integrity` covers.
        let fold = self.st != Ps::Unsynced
            && self.st != Ps::ExpectCrc
            && !(self.st == Ps::Idle && word == T1_WRITE_CRC);
        if fold {
            self.crc_acc = crc32_fold(self.crc_acc, word);
        }
        match self.st {
            Ps::Unsynced => {
                if word == SYNC_WORD {
                    self.st = Ps::Idle;
                    self.words_seen = 1;
                    self.crc_acc = CRC_INIT;
                    self.crc_verified = false;
                    vec![Sync]
                } else {
                    vec![] // pre-sync padding is legal
                }
            }
            Ps::Idle => match word {
                NOP => vec![],
                T1_WRITE_FAR => {
                    self.st = Ps::ExpectFar;
                    vec![]
                }
                T1_WRITE_CMD => {
                    self.st = Ps::ExpectCmd;
                    vec![]
                }
                T1_WRITE_FDRI => {
                    self.st = Ps::ExpectT2;
                    vec![]
                }
                T1_WRITE_CRC => {
                    self.st = Ps::ExpectCrc;
                    vec![]
                }
                w => vec![Malformed { word: w }],
            },
            Ps::ExpectFar => {
                let (rr, module) = decode_far(word);
                self.st = Ps::Idle;
                vec![Far { rr, module }]
            }
            Ps::ExpectCrc => {
                self.st = Ps::Idle;
                let expected = self.crc_acc ^ 0xFFFF_FFFF;
                if word == expected {
                    self.crc_verified = true;
                    vec![CrcOk]
                } else {
                    vec![CrcMismatch {
                        expected,
                        got: word,
                    }]
                }
            }
            Ps::ExpectCmd => {
                self.st = Ps::Idle;
                match word {
                    CMD_WCFG => vec![Wcfg],
                    CMD_DESYNC => {
                        self.st = Ps::Unsynced;
                        vec![Desync]
                    }
                    CMD_GCAPTURE => vec![Capture],
                    CMD_GRESTORE => vec![Restore],
                    w => vec![Malformed { word: w }],
                }
            }
            Ps::ExpectT2 => {
                if word & 0xF800_0000 == T2_HEADER {
                    let words = word & 0x07FF_FFFF;
                    if words == 0 {
                        self.st = Ps::Idle;
                        vec![Malformed { word }]
                    } else {
                        self.st = Ps::Payload { left: words };
                        vec![PayloadStart { words }]
                    }
                } else {
                    self.st = Ps::Idle;
                    vec![Malformed { word }]
                }
            }
            Ps::Payload { left } => {
                if left == 1 {
                    self.st = Ps::Idle;
                    vec![PayloadEnd]
                } else {
                    self.st = Ps::Payload { left: left - 1 };
                    vec![]
                }
            }
        }
    }
}

/// Render a SimB with per-word explanations — the generator behind the
/// Table I reproduction.
pub fn annotate_simb(words: &[u32]) -> Vec<(u32, String)> {
    let mut parser = SimbParser::new();
    let mut out = Vec::with_capacity(words.len());
    let mut payload_total = 0u32;
    let mut payload_idx = 0u32;
    let mut in_payload = false;
    let mut pending: Option<String> = None;
    for &w in words {
        let events = parser.push(w);
        let label = if let Some(p) = pending.take() {
            p
        } else if in_payload {
            let s = match (payload_idx, payload_total) {
                (0, _) => format!("Random SimB Word {payload_idx} — starts error injection"),
                (i, n) if i + 1 == n => {
                    format!("Random SimB Word {i} — ends error injection, triggers module swapping")
                }
                (i, _) => format!("Random SimB Word {i}"),
            };
            payload_idx += 1;
            s
        } else {
            match w {
                SYNC_WORD => "SYNC Word — start the DURING-reconfiguration phase".to_string(),
                NOP => "NOP".to_string(),
                T1_WRITE_FAR => {
                    pending = Some(String::new()); // replaced below by Far event
                    "Type 1 Write FAR".to_string()
                }
                T1_WRITE_CMD => "Type 1 Write CMD".to_string(),
                T1_WRITE_FDRI => "Type 1 Write FDRI".to_string(),
                T1_WRITE_CRC => "Type 1 Write CRC".to_string(),
                _ => String::new(),
            }
        };
        let mut label = label;
        for e in events {
            match e {
                SimbEvent::Far { rr, module } => {
                    label = format!(
                        "FA={w:#010x} — select module id={module:#04x} in region id={rr:#04x}"
                    );
                    pending = None;
                }
                SimbEvent::Wcfg => label = "WCFG — write configuration data".to_string(),
                SimbEvent::Desync => {
                    label = "DESYNC — end the DURING-reconfiguration phase".to_string()
                }
                SimbEvent::Capture => label = "GCAPTURE — capture module state".to_string(),
                SimbEvent::Restore => label = "GRESTORE — restore module state".to_string(),
                SimbEvent::PayloadStart { words } => {
                    label = format!("Type 2 packet, size={words}");
                    payload_total = words;
                    payload_idx = 0;
                    in_payload = true;
                }
                SimbEvent::PayloadEnd => in_payload = false,
                SimbEvent::Malformed { word } => label = format!("MALFORMED word {word:#010x}"),
                SimbEvent::CrcOk => label = format!("CRC={w:#010x} — integrity check passed"),
                SimbEvent::CrcMismatch { expected, got } => {
                    label = format!(
                        "CRC MISMATCH — stream computes {expected:#010x}, word carries {got:#010x}"
                    )
                }
                SimbEvent::Sync => {}
            }
        }
        out.push((w, label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_structure() {
        // The exact shape of the paper's Table I: 4 payload words,
        // module 0x02 into region 0x01.
        let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 4, 7);
        assert_eq!(simb[0], 0xAA995566);
        assert_eq!(simb[1], 0x20000000);
        assert_eq!(simb[2], 0x30002001);
        assert_eq!(simb[3], 0x01020000);
        assert_eq!(simb[4], 0x30008001);
        assert_eq!(simb[5], 0x00000001);
        assert_eq!(simb[6], 0x30004000);
        assert_eq!(simb[7], 0x50000004);
        assert_eq!(simb.len(), 8 + 4 + 2);
        assert_eq!(simb[12], 0x30008001);
        assert_eq!(simb[13], 0x0000000D);
    }

    #[test]
    fn far_round_trip() {
        for (rr, m) in [(0u8, 0u8), (1, 2), (0xFF, 0xAB)] {
            assert_eq!(decode_far(far_word(rr, m)), (rr, m));
        }
    }

    #[test]
    fn payload_is_seeded_deterministic() {
        let a = build_simb(SimbKind::Config { module: 1 }, 1, 16, 99);
        let b = build_simb(SimbKind::Config { module: 1 }, 1, 16, 99);
        let c = build_simb(SimbKind::Config { module: 1 }, 1, 16, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parser_event_sequence_for_config() {
        let simb = build_simb(SimbKind::Config { module: 3 }, 2, 3, 1);
        let mut p = SimbParser::new();
        let events: Vec<SimbEvent> = simb.iter().flat_map(|w| p.push(*w)).collect();
        assert_eq!(
            events,
            vec![
                SimbEvent::Sync,
                SimbEvent::Far { rr: 2, module: 3 },
                SimbEvent::Wcfg,
                SimbEvent::PayloadStart { words: 3 },
                SimbEvent::PayloadEnd,
                SimbEvent::Desync,
            ]
        );
        assert!(!p.synced(), "DESYNC leaves the parser unsynchronised");
    }

    #[test]
    fn parser_handles_capture_and_restore() {
        for (kind, ev) in [
            (SimbKind::Capture, SimbEvent::Capture),
            (SimbKind::Restore, SimbEvent::Restore),
        ] {
            let simb = build_simb(kind, 1, 1, 0);
            let mut p = SimbParser::new();
            let events: Vec<SimbEvent> = simb.iter().flat_map(|w| p.push(*w)).collect();
            assert!(events.contains(&ev), "{events:?}");
            assert_eq!(*events.last().unwrap(), SimbEvent::Desync);
        }
    }

    #[test]
    fn pre_sync_noise_is_ignored_and_garbage_flagged() {
        let mut p = SimbParser::new();
        assert!(p.push(0xFFFF_FFFF).is_empty());
        assert!(p.push(0x0).is_empty());
        assert_eq!(p.push(SYNC_WORD), vec![SimbEvent::Sync]);
        // Garbage inside the synced stream is malformed.
        assert_eq!(
            p.push(0xDEAD_BEEF),
            vec![SimbEvent::Malformed { word: 0xDEAD_BEEF }]
        );
    }

    #[test]
    fn truncated_payload_never_reports_end() {
        let simb = build_simb(SimbKind::Config { module: 1 }, 1, 10, 5);
        let mut p = SimbParser::new();
        // Drop the last 3 payload words and everything after (the
        // bug.dpr.5 scenario: wrong size calculation).
        let events: Vec<SimbEvent> = simb[..simb.len() - 5]
            .iter()
            .flat_map(|w| p.push(*w))
            .collect();
        assert!(events.contains(&SimbEvent::PayloadStart { words: 10 }));
        assert!(!events.contains(&SimbEvent::PayloadEnd), "{events:?}");
        assert!(p.synced(), "stream left hanging mid-reconfiguration");
    }

    #[test]
    fn integrity_simb_extends_plain_framing_by_one_packet() {
        let plain = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 4, 7);
        let crc = build_simb_integrity(SimbKind::Config { module: 0x02 }, 0x01, 4, 7);
        // Everything before the DESYNC trailer is byte-identical.
        assert_eq!(&crc[..plain.len() - 2], &plain[..plain.len() - 2]);
        assert_eq!(crc.len(), plain.len() + 2);
        assert_eq!(crc[crc.len() - 4], T1_WRITE_CRC);
        assert_eq!(&crc[crc.len() - 2..], &plain[plain.len() - 2..]);
    }

    #[test]
    fn intact_integrity_simb_verifies() {
        let simb = build_simb_integrity(SimbKind::Config { module: 3 }, 2, 16, 11);
        let mut p = SimbParser::new();
        let events: Vec<SimbEvent> = simb.iter().flat_map(|w| p.push(*w)).collect();
        assert!(events.contains(&SimbEvent::CrcOk), "{events:?}");
        assert!(!events
            .iter()
            .any(|e| matches!(e, SimbEvent::CrcMismatch { .. })));
        assert_eq!(*events.last().unwrap(), SimbEvent::Desync);
        assert!(p.crc_verified());
    }

    #[test]
    fn any_single_bit_flip_is_caught() {
        let simb = build_simb_integrity(SimbKind::Config { module: 1 }, 1, 8, 42);
        // Flip one bit in each coverable word (after SYNC, before the
        // CRC packet): no corrupted stream may ever verify. Flips that
        // leave the framing intact must raise an explicit mismatch.
        for i in 1..simb.len() - 4 {
            for bit in [0u32, 13, 31] {
                let mut bad = simb.clone();
                bad[i] ^= 1 << bit;
                let mut p = SimbParser::new();
                let events: Vec<SimbEvent> = bad.iter().flat_map(|w| p.push(*w)).collect();
                assert!(
                    !events.contains(&SimbEvent::CrcOk),
                    "flip at word {i} bit {bit} verified OK: {events:?}"
                );
                assert!(!p.crc_verified(), "flip at word {i} bit {bit}");
            }
            // Payload-word flips never change framing: explicit mismatch.
            if (8..16).contains(&i) {
                let mut bad = simb.clone();
                bad[i] ^= 1 << (i % 32);
                let mut p = SimbParser::new();
                let events: Vec<SimbEvent> = bad.iter().flat_map(|w| p.push(*w)).collect();
                assert!(
                    events
                        .iter()
                        .any(|e| matches!(e, SimbEvent::CrcMismatch { .. })),
                    "payload flip at word {i} went undetected: {events:?}"
                );
            }
        }
    }

    #[test]
    fn plain_simb_reports_no_crc_events() {
        let simb = build_simb(SimbKind::Config { module: 1 }, 1, 8, 42);
        let mut p = SimbParser::new();
        let events: Vec<SimbEvent> = simb.iter().flat_map(|w| p.push(*w)).collect();
        assert!(!events
            .iter()
            .any(|e| matches!(e, SimbEvent::CrcOk | SimbEvent::CrcMismatch { .. })));
        assert!(!p.crc_verified());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // CRC32("abcd") via one big-endian word = 0xED82CD11.
        assert_eq!(crc32(&[0x6162_6364]), 0xED82_CD11);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn annotation_labels_crc_packet() {
        let simb = build_simb_integrity(SimbKind::Config { module: 0x02 }, 0x01, 4, 7);
        let rows = annotate_simb(&simb);
        let n = rows.len();
        assert!(
            rows[n - 4].1.contains("Type 1 Write CRC"),
            "{:?}",
            rows[n - 4]
        );
        assert!(
            rows[n - 3].1.contains("integrity check passed"),
            "{:?}",
            rows[n - 3]
        );
    }

    #[test]
    fn annotation_matches_table_one() {
        let simb = build_simb(SimbKind::Config { module: 0x02 }, 0x01, 4, 7);
        let rows = annotate_simb(&simb);
        assert!(rows[0].1.contains("SYNC"));
        assert!(rows[3].1.contains("module id=0x02"));
        assert!(rows[3].1.contains("region id=0x01"));
        assert!(rows[8].1.contains("starts error injection"));
        assert!(rows[11].1.contains("triggers module swapping"));
        assert!(rows.last().unwrap().1.contains("DESYNC"));
    }
}
