//! # resim — RTL simulation of dynamic partial reconfiguration
//!
//! A Rust reimplementation of the ReSim library, the paper's core
//! contribution: cycle-accurate RTL simulation of an FPGA design
//! *before, during and after* partial reconfiguration, without exposing
//! device-level bitstream details to the user design.
//!
//! The simulation-only layer has three artifacts (Figure 4 of the
//! paper), each a substitute for a piece of the physical FPGA:
//!
//! | artifact | substitutes for | module |
//! |---|---|---|
//! | SimB | the real configuration bitstream | [`simb`] |
//! | ICAP artifact | the internal configuration access port | [`icap`] |
//! | Extended portal + region mux | the configuration memory of one reconfigurable region | [`portal`] |
//!
//! The user design — reconfiguration controller, isolation logic, engines
//! and the software driving them — is untouched: the same RTL and the
//! same software run in simulation and on the device. During a SimB
//! transfer the region mux drives an [`portal::ErrorSource`] (default:
//! all-`X`) onto every region output, so untested isolation logic fails
//! loudly; the module swap triggers only when the final payload word
//! arrives, so the *timing* of reconfiguration is the timing of the
//! bitstream transfer.
//!
//! [`vmux`] provides the traditional Virtual Multiplexing baseline the
//! paper compares against; it shares the parallel-instantiation idea but
//! swaps modules by software writes to a simulation-only
//! `engine_signature` register, with zero delay and no error injection.

pub mod backend;
pub mod icap;
pub mod portal;
pub mod simb;
pub mod vmux;

pub use backend::{
    BackendHandles, BackendStats, ErrorSourceFactory, ReconfigBackend, RegionPlan, RegionStats,
    ResimBackend, VmuxBackend, VmuxRegion,
};

pub use icap::{
    IcapArtifact, IcapConfig, IcapFaultHandle, IcapFaultPlan, IcapPort, IcapStats, SwapTrigger,
};
pub use portal::{
    instantiate_region, instantiate_region_with, ErrorSource, ExtendedPortal, PortalStats,
    RandomSource, RegionOptions, RrBoundary, SilentSource, XSource,
};
pub use simb::{
    annotate_simb, build_simb, build_simb_integrity, crc32, SimbEvent, SimbKind, SimbParser,
};
pub use vmux::{instantiate_vmux, VmuxConfig};
