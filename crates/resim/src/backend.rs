//! Reconfiguration backends: one trait, two simulation methods.
//!
//! A *backend* owns everything method-specific about module swapping —
//! the ICAP artifact, per-region portals and error injection for ReSim;
//! the signature-register wrapper for Virtual Multiplexing — behind a
//! single instantiate/stats/probe interface. The platform (clocking,
//! bus, isolation, controllers, software) is built once; which backend
//! populates the reconfigurable regions is a constructor argument, not
//! control flow scattered through the system assembly.
//!
//! Every backend consumes the same [`RegionPlan`] list, so a system
//! generalises from one region to N without either backend knowing how
//! many regions exist ahead of time: ReSim routes SimBs to regions by
//! the FAR's region ID through one shared ICAP; VMUX gives each region
//! its own `engine_signature` register.

use crate::icap::{IcapArtifact, IcapConfig, IcapFaultHandle, IcapPort, IcapStats};
use crate::portal::{instantiate_region_with, ErrorSource, PortalStats, RegionOptions, RrBoundary};
use crate::vmux::{instantiate_vmux, VmuxConfig};
use dcr::RegFile;
use engines::EngineIf;
use rtlsim::{SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything a backend needs to know about one reconfigurable region.
pub struct RegionPlan {
    /// Region ID carried in SimB frame addresses (ReSim routing key).
    pub rr_id: u8,
    /// Instance-name prefix for the region's swap machinery.
    pub name: String,
    /// Candidate modules: SimB module ID paired with the module's
    /// boundary interface. Under VMUX the module ID doubles as the
    /// signature value.
    pub modules: Vec<(u8, EngineIf)>,
    /// The region's output boundary (muxed from the active module).
    pub boundary: RrBoundary,
    /// Module present in the initial (full) configuration.
    pub initial: Option<u8>,
}

/// Handles a backend returns: the configuration port the IcapCTRL
/// drives, plus whatever probe signals the method actually models
/// (`None` where it models nothing — VMUX has no bitstream traffic, so
/// no injection window). Statistics are *not* handed out here: they stay
/// inside the backend and are snapshotted uniformly through
/// [`ReconfigBackend::stats`].
pub struct BackendHandles {
    /// Configuration port wired to the reconfiguration controller.
    /// Inert (always ready, never strobing) under VMUX.
    pub icap: IcapPort,
    /// ICAP transient-fault injection handle (ReSim only).
    pub icap_faults: Option<IcapFaultHandle>,
    /// High while a reconfiguration is in flight (ReSim only).
    pub reconfiguring: Option<SignalId>,
    /// High while the SimB payload streams and region outputs carry the
    /// error source (ReSim only).
    pub inject: Option<SignalId>,
    /// Signals that mark method-specific unsteady windows (transfer in
    /// flight, X injection). A compiled-mode system registers each with
    /// `Simulator::watch_dirty` so activation filtering falls back to
    /// full event-driven dispatch while any is truthy or unknown.
    pub dirty_watches: Vec<SignalId>,
}

/// Swap-machinery counters of one reconfigurable region, snapshotted by
/// [`ReconfigBackend::stats`]. Regions appear in [`RegionPlan`] order
/// under every method; a method that models no portal machinery (VMUX)
/// reports the region with all counters zero rather than omitting it, so
/// per-region indexing is method-independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Region ID carried in SimB frame addresses.
    pub rr_id: u8,
    /// Module swaps applied to this region.
    pub swaps: u64,
    /// GCAPTURE strobes addressed to this region.
    pub captures: u64,
    /// GRESTORE strobes addressed to this region.
    pub restores: u64,
    /// Swap strobes naming an unknown module ID.
    pub bad_module_ids: u64,
}

/// One uniform statistics snapshot for any reconfiguration backend —
/// the single shape callers consume instead of per-method getters.
#[derive(Debug, Clone, Default)]
pub struct BackendStats {
    /// The backend's [`ReconfigBackend::method_name`].
    pub method: &'static str,
    /// ICAP artifact counters; `None` when the method models no
    /// bitstream (VMUX).
    pub icap: Option<IcapStats>,
    /// Per-region counters, in [`RegionPlan`] order.
    pub regions: Vec<RegionStats>,
}

impl BackendStats {
    /// Region-portal swaps summed over every region.
    pub fn total_swaps(&self) -> u64 {
        self.regions.iter().map(|r| r.swaps).sum()
    }

    /// The snapshot of region `rr_id`, if the backend built one.
    pub fn region(&self, rr_id: u8) -> Option<&RegionStats> {
        self.regions.iter().find(|r| r.rr_id == rr_id)
    }
}

/// A DPR simulation method, as a swappable component supplier.
///
/// `instantiate` is called exactly once, after the module interfaces and
/// region boundaries exist but before the isolation/controller layers
/// that only need the returned handles.
pub trait ReconfigBackend {
    /// Stable lowercase name ("resim" / "vmux") for labels and reports.
    fn method_name(&self) -> &'static str;

    /// True when the backend models the configuration bitstream itself:
    /// DMA traffic on the system bus, error injection while the payload
    /// streams, swap timing tied to the transfer. Capability checks
    /// (e.g. "does bug dpr.2's corruption path exist in this build?")
    /// should ask this, not compare method enums.
    fn models_bitstream(&self) -> bool;

    /// Build the swap machinery for every region and return the shared
    /// handles.
    fn instantiate(
        &mut self,
        sim: &mut Simulator,
        clk: SignalId,
        rst: SignalId,
        regions: Vec<RegionPlan>,
    ) -> BackendHandles;

    /// Snapshot the backend's statistics. Valid after `instantiate`;
    /// before it, the snapshot is empty.
    fn stats(&self) -> BackendStats;
}

/// Factory for per-region error sources. Each region needs its own boxed
/// source (sources are stateful), keyed by the region's ID.
pub type ErrorSourceFactory = Box<dyn FnMut(u8) -> Box<dyn ErrorSource>>;

/// The ReSim method: one shared ICAP artifact feeding per-region
/// extended portals, with error injection during payload streaming.
pub struct ResimBackend {
    icap_name: String,
    config: IcapConfig,
    options: RegionOptions,
    source_factory: ErrorSourceFactory,
    /// Retained after `instantiate` so [`ReconfigBackend::stats`] can
    /// snapshot the live counters.
    icap_stats: Option<Rc<RefCell<IcapStats>>>,
    portals: Vec<(u8, Rc<RefCell<PortalStats>>)>,
}

impl ResimBackend {
    /// A backend instantiating the ICAP artifact under `icap_name` with
    /// `config`, and one portal+mux per region with `options` and an
    /// error source from `source_factory`.
    pub fn new(
        icap_name: impl Into<String>,
        config: IcapConfig,
        options: RegionOptions,
        source_factory: ErrorSourceFactory,
    ) -> ResimBackend {
        ResimBackend {
            icap_name: icap_name.into(),
            config,
            options,
            source_factory,
            icap_stats: None,
            portals: Vec::new(),
        }
    }
}

impl ReconfigBackend for ResimBackend {
    fn method_name(&self) -> &'static str {
        "resim"
    }

    fn models_bitstream(&self) -> bool {
        true
    }

    fn instantiate(
        &mut self,
        sim: &mut Simulator,
        clk: SignalId,
        rst: SignalId,
        regions: Vec<RegionPlan>,
    ) -> BackendHandles {
        let (icap, icap_stats, icap_faults) =
            IcapArtifact::instantiate_faulty(sim, &self.icap_name, clk, rst, self.config);
        self.icap_stats = Some(icap_stats);
        self.portals = Vec::with_capacity(regions.len());
        for r in regions {
            let source = (self.source_factory)(r.rr_id);
            let stats = instantiate_region_with(
                sim,
                &r.name,
                clk,
                rst,
                r.rr_id,
                icap,
                r.modules,
                r.boundary,
                r.initial,
                source,
                self.options,
            );
            self.portals.push((r.rr_id, stats));
        }
        BackendHandles {
            icap,
            icap_faults: Some(icap_faults),
            reconfiguring: Some(icap.reconfiguring),
            inject: Some(icap.inject),
            dirty_watches: vec![icap.reconfiguring, icap.inject],
        }
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            method: self.method_name(),
            icap: self.icap_stats.as_ref().map(|s| s.borrow().clone()),
            regions: self
                .portals
                .iter()
                .map(|(rr_id, p)| {
                    let p = p.borrow();
                    RegionStats {
                        rr_id: *rr_id,
                        swaps: p.swaps,
                        captures: p.captures,
                        restores: p.restores,
                        bad_module_ids: p.bad_module_ids,
                    }
                })
                .collect(),
        }
    }
}

/// Per-region configuration of the VMUX backend.
pub struct VmuxRegion {
    /// Instance-name prefix of the wrapper.
    pub name: String,
    /// The region's simulation-only `engine_signature` DCR register.
    pub regs: RegFile,
    /// Reset behaviour of the signature register.
    pub config: VmuxConfig,
}

/// The Virtual Multiplexing baseline: per-region signature registers,
/// zero-delay swaps, no bitstream and no error injection. The ICAP port
/// it returns is inert (always ready) so the unchanged IcapCTRL can be
/// instantiated against it.
pub struct VmuxBackend {
    icap_name: String,
    regions: Vec<VmuxRegion>,
    /// RR IDs recorded at `instantiate` so [`ReconfigBackend::stats`]
    /// reports one (all-zero) entry per region.
    rr_ids: Vec<u8>,
}

impl VmuxBackend {
    /// A backend allocating the inert ICAP port under `icap_name` and
    /// one signature-register wrapper per [`VmuxRegion`]. `regions` must
    /// pair up one-to-one with the [`RegionPlan`] list later passed to
    /// [`ReconfigBackend::instantiate`].
    pub fn new(icap_name: impl Into<String>, regions: Vec<VmuxRegion>) -> VmuxBackend {
        VmuxBackend {
            icap_name: icap_name.into(),
            regions,
            rr_ids: Vec::new(),
        }
    }
}

impl ReconfigBackend for VmuxBackend {
    fn method_name(&self) -> &'static str {
        "vmux"
    }

    fn models_bitstream(&self) -> bool {
        false
    }

    fn instantiate(
        &mut self,
        sim: &mut Simulator,
        clk: SignalId,
        rst: SignalId,
        regions: Vec<RegionPlan>,
    ) -> BackendHandles {
        assert_eq!(
            regions.len(),
            self.regions.len(),
            "VmuxBackend configured for {} regions, asked to instantiate {}",
            self.regions.len(),
            regions.len()
        );
        let icap = IcapPort::alloc(sim, &self.icap_name);
        sim.poke_u64(icap.ready, 1);
        for (plan, vr) in regions.into_iter().zip(&self.regions) {
            self.rr_ids.push(plan.rr_id);
            let modules: Vec<(u32, EngineIf)> = plan
                .modules
                .into_iter()
                .map(|(id, e)| (id as u32, e))
                .collect();
            instantiate_vmux(
                sim,
                &vr.name,
                clk,
                rst,
                vr.regs.clone(),
                modules,
                plan.boundary,
                vr.config,
            );
        }
        BackendHandles {
            icap,
            icap_faults: None,
            reconfiguring: None,
            inject: None,
            dirty_watches: Vec::new(),
        }
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            method: self.method_name(),
            icap: None,
            regions: self
                .rr_ids
                .iter()
                .map(|&rr_id| RegionStats {
                    rr_id,
                    ..RegionStats::default()
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portal::XSource;
    use crate::simb::{build_simb, SimbKind};
    use engines::EngineParamSignals;
    use rtlsim::{Clock, CompKind, Ctx, ResetGen};

    const PERIOD: u64 = 10_000;

    fn dummy(sim: &mut Simulator, name: &str, io: EngineIf, id: u64) {
        let clk = io.clk;
        sim.add_component(
            name,
            CompKind::UserReconf,
            Box::new(move |ctx: &mut Ctx<'_>| {
                if ctx.rose(clk) {
                    let sel = ctx.is_high(io.sel);
                    ctx.set_u64(io.plb.wdata, if sel { id } else { 0 });
                }
            }),
            &[clk],
        );
    }

    fn tb() -> (
        Simulator,
        SignalId,
        SignalId,
        Vec<RegionPlan>,
        Vec<RrBoundary>,
    ) {
        let mut sim = Simulator::new();
        let clk = sim.signal("clk", 1);
        let rst = sim.signal("rst", 1);
        sim.add_component("clk", CompKind::Vip, Box::new(Clock::new(clk, PERIOD)), &[]);
        sim.add_component(
            "rst",
            CompKind::Vip,
            Box::new(ResetGen::new(rst, 2 * PERIOD)),
            &[],
        );
        let go = sim.signal_init("go", 1, 0);
        let er = sim.signal_init("er", 1, 0);
        let params = EngineParamSignals::alloc(&mut sim, "p");
        let mut plans = Vec::new();
        let mut boundaries = Vec::new();
        for (rr, ids) in [(1u8, [0x11u8, 0x12]), (2, [0x21, 0x22])] {
            let a = EngineIf::alloc(&mut sim, &format!("r{rr}a"), clk, rst, go, er, &params);
            let b = EngineIf::alloc(&mut sim, &format!("r{rr}b"), clk, rst, go, er, &params);
            dummy(&mut sim, &format!("r{rr}da"), a, ids[0] as u64);
            dummy(&mut sim, &format!("r{rr}db"), b, ids[1] as u64);
            let boundary = RrBoundary::alloc(&mut sim, &format!("rr{rr}"));
            boundaries.push(boundary);
            plans.push(RegionPlan {
                rr_id: rr,
                name: format!("region{rr}"),
                modules: vec![(ids[0], a), (ids[1], b)],
                boundary,
                initial: Some(ids[0]),
            });
        }
        (sim, clk, rst, plans, boundaries)
    }

    #[test]
    fn resim_backend_routes_simbs_per_region() {
        let (mut sim, clk, rst, plans, boundaries) = tb();
        let mut backend = ResimBackend::new(
            "icap",
            IcapConfig::default(),
            RegionOptions::default(),
            Box::new(|_| Box::new(XSource)),
        );
        assert!(backend.models_bitstream());
        let h = backend.instantiate(&mut sim, clk, rst, plans);
        let s = backend.stats();
        assert_eq!(s.regions.len(), 2);
        assert!(s.icap.is_some());
        assert_eq!(s.method, "resim");
        sim.run_for(5 * PERIOD).unwrap();
        assert_eq!(sim.peek_u64(boundaries[0].plb.wdata), Some(0x11));
        assert_eq!(sim.peek_u64(boundaries[1].plb.wdata), Some(0x21));

        // Reconfigure region 2 only, through the shared ICAP.
        let simb = build_simb(SimbKind::Config { module: 0x22 }, 2, 32, 5);
        sim.poke_u64(h.icap.ce, 1);
        for w in &simb {
            let mut guard = 0;
            while sim.peek_u64(h.icap.ready) != Some(1) {
                sim.poke_u64(h.icap.cwrite, 0);
                sim.run_for(PERIOD).unwrap();
                guard += 1;
                assert!(guard < 10_000);
            }
            sim.poke_u64(h.icap.cdata, *w as u64);
            sim.poke_u64(h.icap.cwrite, 1);
            sim.run_for(PERIOD).unwrap();
        }
        sim.poke_u64(h.icap.cwrite, 0);
        sim.poke_u64(h.icap.ce, 0);
        sim.run_for(300 * PERIOD).unwrap();
        assert_eq!(sim.peek_u64(boundaries[1].plb.wdata), Some(0x22));
        assert_eq!(sim.peek_u64(boundaries[0].plb.wdata), Some(0x11));
        let s = backend.stats();
        assert_eq!(s.region(1).unwrap().swaps, 0);
        assert_eq!(s.region(2).unwrap().swaps, 1);
        assert_eq!(s.total_swaps(), 1);
        assert!(!sim.has_errors(), "{:?}", sim.messages());
    }

    #[test]
    fn vmux_backend_swaps_by_signature_per_region() {
        let (mut sim, clk, rst, plans, boundaries) = tb();
        let sig1 = RegFile::new(0x1F0, 1);
        let sig2 = RegFile::new(0x1F1, 1);
        let mut backend = VmuxBackend::new(
            "icap_unused",
            vec![
                VmuxRegion {
                    name: "vm1".into(),
                    regs: sig1.clone(),
                    config: VmuxConfig {
                        reset_signature: Some(0x11),
                    },
                },
                VmuxRegion {
                    name: "vm2".into(),
                    regs: sig2.clone(),
                    config: VmuxConfig {
                        reset_signature: Some(0x21),
                    },
                },
            ],
        );
        assert!(!backend.models_bitstream());
        let h = backend.instantiate(&mut sim, clk, rst, plans);
        let s = backend.stats();
        assert!(s.icap.is_none());
        assert_eq!(s.regions.len(), 2, "one zeroed entry per region");
        assert_eq!(s.total_swaps(), 0);
        sim.run_for(5 * PERIOD).unwrap();
        assert_eq!(sim.peek_u64(boundaries[0].plb.wdata), Some(0x11));
        assert_eq!(sim.peek_u64(boundaries[1].plb.wdata), Some(0x21));
        // The inert ICAP port stays ready without ever strobing.
        assert_eq!(sim.peek_u64(h.icap.ready), Some(1));

        // Swap region 2 by writing its signature register; region 1 is
        // untouched.
        sig2.bus_write(0x1F1, 0x22);
        sim.run_for(3 * PERIOD).unwrap();
        assert_eq!(sim.peek_u64(boundaries[1].plb.wdata), Some(0x22));
        assert_eq!(sim.peek_u64(boundaries[0].plb.wdata), Some(0x11));
        assert!(!sim.has_errors(), "{:?}", sim.messages());
    }
}
