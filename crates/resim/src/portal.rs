//! The extended portal and region multiplexer — ReSim's stand-in for the
//! slice of configuration memory a reconfigurable region maps to.
//!
//! All candidate modules are instantiated in parallel (like Virtual
//! Multiplexing), but the *selection* is driven by bitstream traffic
//! parsed by the ICAP artifact rather than by a software-written
//! signature register, so the software under test is exactly the
//! software that ships.
//!
//! Two components cooperate:
//!
//! * [`ExtendedPortal`] (clocked) — tracks the region's active module,
//!   reacting to swap/capture/restore strobes addressed to its region ID.
//! * `RrMux` (combinational) — steers the active module's outputs to the
//!   region boundary, injects the error source's value while the SimB
//!   payload streams, and fans the boundary's bus responses back to the
//!   selected module. Its evaluation cost is charged to the profiler on
//!   every engine-IO toggle, which is precisely the 1.4% overhead the
//!   paper measures for the `Engine_wrapper` multiplexer.

use crate::icap::IcapPort;
use engines::EngineIf;
use plb::MasterPort;
use rtlsim::{CompKind, Component, Ctx, Lv, SignalId, Simulator, TraceCat};
use std::cell::RefCell;
use std::rc::Rc;

/// Source of the values driven onto region outputs during
/// reconfiguration. The default drives `X` (like DCS X-injection); the
/// paper notes advanced users can override it for design-specific tests.
pub trait ErrorSource {
    /// Value to drive on an output of `width` bits.
    fn value(&mut self, width: u8) -> Lv;
}

/// The default: undefined `X` on every output bit.
pub struct XSource;

impl ErrorSource for XSource {
    fn value(&mut self, width: u8) -> Lv {
        Lv::xes(width)
    }
}

/// Drives zeros — modelling an optimistic simulator that never emits
/// garbage (useful as an ablation: bugs the X injection catches vanish).
pub struct SilentSource;

impl ErrorSource for SilentSource {
    fn value(&mut self, width: u8) -> Lv {
        Lv::zeros(width)
    }
}

/// Drives pseudo-random *known* values — garbage that is not `X`, for
/// testing checkers that only look at value ranges.
pub struct RandomSource {
    state: u64,
}

impl RandomSource {
    /// Seeded random source.
    pub fn new(seed: u64) -> RandomSource {
        RandomSource { state: seed | 1 }
    }
}

impl ErrorSource for RandomSource {
    fn value(&mut self, width: u8) -> Lv {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        Lv::from_u64(width, self.state >> 8)
    }
}

/// Region modelling fidelity options (ablation knobs; the defaults are
/// ReSim's faithful behaviour).
#[derive(Debug, Clone, Copy)]
pub struct RegionOptions {
    /// Deselect every module and drive the error source while the SimB
    /// payload streams. Disabling this yields the optimistic
    /// DCS/VMUX-style model in which the region never emits garbage and
    /// the configured module stays live through the rewrite.
    pub deselect_during_inject: bool,
}

impl Default for RegionOptions {
    fn default() -> Self {
        RegionOptions {
            deselect_during_inject: true,
        }
    }
}

/// The boundary signals of a reconfigurable region as seen by the static
/// design: one engine-shaped interface.
#[derive(Debug, Clone, Copy)]
pub struct RrBoundary {
    /// Region busy (from the active module).
    pub busy: SignalId,
    /// Region done pulse.
    pub done: SignalId,
    /// The region's shared bus master port (this is what connects to the
    /// PLB, usually through the isolation module).
    pub plb: MasterPort,
}

impl RrBoundary {
    /// Allocate boundary signals under `prefix`.
    pub fn alloc(sim: &mut Simulator, prefix: &str) -> RrBoundary {
        RrBoundary {
            busy: sim.signal(format!("{prefix}.busy"), 1),
            done: sim.signal(format!("{prefix}.done"), 1),
            plb: MasterPort::alloc(sim, &format!("{prefix}.plb")),
        }
    }
}

/// Portal status shared with the testbench.
#[derive(Debug, Default, Clone)]
pub struct PortalStats {
    /// Module swaps applied to this region.
    pub swaps: u64,
    /// GCAPTURE strobes addressed to this region.
    pub captures: u64,
    /// GRESTORE strobes addressed to this region.
    pub restores: u64,
    /// Swap strobes naming an unknown module ID.
    pub bad_module_ids: u64,
}

/// The per-region portal state machine.
pub struct ExtendedPortal {
    rst: SignalId,
    rr_id: u8,
    icap: IcapPort,
    module_ids: Vec<u8>,
    /// Kernel signal holding the active module index (0xFF = none).
    active: SignalId,
    initial: u64,
    stats: Rc<RefCell<PortalStats>>,
}

const NONE: u64 = 0xFF;

impl Component for ExtendedPortal {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            ctx.set_u64(self.active, self.initial);
            return;
        }
        // Purely event-driven: the portal is sensitive to the ICAP's
        // strobes, not the clock — like ModelSim's artifacts it costs
        // nothing while no bitstream flows.
        if ctx.is_high(self.icap.swap_strobe)
            && ctx.get(self.icap.swap_rr).to_u64_lossy() as u8 == self.rr_id
        {
            let module = ctx.get(self.icap.swap_module).to_u64_lossy() as u8;
            match self.module_ids.iter().position(|m| *m == module) {
                Some(idx) => {
                    ctx.trace_instant(TraceCat::Portal, "swap", self.rr_id as u32, module as u64);
                    ctx.set_u64(self.active, idx as u64);
                    self.stats.borrow_mut().swaps += 1;
                }
                None => {
                    self.stats.borrow_mut().bad_module_ids += 1;
                    ctx.error(format!(
                        "SimB configured unknown module id {module:#04x} into region {:#04x}",
                        self.rr_id
                    ));
                    ctx.set_u64(self.active, NONE);
                }
            }
        }
        if ctx.is_high(self.icap.capture_strobe)
            && ctx.get(self.icap.swap_rr).to_u64_lossy() as u8 == self.rr_id
        {
            self.stats.borrow_mut().captures += 1;
        }
        if ctx.is_high(self.icap.restore_strobe)
            && ctx.get(self.icap.swap_rr).to_u64_lossy() as u8 == self.rr_id
        {
            self.stats.borrow_mut().restores += 1;
        }
    }
}

struct RrMux {
    rr_id: u8,
    modules: Vec<EngineIf>,
    boundary: RrBoundary,
    active: SignalId,
    inject: SignalId,
    /// The ICAP's current FAR region — the stream in flight only rewrites
    /// THIS region's frames when it matches `rr_id`. Read un-sensitised:
    /// the FAR packet always precedes the payload, so the value is stable
    /// by the time `inject` rises.
    swap_rr: SignalId,
    opts: RegionOptions,
    /// ICAP capture/restore strobes, forwarded to the configured module.
    capture: SignalId,
    restore: SignalId,
    source: Box<dyn ErrorSource>,
}

impl Component for RrMux {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let inject = self.opts.deselect_during_inject && {
            let v = ctx.get(self.inject);
            (v.truthy() || v.has_unknown())
                && ctx.get(self.swap_rr).to_u64_lossy() as u8 == self.rr_id
        };
        let active = ctx.get(self.active).to_u64_lossy();
        let b = self.boundary;
        // Module selection: the configured module, unless its
        // configuration frames are mid-rewrite. State-capture/restore
        // strobes reach only the configured module.
        let cap = ctx.get(self.capture);
        let res = ctx.get(self.restore);
        for (i, m) in self.modules.iter().enumerate() {
            let mine = !inject && active == i as u64;
            ctx.set_bit(m.sel, mine);
            ctx.set_bit(m.capture, mine && cap.truthy());
            ctx.set_bit(m.restore, mine && res.truthy());
        }
        let sel = if !inject && (active as usize) < self.modules.len() {
            Some(self.modules[active as usize])
        } else {
            None
        };
        // Quiesce bus responses into every non-selected module so a
        // freshly swapped-out engine never sees a stale grant.
        for m in &self.modules {
            if sel.map(|s| s.plb.gnt) == Some(m.plb.gnt) {
                continue;
            }
            ctx.set_bit(m.plb.gnt, false);
            ctx.set_bit(m.plb.addr_ack, false);
            ctx.set_bit(m.plb.wready, false);
            ctx.set_bit(m.plb.rvalid, false);
            ctx.set_u64(m.plb.rdata, 0);
            ctx.set_bit(m.plb.complete, false);
            ctx.set_bit(m.plb.err, false);
        }
        match sel {
            Some(m) if !inject => {
                ctx.set(b.busy, ctx.get(m.busy));
                ctx.set(b.done, ctx.get(m.done));
                // Forward the module's master-driven signals out...
                let from = m.plb.master_driven();
                let to = b.plb.master_driven();
                for (f, t) in from.iter().zip(to.iter()) {
                    ctx.set(*t, ctx.get(*f));
                }
                // ...and the boundary's bus responses back in.
                ctx.set(m.plb.gnt, ctx.get(b.plb.gnt));
                ctx.set(m.plb.addr_ack, ctx.get(b.plb.addr_ack));
                ctx.set(m.plb.wready, ctx.get(b.plb.wready));
                ctx.set(m.plb.rvalid, ctx.get(b.plb.rvalid));
                ctx.set(m.plb.rdata, ctx.get(b.plb.rdata));
                ctx.set(m.plb.complete, ctx.get(b.plb.complete));
                ctx.set(m.plb.err, ctx.get(b.plb.err));
            }
            _ => {
                // No configured module, or frames being rewritten: the
                // error source decides what the static region sees.
                let (bv, dv) = if inject {
                    (self.source.value(1), self.source.value(1))
                } else {
                    (Lv::zeros(1), Lv::zeros(1))
                };
                ctx.set(b.busy, bv);
                ctx.set(b.done, dv);
                for t in b.plb.master_driven() {
                    let w = 32; // widths coerced by Ctx::set
                    let v = if inject {
                        self.source.value(w)
                    } else {
                        Lv::zeros(w)
                    };
                    ctx.set(t, v);
                }
            }
        }
    }
}

/// Builder: instantiate the portal + mux pair for one region.
///
/// `modules` pairs each candidate module's SimB ID with its interface;
/// `initial` optionally names the module present in the initial (full)
/// configuration. Returns the portal stats handle.
#[allow(clippy::too_many_arguments)]
pub fn instantiate_region(
    sim: &mut Simulator,
    name: &str,
    clk: SignalId,
    rst: SignalId,
    rr_id: u8,
    icap: IcapPort,
    modules: Vec<(u8, EngineIf)>,
    boundary: RrBoundary,
    initial: Option<u8>,
    source: Box<dyn ErrorSource>,
) -> Rc<RefCell<PortalStats>> {
    instantiate_region_with(
        sim,
        name,
        clk,
        rst,
        rr_id,
        icap,
        modules,
        boundary,
        initial,
        source,
        RegionOptions::default(),
    )
}

/// As [`instantiate_region`] with explicit [`RegionOptions`].
#[allow(clippy::too_many_arguments)]
pub fn instantiate_region_with(
    sim: &mut Simulator,
    name: &str,
    // Kept for interface stability: earlier revisions clocked the portal.
    _clk: SignalId,
    rst: SignalId,
    rr_id: u8,
    icap: IcapPort,
    modules: Vec<(u8, EngineIf)>,
    boundary: RrBoundary,
    initial: Option<u8>,
    source: Box<dyn ErrorSource>,
    opts: RegionOptions,
) -> Rc<RefCell<PortalStats>> {
    let initial_idx = match initial {
        Some(id) => modules
            .iter()
            .position(|(m, _)| *m == id)
            .map(|i| i as u64)
            .unwrap_or(NONE),
        None => NONE,
    };
    let active = sim.signal_init(format!("{name}.active"), 8, initial_idx);
    let stats = Rc::new(RefCell::new(PortalStats::default()));
    let portal = ExtendedPortal {
        rst,
        rr_id,
        icap,
        module_ids: modules.iter().map(|(m, _)| *m).collect(),
        active,
        initial: initial_idx,
        stats: stats.clone(),
    };
    sim.add_component(
        format!("{name}.portal"),
        CompKind::Artifact,
        Box::new(portal),
        &[
            icap.swap_strobe,
            icap.capture_strobe,
            icap.restore_strobe,
            rst,
        ],
    );

    let ifs: Vec<EngineIf> = modules.iter().map(|(_, e)| *e).collect();
    // The mux re-evaluates whenever any engine IO, boundary response, or
    // steering state toggles — the paper's "triggered whenever the
    // engine IOs toggled".
    let mut sens: Vec<SignalId> = vec![
        active,
        icap.inject,
        icap.capture_strobe,
        icap.restore_strobe,
    ];
    for e in &ifs {
        sens.push(e.busy);
        sens.push(e.done);
        sens.extend_from_slice(&e.plb.master_driven());
    }
    sens.extend_from_slice(&[
        boundary.plb.gnt,
        boundary.plb.addr_ack,
        boundary.plb.wready,
        boundary.plb.rvalid,
        boundary.plb.rdata,
        boundary.plb.complete,
        boundary.plb.err,
    ]);
    let mut writes: Vec<SignalId> = vec![boundary.busy, boundary.done];
    writes.extend_from_slice(&boundary.plb.master_driven());
    for e in &ifs {
        writes.extend_from_slice(&[e.sel, e.capture, e.restore]);
        writes.extend_from_slice(&[
            e.plb.gnt,
            e.plb.addr_ack,
            e.plb.wready,
            e.plb.rvalid,
            e.plb.rdata,
            e.plb.complete,
            e.plb.err,
        ]);
    }
    let mux = RrMux {
        rr_id,
        modules: ifs,
        boundary,
        active,
        inject: icap.inject,
        swap_rr: icap.swap_rr,
        opts,
        capture: icap.capture_strobe,
        restore: icap.restore_strobe,
        source,
    };
    let mux_comp = sim.add_component(
        format!("{name}.mux"),
        CompKind::Artifact,
        Box::new(mux),
        &sens,
    );
    sim.declare_comb(mux_comp, &sens, &writes);
    stats
}
