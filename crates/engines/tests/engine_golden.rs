//! The RTL engines against their golden models: bit-exact outputs,
//! reset/parameter-latch discipline, and selection gating.

use engines::{CensusEngine, EngineIf, EngineParamSignals, MatchingEngine};
use plb::{AddressWindow, MemorySlave, PlbBus, PlbBusConfig, SharedMem};
use rtlsim::{Clock, CompKind, ResetGen, SignalId, Simulator};
use video::{census_transform, match_frames, Frame, MatchParams, MotionVector, Scene};

const PERIOD: u64 = 10_000;
const SRC: u32 = 0x1_0000;
const DST: u32 = 0x3_0000;
const PREV: u32 = 0x5_0000;
const VEC: u32 = 0x7_0000;

struct Tb {
    sim: Simulator,
    mem: SharedMem,
    io: EngineIf,
    params: EngineParamSignals,
}

fn tb(kind: &str, w: usize, h: usize) -> Tb {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );
    let mem = SharedMem::new(1 << 20);
    let sport = MemorySlave::instantiate(&mut sim, "mem", clk, rst, mem.clone(), 0);
    let go = sim.signal_init("go", 1, 0);
    let ereset = sim.signal_init("ereset", 1, 0);
    let params = EngineParamSignals::alloc(&mut sim, "p");
    let io = EngineIf::alloc(&mut sim, kind, clk, rst, go, ereset, &params);
    match kind {
        "cie" => CensusEngine::instantiate(&mut sim, "cie", io, 2),
        _ => MatchingEngine::instantiate(&mut sim, "me", io, MatchParams::default()),
    }
    PlbBus::new(
        &mut sim,
        "plb",
        clk,
        rst,
        PlbBusConfig::default(),
        vec![io.plb],
        vec![(
            sport,
            AddressWindow {
                base: 0,
                len: 1 << 20,
            },
        )],
    );
    let mut t = Tb {
        sim,
        mem,
        io,
        params,
    };
    t.sim.run_for(4 * PERIOD).unwrap(); // release reset
    t.sim.poke_u64(t.io.sel, 1);
    t.sim.poke_u64(t.params.width, w as u64);
    t.sim.poke_u64(t.params.height, h as u64);
    t
}

fn pulse(tb: &mut Tb, sig: SignalId) {
    tb.sim.poke_u64(sig, 1);
    tb.sim.run_for(PERIOD).unwrap();
    tb.sim.poke_u64(sig, 0);
    tb.sim.run_for(PERIOD).unwrap();
}

fn run_engine(tb: &mut Tb, max_cycles: u64) -> u64 {
    // Wait for the done pulse, returning elapsed cycles.
    let start = tb.sim.now();
    for _ in 0..max_cycles {
        tb.sim.run_for(PERIOD).unwrap();
        if tb.sim.peek_u64(tb.io.done) == Some(1) {
            return (tb.sim.now() - start) / PERIOD;
        }
    }
    panic!("engine did not finish within {max_cycles} cycles");
}

#[test]
fn cie_matches_golden_model_bit_exactly() {
    let (w, h) = (64, 48);
    let frame = Scene::new(w, h, 2, 11).frame(0);
    let mut t = tb("cie", w, h);
    t.mem.load_words(SRC, &frame.to_words());
    t.sim.poke_u64(t.params.src_addr, SRC as u64);
    t.sim.poke_u64(t.params.dst_addr, DST as u64);
    {
        let s = t.io.ereset;
        pulse(&mut t, s);
    }
    {
        let s = t.io.go;
        pulse(&mut t, s);
    }
    run_engine(&mut t, 100_000);
    let words: Vec<u32> = t
        .mem
        .read_words(DST, w * h / 4)
        .into_iter()
        .map(|x| x.expect("output must not be poisoned"))
        .collect();
    let rtl = Frame::from_words(w, h, &words);
    let golden = census_transform(&frame);
    assert_eq!(
        rtl.differing_pixels(&golden),
        0,
        "CIE output must be bit-exact (mad {})",
        rtl.mean_abs_diff(&golden)
    );
    assert!(!t.sim.has_errors(), "{:?}", t.sim.messages());
}

#[test]
fn me_matches_golden_model() {
    let (w, h) = (64, 48);
    let scene = Scene::new(w, h, 2, 21);
    let c0 = census_transform(&scene.frame(0));
    let c1 = census_transform(&scene.frame(1));
    let mut t = tb("me", w, h);
    t.mem.load_words(PREV, &c0.to_words());
    t.mem.load_words(SRC, &c1.to_words());
    t.sim.poke_u64(t.params.src_addr, SRC as u64);
    t.sim.poke_u64(t.params.aux_addr, PREV as u64);
    t.sim.poke_u64(t.params.vec_addr, VEC as u64);
    {
        let s = t.io.ereset;
        pulse(&mut t, s);
    }
    {
        let s = t.io.go;
        pulse(&mut t, s);
    }
    run_engine(&mut t, 400_000);
    let n = t.mem.read_u32(VEC).unwrap() as usize;
    let golden = match_frames(&c0, &c1, &MatchParams::default());
    assert_eq!(n, golden.len(), "vector count");
    for (i, g) in golden.iter().enumerate() {
        let v = MotionVector::unpack(t.mem.read_u32(VEC + 4 + 4 * i as u32).unwrap());
        assert_eq!((v.x, v.y, v.dx, v.dy), (g.x, g.y, g.dx, g.dy), "vector {i}");
    }
    assert!(!t.sim.has_errors());
}

#[test]
fn cie_ignores_go_when_not_selected() {
    let (w, h) = (16, 8);
    let mut t = tb("cie", w, h);
    t.mem.load_words(SRC, &Frame::new(w, h).to_words());
    t.sim.poke_u64(t.params.src_addr, SRC as u64);
    t.sim.poke_u64(t.params.dst_addr, DST as u64);
    {
        let s = t.io.ereset;
        pulse(&mut t, s);
    }
    // Deselect (the region is configured with the other module).
    t.sim.poke_u64(t.io.sel, 0);
    {
        let s = t.io.go;
        pulse(&mut t, s);
    }
    t.sim.run_for(200 * PERIOD).unwrap();
    assert_eq!(t.sim.peek_u64(t.io.busy), Some(0), "must stay idle");
    // Re-select and start: now it runs.
    t.sim.poke_u64(t.io.sel, 1);
    {
        let s = t.io.go;
        pulse(&mut t, s);
    }
    t.sim.run_for(10 * PERIOD).unwrap();
    assert_eq!(t.sim.peek_u64(t.io.busy), Some(1));
}

#[test]
fn parameters_latch_on_reset_not_on_go() {
    // The discipline bug.dpr.6b abuses: change the parameter wires
    // *after* ereset — the engine must still use the latched values.
    let (w, h) = (16, 8);
    let frame = Scene::new(w, h, 1, 3).frame(0);
    let mut t = tb("cie", w, h);
    t.mem.load_words(SRC, &frame.to_words());
    t.sim.poke_u64(t.params.src_addr, SRC as u64);
    t.sim.poke_u64(t.params.dst_addr, DST as u64);
    {
        let s = t.io.ereset;
        pulse(&mut t, s);
    }
    // Now corrupt the wires (software reprogramming for the next frame).
    t.sim.poke_u64(t.params.src_addr, 0xF_0000);
    t.sim.poke_u64(t.params.dst_addr, 0xF_8000);
    {
        let s = t.io.go;
        pulse(&mut t, s);
    }
    run_engine(&mut t, 50_000);
    // Output landed at the LATCHED destination, not the new wire value.
    let golden = census_transform(&frame);
    let words: Vec<u32> = t
        .mem
        .read_words(DST, w * h / 4)
        .into_iter()
        .map(|x| x.unwrap())
        .collect();
    assert_eq!(Frame::from_words(w, h, &words), golden);
    assert_eq!(
        t.mem.read_u32(0xF_8000),
        Some(0),
        "nothing at the stale wire address"
    );
}

#[test]
fn stale_latch_produces_wrong_output_location() {
    // Run once, then reprogram the wires but "lose" the reset (the
    // essence of bug.dpr.6b) — the second run reuses frame 1's buffers.
    let (w, h) = (16, 8);
    let f0 = Scene::new(w, h, 1, 5).frame(0);
    let f1 = Scene::new(w, h, 1, 5).frame(1);
    let mut t = tb("cie", w, h);
    t.mem.load_words(SRC, &f0.to_words());
    t.sim.poke_u64(t.params.src_addr, SRC as u64);
    t.sim.poke_u64(t.params.dst_addr, DST as u64);
    {
        let s = t.io.ereset;
        pulse(&mut t, s);
    }
    {
        let s = t.io.go;
        pulse(&mut t, s);
    }
    run_engine(&mut t, 50_000);
    // Next frame at new addresses; reset is LOST (not pulsed).
    let src2 = SRC + 0x4000;
    let dst2 = DST + 0x4000;
    t.mem.load_words(src2, &f1.to_words());
    t.sim.poke_u64(t.params.src_addr, src2 as u64);
    t.sim.poke_u64(t.params.dst_addr, dst2 as u64);
    {
        let s = t.io.go;
        pulse(&mut t, s);
    }
    run_engine(&mut t, 50_000);
    // The engine reprocessed the OLD buffers: dst2 untouched, DST holds
    // census(f0) — not census(f1).
    assert_eq!(
        t.mem.read_u32(dst2),
        Some(0),
        "new destination never written"
    );
    let words: Vec<u32> = t
        .mem
        .read_words(DST, w * h / 4)
        .into_iter()
        .map(|x| x.unwrap())
        .collect();
    assert_eq!(Frame::from_words(w, h, &words), census_transform(&f0));
}

#[test]
fn cie_is_busier_than_me_per_cycle() {
    // Kernel activity (signal toggles per simulated cycle) must be
    // higher for the CIE — the cause of the paper's Table II elapsed
    // inversion.
    let (w, h) = (32, 24);
    let scene = Scene::new(w, h, 1, 9);
    let f = scene.frame(0);
    let c0 = census_transform(&f);
    let c1 = census_transform(&scene.frame(1));

    let mut tc = tb("cie", w, h);
    tc.mem.load_words(SRC, &f.to_words());
    tc.sim.poke_u64(tc.params.src_addr, SRC as u64);
    tc.sim.poke_u64(tc.params.dst_addr, DST as u64);
    {
        let s = tc.io.ereset;
        pulse(&mut tc, s);
    }
    {
        let s = tc.io.go;
        pulse(&mut tc, s);
    }
    let cie_cycles = run_engine(&mut tc, 100_000);
    let cie_toggles = tc.sim.toggle_count_prefix("cie.dp.");

    let mut tm = tb("me", w, h);
    tm.mem.load_words(PREV, &c0.to_words());
    tm.mem.load_words(SRC, &c1.to_words());
    tm.sim.poke_u64(tm.params.src_addr, SRC as u64);
    tm.sim.poke_u64(tm.params.aux_addr, PREV as u64);
    tm.sim.poke_u64(tm.params.vec_addr, VEC as u64);
    {
        let s = tm.io.ereset;
        pulse(&mut tm, s);
    }
    {
        let s = tm.io.go;
        pulse(&mut tm, s);
    }
    let me_cycles = run_engine(&mut tm, 400_000);
    let me_toggles = tm.sim.toggle_count_prefix("me.dp.");

    let cie_rate = cie_toggles as f64 / cie_cycles as f64;
    let me_rate = me_toggles as f64 / me_cycles as f64;
    assert!(
        cie_rate > me_rate,
        "CIE activity/cycle ({cie_rate:.2}) must exceed ME ({me_rate:.2})"
    );
}
