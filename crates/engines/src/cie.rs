//! The Census Image Engine (CIE) as a cycle-accurate RTL model.
//!
//! Per frame the engine streams the input image row by row over its PLB
//! master port, computes the census transform with a three-row line
//! buffer (one pixel per clock cycle, like the original AutoVision
//! accelerator), and streams the feature image back to memory. The
//! signature computation toggles internal datapath signals every cycle,
//! so the CIE generates more kernel activity per simulated millisecond
//! than the Matching Engine — reproducing the paper's observation that
//! 1.1 ms of CIE simulation takes *longer* wall-clock than 1.4 ms of ME
//! simulation (Table II).
//!
//! ## State and reset discipline
//!
//! Parameters (addresses, geometry) are latched on the `ereset` pulse,
//! not on `go` — exactly the discipline whose violation is bug.dpr.6b:
//! if software pulses `ereset` before the module swap completes, the
//! newly configured engine runs `go` with stale latched parameters and
//! processes the wrong buffers.

use crate::ports::EngineIf;
use plb::dma::Handshake;
use plb::{DmaDriver, DmaEvent};
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Idle,
    /// DMA read of the next input row in flight.
    ReadRow,
    /// Computing signatures for the centre row, one pixel per cycle
    /// (two when `pixels_per_cycle` is 2).
    Compute {
        x: usize,
    },
    /// DMA write of the completed output row.
    WriteRow,
    DonePulse,
}

/// Latched (reset-time) parameters.
#[derive(Debug, Clone, Copy, Default)]
struct Latched {
    src: u32,
    dst: u32,
    width: usize,
    height: usize,
}

/// The CIE component. Instantiate with [`CensusEngine::instantiate`].
pub struct CensusEngine {
    io: EngineIf,
    dma: DmaDriver,
    st: St,
    latched: Latched,
    /// State snapshot taken on the `capture` strobe (GCAPTURE) and
    /// reloaded on `restore` (GRESTORE) — so a module swapped back in
    /// can resume with its parameters without a fresh reset.
    saved: Option<Latched>,
    /// Row index currently being fetched (input row).
    fetch_y: usize,
    /// Row index currently being computed (centre row).
    comp_y: usize,
    rows: [Vec<u8>; 3], // y-1, y, y+1 (line buffers)
    out_row: Vec<u8>,
    /// Datapath activity signals (toggled per pixel).
    sig_px: SignalId,
    sig_out: SignalId,
    sig_acc: SignalId,
    /// Pixels processed per clock (the engine's datapath parallelism).
    pixels_per_cycle: usize,
}

impl CensusEngine {
    /// Build and register the engine.
    pub fn instantiate(sim: &mut Simulator, name: &str, io: EngineIf, pixels_per_cycle: usize) {
        assert!(pixels_per_cycle >= 1);
        let sig_px = sim.signal_init(format!("{name}.dp.px"), 8, 0);
        let sig_out = sim.signal_init(format!("{name}.dp.sig"), 8, 0);
        let sig_acc = sim.signal_init(format!("{name}.dp.acc"), 16, 0);
        let eng = CensusEngine {
            io,
            dma: DmaDriver::new(io.plb, Handshake::Full, 16),
            st: St::Idle,
            latched: Latched::default(),
            saved: None,
            fetch_y: 0,
            comp_y: 0,
            rows: [Vec::new(), Vec::new(), Vec::new()],
            out_row: Vec::new(),
            sig_px,
            sig_out,
            sig_acc,
            pixels_per_cycle,
        };
        let comp = sim.add_component(name, CompKind::UserReconf, Box::new(eng), &[io.clk, io.rst]);
        sim.declare_clocked(comp, io.clk);
    }

    fn census_at(&self, x: usize) -> u8 {
        let w = self.latched.width;
        let c = self.rows[1][x];
        let mut sig = 0u8;
        let mut bit = 0;
        for dy in 0..3usize {
            for dx in [-1isize, 0, 1] {
                if dy == 1 && dx == 0 {
                    continue;
                }
                let nx = x as isize + dx;
                let n = if nx < 0 || nx as usize >= w {
                    0
                } else {
                    self.rows[dy][nx as usize]
                };
                if n < c {
                    sig |= 0x80 >> bit;
                }
                bit += 1;
            }
        }
        sig
    }

    fn unpack_row(data: &[u32], width: usize) -> Vec<u8> {
        let mut row = Vec::with_capacity(width);
        for w in data {
            row.extend_from_slice(&w.to_le_bytes());
        }
        row.truncate(width);
        row
    }

    fn start_fetch(&mut self) {
        let w = self.latched.width;
        let addr = self.latched.src + (self.fetch_y * w) as u32;
        self.dma.start_read(addr, (w / 4) as u32);
        self.st = St::ReadRow;
    }

    fn begin_compute_or_finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.comp_y < self.latched.height {
            self.out_row.clear();
            self.st = St::Compute { x: 0 };
        } else {
            ctx.set_bit(self.io.busy, false);
            ctx.set_bit(self.io.done, true);
            self.st = St::DonePulse;
        }
    }

    /// Start a frame if `go` is asserted while this engine is selected.
    fn try_start(&mut self, ctx: &mut Ctx<'_>) {
        let io = self.io;
        if ctx.is_high(io.go) && ctx.is_high(io.sel) {
            // NOTE: parameters were latched at reset time; a `go`
            // without a preceding (observed) reset runs with stale
            // state.
            if self.latched.width < 4 || self.latched.height < 1 {
                ctx.warn("CIE started with degenerate geometry");
                ctx.set_bit(io.done, true);
                self.st = St::DonePulse;
                return;
            }
            ctx.set_bit(io.busy, true);
            let w = self.latched.width;
            self.rows = [vec![0; w], vec![0; w], vec![0; w]];
            self.fetch_y = 0;
            self.comp_y = 0;
            self.out_row = Vec::with_capacity(w);
            self.start_fetch();
        }
    }
}

impl Component for CensusEngine {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let io = self.io;
        if ctx.is_high(io.rst) {
            self.st = St::Idle;
            self.dma.reset(ctx);
            ctx.set_bit(io.busy, false);
            ctx.set_bit(io.done, false);
            return;
        }
        if !ctx.rose(io.clk) {
            return;
        }
        // State save/restore strobes (honoured only while configured).
        if ctx.is_high(io.capture) && ctx.is_high(io.sel) {
            self.saved = Some(self.latched);
        }
        if ctx.is_high(io.restore) && ctx.is_high(io.sel) {
            if let Some(s) = self.saved {
                self.latched = s;
            } else {
                ctx.warn("CIE restore with no captured state");
            }
        }
        // Reset/parameter latch: honoured only while this engine is the
        // configured module.
        if ctx.is_high(io.ereset) && ctx.is_high(io.sel) {
            self.latched = Latched {
                src: ctx.get(io.src_addr).to_u64_lossy() as u32,
                dst: ctx.get(io.dst_addr).to_u64_lossy() as u32,
                width: ctx.get(io.width).to_u64_lossy() as usize,
                height: ctx.get(io.height).to_u64_lossy() as usize,
            };
            self.st = St::Idle;
            self.dma.reset(ctx);
            ctx.set_bit(io.busy, false);
            ctx.set_bit(io.done, false);
            return;
        }
        match self.st {
            St::Idle => {
                self.try_start(ctx);
                // Still idle with every control strobe low: quiescent
                // until go/capture/restore/ereset or reset moves.
                if self.st == St::Idle
                    && !ctx.is_high(io.go)
                    && !ctx.is_high(io.capture)
                    && !ctx.is_high(io.restore)
                    && !ctx.is_high(io.ereset)
                {
                    ctx.park_until(&[io.go, io.capture, io.restore, io.ereset, io.rst], &[]);
                }
            }
            St::ReadRow => {
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::ReadDone => {
                            let words = self.dma.take_read_data();
                            let row = Self::unpack_row(&words, self.latched.width);
                            // Shift the line buffer: rows slide up.
                            self.rows.rotate_left(1);
                            self.rows[2] = row;
                            if !self.dma.unknown_beats().is_empty() {
                                ctx.warn("CIE read X-poisoned pixels");
                            }
                            self.fetch_y += 1;
                            // We can compute row comp_y once rows
                            // comp_y-1..=comp_y+1 are buffered; with the
                            // slide, that is when fetch_y >= comp_y + 2.
                            if self.fetch_y >= self.comp_y + 2 {
                                self.begin_compute_or_finish(ctx);
                            } else if self.fetch_y < self.latched.height {
                                self.start_fetch();
                            } else {
                                // Short frame: no row below; slide in a
                                // zero row and compute.
                                self.rows.rotate_left(1);
                                self.rows[2] = vec![0; self.latched.width];
                                self.begin_compute_or_finish(ctx);
                            }
                        }
                        _ => {
                            ctx.error("CIE input DMA failed");
                            self.st = St::Idle;
                            ctx.set_bit(io.busy, false);
                        }
                    }
                }
            }
            St::Compute { x } => {
                let w = self.latched.width;
                let mut x = x;
                let mut acc = 0u16;
                for _ in 0..self.pixels_per_cycle {
                    if x >= w {
                        break;
                    }
                    let sig = self.census_at(x);
                    self.out_row.push(sig);
                    acc = acc.wrapping_add(sig as u16);
                    x += 1;
                }
                // Datapath activity: these toggles are what make the CIE
                // "hotter" per simulated ms than the ME.
                ctx.set_u64(self.sig_px, self.rows[1][x.min(w) - 1] as u64);
                ctx.set_u64(
                    self.sig_out,
                    *self
                        .out_row
                        .last()
                        .expect("a compute step emits at least one census signature")
                        as u64,
                );
                ctx.set_u64(self.sig_acc, acc as u64);
                if x >= w {
                    // Row finished: write it out.
                    let words: Vec<u32> = self
                        .out_row
                        .chunks(4)
                        .map(|c| {
                            let mut b = [0u8; 4];
                            b[..c.len()].copy_from_slice(c);
                            u32::from_le_bytes(b)
                        })
                        .collect();
                    let addr = self.latched.dst + (self.comp_y * w) as u32;
                    self.dma.start_write(addr, words);
                    self.st = St::WriteRow;
                } else {
                    self.st = St::Compute { x };
                }
            }
            St::WriteRow => {
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::WriteDone => {
                            self.comp_y += 1;
                            let h = self.latched.height;
                            if self.fetch_y < h {
                                self.start_fetch();
                            } else if self.comp_y < h {
                                // Bottom rows: slide in a zero row.
                                self.rows.rotate_left(1);
                                self.rows[2] = vec![0; self.latched.width];
                                self.begin_compute_or_finish(ctx);
                            } else {
                                self.begin_compute_or_finish(ctx);
                            }
                        }
                        _ => {
                            ctx.error("CIE output DMA failed");
                            self.st = St::Idle;
                            ctx.set_bit(io.busy, false);
                        }
                    }
                }
            }
            St::DonePulse => {
                ctx.set_bit(io.done, false);
                self.st = St::Idle;
                // A start strobe landing on this edge is still honoured.
                self.try_start(ctx);
            }
        }
    }
}
