//! The engine-control block: the static-region DCR registers that were
//! moved *out* of the reconfigurable region, bridged onto the parameter
//! wires and start/reset strobes both engines share.

use crate::ports::EngineParamSignals;
use dcr::RegFile;
use rtlsim::{CompKind, Component, Ctx, DoorbellId, SignalId, Simulator, TraceCat};

/// DCR register offsets of an engine-control block.
pub mod reg {
    /// Write: bit0 = start pulse, bit1 = engine reset pulse.
    pub const CTRL: u16 = 0;
    /// Read: bit0 = busy, bit1 = done (latched until next CTRL write).
    pub const STATUS: u16 = 1;
    /// Source image byte address.
    pub const SRC: u16 = 2;
    /// Destination image byte address.
    pub const DST: u16 = 3;
    /// Auxiliary input byte address (ME: previous census image).
    pub const AUX: u16 = 4;
    /// Vector output byte address (ME).
    pub const VEC: u16 = 5;
    /// Frame width in pixels.
    pub const WIDTH: u16 = 6;
    /// Frame height in pixels.
    pub const HEIGHT: u16 = 7;
}

/// CTRL bit: start.
pub const CTRL_GO: u32 = 1;
/// CTRL bit: engine reset (latches parameters).
pub const CTRL_RESET: u32 = 2;

/// The control block component.
pub struct EngineCtrl {
    clk: SignalId,
    rst: SignalId,
    regs: RegFile,
    params: EngineParamSignals,
    go: SignalId,
    ereset: SignalId,
    /// Post-isolation busy/done as seen from the static region.
    busy_in: SignalId,
    done_in: SignalId,
    /// Interrupt line to the INTC (pulses with done).
    irq_out: SignalId,
    done_latch: bool,
    go_pending: bool,
    rst_pending: bool,
    /// Trace lane for run spans (the region id this block fronts).
    trace_track: u32,
    /// An engine-run span is open (trace bookkeeping only).
    run_open: bool,
    /// Doorbell rung by DCR writes to this block's registers.
    bell: Option<DoorbellId>,
}

impl EngineCtrl {
    /// Build and register the block. `trace_track` is the lane engine
    /// start/done spans are filed under in the structured trace (the
    /// region id this block fronts).
    #[allow(clippy::too_many_arguments)]
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        clk: SignalId,
        rst: SignalId,
        regs: RegFile,
        params: EngineParamSignals,
        go: SignalId,
        ereset: SignalId,
        busy_in: SignalId,
        done_in: SignalId,
        irq_out: SignalId,
        trace_track: u32,
    ) {
        assert!(
            regs.len() >= 8,
            "engine control block needs 8 DCR registers"
        );
        let bell = sim.add_doorbell(regs.dirty_flag());
        let c = EngineCtrl {
            clk,
            rst,
            regs,
            params,
            go,
            ereset,
            busy_in,
            done_in,
            irq_out,
            done_latch: false,
            go_pending: false,
            rst_pending: false,
            trace_track,
            run_open: false,
            bell: Some(bell),
        };
        let comp = sim.add_component(name, CompKind::UserStatic, Box::new(c), &[clk, rst]);
        sim.declare_clocked(comp, clk);
    }
}

impl Component for EngineCtrl {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_high(self.rst) {
            if self.run_open {
                self.run_open = false;
                ctx.trace_end(TraceCat::Engine, "run", self.trace_track, u64::MAX);
            }
            ctx.set_bit(self.go, false);
            ctx.set_bit(self.ereset, false);
            ctx.set_bit(self.irq_out, false);
            self.done_latch = false;
            self.go_pending = false;
            self.rst_pending = false;
            return;
        }
        if !ctx.rose(self.clk) {
            return;
        }
        // Default: strobes are single-cycle.
        ctx.set_bit(self.go, false);
        ctx.set_bit(self.ereset, false);
        for (off, v) in self.regs.take_writes() {
            match off {
                reg::CTRL => {
                    if v & CTRL_GO != 0 {
                        self.go_pending = true;
                    }
                    if v & CTRL_RESET != 0 {
                        self.rst_pending = true;
                    }
                    self.done_latch = false;
                }
                reg::SRC => ctx.set_u64(self.params.src_addr, v as u64),
                reg::DST => ctx.set_u64(self.params.dst_addr, v as u64),
                reg::AUX => ctx.set_u64(self.params.aux_addr, v as u64),
                reg::VEC => ctx.set_u64(self.params.vec_addr, v as u64),
                reg::WIDTH => ctx.set_u64(self.params.width, v as u64),
                reg::HEIGHT => ctx.set_u64(self.params.height, v as u64),
                _ => {}
            }
        }
        // Issue pending strobes (one cycle after the DCR write lands, so
        // parameter writes from the same burst are already on the wires).
        let mut strobed = false;
        if self.rst_pending {
            self.rst_pending = false;
            if self.run_open {
                self.run_open = false;
                ctx.trace_end(TraceCat::Engine, "run", self.trace_track, 1);
            }
            ctx.set_bit(self.ereset, true);
            strobed = true;
        } else if self.go_pending {
            self.go_pending = false;
            if !self.run_open {
                self.run_open = true;
                ctx.trace_begin(TraceCat::Engine, "run", self.trace_track, 0);
            }
            ctx.set_bit(self.go, true);
            strobed = true;
        }
        // Status readback. An X on the post-isolation lines (broken
        // isolation during reconfiguration) would corrupt STATUS; we
        // record it as a lossy 0 plus a warning, matching what a
        // synthesized register would capture nondeterministically.
        let busy = ctx.get(self.busy_in);
        let done = ctx.get(self.done_in);
        if busy.has_unknown() || done.has_unknown() {
            ctx.warn("engine status lines carry X");
        }
        if done.truthy() {
            if self.run_open {
                self.run_open = false;
                ctx.trace_end(TraceCat::Engine, "run", self.trace_track, 0);
            }
            self.done_latch = true;
        }
        let status = (busy.truthy() as u32) | ((self.done_latch as u32) << 1);
        self.regs.set(reg::STATUS, status);
        ctx.set_bit(self.irq_out, done.truthy());
        // Quiescent when no strobe is pending or in flight and the status
        // lines are clean: future evals are pure resampling until the
        // engine moves busy/done, software writes a register (doorbell),
        // or reset changes. X-ed status lines keep the block awake so the
        // per-posedge warning cadence matches event-driven execution.
        if !strobed
            && !self.go_pending
            && !self.rst_pending
            && !busy.has_unknown()
            && !done.has_unknown()
        {
            if let Some(bell) = self.bell {
                ctx.park_until(&[self.busy_in, self.done_in, self.rst], &[bell]);
            }
        }
    }
}
