//! Signal bundles at the reconfigurable-region boundary.

use plb::MasterPort;
use rtlsim::{SignalId, Simulator};

/// The full signal interface of one video engine instance.
///
/// Everything in `EngineIf` except the `plb` bus responses is a
/// *region-boundary* signal: inputs cross into the region freely (no
/// isolation needed), while the outputs (`busy`, `done`, and the
/// master-driven half of `plb`) must pass through the Isolation module
/// before reaching the static region.
#[derive(Debug, Clone, Copy)]
pub struct EngineIf {
    // Inputs to the engine.
    /// System clock.
    pub clk: SignalId,
    /// Global power-on reset.
    pub rst: SignalId,
    /// This engine is the currently configured module in the region.
    /// Driven by the extended portal (ReSim) or wrapper mux (VMUX).
    pub sel: SignalId,
    /// One-cycle start pulse.
    pub go: SignalId,
    /// One-cycle soft-reset pulse; latches the parameter signals.
    pub ereset: SignalId,
    /// One-cycle state-capture strobe (GCAPTURE): the selected module
    /// snapshots its architectural state.
    pub capture: SignalId,
    /// One-cycle state-restore strobe (GRESTORE): the selected module
    /// reloads the last snapshot — the mechanism behind the authors'
    /// FPGA'12 state-saving methodology.
    pub restore: SignalId,
    /// Source (input image) byte address.
    pub src_addr: SignalId,
    /// Destination (output image) byte address.
    pub dst_addr: SignalId,
    /// Auxiliary input address (ME: previous census image).
    pub aux_addr: SignalId,
    /// Vector output address (ME only).
    pub vec_addr: SignalId,
    /// Frame width in pixels.
    pub width: SignalId,
    /// Frame height in pixels.
    pub height: SignalId,
    // Outputs from the engine.
    /// Processing in progress.
    pub busy: SignalId,
    /// One-cycle completion pulse.
    pub done: SignalId,
    /// The engine's private bus master port (region side; routed to the
    /// shared boundary port by the wrapper).
    pub plb: MasterPort,
}

impl EngineIf {
    /// Allocate the private per-engine signals under `prefix`. The
    /// shared inputs (`clk`, `rst`, params, strobes) are passed in
    /// because both engines see the same static-region wires.
    #[allow(clippy::too_many_arguments)]
    pub fn alloc(
        sim: &mut Simulator,
        prefix: &str,
        clk: SignalId,
        rst: SignalId,
        go: SignalId,
        ereset: SignalId,
        params: &EngineParamSignals,
    ) -> EngineIf {
        EngineIf {
            clk,
            rst,
            sel: sim.signal_init(format!("{prefix}.sel"), 1, 0),
            go,
            ereset,
            capture: sim.signal_init(format!("{prefix}.capture"), 1, 0),
            restore: sim.signal_init(format!("{prefix}.restore"), 1, 0),
            src_addr: params.src_addr,
            dst_addr: params.dst_addr,
            aux_addr: params.aux_addr,
            vec_addr: params.vec_addr,
            width: params.width,
            height: params.height,
            busy: sim.signal_init(format!("{prefix}.busy"), 1, 0),
            done: sim.signal_init(format!("{prefix}.done"), 1, 0),
            plb: MasterPort::alloc(sim, &format!("{prefix}.plb")),
        }
    }
}

/// The parameter wires driven by the engine-control block in the static
/// region (the DCR registers that were deliberately moved *out* of the
/// reconfigurable region).
#[derive(Debug, Clone, Copy)]
pub struct EngineParamSignals {
    /// Source byte address.
    pub src_addr: SignalId,
    /// Destination byte address.
    pub dst_addr: SignalId,
    /// Auxiliary input byte address.
    pub aux_addr: SignalId,
    /// Vector output byte address.
    pub vec_addr: SignalId,
    /// Frame width.
    pub width: SignalId,
    /// Frame height.
    pub height: SignalId,
}

impl EngineParamSignals {
    /// Allocate the shared parameter wires.
    pub fn alloc(sim: &mut Simulator, prefix: &str) -> EngineParamSignals {
        EngineParamSignals {
            src_addr: sim.signal_init(format!("{prefix}.src_addr"), 32, 0),
            dst_addr: sim.signal_init(format!("{prefix}.dst_addr"), 32, 0),
            aux_addr: sim.signal_init(format!("{prefix}.aux_addr"), 32, 0),
            vec_addr: sim.signal_init(format!("{prefix}.vec_addr"), 32, 0),
            width: sim.signal_init(format!("{prefix}.width"), 16, 0),
            height: sim.signal_init(format!("{prefix}.height"), 16, 0),
        }
    }
}
