//! # engines — the reconfigurable video processing engines
//!
//! Cycle-accurate RTL models of the two hardware accelerators that
//! time-share the Optical Flow Demonstrator's reconfigurable region:
//!
//! * [`CensusEngine`] (CIE) — streams a frame, computes the census
//!   transform with line buffers, streams the feature image back;
//! * [`MatchingEngine`] (ME) — loads two consecutive feature images,
//!   searches displacements per grid anchor, writes packed motion
//!   vectors;
//!
//! plus the static-region machinery around them:
//!
//! * [`EngineCtrl`] — the DCR register block (deliberately placed
//!   *outside* the region) bridged to the shared parameter wires and
//!   start/reset strobes;
//! * [`Isolation`] — the gate that keeps a region undergoing
//!   reconfiguration from corrupting the static design.
//!
//! Both engines follow the reset discipline the case study's bug.dpr.6b
//! hinges on: parameters are latched on `ereset`, and `go`/`ereset` are
//! honoured only while the engine is the *selected* (configured) module.

pub mod cie;
pub mod ctrl;
pub mod isolation;
pub mod me;
pub mod ports;

pub use cie::CensusEngine;
pub use ctrl::{EngineCtrl, CTRL_GO, CTRL_RESET};
pub use isolation::{IsoPair, Isolation};
pub use me::MatchingEngine;
pub use ports::{EngineIf, EngineParamSignals};
