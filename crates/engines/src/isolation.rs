//! The Isolation module.
//!
//! To keep the spurious outputs of a region undergoing reconfiguration
//! from corrupting the static design, every region output is gated by an
//! AND with the inverted `isolate` control: while `isolate` is asserted
//! the static side sees clean zeros, whatever the region drives. The
//! module is part of the *user design* (it is synthesized), and the
//! paper's key point is that only ReSim-style simulation — which injects
//! `X` while the bitstream is in flight — actually *tests* it: under
//! Virtual Multiplexing the region never emits garbage, so a missing or
//! mis-controlled isolation module sails through simulation.

use rtlsim::{CompKind, Component, Ctx, Logic, Lv, SignalId, Simulator, TraceCat};

/// One gated signal pair.
#[derive(Debug, Clone, Copy)]
pub struct IsoPair {
    /// Region-side input.
    pub from: SignalId,
    /// Static-side output.
    pub to: SignalId,
}

/// The isolation component: `to = isolate ? 0 : from` per pair, with the
/// faithful gate-level X semantics (an `X` on `isolate` lets `X` through
/// wherever the data bit is not already 0).
pub struct Isolation {
    isolate: SignalId,
    pairs: Vec<IsoPair>,
    /// Trace lane for isolation-window spans (the region id).
    trace_track: u32,
}

impl Isolation {
    /// Build and register the module. The component re-evaluates on any
    /// input or control change, like the combinational gates it models.
    /// `trace_track` is the lane the module's isolation-window spans are
    /// filed under in the structured trace (the region id it guards).
    pub fn instantiate(
        sim: &mut Simulator,
        name: &str,
        isolate: SignalId,
        pairs: Vec<IsoPair>,
        trace_track: u32,
    ) {
        let mut sens = vec![isolate];
        sens.extend(pairs.iter().map(|p| p.from));
        let outs: Vec<SignalId> = pairs.iter().map(|p| p.to).collect();
        let iso = Isolation {
            isolate,
            pairs,
            trace_track,
        };
        let comp = sim.add_component(name, CompKind::UserStatic, Box::new(iso), &sens);
        sim.declare_comb(comp, &sens, &outs);
    }
}

impl Component for Isolation {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        // The assert/release window of the isolation control, as a span
        // on the region's lane (edge-detected, so the per-pair loop
        // below stays emission-free).
        if ctx.rose(self.isolate) {
            ctx.trace_begin(TraceCat::Isolation, "window", self.trace_track, 0);
        } else if ctx.fell(self.isolate) {
            ctx.trace_end(TraceCat::Isolation, "window", self.trace_track, 0);
        }
        let gate = !ctx.get(self.isolate); // 1 = pass, 0 = clamp, X = X
        let g = gate.get(0);
        for i in 0..self.pairs.len() {
            let p = self.pairs[i];
            let v = ctx.get(p.from);
            let out = match g {
                Logic::One => v,
                Logic::Zero => Lv::zeros(v.width()),
                // X/Z on the control: every non-zero bit is unknown —
                // exactly what a real AND gate does.
                _ => v & Lv::xes(v.width()),
            };
            ctx.set(p.to, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlsim::Simulator;

    fn tb() -> (Simulator, SignalId, SignalId, SignalId) {
        let mut sim = Simulator::new();
        let isolate = sim.signal_init("isolate", 1, 0);
        let a_in = sim.signal_init("a_in", 8, 0);
        let a_out = sim.signal("a_out", 8);
        Isolation::instantiate(
            &mut sim,
            "iso",
            isolate,
            vec![IsoPair {
                from: a_in,
                to: a_out,
            }],
            0,
        );
        (sim, isolate, a_in, a_out)
    }

    #[test]
    fn passes_through_when_not_isolated() {
        let (mut sim, _iso, a_in, a_out) = tb();
        sim.poke_u64(a_in, 0xAB);
        sim.settle().unwrap();
        assert_eq!(sim.peek_u64(a_out), Some(0xAB));
    }

    #[test]
    fn clamps_to_zero_when_isolated_even_against_x() {
        let (mut sim, iso, a_in, a_out) = tb();
        sim.poke_u64(iso, 1);
        sim.poke(a_in, Lv::xes(8)); // region mid-reconfiguration
        sim.settle().unwrap();
        assert_eq!(sim.peek_u64(a_out), Some(0), "isolation must clamp X");
    }

    #[test]
    fn x_escapes_when_not_isolated() {
        // The bug.dpr.1 scenario: software never asserted isolate.
        let (mut sim, _iso, a_in, a_out) = tb();
        sim.poke(a_in, Lv::xes(8));
        sim.settle().unwrap();
        assert!(
            sim.peek(a_out).has_unknown(),
            "X leaks into the static region"
        );
    }

    #[test]
    fn x_on_control_poisons_nonzero_bits() {
        let (mut sim, iso, a_in, a_out) = tb();
        sim.poke(iso, Lv::xes(1));
        sim.poke_u64(a_in, 0b0000_0101);
        sim.settle().unwrap();
        let out = sim.peek(a_out);
        assert_eq!(out.get(1), Logic::Zero, "zero bits stay zero through AND");
        assert_eq!(out.get(0), Logic::X, "one bits become X");
    }
}
