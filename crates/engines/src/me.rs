//! The Matching Engine (ME) as a cycle-accurate RTL model.
//!
//! The ME loads the previous and current census images into its internal
//! buffers (the original accelerator streamed through BRAM line stores),
//! then runs an exhaustive displacement search per grid anchor with a
//! systolic array that evaluates [`MatchingEngine::OPS_PER_CYCLE`]
//! patch-pixel comparisons per clock, and finally DMA-writes the packed
//! motion vectors. Its simulated time per frame is *longer* than the
//! CIE's (more cycles), but it touches fewer kernel signals per cycle —
//! together these reproduce the Table II simulated/elapsed inversion.
//!
//! Parameter latching follows the same reset discipline as the CIE (and
//! is therefore vulnerable to the same bug.dpr.6b misuse): `ereset`
//! latches `src` (current census), `aux` (previous census), `vec`
//! (vector output) and the geometry.

use crate::ports::EngineIf;
use plb::dma::Handshake;
use plb::{DmaDriver, DmaEvent};
use rtlsim::{CompKind, Component, Ctx, SignalId, Simulator};
use video::{Frame, MatchParams, MotionVector};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Idle,
    LoadPrev,
    LoadCurr,
    /// Searching; one anchor at a time, `cycles_left` models the systolic
    /// array latency for the current anchor.
    Search {
        anchor: usize,
        cycles_left: u32,
    },
    WriteVectors,
    DonePulse,
}

#[derive(Debug, Clone, Copy, Default)]
struct Latched {
    curr: u32,
    prev: u32,
    vec: u32,
    width: usize,
    height: usize,
}

/// The ME component. Instantiate with [`MatchingEngine::instantiate`].
pub struct MatchingEngine {
    io: EngineIf,
    dma: DmaDriver,
    st: St,
    latched: Latched,
    /// GCAPTURE/GRESTORE snapshot (see `CensusEngine::saved`).
    saved: Option<Latched>,
    params: MatchParams,
    prev: Option<Frame>,
    curr: Option<Frame>,
    anchors: Vec<(usize, usize)>,
    vectors: Vec<MotionVector>,
    /// Datapath activity signal (one toggle per anchor-search cycle).
    sig_cost: SignalId,
    ops_per_cycle: u32,
}

impl MatchingEngine {
    /// Patch-pixel comparisons the systolic array performs per clock.
    pub const OPS_PER_CYCLE: u32 = 28;

    /// Build and register the engine.
    pub fn instantiate(sim: &mut Simulator, name: &str, io: EngineIf, params: MatchParams) {
        let sig_cost = sim.signal_init(format!("{name}.dp.cost"), 16, 0);
        let eng = MatchingEngine {
            io,
            dma: DmaDriver::new(io.plb, Handshake::Full, 16),
            st: St::Idle,
            latched: Latched::default(),
            saved: None,
            params,
            prev: None,
            curr: None,
            anchors: Vec::new(),
            vectors: Vec::new(),
            sig_cost,
            ops_per_cycle: Self::OPS_PER_CYCLE,
        };
        let comp = sim.add_component(name, CompKind::UserReconf, Box::new(eng), &[io.clk, io.rst]);
        sim.declare_clocked(comp, io.clk);
    }

    fn anchor_cycles(&self) -> u32 {
        let r = (2 * self.params.search_radius + 1) as u32;
        let p = (2 * self.params.patch_half + 1) as u32;
        (r * r * p * p).div_ceil(self.ops_per_cycle)
    }

    fn search_anchor(&self, x: usize, y: usize) -> MotionVector {
        let prev = self
            .prev
            .as_ref()
            .expect("search runs only after the DMA latched the previous frame");
        let curr = self
            .curr
            .as_ref()
            .expect("search runs only after the DMA latched the current frame");
        let r = self.params.search_radius as isize;
        let mut best = (0isize, 0isize, u32::MAX);
        for dy in -r..=r {
            for dx in -r..=r {
                let c = video::match_cost(prev, curr, x, y, dx, dy, self.params.patch_half);
                let better = c < best.2
                    || (c == best.2 && (dx * dx + dy * dy) < (best.0 * best.0 + best.1 * best.1));
                if better {
                    best = (dx, dy, c);
                }
            }
        }
        let cost = best.2.min(u16::MAX as u32) as u16;
        MotionVector {
            x: x as u16,
            y: y as u16,
            dx: best.0 as i8,
            dy: best.1 as i8,
            cost: if cost > self.params.max_cost {
                u16::MAX
            } else {
                cost
            },
        }
    }

    fn frame_words(&self) -> u32 {
        (self.latched.width * self.latched.height / 4) as u32
    }

    /// Start a frame if `go` is asserted while this engine is selected.
    fn try_start(&mut self, ctx: &mut Ctx<'_>) {
        let io = self.io;
        if ctx.is_high(io.go) && ctx.is_high(io.sel) {
            if self.latched.width < 4 || self.latched.height < 1 {
                ctx.warn("ME started with degenerate geometry");
                ctx.set_bit(io.done, true);
                self.st = St::DonePulse;
                return;
            }
            ctx.set_bit(io.busy, true);
            self.dma.start_read(self.latched.prev, self.frame_words());
            self.st = St::LoadPrev;
        }
    }
}

impl Component for MatchingEngine {
    fn eval(&mut self, ctx: &mut Ctx<'_>) {
        let io = self.io;
        if ctx.is_high(io.rst) {
            self.st = St::Idle;
            self.dma.reset(ctx);
            ctx.set_bit(io.busy, false);
            ctx.set_bit(io.done, false);
            return;
        }
        if !ctx.rose(io.clk) {
            return;
        }
        if ctx.is_high(io.capture) && ctx.is_high(io.sel) {
            self.saved = Some(self.latched);
        }
        if ctx.is_high(io.restore) && ctx.is_high(io.sel) {
            if let Some(s) = self.saved {
                self.latched = s;
            } else {
                ctx.warn("ME restore with no captured state");
            }
        }
        if ctx.is_high(io.ereset) && ctx.is_high(io.sel) {
            self.latched = Latched {
                curr: ctx.get(io.src_addr).to_u64_lossy() as u32,
                prev: ctx.get(io.aux_addr).to_u64_lossy() as u32,
                vec: ctx.get(io.vec_addr).to_u64_lossy() as u32,
                width: ctx.get(io.width).to_u64_lossy() as usize,
                height: ctx.get(io.height).to_u64_lossy() as usize,
            };
            self.st = St::Idle;
            self.dma.reset(ctx);
            ctx.set_bit(io.busy, false);
            ctx.set_bit(io.done, false);
            return;
        }
        match self.st {
            St::Idle => {
                self.try_start(ctx);
                // Still idle with every control strobe low: nothing can
                // happen until one of them (or reset) moves.
                if self.st == St::Idle
                    && !ctx.is_high(io.go)
                    && !ctx.is_high(io.capture)
                    && !ctx.is_high(io.restore)
                    && !ctx.is_high(io.ereset)
                {
                    ctx.park_until(&[io.go, io.capture, io.restore, io.ereset, io.rst], &[]);
                }
            }
            St::LoadPrev => {
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::ReadDone => {
                            let words = self.dma.take_read_data();
                            self.prev = Some(Frame::from_words(
                                self.latched.width,
                                self.latched.height,
                                &words,
                            ));
                            self.dma.start_read(self.latched.curr, self.frame_words());
                            self.st = St::LoadCurr;
                        }
                        _ => {
                            ctx.error("ME previous-frame DMA failed");
                            ctx.set_bit(io.busy, false);
                            self.st = St::Idle;
                        }
                    }
                }
            }
            St::LoadCurr => {
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::ReadDone => {
                            let words = self.dma.take_read_data();
                            self.curr = Some(Frame::from_words(
                                self.latched.width,
                                self.latched.height,
                                &words,
                            ));
                            // Enumerate anchors exactly as the golden
                            // model does.
                            let margin = self.params.search_radius + self.params.patch_half;
                            self.anchors.clear();
                            self.vectors.clear();
                            let mut y = margin;
                            while y + margin < self.latched.height {
                                let mut x = margin;
                                while x + margin < self.latched.width {
                                    self.anchors.push((x, y));
                                    x += self.params.grid_step;
                                }
                                y += self.params.grid_step;
                            }
                            if self.anchors.is_empty() {
                                ctx.warn("ME: frame too small for any anchor");
                                ctx.set_bit(io.busy, false);
                                ctx.set_bit(io.done, true);
                                self.st = St::DonePulse;
                            } else {
                                let cl = self.anchor_cycles();
                                self.st = St::Search {
                                    anchor: 0,
                                    cycles_left: cl,
                                };
                            }
                        }
                        _ => {
                            ctx.error("ME current-frame DMA failed");
                            ctx.set_bit(io.busy, false);
                            self.st = St::Idle;
                        }
                    }
                }
            }
            St::Search {
                anchor,
                cycles_left,
            } => {
                // Systolic-array activity toggle.
                ctx.set_u64(self.sig_cost, (anchor as u64 ^ cycles_left as u64) & 0xFFFF);
                if cycles_left > 1 {
                    self.st = St::Search {
                        anchor,
                        cycles_left: cycles_left - 1,
                    };
                } else {
                    let (x, y) = self.anchors[anchor];
                    let v = self.search_anchor(x, y);
                    self.vectors.push(v);
                    if anchor + 1 < self.anchors.len() {
                        let cl = self.anchor_cycles();
                        self.st = St::Search {
                            anchor: anchor + 1,
                            cycles_left: cl,
                        };
                    } else {
                        // Emit: count word, then packed vectors.
                        let mut words = Vec::with_capacity(self.vectors.len() + 1);
                        words.push(self.vectors.len() as u32);
                        words.extend(self.vectors.iter().map(|v| v.pack()));
                        self.dma.start_write(self.latched.vec, words);
                        self.st = St::WriteVectors;
                    }
                }
            }
            St::WriteVectors => {
                if let Some(ev) = self.dma.step(ctx) {
                    match ev {
                        DmaEvent::WriteDone => {
                            ctx.set_bit(io.busy, false);
                            ctx.set_bit(io.done, true);
                            self.st = St::DonePulse;
                        }
                        _ => {
                            ctx.error("ME vector DMA failed");
                            ctx.set_bit(io.busy, false);
                            self.st = St::Idle;
                        }
                    }
                }
            }
            St::DonePulse => {
                ctx.set_bit(io.done, false);
                self.st = St::Idle;
                // A start strobe landing on this edge is still honoured.
                self.try_start(ctx);
            }
        }
    }
}
