//! Property tests for the instruction codecs and the assembler.

use ppc::{assemble, disassemble, Instr};
use proptest::prelude::*;

/// Constructive strategy over the disassembler-round-trippable subset
/// (register/immediate instructions; branch text encodes relative
/// targets and is covered by the assembler's own tests).
fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = 0u8..32;
    prop_oneof![
        (r.clone(), r.clone(), any::<i16>()).prop_map(|(rt, ra, simm)| Instr::Addi {
            rt,
            ra,
            simm
        }),
        (r.clone(), r.clone(), any::<i16>()).prop_map(|(rt, ra, simm)| Instr::Addis {
            rt,
            ra,
            simm
        }),
        (r.clone(), r.clone(), any::<u16>()).prop_map(|(ra, rs, uimm)| Instr::Ori { ra, rs, uimm }),
        (r.clone(), r.clone(), any::<u16>()).prop_map(|(ra, rs, uimm)| Instr::Xori {
            ra,
            rs,
            uimm
        }),
        (r.clone(), r.clone(), any::<u16>()).prop_map(|(ra, rs, uimm)| Instr::AndiDot {
            ra,
            rs,
            uimm
        }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(rt, ra, rb)| Instr::Add { rt, ra, rb }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(rt, ra, rb)| Instr::Subf { rt, ra, rb }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(rt, ra, rb)| Instr::Mullw { rt, ra, rb }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(ra, rs, rb)| Instr::And { ra, rs, rb }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(ra, rs, rb)| Instr::Or { ra, rs, rb }),
        (r.clone(), r.clone(), r.clone()).prop_map(|(ra, rs, rb)| Instr::Slw { ra, rs, rb }),
        (r.clone(), r.clone(), 0u8..32, 0u8..32, 0u8..32)
            .prop_map(|(ra, rs, sh, mb, me)| Instr::Rlwinm { ra, rs, sh, mb, me }),
        (r.clone(), r.clone()).prop_map(|(ra, rb)| Instr::Cmpw { ra, rb }),
        (r.clone(), any::<i16>()).prop_map(|(ra, simm)| Instr::Cmpwi { ra, simm }),
        (r.clone(), r.clone(), any::<i16>()).prop_map(|(rt, ra, d)| Instr::Lwz { rt, ra, d }),
        (r.clone(), r.clone(), any::<i16>()).prop_map(|(rs, ra, d)| Instr::Stw { rs, ra, d }),
        (r.clone(), r.clone(), any::<i16>()).prop_map(|(rt, ra, d)| Instr::Lbz { rt, ra, d }),
        (r.clone(), r.clone(), any::<i16>()).prop_map(|(rs, ra, d)| Instr::Stb { rs, ra, d }),
        (0u16..1024, r.clone()).prop_map(|(dcrn, rs)| Instr::Mtdcr { dcrn, rs }),
        (r.clone(), 0u16..1024).prop_map(|(rt, dcrn)| Instr::Mfdcr { rt, dcrn }),
        (r.clone()).prop_map(|rs| Instr::Mtmsr { rs }),
        (r.clone()).prop_map(|rt| Instr::Mfmsr { rt }),
        (r.clone()).prop_map(|rt| Instr::Mfcr { rt }),
        (r).prop_map(|rs| Instr::Mtcrf { rs }),
        Just(Instr::Rfi),
        Just(Instr::Sync),
        Just(Instr::Isync),
        Just(Instr::Trap),
        Just(Instr::Blr),
        Just(Instr::Bctr),
    ]
}

proptest! {
    /// decode is a normal form: decode(encode(decode(w))) == decode(w)
    /// for ANY 32-bit word.
    #[test]
    fn decode_is_idempotent_under_reencoding(w in any::<u32>()) {
        let once = Instr::decode(w);
        let again = Instr::decode(once.encode());
        prop_assert_eq!(once, again);
    }

    /// Every decodable (non-Illegal) word round-trips through
    /// encode/decode. Generation is biased to the implemented primary
    /// opcodes so the assume rarely rejects.
    #[test]
    fn legal_words_round_trip_bit_exactly(
        op in prop::sample::select(
            vec![10u32, 11, 14, 15, 16, 18, 19, 21, 24, 25, 26, 28, 31, 32, 34, 36, 38]
        ),
        low in 0u32..(1 << 26),
    ) {
        let w = (op << 26) | low;
        let i = Instr::decode(w);
        prop_assume!(!matches!(i, Instr::Illegal(_)));
        // The encoder normalises don't-care fields, so compare decoded
        // forms rather than raw bits.
        prop_assert_eq!(Instr::decode(i.encode()), i);
    }

    /// The disassembler output for a legal instruction re-assembles to
    /// an instruction with identical semantics (same decoded form), for
    /// the non-branch subset (branch text encodes a relative target).
    #[test]
    fn disassembly_reassembles(i in arb_instr()) {
        let text = disassemble(i.encode());
        let src = format!("{text}\n");
        let prog = assemble(&src, 0).unwrap_or_else(|e| panic!("'{text}': {e}"));
        prop_assert_eq!(prog.words.len(), 1, "'{}' assembled to multiple words", text);
        prop_assert_eq!(Instr::decode(prog.words[0]), Instr::decode(i.encode()), "'{}'", text);
    }

    /// Assembling N nops plus a label at the end places the label at
    /// base + 4N for any base (the assembler's address arithmetic).
    #[test]
    fn label_addresses_track_the_load_address(n in 0usize..50, base in 0u32..0x100000) {
        let base = base & !3;
        let mut src = String::new();
        for _ in 0..n {
            src.push_str("nop\n");
        }
        src.push_str("end:\n.word 0\n");
        let prog = assemble(&src, base).unwrap();
        prop_assert_eq!(prog.symbol("end"), base + 4 * n as u32);
    }
}
