//! Full-stack ISS tests: program fetch from memory, data over the PLB,
//! DCR accesses through a real daisy chain, interrupts through the
//! controller — the complete software execution substrate the AutoVision
//! case study relies on.

use dcr::{DcrChainBuilder, RegFile};
use plb::{AddressWindow, MasterPort, MemorySlave, PlbBus, PlbBusConfig, SharedMem};
use ppc::{assemble, intc::reg as intreg, IntController, IssConfig, PpcIss};
use rtlsim::{Clock, CompKind, ResetGen, SignalId, Simulator};
use std::cell::RefCell;
use std::rc::Rc;

const PERIOD: u64 = 10_000;

struct Sys {
    sim: Simulator,
    mem: SharedMem,
    stats: Rc<RefCell<ppc::IssStats>>,
    intc_regs: RegFile,
    line0: SignalId,
}

/// Memory map: 1 MB RAM at 0. DCR: scratch regs at 0x100, INTC at 0x300.
fn build(src: &str) -> Sys {
    let mut sim = Simulator::new();
    let clk = sim.signal("clk", 1);
    let rst = sim.signal("rst", 1);
    sim.add_component(
        "clkgen",
        CompKind::Vip,
        Box::new(Clock::new(clk, PERIOD)),
        &[],
    );
    sim.add_component(
        "rstgen",
        CompKind::Vip,
        Box::new(ResetGen::new(rst, 2 * PERIOD)),
        &[],
    );

    let mem = SharedMem::new(1 << 20);
    let sport = MemorySlave::instantiate(&mut sim, "mem", clk, rst, mem.clone(), 1);

    let cpu_port = MasterPort::alloc(&mut sim, "cpu");
    PlbBus::new(
        &mut sim,
        "plb",
        clk,
        rst,
        PlbBusConfig::default(),
        vec![cpu_port],
        vec![(
            sport,
            AddressWindow {
                base: 0,
                len: 1 << 20,
            },
        )],
    );

    let scratch = RegFile::new(0x100, 8);
    let intc_regs = RegFile::new(0x300, 3);
    let mut chain = DcrChainBuilder::new(&mut sim, "dcr", clk, rst);
    chain.add_slave("scratch", scratch.clone(), None);
    chain.add_slave("intc", intc_regs.clone(), None);
    let dcr_handle = chain.finish();

    let line0 = sim.signal_init("irq_line0", 1, 0);
    let line1 = sim.signal_init("irq_line1", 1, 0);
    let irq = sim.signal("irq", 1);
    IntController::instantiate(
        &mut sim,
        "intc",
        clk,
        rst,
        vec![line0, line1],
        irq,
        intc_regs.clone(),
        false,
    );

    let program = assemble(src, 0x1000).unwrap();
    mem.load_bytes(program.base, &program.to_bytes());
    // Interrupt vector: a jump at 0x500 to the program's `isr` label, if
    // it defines one.
    if let Some(isr) = program.symbols.get("isr") {
        let jump = assemble(&format!("b target\n.equ target, {isr:#x}\n"), 0x500);
        // `b` needs a resolvable relative target; assemble directly:
        drop(jump);
        let word = ppc::Instr::B {
            target: (*isr as i64 - 0x500) as i32,
            link: false,
        }
        .encode();
        mem.write_u32(0x500, word);
    }

    let stats = PpcIss::instantiate(
        &mut sim,
        "cpu",
        clk,
        rst,
        irq,
        cpu_port,
        mem.clone(),
        dcr_handle,
        IssConfig {
            entry: 0x1000,
            vector_base: 0,
            trace_depth: 0,
        },
    );
    Sys {
        sim,
        mem,
        stats,
        intc_regs,
        line0,
    }
}

fn run_to_halt(sys: &mut Sys, max_cycles: u64) {
    for _ in 0..max_cycles / 100 {
        sys.sim.run_for(100 * PERIOD).unwrap();
        let s = sys.stats.borrow();
        if s.halted {
            assert!(s.error.is_none(), "CPU error: {:?}", s.error);
            return;
        }
    }
    panic!("program did not halt within {max_cycles} cycles");
}

#[test]
fn program_computes_through_real_memory() {
    // Sum 1..=100 into memory at 0x8000, then read it back and double it.
    let mut sys = build(
        "
        li r3, 0          # acc
        li r4, 100
        mtctr r4
        li r5, 0          # i
loop:   addi r5, r5, 1
        add r3, r3, r5
        bdnz loop
        liw r6, 0x8000
        stw r3, 0(r6)
        lwz r7, 0(r6)
        add r7, r7, r7
        stw r7, 4(r6)
        halt
        ",
    );
    run_to_halt(&mut sys, 100_000);
    assert_eq!(sys.mem.read_u32(0x8000), Some(5050));
    assert_eq!(sys.mem.read_u32(0x8004), Some(10100));
    assert!(!sys.sim.has_errors(), "{:?}", sys.sim.messages());
}

#[test]
fn byte_stores_read_modify_write() {
    let mut sys = build(
        "
        liw r6, 0x8000
        liw r3, 0xAABBCCDD
        stw r3, 0(r6)
        li r4, 0x11
        stb r4, 1(r6)     # replace byte 1 (LE): 0xAABB11DD
        lwz r5, 0(r6)
        stw r5, 4(r6)
        halt
        ",
    );
    run_to_halt(&mut sys, 100_000);
    assert_eq!(sys.mem.read_u32(0x8004), Some(0xAABB11DD));
}

#[test]
fn dcr_round_trip_through_the_chain() {
    let mut sys = build(
        "
        .equ SCRATCH, 0x100
        liw r3, 0x12345678
        mtdcr SCRATCH, r3
        mfdcr r4, SCRATCH
        liw r6, 0x8000
        stw r4, 0(r6)
        halt
        ",
    );
    run_to_halt(&mut sys, 100_000);
    assert_eq!(sys.mem.read_u32(0x8000), Some(0x12345678));
}

#[test]
fn interrupt_service_routine_runs_and_returns() {
    // Main loop spins incrementing r3 and storing it; ISR acknowledges
    // the interrupt and bumps a counter in memory.
    let mut sys = build(
        "
        .equ INTC_STATUS, 0x300
        .equ INTC_ENABLE, 0x301
        .equ INTC_ACK,    0x302
        li r3, 1
        mtdcr INTC_ENABLE, r3  # enable line 0
        li r3, 0x8000          # MSR_EE
        mtmsr r3
        liw r6, 0x8000
        li r3, 0
main:   addi r3, r3, 1
        stw r3, 0(r6)
        b main

isr:    mfdcr r10, INTC_STATUS
        mtdcr INTC_ACK, r10    # clear what we saw
        liw r11, 0x9000
        lwz r12, 0(r11)
        addi r12, r12, 1
        stw r12, 0(r11)
        rfi
        ",
    );
    // Let the main loop get going.
    sys.sim.run_for(2_000 * PERIOD).unwrap();
    assert_eq!(sys.mem.read_u32(0x9000), Some(0));
    // Fire the interrupt line twice (with a gap).
    for _ in 0..2 {
        sys.sim.poke_u64(sys.line0, 1);
        sys.sim.run_for(10 * PERIOD).unwrap();
        sys.sim.poke_u64(sys.line0, 0);
        sys.sim.run_for(3_000 * PERIOD).unwrap();
    }
    assert_eq!(sys.mem.read_u32(0x9000), Some(2), "ISR ran once per edge");
    let s = sys.stats.borrow();
    assert_eq!(s.interrupts, 2);
    assert!(s.isr_cycles > 0);
    assert!(!s.halted);
    // Main loop kept running between interrupts.
    assert!(sys.mem.read_u32(0x8000).unwrap() > 10);
    // Interrupt pending bits were acknowledged.
    assert_eq!(sys.intc_regs.get(intreg::STATUS), 0);
}

#[test]
fn stats_account_for_stalls() {
    let mut sys = build(
        "
        liw r6, 0x8000
        li r3, 7
        stw r3, 0(r6)
        lwz r4, 0(r6)
        halt
        ",
    );
    run_to_halt(&mut sys, 10_000);
    let s = sys.stats.borrow();
    assert!(s.instret >= 6);
    assert!(s.mem_stall_cycles > 0, "bus transactions must cost cycles");
    assert!(
        s.cycles > s.instret,
        "CPI must exceed 1 with memory traffic"
    );
}

#[test]
fn illegal_instruction_halts_with_error() {
    let mut sys = build(".word 0xFFFFFFFF\n");
    sys.sim.run_for(100 * PERIOD).unwrap();
    let s = sys.stats.borrow();
    assert!(s.halted);
    assert!(s.error.as_deref().unwrap().contains("illegal"));
    assert!(sys.sim.has_errors());
}
